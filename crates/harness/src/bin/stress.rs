//! Long-running concurrent soak test for GFSL.
//!
//! ```text
//! stress [--seconds N] [--threads N] [--range N] [--mix i,d,c] [--team 16|32] [--seed S]
//! stress --chaos [--seeds N] [--threads N] [--seed S]
//! stress --modelcheck <config|all> [--strategy dfs|walk] [--bound N] [--episodes N] [--no-por] [--seed S]
//! stress --modelcheck <config> --schedule <trace>:<decisions>
//! ```
//!
//! Default mode runs a randomized mixed workload from many threads,
//! periodically spot-checks reader invariants, and finishes with a full
//! structural validation plus a per-key oracle check (each thread owns a
//! disjoint key class, so every thread's final state is exactly
//! predictable).
//!
//! `--chaos` instead runs a deterministic fault-injection campaign: for
//! each of `--seeds N` seeds, worker threads hammer a tiny shared key range
//! under a [`gfsl::chaos::ChaosController`] that serializes every simulated
//! memory access and injects stalls at the lock protocol's named crash
//! points. Every operation is recorded and the merged history is checked
//! for per-key linearizability; structural invariants are validated at
//! every quiescence point. The first seed is re-run at the end and must
//! reproduce the identical crash-point trace hash (replay determinism).
//!
//! `--modelcheck` runs the systematic schedule explorer (see
//! `gfsl::mc`) on a named configuration from the shared registry — or
//! `all` of them — with bounded-exhaustive DFS (`--strategy dfs`, default)
//! or a seeded random walk (`--strategy walk`). Any counterexample prints
//! a one-line `--schedule` spec; passing that spec back replays the exact
//! schedule, which is how a CI failure becomes a local repro. Both modes
//! need the pool's accesses compiled as yield points: build with
//! `--features modelcheck` (forwards `gfsl-gpu-mem/sched`).

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gfsl::chaos::{ChaosController, ChaosOptions};
use gfsl::{
    check_linearizable, Gfsl, GfslParams, HistoryClock, OpAction, OpRecord, OpStats, Recorder,
    TeamSize,
};
use gfsl_workload::SplitMix64;

struct Args {
    seconds: u64,
    threads: u32,
    range: u32,
    mix: (u32, u32, u32),
    team: TeamSize,
    seed: u64,
    chaos: bool,
    seeds: u32,
    modelcheck: Option<String>,
    schedule: Option<String>,
    strategy: String,
    bound: u32,
    episodes: u64,
    no_por: bool,
}

fn parse() -> Args {
    let mut a = Args {
        seconds: 10,
        threads: 4,
        range: 100_000,
        mix: (20, 20, 60),
        team: TeamSize::ThirtyTwo,
        seed: 0xD06_F00D,
        chaos: false,
        seeds: 16,
        modelcheck: None,
        schedule: None,
        strategy: "dfs".to_string(),
        bound: 2,
        episodes: 1 << 20,
        no_por: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag value");
        match flag.as_str() {
            "--seconds" => a.seconds = val().parse().expect("seconds"),
            "--threads" => a.threads = val().parse().expect("threads"),
            "--range" => a.range = val().parse().expect("range"),
            "--seed" => {
                // Accept both the decimal form from the replay hint and the
                // 0x form the per-seed progress lines display.
                let v = val();
                a.seed = match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16).expect("seed"),
                    None => v.parse().expect("seed"),
                };
            }
            "--chaos" => a.chaos = true,
            "--seeds" => a.seeds = val().parse().expect("seeds"),
            "--modelcheck" => a.modelcheck = Some(val()),
            "--schedule" => a.schedule = Some(val()),
            "--strategy" => a.strategy = val(),
            "--bound" => a.bound = val().parse().expect("bound"),
            "--episodes" => a.episodes = val().parse().expect("episodes"),
            "--no-por" => a.no_por = true,
            "--team" => {
                a.team = match val().as_str() {
                    "16" => TeamSize::Sixteen,
                    "32" => TeamSize::ThirtyTwo,
                    other => panic!("--team must be 16 or 32, got {other}"),
                }
            }
            "--mix" => {
                let v = val();
                let parts: Vec<u32> = v.split(',').map(|p| p.parse().expect("mix")).collect();
                assert_eq!(parts.len(), 3, "--mix i,d,c");
                assert_eq!(parts.iter().sum::<u32>(), 100, "mix must sum to 100");
                a.mix = (parts[0], parts[1], parts[2]);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    a
}

// Per-round trace hashes fold into one per-seed hash via the shared
// byte-wise FNV-1a helper (gfsl_rng::fnv::fold_u64) — previously a local
// copy of the fold lived here.

/// Tiny shared key range: every thread fights over the same few chunks so
/// splits, merges, and lock handoffs happen constantly.
const CHAOS_RANGE: u32 = 48;
/// Ops per worker per round. Every simulated memory access is a schedule
/// point (condvar round-trip), so chaos ops are ~1000x slower than free-run.
const CHAOS_OPS: u64 = 40;
/// Rounds per seed; each round gets a fresh controller (fresh schedule) and
/// a quiescence check, and the history carries across rounds.
const CHAOS_ROUNDS: u64 = 2;

struct SeedOutcome {
    trace: u64,
    steps: u64,
    stats: OpStats,
    crash_hits: Vec<(gfsl::CrashPoint, u64)>,
}

/// One full chaos run for one seed: CHAOS_ROUNDS rounds of scheduled
/// mayhem, validating invariants and per-key linearizability at each
/// quiescence point. Fully deterministic in `seed`.
fn run_chaos_seed(a: &Args, seed: u64) -> Result<SeedOutcome, String> {
    let threads = a.threads.clamp(2, 4) as usize;
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        seed,
        ..Default::default()
    })
    .map_err(|e| format!("construct: {e:?}"))?;

    let clock = HistoryClock::new();
    // Keys present at the start of the current round (round 0: empty).
    let mut initial: HashMap<u32, u32> = HashMap::new();
    let mut trace = gfsl_rng::fnv::OFFSET;
    let mut steps = 0u64;
    let mut stats = OpStats::new();
    let mut crash_hits: Vec<(gfsl::CrashPoint, u64)> = Vec::new();

    for round in 0..CHAOS_ROUNDS {
        let ctl = ChaosController::new(
            threads,
            ChaosOptions {
                seed: seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..Default::default()
            },
        );
        let per_thread: Vec<(Vec<OpRecord>, OpStats)> = std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|t| {
                    let list = &list;
                    let ctl = &ctl;
                    let clock = &clock;
                    s.spawn(move || {
                        let mut h = list.handle_with(ctl.probe(t));
                        let mut rec = Recorder::new(clock);
                        let mut rng =
                            SplitMix64::new(seed ^ (round << 8) ^ ((t as u64 + 1) << 40));
                        for _ in 0..CHAOS_OPS {
                            let k = rng.below(u64::from(CHAOS_RANGE)) as u32 + 1;
                            let roll = rng.below(100);
                            let inv = rec.invoke();
                            if roll < 40 {
                                let v = rng.next_u64() as u32;
                                let ok = h.insert(k, v).expect("chaos pool sized generously");
                                rec.finish(k, OpAction::Insert { value: v, ok }, inv);
                            } else if roll < 75 {
                                let ok = h.remove(k);
                                rec.finish(k, OpAction::Remove { ok }, inv);
                            } else {
                                let found = h.get(k);
                                rec.finish(k, OpAction::Get { found }, inv);
                            }
                        }
                        let st = h.stats();
                        (rec.records, st)
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("chaos worker panicked"))
                .collect()
        });

        // All workers joined: quiescence. Structure must be fully valid.
        let violations = list.validate();
        if !violations.is_empty() {
            return Err(format!(
                "seed 0x{seed:016x} round {round}: {} invariant violations: {}",
                violations.len(),
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            ));
        }

        let mut records: Vec<OpRecord> = Vec::new();
        for (r, st) in per_thread {
            records.extend(r);
            stats.merge(&st);
        }

        // Quiescent reads of the whole range close the round's history and
        // pin the exact state the next round starts from.
        let mut next_initial = HashMap::new();
        {
            let mut h = list.handle();
            let mut rec = Recorder::new(&clock);
            for k in 1..=CHAOS_RANGE {
                let inv = rec.invoke();
                let found = h.get(k);
                rec.finish(k, OpAction::Get { found }, inv);
                if let Some(v) = found {
                    next_initial.insert(k, v);
                }
            }
            records.extend(rec.records);
        }

        if let Err(errs) = check_linearizable(&records, &initial) {
            return Err(format!(
                "seed 0x{seed:016x} round {round}: history NOT linearizable: {}",
                errs.join(" | ")
            ));
        }
        initial = next_initial;

        trace = gfsl_rng::fnv::fold_u64(trace, ctl.trace_hash());
        steps += ctl.steps();
        let hits = ctl.crash_point_hits();
        if crash_hits.is_empty() {
            crash_hits = hits;
        } else {
            for (acc, (_, n)) in crash_hits.iter_mut().zip(hits) {
                acc.1 += n;
            }
        }
    }
    Ok(SeedOutcome {
        trace,
        steps,
        stats,
        crash_hits,
    })
}

fn chaos_main(a: &Args) -> ExitCode {
    if a.seeds == 0 {
        eprintln!("--seeds must be at least 1");
        return ExitCode::FAILURE;
    }
    println!(
        "chaos campaign: {} seeds, {} threads, range {}, {} ops/thread, {} rounds/seed",
        a.seeds,
        a.threads.clamp(2, 4),
        CHAOS_RANGE,
        CHAOS_OPS,
        CHAOS_ROUNDS
    );
    let mut first: Option<(u64, u64)> = None; // (seed, trace hash)
    let mut stats = OpStats::new();
    let mut crash_hits: Vec<(gfsl::CrashPoint, u64)> = Vec::new();
    let mut steps = 0u64;
    for i in 0..a.seeds {
        let seed = a
            .seed
            .wrapping_add(u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match run_chaos_seed(a, seed) {
            Ok(out) => {
                println!(
                    "  seed {i:3} (0x{seed:016x}): trace 0x{:016x}, {:6} schedule steps",
                    out.trace, out.steps
                );
                if first.is_none() {
                    first = Some((seed, out.trace));
                }
                stats.merge(&out.stats);
                steps += out.steps;
                if crash_hits.is_empty() {
                    crash_hits = out.crash_hits;
                } else {
                    for (acc, (_, n)) in crash_hits.iter_mut().zip(out.crash_hits) {
                        acc.1 += n;
                    }
                }
            }
            Err(e) => {
                eprintln!("CHAOS FAILURE: {e}");
                eprintln!("replay with: stress --chaos --seeds 1 --seed {seed}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Replay determinism: the first seed, run again, must walk the exact
    // same schedule (bit-identical crash-point trace hash).
    let (seed0, trace0) = first.expect("at least one seed");
    match run_chaos_seed(a, seed0) {
        Ok(out) if out.trace == trace0 => {
            println!("replay determinism: seed 0x{seed0:016x} reproduced trace 0x{trace0:016x}");
        }
        Ok(out) => {
            eprintln!(
                "NON-DETERMINISTIC REPLAY: seed 0x{seed0:016x} first gave trace 0x{trace0:016x}, replay gave 0x{:016x}",
                out.trace
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("NON-DETERMINISTIC REPLAY: first run passed, replay failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!("campaign totals: {steps} schedule steps");
    println!(
        "lock protocol: {} locks taken, {} CAS retries, {} backoff yields, {} starvation events",
        stats.locks_taken, stats.lock_retries, stats.lock_backoff_yields, stats.lock_starvation_events
    );
    println!(
        "readers: {} search restarts, {} snapshot certification retries",
        stats.search_restarts, stats.certify_retries
    );
    print!("crash points hit:");
    for (p, n) in &crash_hits {
        print!(" {p:?}={n}");
    }
    println!();
    println!("chaos campaign PASSED: 0 invariant violations, 0 linearizability violations");
    ExitCode::SUCCESS
}

/// `--modelcheck`: systematic schedule exploration over a registered
/// configuration, or replay of one counterexample spec.
fn modelcheck_main(a: &Args) -> ExitCode {
    use gfsl::mc::strategy::{DfsBounded, RandomWalk, Scheduler};
    use gfsl::mc::{self, configs};

    if !gfsl_gpu_mem::schedule::POOL_GATED {
        eprintln!(
            "stress --modelcheck needs the pool's accesses compiled as yield points;\n\
             rebuild with: cargo run --release -p gfsl-harness --bin stress \
             --features modelcheck -- --modelcheck ..."
        );
        return ExitCode::FAILURE;
    }

    let sel = a.modelcheck.as_deref().expect("dispatched on --modelcheck");
    let cfgs: Vec<mc::McConfig> = if sel == "all" {
        configs::all()
    } else {
        match configs::by_name(sel) {
            Some(c) => vec![c],
            None => {
                eprintln!("unknown model-check config {sel:?}; registered configs:");
                for c in configs::all() {
                    eprintln!("  {:<16} {}", c.name, c.about);
                }
                return ExitCode::FAILURE;
            }
        }
    };

    // Replay mode: one spec (as printed by a failing exploration or the CI
    // modelcheck job) pins one exact schedule against one configuration.
    if let Some(spec) = &a.schedule {
        if cfgs.len() != 1 {
            eprintln!("--schedule replays one schedule: name a single --modelcheck <config>");
            return ExitCode::FAILURE;
        }
        let (want_trace, decisions) = match mc::parse_spec(spec) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bad --schedule spec: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cfg = &cfgs[0];
        let out = mc::replay(cfg, decisions);
        println!(
            "replay {}: trace 0x{:016x}, {} scheduled steps",
            cfg.name, out.trace, out.steps
        );
        if out.trace != want_trace {
            println!(
                "WARNING: replayed trace differs from the spec's 0x{want_trace:016x} \
                 (code changed since the schedule was captured?)"
            );
        }
        return match out.failure {
            Some(f) => {
                println!("schedule FAILS: {f}");
                ExitCode::FAILURE
            }
            None => {
                println!("schedule passes");
                ExitCode::SUCCESS
            }
        };
    }

    let mut clean = true;
    for cfg in &cfgs {
        let strategy: Box<dyn Scheduler> = match a.strategy.as_str() {
            "dfs" => Box::new(DfsBounded::new(a.bound, !a.no_por, a.episodes)),
            "walk" => Box::new(RandomWalk::new(a.seed, a.episodes)),
            other => {
                eprintln!("--strategy must be dfs or walk, got {other}");
                return ExitCode::FAILURE;
            }
        };
        let report = mc::explore(cfg, strategy);
        println!("modelcheck {}", report.summary());
        if let Some(cx) = &report.counterexample {
            clean = false;
            println!("  counterexample: {}", cx.description);
            println!(
                "  replay with: stress --modelcheck {} --schedule {}",
                cfg.name,
                cx.spec()
            );
        }
    }
    if clean {
        println!("modelcheck PASSED: no counterexamples");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let a = parse();
    if a.modelcheck.is_some() {
        return modelcheck_main(&a);
    }
    if a.schedule.is_some() {
        eprintln!("--schedule needs --modelcheck <config> to replay against");
        return ExitCode::FAILURE;
    }
    if a.chaos {
        return chaos_main(&a);
    }
    println!(
        "soak: {}s, {} threads, range {}, mix [{},{},{}], GFSL-{}",
        a.seconds,
        a.threads,
        a.range,
        a.mix.0,
        a.mix.1,
        a.mix.2,
        match a.team {
            TeamSize::Sixteen => 16,
            TeamSize::ThirtyTwo => 32,
        }
    );
    let list = Gfsl::new(GfslParams {
        team_size: a.team,
        pool_chunks: GfslParams::chunks_for(a.range as u64 * 6, a.team),
        seed: a.seed,
        ..Default::default()
    })
    .expect("construct");

    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let deadline = Instant::now() + Duration::from_secs(a.seconds);

    let finals: Vec<std::collections::BTreeMap<u32, u32>> = std::thread::scope(|s| {
        // A reader thread hammers invariant checks the whole time.
        let list_ref = &list;
        let stop_ref = &stop;
        s.spawn(move || {
            let mut h = list_ref.handle();
            let mut rng = SplitMix64::new(0xEAD);
            while !stop_ref.load(Ordering::Acquire) {
                let lo = rng.below(a.range as u64) as u32 + 1;
                let hi = (lo + 500).min(a.range);
                let window = h.range(lo, hi);
                assert!(
                    window.windows(2).all(|w| w[0].0 < w[1].0),
                    "range scan disorder"
                );
                if let Some((mk, _)) = h.min_entry() {
                    assert!((1..=a.range).contains(&mk));
                }
            }
        });

        let workers: Vec<_> = (0..a.threads)
            .map(|t| {
                let list = &list;
                let total = &total_ops;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = SplitMix64::new(a.seed ^ (t as u64) << 32);
                    let mut oracle = std::collections::BTreeMap::new();
                    let mut n = 0u64;
                    while Instant::now() < deadline {
                        for _ in 0..512 {
                            // Keys in this thread's class only.
                            let k = (rng.below((a.range / a.threads).max(1) as u64) as u32)
                                * a.threads
                                + t
                                + 1;
                            if k > a.range {
                                continue;
                            }
                            let roll = rng.below(100) as u32;
                            if roll < a.mix.0 {
                                let v = rng.next_u64() as u32;
                                if h.insert(k, v).expect("pool") {
                                    oracle.insert(k, v);
                                }
                            } else if roll < a.mix.0 + a.mix.1 {
                                assert_eq!(
                                    h.remove(k),
                                    oracle.remove(&k).is_some(),
                                    "remove {k} disagrees with oracle"
                                );
                            } else {
                                assert_eq!(
                                    h.get(k),
                                    oracle.get(&k).copied(),
                                    "get {k} disagrees with oracle"
                                );
                            }
                            n += 1;
                        }
                    }
                    total.fetch_add(n, Ordering::Relaxed);
                    oracle
                })
            })
            .collect();
        let finals = workers.into_iter().map(|w| w.join().unwrap()).collect();
        stop.store(true, Ordering::Release);
        finals
    });

    let ops = total_ops.load(Ordering::Relaxed);
    println!(
        "ran {} ops ({:.2} Mops/s host)",
        ops,
        ops as f64 / a.seconds as f64 / 1e6
    );

    // Final oracle check: the union of per-thread maps must equal the
    // structure exactly.
    let mut expect: Vec<(u32, u32)> = finals.into_iter().flatten().collect();
    expect.sort_unstable();
    let got = list.pairs();
    if got != expect {
        eprintln!(
            "FINAL STATE MISMATCH: structure has {} pairs, oracle {}",
            got.len(),
            expect.len()
        );
        return ExitCode::FAILURE;
    }
    let violations = list.validate();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("INVARIANT VIOLATION: {v}");
        }
        return ExitCode::FAILURE;
    }
    let shape = list.shape();
    println!(
        "final: {} keys, height {}, {} chunks ({:.1}% zombies), mean fill {:.1}",
        shape.len(),
        list.height(),
        shape.chunks_allocated,
        shape.zombie_fraction() * 100.0,
        shape.levels[0].mean_fill(),
    );
    println!("soak PASSED");
    ExitCode::SUCCESS
}
