//! Hardware and kernel descriptors.

use serde::{Deserialize, Serialize};

/// A GPU architecture descriptor (per-SM resources + device totals).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GpuArch {
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Register allocation granularity per warp (Maxwell: 256).
    pub reg_alloc_unit: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Number of SMs.
    pub sms: u32,
    /// Core clock in MHz.
    pub core_clock_mhz: u32,
    /// L2 capacity in bytes.
    pub l2_bytes: u32,
}

impl GpuArch {
    /// The paper's testbed: GeForce GTX 970 (Maxwell GM204): 13 active SMs,
    /// 1664 cores, 1.75 MB L2, 1050 MHz core clock (§5.1).
    pub fn gtx970() -> GpuArch {
        GpuArch {
            regs_per_sm: 65_536,
            reg_alloc_unit: 256,
            max_warps_per_sm: 64,
            max_threads_per_sm: 2_048,
            max_blocks_per_sm: 32,
            warp_size: 32,
            sms: 13,
            core_clock_mhz: 1_050,
            l2_bytes: 1_792 * 1024,
        }
    }
}

/// Static properties of a kernel, used by the occupancy/spill model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Registers per thread the kernel *wants* (what the compiler allocates
    /// when unconstrained). Deficit against the allocation becomes local
    /// memory spill.
    pub regs_needed: u32,
    /// Spill share present even at full register allocation (M&C's
    /// thread-local path arrays always live in local memory: "M&C suffer
    /// from spillover even when using the maximum registers deemed
    /// sufficient by the compiler", §5.2).
    pub base_spill_share: f64,
    /// Fraction of theoretical occupancy actually achieved (warps stalled on
    /// in-flight memory keep the scheduler short of eligible warps; M&C's
    /// 86–91% memory-dependency latency gives it a markedly lower factor).
    pub achieved_factor: f64,
    /// How strongly a register deficit converts into spill bandwidth share
    /// (1.0 = the Table 5.1 GFSL fit). M&C's locals spill regardless of the
    /// allocation, so its share barely moves with the deficit (Table 5.2:
    /// 25/23/23/24%).
    pub spill_growth: f64,
}

impl KernelProfile {
    /// GFSL (Table 5.1): wants 79 registers (the 8-warp column shows 79
    /// allocated with zero spill), negligible base spill, ~0.97 achieved
    /// occupancy factor.
    pub fn gfsl() -> KernelProfile {
        KernelProfile {
            regs_needed: 79,
            base_spill_share: 0.0,
            achieved_factor: 0.97,
            spill_growth: 1.0,
        }
    }

    /// M&C (Table 5.2): wants 42 registers, ~23% base spill share from its
    /// thread-local traversal-path arrays, ~0.82 achieved factor.
    pub fn mc() -> KernelProfile {
        KernelProfile {
            regs_needed: 42,
            base_spill_share: 0.23,
            achieved_factor: 0.82,
            spill_growth: 0.15,
        }
    }
}

/// A launch configuration (the variable of Tables 5.1/5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Warps per block (8, 16, 24, or 32 in the paper; 16 is the
    /// configuration used for all headline results).
    pub warps_per_block: u32,
}

impl LaunchConfig {
    /// The paper's production configuration (16 warps = 512 threads/block).
    pub fn paper_default() -> LaunchConfig {
        LaunchConfig { warps_per_block: 16 }
    }

    /// Threads per block.
    pub fn threads_per_block(&self, arch: &GpuArch) -> u32 {
        self.warps_per_block * arch.warp_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx970_matches_paper_specs() {
        let a = GpuArch::gtx970();
        assert_eq!(a.sms, 13);
        assert_eq!(a.core_clock_mhz, 1050);
        assert_eq!(a.l2_bytes, 1_835_008);
        assert_eq!(a.sms * 128, 1664, "13 SMs x 128 cores = 1664 cores");
    }

    #[test]
    fn launch_config_threads() {
        let a = GpuArch::gtx970();
        assert_eq!(LaunchConfig { warps_per_block: 16 }.threads_per_block(&a), 512);
        assert_eq!(LaunchConfig::paper_default().warps_per_block, 16);
    }
}
