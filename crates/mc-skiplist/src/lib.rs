//! # M&C baseline: a classic lock-free skiplist on the simulated GPU memory
//!
//! Misra & Chaudhuri ("Performance Evaluation of Concurrent Lock-Free Data
//! Structures on GPUs", ICPADS 2012) ported the textbook lock-free skiplist
//! (Herlihy & Shavit ch. 14 / Fraser) to CUDA essentially unchanged: one
//! thread per operation, one key per node, per-node towers of marked next
//! pointers, tower heights pre-drawn on the host with `p_key`, and no memory
//! reclamation. The GFSL paper uses this implementation as its baseline
//! (referred to as "M&C" throughout Chapter 5).
//!
//! This crate reproduces that baseline over the same [`gfsl_gpu_mem`]
//! substrate GFSL uses, so the experiment harness can measure both under an
//! identical memory model. Nodes are variable-size word records in the flat
//! pool; every node visit is a scattered single-lane access — exactly the
//! uncoalesced pattern whose cost the paper's evaluation demonstrates.
//!
//! Layout of a node of height `h` (word addresses relative to the node
//! base):
//!
//! ```text
//!   word 0      : key  (low 32) | height (high 32)
//!   word 1      : value (low 32)
//!   word 2 + l  : level-l next pointer: node index (low 32) | mark (bit 63)
//! ```

#![warn(missing_docs)]

pub mod list;
pub mod node;

pub use list::{McHandle, McParams, McSkipList, McStats};
