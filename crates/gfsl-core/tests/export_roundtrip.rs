//! Export ∘ rebuild is identity.
//!
//! `Gfsl::export_pairs` is the primitive shard migration relies on: a shard
//! exports its pairs under a fence and the receiving side bulk-loads them
//! via `Gfsl::from_sorted_pairs`. If that round-trip ever loses, duplicates,
//! or reorders a pair — in particular on zombie-laden structures after heavy
//! merge churn — migration silently corrupts data. These tests pin the
//! identity on ideal, churned, and property-generated structures.

use std::collections::BTreeMap;

use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_rng::SplitMix64;
use proptest::prelude::*;

fn params16() -> GfslParams {
    GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 13,
        ..Default::default()
    }
}

/// Round-trip `list` through export → bulk rebuild and assert the result is
/// structurally valid and pair-identical, matching `reference`.
fn assert_roundtrip(list: &Gfsl, reference: &BTreeMap<u32, u32>) {
    let exported: Vec<(u32, u32)> = list.export_pairs().collect();
    let expect: Vec<(u32, u32)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(exported, expect, "export must match the oracle exactly");

    let rebuilt = Gfsl::from_sorted_pairs(*list.params(), list.export_pairs())
        .expect("exported stream is strictly ascending and in-range");
    rebuilt.assert_valid();
    assert_eq!(rebuilt.pairs(), expect, "rebuild must preserve every pair");

    // The rebuilt structure must be fully usable, not just readable.
    let mut h = rebuilt.handle();
    if let Some((&k, &v)) = reference.iter().next() {
        assert_eq!(h.get(k), Some(v));
    }
}

#[test]
fn roundtrip_on_zombie_laden_post_churn_structure() {
    // Heavy insert/remove churn drives splits and merges; merges leave
    // zombie chunks parked in the chains, which export must skip without
    // dropping their replacements' contents.
    let list = Gfsl::new(params16()).unwrap();
    let mut oracle = BTreeMap::new();
    {
        let mut h = list.handle();
        let mut rng = SplitMix64::new(0xE0_C0DE);
        for _ in 0..40_000u32 {
            let k = rng.below(3_000) as u32 + 1;
            if rng.coin(0.55) {
                // Insert is set-like: a duplicate key keeps its old value.
                let v = rng.next_u64() as u32;
                if h.insert(k, v).unwrap() {
                    oracle.insert(k, v);
                }
            } else {
                assert_eq!(h.remove(k), oracle.remove(&k).is_some());
            }
        }
        assert!(h.stats().merges > 0, "churn must have exercised merges");
    }
    list.assert_valid();
    assert_roundtrip(&list, &oracle);
}

#[test]
fn roundtrip_on_near_empty_and_empty_lists() {
    let empty = Gfsl::new(params16()).unwrap();
    assert_roundtrip(&empty, &BTreeMap::new());

    let list = Gfsl::new(params16()).unwrap();
    let mut oracle = BTreeMap::new();
    {
        let mut h = list.handle();
        for k in 1..=200u32 {
            h.insert(k, k + 7).unwrap();
            oracle.insert(k, k + 7);
        }
        for k in 1..=199u32 {
            h.remove(k);
            oracle.remove(&k);
        }
    }
    assert_roundtrip(&list, &oracle);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Arbitrary churn scripts (key, insert-vs-remove) over a small key
    /// universe — small enough that merges and zombie chains are common —
    /// must always round-trip exactly.
    #[test]
    fn export_rebuild_identity_under_arbitrary_churn(
        ops in proptest::collection::vec((1u32..400, any::<bool>(), any::<u32>()), 0..2_000),
    ) {
        let list = Gfsl::new(params16()).unwrap();
        let mut oracle = BTreeMap::new();
        {
            let mut h = list.handle();
            for (k, is_insert, v) in ops {
                if is_insert {
                    // Set-like insert: duplicates keep the original value.
                    if h.insert(k, v).unwrap() {
                        oracle.insert(k, v);
                    }
                } else {
                    prop_assert_eq!(h.remove(k), oracle.remove(&k).is_some());
                }
            }
        }
        let exported: Vec<(u32, u32)> = list.export_pairs().collect();
        let expect: Vec<(u32, u32)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(&exported, &expect);
        let rebuilt = Gfsl::from_sorted_pairs(*list.params(), exported.iter().copied()).unwrap();
        rebuilt.assert_valid();
        prop_assert_eq!(rebuilt.pairs(), expect);
    }
}
