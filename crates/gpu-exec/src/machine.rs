//! Execution configuration and the simulation report.

use gfsl_gpu_mem::Traffic;

/// Timing and geometry of the simulated device.
///
/// Defaults model the paper's GTX 970 under its production launch
/// configuration (16 warps/block, 2 blocks/SM resident ⇒ 32 warps/SM,
/// 13 SMs ⇒ 416 resident warps).
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Number of SMs.
    pub sms: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Core clock in MHz (converts cycles to seconds).
    pub clock_mhz: u32,
    /// Cycles between consecutive instruction issues of one SM scheduler.
    pub issue_cycles: u64,
    /// Extra issue cycles per lockstep step beyond the load itself (ballot,
    /// compare, branch — GFSL steps carry a couple dozen instructions).
    pub step_overhead_cycles: u64,
    /// Latency of a transaction served by L2.
    pub l2_hit_cycles: u64,
    /// Base latency of a transaction served by DRAM.
    pub dram_cycles: u64,
    /// DRAM service time per 32-byte sector (bandwidth: the global queue
    /// serves one sector each this-many cycles; 1.05 GHz × 32 B / 0.6 ≈
    /// 56 GB/s effective random-access bandwidth).
    pub dram_sector_service_cycles: f64,
    /// Extra SM issue cycles per memory transaction beyond the first in one
    /// warp access (address-divergence replay: a fully scattered 32-lane
    /// load occupies the load/store unit for 32 serialized transactions —
    /// the M&C divergence cost the paper's §2.2 describes).
    pub replay_cycles: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            sms: 13,
            warps_per_sm: 32,
            clock_mhz: 1_050,
            issue_cycles: 1,
            step_overhead_cycles: 40,
            l2_hit_cycles: 200,
            dram_cycles: 450,
            dram_sector_service_cycles: 0.6,
            replay_cycles: 6,
        }
    }
}

impl ExecConfig {
    /// Total resident warps on the device.
    pub fn total_warps(&self) -> u32 {
        self.sms * self.warps_per_sm
    }
}

/// Result of one simulated kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecReport {
    /// Operations completed.
    pub ops: u64,
    /// Simulated cycles on the critical-path SM.
    pub cycles: u64,
    /// Warp steps issued (lockstep instructions regions).
    pub steps: u64,
    /// Memory traffic observed by the executor's own accounting.
    pub traffic: Traffic,
    /// Simulated seconds.
    pub seconds: f64,
}

impl ExecReport {
    /// Throughput in millions of operations per second.
    pub fn mops(&self) -> f64 {
        if self.seconds > 0.0 {
            self.ops as f64 / self.seconds / 1e6
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_geometry() {
        let c = ExecConfig::default();
        assert_eq!(c.total_warps(), 416);
        assert_eq!(c.sms, 13);
    }

    #[test]
    fn report_mops() {
        let r = ExecReport {
            ops: 1_000_000,
            seconds: 0.02,
            ..Default::default()
        };
        assert!((r.mops() - 50.0).abs() < 1e-9);
        assert_eq!(ExecReport::default().mops(), 0.0);
    }
}
