//! Cross-validation: the cycle-level SIMT executor vs the roofline model
//! on Contains-only workloads (Fig. 5.4a's regime).
//!
//! The two estimators share nothing but the L2 geometry: the roofline
//! converts aggregate measured traffic to time through calibrated
//! bandwidth/issue constants; the executor schedules every warp step
//! against latencies and a DRAM queue, one event at a time. Agreement on
//! *shape* (GFSL vs M&C ordering per range, degradation direction) means
//! the reproduction's conclusions don't hinge on either model's
//! simplifications.

use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_gpu_exec::{Device, ExecConfig, GfslContainsWarp, McContainsWarp, WarpProgram};
use gfsl_workload::{format_count, BenchKind, Lehmer64, WorkloadSpec};
use mc_skiplist::{McParams, McSkipList};

use super::ExpConfig;
use crate::model_eval::{evaluate, StructureKind};
use crate::report::{mops, Table};
use crate::runner::{run_gfsl, run_mc, RunConfig};

/// Keys for `n` lookups over `1..=range` (uniform, seeded).
fn lookup_keys(n: usize, range: u32, seed: u64) -> Vec<u32> {
    let mut rng = Lehmer64::new(seed);
    (0..n).map(|_| rng.below(range as u64) as u32 + 1).collect()
}

/// Simulate a Contains-only kernel on GFSL: 416 resident teams, each
/// processing a contiguous slab of the lookup stream.
fn simulate_gfsl(list: &Gfsl, keys: &[u32]) -> f64 {
    let cfg = ExecConfig::default();
    let mut dev = Device::new(cfg);
    let teams = cfg.total_warps() as usize;
    let per = keys.len().div_ceil(teams).max(1);
    let warps: Vec<Box<dyn WarpProgram + '_>> = keys
        .chunks(per)
        .map(|slab| {
            Box::new(GfslContainsWarp::new(list, slab.to_vec())) as Box<dyn WarpProgram + '_>
        })
        .collect();
    dev.run(warps, keys.len() as u64).mops()
}

/// Simulate a Contains-only kernel on M&C: one op per thread, 32 per warp,
/// executed in resident waves of 416 warps (blocks retire and are
/// replaced, so the device always holds ~416 warps).
fn simulate_mc(list: &McSkipList, keys: &[u32]) -> f64 {
    let cfg = ExecConfig::default();
    let mut dev = Device::new(cfg);
    let wave = cfg.total_warps() as usize;
    let mut total_seconds = 0.0;
    for wave_keys in keys.chunks(wave * 32) {
        let warps: Vec<Box<dyn WarpProgram + '_>> = wave_keys
            .chunks(32)
            .map(|slab| {
                Box::new(McContainsWarp::new(list, slab.to_vec())) as Box<dyn WarpProgram + '_>
            })
            .collect();
        total_seconds += dev.run(warps, wave_keys.len() as u64).seconds;
    }
    if total_seconds > 0.0 {
        keys.len() as f64 / total_seconds / 1e6
    } else {
        0.0
    }
}

/// Run the cross-validation at three representative ranges.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let run_cfg = RunConfig {
        workers: cfg.workers,
        ..Default::default()
    };
    let n_ops = cfg.mixed_ops().min(300_000);
    let ranges: Vec<u32> = {
        let r = cfg.ranges();
        let pick = [0, r.len().saturating_sub(3), r.len().saturating_sub(1)];
        let mut v: Vec<u32> = pick.iter().map(|&i| r[i.min(r.len() - 1)]).collect();
        v.dedup();
        v
    };

    let mut t = Table::new(
        "Cross-validation: cycle-level executor vs roofline model (Contains-only)",
        &[
            "range",
            "GFSL cycle-sim",
            "GFSL roofline",
            "M&C cycle-sim",
            "M&C roofline",
        ],
    );
    for &range in &ranges {
        let spec = WorkloadSpec::single(BenchKind::ContainsOnly, range, n_ops, cfg.seed);
        let keys = lookup_keys(n_ops, range, cfg.seed ^ 0xC1C);

        // Build the structures once (full prefill, per §5.1).
        let gfsl = Gfsl::new(GfslParams {
            team_size: TeamSize::ThirtyTwo,
            pool_chunks: GfslParams::chunks_for(range as u64 * 2, TeamSize::ThirtyTwo),
            seed: cfg.seed,
            ..Default::default()
        })
        .unwrap();
        {
            let mut h = gfsl.handle();
            for k in spec.prefill_keys() {
                h.insert(k, k).unwrap();
            }
        }
        let mc = McSkipList::new(McParams {
            seed: cfg.seed,
            ..McParams::sized_for(range as u64 * 2)
        })
        .unwrap();
        {
            let mut h = mc.handle();
            for k in spec.prefill_keys() {
                h.insert(k, k);
            }
        }

        let g_sim = simulate_gfsl(&gfsl, &keys);
        let m_sim = simulate_mc(&mc, &keys);

        let g_roof = evaluate(
            StructureKind::Gfsl,
            &run_gfsl(
                &spec,
                GfslParams {
                    pool_chunks: GfslParams::chunks_for(range as u64 * 2, TeamSize::ThirtyTwo),
                    seed: cfg.seed,
                    ..Default::default()
                },
                &run_cfg,
            ),
        )
        .mops;
        let m_roof = evaluate(
            StructureKind::Mc,
            &run_mc(
                &spec,
                McParams {
                    seed: cfg.seed,
                    ..McParams::sized_for(range as u64 * 2)
                },
                &run_cfg,
            ),
        )
        .mops;

        t.row(vec![
            format_count(range as u64),
            mops(g_sim),
            mops(g_roof),
            mops(m_sim),
            mops(m_roof),
        ]);
    }
    vec![t]
}
