//! Pluggable batch schedulers: how an epoch's admitted requests become
//! warp-aligned dispatch batches.
//!
//! A policy receives everything admitted in one epoch and returns the
//! batches to dispatch, each with a planned worker. Three policies ship:
//!
//! * [`Fifo`] — arrival order, chopped into lane-aligned batches, workers
//!   round-robin. The baseline.
//! * [`KeyRangeSharded`] — requests partitioned by key into per-worker
//!   shards first. Batches touch disjoint key regions, so concurrently
//!   executing teams contend on different chunks (and their coalesced reads
//!   stay in a narrow key neighborhood).
//! * [`ReadWriteSeparated`] — reads (`Get`/`Range`) and writes split into
//!   distinct batches. Read-only batches never take a chunk lock end to
//!   end — the paper's lock-free Contains fast path — so they are never
//!   queued behind a lock held by a batchmate's insert.

use crate::request::Request;

/// Formation-time context handed to a policy.
#[derive(Debug, Clone, Copy)]
pub struct PolicyCtx {
    /// Worker (team) count; planned workers must be `< workers`.
    pub workers: usize,
    /// Hard cap on requests per dispatched batch.
    pub max_batch: usize,
    /// Team width: batches are chopped at multiples of this so full batches
    /// keep every lane of a team busy.
    pub lane_align: usize,
}

impl PolicyCtx {
    /// The chop granule: `max_batch` rounded down to a lane multiple.
    fn granule(&self) -> usize {
        let lanes = self.lane_align.max(1);
        ((self.max_batch / lanes).max(1)) * lanes
    }
}

/// One dispatch batch.
#[derive(Debug)]
pub struct Batch {
    /// Global dispatch sequence number (assigned by the service driver).
    pub seq: u64,
    /// Planned worker (used for the deterministic execution-time model and
    /// the dispatch-grant trace; the pool balances actual pulls).
    pub worker: usize,
    /// True when every request in the batch is lock-free (`Get`/`Range`).
    pub read_only: bool,
    /// The requests, in formation order.
    pub reqs: Vec<Request>,
}

impl Batch {
    /// Lane slots this batch occupies once padded to team width.
    pub fn aligned_len(&self, lane_align: usize) -> usize {
        let lanes = lane_align.max(1);
        self.reqs.len().div_ceil(lanes) * lanes
    }
}

/// A batch-formation policy.
pub trait BatchPolicy: Send {
    /// Policy name, for reports.
    fn name(&self) -> &'static str;

    /// Split one epoch's admitted requests into dispatch batches.
    ///
    /// Every request must appear in exactly one returned batch; `seq` may
    /// be left 0 (the driver assigns global sequence numbers).
    fn form(&mut self, epoch: Vec<Request>, ctx: &PolicyCtx) -> Vec<Batch>;
}

/// Chop `reqs` into batches of at most one granule, tagging each with the
/// next round-robin worker.
fn chop(reqs: Vec<Request>, ctx: &PolicyCtx, next_worker: &mut usize, out: &mut Vec<Batch>) {
    let granule = ctx.granule();
    let mut reqs = reqs;
    while !reqs.is_empty() {
        let rest = if reqs.len() > granule {
            reqs.split_off(granule)
        } else {
            Vec::new()
        };
        let read_only = reqs.iter().all(|r| r.op.is_read_only());
        out.push(Batch {
            seq: 0,
            worker: *next_worker % ctx.workers.max(1),
            read_only,
            reqs,
        });
        *next_worker = next_worker.wrapping_add(1);
        reqs = rest;
    }
}

/// Arrival-order batching, round-robin workers.
#[derive(Debug, Default)]
pub struct Fifo {
    next_worker: usize,
}

impl BatchPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn form(&mut self, epoch: Vec<Request>, ctx: &PolicyCtx) -> Vec<Batch> {
        let mut out = Vec::new();
        chop(epoch, ctx, &mut self.next_worker, &mut out);
        out
    }
}

/// Key-range sharding: requests are partitioned into `workers` contiguous
/// key shards (shard `i` owns keys `[i·range/workers, …)`), then each shard
/// is chopped and pinned to its worker.
#[derive(Debug)]
pub struct KeyRangeSharded {
    key_range: u32,
}

impl KeyRangeSharded {
    /// Sharding over keys `1..=key_range`.
    pub fn new(key_range: u32) -> KeyRangeSharded {
        assert!(key_range > 0);
        KeyRangeSharded { key_range }
    }
}

impl BatchPolicy for KeyRangeSharded {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn form(&mut self, epoch: Vec<Request>, ctx: &PolicyCtx) -> Vec<Batch> {
        let workers = ctx.workers.max(1);
        let mut shards: Vec<Vec<Request>> = (0..workers).map(|_| Vec::new()).collect();
        for r in epoch {
            let k = r.op.key().min(self.key_range).saturating_sub(1) as u64;
            let shard = (k * workers as u64 / self.key_range as u64) as usize;
            shards[shard.min(workers - 1)].push(r);
        }
        let mut out = Vec::new();
        for (worker, shard) in shards.into_iter().enumerate() {
            let mut pin = worker;
            // chop advances its worker counter per batch; re-pin every
            // batch of this shard to the shard's worker.
            let before = out.len();
            chop(shard, ctx, &mut pin, &mut out);
            for b in &mut out[before..] {
                b.worker = worker;
            }
        }
        out
    }
}

/// Key-sorted batching: the epoch is sorted by `(key, arrival)` before
/// chopping, so each dispatched batch covers a narrow, ascending key band.
/// Paired with the structure's traversal hint cache
/// (`GfslParams::hints` + `execute_batch_hinted`), a team serving such a
/// batch descends once and then walks laterally — `k` same-band ops cost
/// ~1 descent + `k` lateral steps instead of `k` full descents. Same-key
/// requests keep arrival order, so per-key semantics match FIFO.
#[derive(Debug, Default)]
pub struct KeySorted {
    next_worker: usize,
}

impl BatchPolicy for KeySorted {
    fn name(&self) -> &'static str {
        "key-sorted"
    }

    fn form(&mut self, mut epoch: Vec<Request>, ctx: &PolicyCtx) -> Vec<Batch> {
        epoch.sort_by_key(|r| (r.op.key(), r.arrival_ns, r.id));
        let mut out = Vec::new();
        chop(epoch, ctx, &mut self.next_worker, &mut out);
        out
    }
}

/// Read/write separation: lock-free reads and lock-taking writes form
/// disjoint batches; reads are dispatched first.
#[derive(Debug, Default)]
pub struct ReadWriteSeparated {
    next_worker: usize,
}

impl BatchPolicy for ReadWriteSeparated {
    fn name(&self) -> &'static str {
        "read-write"
    }

    fn form(&mut self, epoch: Vec<Request>, ctx: &PolicyCtx) -> Vec<Batch> {
        let (reads, writes): (Vec<Request>, Vec<Request>) =
            epoch.into_iter().partition(|r| r.op.is_read_only());
        let mut out = Vec::new();
        chop(reads, ctx, &mut self.next_worker, &mut out);
        chop(writes, ctx, &mut self.next_worker, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfsl_workload::ServeOp;

    fn reqs(ops: &[ServeOp]) -> Vec<Request> {
        ops.iter()
            .enumerate()
            .map(|(i, &op)| Request {
                client: i as u32 % 4,
                id: i as u64,
                arrival_ns: i as u64,
                op,
            })
            .collect()
    }

    fn ctx() -> PolicyCtx {
        PolicyCtx {
            workers: 4,
            max_batch: 32,
            lane_align: 16,
        }
    }

    fn total_ids(batches: &[Batch]) -> Vec<u64> {
        let mut ids: Vec<u64> = batches.iter().flat_map(|b| b.reqs.iter().map(|r| r.id)).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn fifo_chops_lane_aligned_and_loses_nothing() {
        let ops: Vec<ServeOp> = (0..75).map(|k| ServeOp::Get(k + 1)).collect();
        let epoch = reqs(&ops);
        let mut p = Fifo::default();
        let batches = p.form(epoch, &ctx());
        // granule = 32 -> 32 + 32 + 11
        assert_eq!(
            batches.iter().map(|b| b.reqs.len()).collect::<Vec<_>>(),
            vec![32, 32, 11]
        );
        assert_eq!(total_ids(&batches), (0..75).collect::<Vec<u64>>());
        assert!(batches.iter().all(|b| b.read_only));
        // round-robin workers
        assert_eq!(
            batches.iter().map(|b| b.worker).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // alignment pads the tail batch to a lane multiple
        assert_eq!(batches[2].aligned_len(16), 16);
    }

    #[test]
    fn sharded_partitions_by_key_and_pins_workers() {
        let ops: Vec<ServeOp> = (0..100u32).map(|k| ServeOp::Insert(k + 1, 0)).collect();
        let epoch = reqs(&ops);
        let mut p = KeyRangeSharded::new(100);
        let c = ctx();
        let batches = p.form(epoch, &c);
        assert_eq!(total_ids(&batches), (0..100).collect::<Vec<u64>>());
        for b in &batches {
            let w = b.worker;
            assert!(w < 4);
            for r in &b.reqs {
                let k = (r.op.key() - 1) as u64;
                assert_eq!((k * 4 / 100) as usize, w, "key {} on worker {w}", r.op.key());
            }
            assert!(!b.read_only);
        }
    }

    #[test]
    fn read_write_separation_never_mixes() {
        let ops: Vec<ServeOp> = (0..60u32)
            .map(|k| {
                if k % 3 == 0 {
                    ServeOp::Insert(k + 1, 0)
                } else if k % 3 == 1 {
                    ServeOp::Get(k + 1)
                } else {
                    ServeOp::Range(k + 1, k + 10)
                }
            })
            .collect();
        let epoch = reqs(&ops);
        let mut p = ReadWriteSeparated::default();
        let batches = p.form(epoch, &ctx());
        assert_eq!(total_ids(&batches), (0..60).collect::<Vec<u64>>());
        for b in &batches {
            let all_reads = b.reqs.iter().all(|r| r.op.is_read_only());
            let all_writes = b.reqs.iter().all(|r| !r.op.is_read_only());
            assert!(all_reads || all_writes, "mixed batch");
            assert_eq!(b.read_only, all_reads);
        }
        // reads come first in dispatch order
        let first_write = batches.iter().position(|b| !b.read_only).unwrap();
        assert!(batches[..first_write].iter().all(|b| b.read_only));
        assert!(batches[first_write..].iter().all(|b| !b.read_only));
    }

    #[test]
    fn key_sorted_batches_cover_ascending_key_bands() {
        // Arrivals in scrambled key order.
        let ops: Vec<ServeOp> = (0..100u32).map(|i| ServeOp::Get((i * 37) % 100 + 1)).collect();
        let epoch = reqs(&ops);
        let mut p = KeySorted::default();
        let batches = p.form(epoch, &ctx());
        assert_eq!(total_ids(&batches), (0..100).collect::<Vec<u64>>());
        // Keys ascend within each batch and across batch boundaries.
        let keys: Vec<u32> = batches
            .iter()
            .flat_map(|b| b.reqs.iter().map(|r| r.op.key()))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "global key order");
        assert_eq!(p.name(), "key-sorted");
    }

    #[test]
    fn granule_respects_both_caps() {
        let c = PolicyCtx {
            workers: 2,
            max_batch: 10, // below one 16-lane team: granule floors to 16? no — max(1)*16
            lane_align: 16,
        };
        assert_eq!(c.granule(), 16, "granule is at least one full team");
        let c2 = PolicyCtx {
            workers: 2,
            max_batch: 100,
            lane_align: 32,
        };
        assert_eq!(c2.granule(), 96, "rounded down to a lane multiple");
    }
}
