//! Down-pointer repair after splits and merges (paper §4.2.2,
//! Algorithm 4.10).
//!
//! When keys move between chunks in level `i` (split or merge), their index
//! entries in level `i+1` keep pointing at the old chunk. Such stale
//! pointers are always *legal* — they point at-or-left of the key, and
//! lateral steps recover — so this pass is a best-effort performance fix,
//! not a correctness requirement. Each fix locks the level-`i+1` chunk,
//! re-verifies the key still exists there and is still reachable from the
//! destination chunk, and rewrites the entry with a single atomic store.

use gfsl_gpu_mem::probe::CrashPoint;
use gfsl_gpu_mem::MemProbe;

use crate::chunk::{ops, ChunkView, Entry, NIL};
use crate::search::{down_step_lane, tid_for_next_step, NextStep};
use crate::skiplist::GfslHandle;

impl<'a, P: MemProbe> GfslHandle<'a, P> {
    /// Repair the level-`level+1` down-pointers of `moved` (ascending keys
    /// that migrated into `lower_moved_ch` at `level`).
    pub(crate) fn update_down_ptrs(&mut self, level: usize, moved: &[u32], lower_moved_ch: u32) {
        let team = self.list.team;
        let upper = level + 1;
        if upper >= self.list.params.max_levels() {
            return;
        }
        for &mk in moved {
            // -∞ migrates like any key but has index entries only in the
            // sentinels' entry 0; fixing those is covered by the same logic.
            let start = match self.search_down_to_level(upper, mk) {
                Some(c) => c,
                None => return, // level above not in use: nothing points down
            };
            let found = self.search_lateral(mk, start);
            if found.found.is_none() {
                continue; // key was never raised (p_chunk < 1) or already removed
            }
            let (p_upper, uview) = self.find_and_lock_enclosing(found.enclosing, mk);
            if let Some(lane) = uview.lane_of_key(&team, mk) {
                // The key must still be reachable from the destination chunk
                // (it may have moved again); only then is the new pointer an
                // improvement.
                if self.search_lateral(mk, lower_moved_ch).found.is_some() {
                    self.probe.crash_point(CrashPoint::DownPtrInstall);
                    ops::write_entry(
                        &self.list.pool,
                        &mut self.probe,
                        self.list.chunk(p_upper),
                        lane,
                        Entry::new(mk, lower_moved_ch),
                    );
                    self.stats.downptr_fixes += 1;
                }
            }
            self.unlock(p_upper);
        }
    }

    /// `searchDown` variant that stops at `target` level instead of level 0
    /// (`searchDownToLevel`). Returns a chunk in `target` at-or-left of
    /// `k`'s enclosing chunk, or `None` when the structure is shorter than
    /// `target`.
    pub(crate) fn search_down_to_level(&mut self, target: usize, k: u32) -> Option<u32> {
        let team = self.list.team;
        let kernel = self.list.params.kernel;
        'restart: loop {
            let mut height = self.list.height();
            if height < target {
                return None;
            }
            let mut prev: Option<(u32, ChunkView)> = None;
            let mut cur = self.list.head_of(height);
            while height > target {
                let view = self.read_chunk(cur);
                if view.is_zombie(&team) {
                    let next = view.next(&team);
                    if next == NIL {
                        self.stats.search_restarts += 1;
                        continue 'restart;
                    }
                    cur = next;
                    continue;
                }
                match tid_for_next_step(kernel, &team, k, &view) {
                    NextStep::Lateral => {
                        prev = Some((cur, view));
                        cur = view.next(&team);
                    }
                    NextStep::Down(lane) => {
                        height -= 1;
                        prev = None;
                        cur = view.entry(lane).val();
                    }
                    NextStep::Backtrack => match prev.take() {
                        None => {
                            self.stats.search_restarts += 1;
                            continue 'restart;
                        }
                        Some((_, pview)) => {
                            height -= 1;
                            cur = match down_step_lane(kernel, &team, k, &pview) {
                                Some(l) => pview.entry(l).val(),
                                None => {
                                    self.stats.search_restarts += 1;
                                    continue 'restart;
                                }
                            };
                        }
                    },
                }
            }
            return Some(cur);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::chunk::KEY_NEG_INF;
    use crate::params::GfslParams;
    use crate::skiplist::Gfsl;
    use gfsl_simt::TeamSize;

    fn built_list(n: u32) -> Gfsl {
        let list = Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        })
        .unwrap();
        {
            let mut h = list.handle();
            for k in 1..=n {
                h.insert(k, k).unwrap();
            }
        }
        list
    }

    #[test]
    fn search_down_to_level_zero_matches_search_down() {
        let list = built_list(300);
        let mut h = list.handle();
        for k in [1u32, 57, 150, 299] {
            let a = h.search_down(k);
            let b = h.search_down_to_level(0, k).unwrap();
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn search_down_to_level_above_height_is_none() {
        let list = built_list(20);
        let mut h = list.handle();
        let height = {
            // small structure: find a level strictly above the height
            let mut lvl = 1;
            while list.level_chunk_count(lvl) > 0 {
                lvl += 1;
            }
            lvl
        };
        assert_eq!(h.search_down_to_level(height + 1, 5), None);
    }

    #[test]
    fn down_pointers_point_at_or_left_after_many_splits() {
        let list = built_list(3000);
        let mut h = list.handle();
        let team = &list.team;
        // Walk level 1: every entry's down-pointer must reach the key
        // laterally in level 0.
        let mut cur = list.head_of(1);
        let mut checked = 0;
        loop {
            let v = h.read_chunk(cur);
            if !v.is_zombie(team) {
                for (_, e) in v.live_entries(team) {
                    if e.key() == KEY_NEG_INF {
                        continue;
                    }
                    let r = h.search_lateral(e.key(), e.val());
                    assert!(
                        r.found.is_some(),
                        "level-1 key {} unreachable through its down-pointer",
                        e.key()
                    );
                    checked += 1;
                }
            }
            let next = v.next(team);
            if next == crate::chunk::NIL {
                break;
            }
            cur = next;
        }
        assert!(checked > 10, "structure tall enough to be meaningful");
    }
}
