//! # gfsl-cluster — a key-range-sharded multi-GFSL engine
//!
//! One GFSL is bounded by a single chunk pool and a single service loop's
//! worth of teams. This crate scales out instead of up: K independent GFSL
//! shards, each owning a contiguous slice of the user key space, behind an
//! **epoch-versioned shard map**. The moving parts:
//!
//! * **Routing** ([`cluster`]): single-key ops route by range under a
//!   per-shard read *fence* and re-verify the map epoch after fencing; an
//!   op that raced a migration gets a typed [`ClusterError::WrongShard`]
//!   redirect and re-routes. Cross-shard `range` / `count_range` fan out
//!   over every overlapped shard (all fences held — a consistent cut) and
//!   stitch the results.
//! * **Live resharding** ([`reshard`]): per-shard windowed load counters
//!   drive a split/merge policy — a hot shard bulk-exports its top half
//!   into a fresh structure via `Gfsl::from_sorted_pairs`, two cold
//!   neighbours compact into one — installed with a brief map swap and an
//!   epoch bump, losing no acknowledged write.
//! * **Consistent snapshots** ([`snapshot`]): all shard fences write-held
//!   simultaneously give a linearizable cluster-wide cut, exported eagerly
//!   and rebuildable into a single GFSL.
//! * **Per-shard pipelines** ([`pipeline`]): the full `gfsl-serve` stack
//!   (admission → batching → dispatch → supervisor) instantiated once per
//!   shard over partitioned arrival streams.
//!
//! The chaos layer composes: in containment mode every routed op has a
//! `try_*` probed variant, and migrations repair the quarantine before
//! exporting, so splits and merges can race crashing client ops (see the
//! `migration_chaos` integration test).

#![warn(missing_docs)]

pub mod cluster;
pub(crate) mod map;
pub mod pipeline;
pub mod reshard;
pub mod shard;
pub mod snapshot;

pub use cluster::{Cluster, ClusterError};
pub use pipeline::{partition_arrivals, ClusterServeReport};
pub use reshard::{RebalancePolicy, ReshardEvent};
pub use shard::{Shard, ShardStats};
pub use snapshot::{ClusterSnapshot, ShardCut};
