//! Model diagnostics: per-component time breakdown for a few reference
//! configurations. Not a paper artifact — used to calibrate and to explain
//! *why* each regime lands where it does.

use gfsl::{GfslParams, TeamSize};
use gfsl_workload::{format_count, OpMix, WorkloadSpec};
use mc_skiplist::McParams;

use super::ExpConfig;
use crate::model_eval::{evaluate, StructureKind};
use crate::report::{mops, Table};
use crate::runner::{run_gfsl, run_mc, RunConfig};

/// Run the diagnostic breakdown across the configured ranges.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let run_cfg = RunConfig {
        workers: cfg.workers,
        ..Default::default()
    };
    let mut t = Table::new(
        "Diagnostics: model component breakdown ([10,10,80])",
        &[
            "structure",
            "range",
            "MOPS",
            "txns/op",
            "hit%",
            "sectors/op",
            "steps/op",
            "retries/op",
            "mem ns/op",
            "cmp ns/op",
            "cont ns/op",
            "host MOPS",
        ],
    );
    for &range in &cfg.ranges() {
        let spec = WorkloadSpec::mixed(OpMix::C80, range, cfg.mixed_ops(), cfg.seed);
        let g = run_gfsl(
            &spec,
            GfslParams {
                pool_chunks: GfslParams::chunks_for(
                    range as u64 + spec.n_ops as u64,
                    TeamSize::ThirtyTwo,
                ),
                seed: cfg.seed,
                ..Default::default()
            },
            &run_cfg,
        );
        let m = run_mc(
            &spec,
            McParams {
                seed: cfg.seed,
                ..McParams::sized_for(range as u64 + spec.n_ops as u64)
            },
            &run_cfg,
        );
        for (name, kind, metrics) in [
            ("GFSL-32", StructureKind::Gfsl, &g),
            ("M&C", StructureKind::Mc, &m),
        ] {
            let tp = evaluate(kind, metrics);
            let n = metrics.n_ops as f64;
            t.row(vec![
                name.into(),
                format_count(range as u64),
                mops(tp.mops),
                format!("{:.1}", metrics.txns_per_op()),
                format!("{:.0}", metrics.traffic.l2_hit_ratio() * 100.0),
                format!("{:.1}", metrics.traffic.miss_sectors as f64 / n),
                format!("{:.1}", metrics.divergence.warp_steps as f64 / n),
                format!("{:.4}", metrics.retries as f64 / n),
                format!("{:.1}", tp.mem_seconds * 1e9 / n),
                format!("{:.1}", tp.compute_seconds * 1e9 / n),
                format!("{:.1}", tp.contention_seconds * 1e9 / n),
                mops(metrics.host_mops()),
            ]);
        }
    }
    vec![t]
}
