//! Deterministic schedule exploration of the concurrent protocol.
//!
//! Each test runs a small adversarial scenario under hundreds of *seeded,
//! reproducible* interleavings: every memory access of every participant is
//! gated by `gfsl_gpu_mem::Turnstile`, which serializes accesses in an
//! order that is a pure function of the seed. A failure prints the seed, so
//! any discovered race replays exactly.
//!
//! This complements the wall-clock stress tests: those explore schedules
//! the OS happens to produce; these explore schedules chosen adversarially
//! at per-access granularity — including ones a preemptive scheduler on
//! this machine would essentially never produce (e.g. a reader observing
//! every intermediate store of a split's publish-then-clear sequence).

use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_gpu_mem::Turnstile;

fn tiny_list(prefill: impl IntoIterator<Item = u32>) -> Gfsl {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        ..Default::default()
    })
    .unwrap();
    {
        let mut h = list.handle();
        for k in prefill {
            h.insert(k, k * 3).unwrap();
        }
    }
    list
}

/// Two inserters whose keys land in the same (nearly full) chunk: every
/// interleaving of the split protocol must keep both keys and all old keys.
#[test]
fn racing_inserts_into_one_full_chunk() {
    for seed in 0..250u64 {
        // 13 keys: one below the 14-entry array's capacity (with -inf).
        let list = tiny_list((1..=13).map(|i| i * 10));
        let ts = Turnstile::new(2, seed);
        std::thread::scope(|s| {
            for (id, key) in [(0usize, 55u32), (1, 56)] {
                let list = &list;
                let ts = ts.clone();
                s.spawn(move || {
                    let mut h = list.handle_with(ts.probe(id));
                    assert!(h.insert(key, key).unwrap(), "seed {seed} key {key}");
                });
            }
        });
        let keys = list.keys();
        let mut expect: Vec<u32> = (1..=13).map(|i| i * 10).collect();
        expect.extend([55, 56]);
        expect.sort_unstable();
        assert_eq!(keys, expect, "seed {seed}");
        let violations = list.validate();
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

/// An inserter racing a deleter that empties the same chunk into a merge:
/// the untouched keys must survive every interleaving.
#[test]
fn racing_insert_and_merge() {
    for seed in 0..250u64 {
        let list = tiny_list([10, 20, 30, 40, 200, 210, 220, 230, 240, 250, 260, 270, 280]);
        let ts = Turnstile::new(2, seed);
        std::thread::scope(|s| {
            {
                let list = &list;
                let ts = ts.clone();
                s.spawn(move || {
                    let mut h = list.handle_with(ts.probe(0));
                    // Deleting most of the left keys drives the chunk under
                    // the merge threshold.
                    for k in [10u32, 20, 30] {
                        assert!(h.remove(k), "seed {seed} remove {k}");
                    }
                });
            }
            {
                let list = &list;
                let ts = ts.clone();
                s.spawn(move || {
                    let mut h = list.handle_with(ts.probe(1));
                    assert!(h.insert(15, 15).unwrap(), "seed {seed} insert");
                    assert!(h.insert(25, 25).unwrap(), "seed {seed} insert2");
                });
            }
        });
        let keys = list.keys();
        for k in [40u32, 200, 210, 220, 230, 240, 250, 260, 270, 280, 15, 25] {
            assert!(keys.contains(&k), "seed {seed}: lost key {k}; have {keys:?}");
        }
        for k in [10u32, 20, 30] {
            assert!(!keys.contains(&k), "seed {seed}: zombie key {k}");
        }
        list.assert_valid();
    }
}

/// The §4.3 reader guarantee under adversarial schedules: a lock-free
/// reader probing an anchored key must find it at *every* gated point of a
/// concurrent split/merge storm around it.
#[test]
fn reader_sees_anchor_through_split_and_merge_storm() {
    for seed in 0..200u64 {
        let list = tiny_list((1..=12).map(|i| i * 10)); // anchor = 60
        let ts = Turnstile::new(2, seed);
        std::thread::scope(|s| {
            {
                // Writer: inserts fillers to force a split, then deletes
                // them to force a merge.
                let list = &list;
                let ts = ts.clone();
                s.spawn(move || {
                    let mut h = list.handle_with(ts.probe(0));
                    for k in 61..=68u32 {
                        h.insert(k, k).unwrap();
                    }
                    for k in 61..=68u32 {
                        assert!(h.remove(k), "seed {seed} remove {k}");
                    }
                });
            }
            {
                // Reader: the anchor must never flicker.
                let list = &list;
                let ts = ts.clone();
                s.spawn(move || {
                    let mut h = list.handle_with(ts.probe(1));
                    for probe_round in 0..40 {
                        assert_eq!(
                            h.get(60),
                            Some(180),
                            "seed {seed}: anchor lost at round {probe_round}"
                        );
                    }
                });
            }
        });
        list.assert_valid();
    }
}

/// Three-way chaos on one tiny structure: final state must equal the union
/// of per-thread oracles (threads own disjoint keys).
#[test]
fn three_writers_disjoint_oracle() {
    for seed in (0..600u64).step_by(3) {
        let list = tiny_list([]);
        let ts = Turnstile::new(3, seed);
        let finals: Vec<Vec<u32>> = std::thread::scope(|s| {
            (0..3usize)
                .map(|id| {
                    let list = &list;
                    let ts = ts.clone();
                    s.spawn(move || {
                        let mut h = list.handle_with(ts.probe(id));
                        let mut mine = Vec::new();
                        // Insert 8 keys, remove every other one.
                        for i in 0..8u32 {
                            let k = i * 3 + id as u32 + 1;
                            assert!(h.insert(k, k).unwrap());
                            mine.push(k);
                        }
                        for i in (0..8u32).step_by(2) {
                            let k = i * 3 + id as u32 + 1;
                            assert!(h.remove(k));
                            mine.retain(|&x| x != k);
                        }
                        mine
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut expect: Vec<u32> = finals.into_iter().flatten().collect();
        expect.sort_unstable();
        assert_eq!(list.keys(), expect, "seed {seed}");
        list.assert_valid();
    }
}
