//! Crash-surviving key-value store: the durability tier end to end.
//!
//! Builds a [`DurableGfsl`] (DESIGN.md §15), commits writes through the
//! group-commit WAL, checkpoints, writes a tail past the checkpoint, then
//! *drops the engine where it stands* — the moral equivalent of
//! `kill -9` — and reopens from disk. The recovery report shows the
//! checkpoint base plus the LSN-gated tail replay, and a validation walk
//! plus a full content check prove no acknowledged write was lost.
//!
//! ```text
//! cargo run --release --example durable_store [data-dir]
//! ```
//!
//! With a `data-dir` argument the on-disk state is left in place so you
//! can poke at it with the inspection tool:
//!
//! ```text
//! cargo run --release -p gfsl-durable --bin gfsl-walctl -- status <data-dir>
//! ```

use std::collections::BTreeMap;

use gfsl_durable::{destroy, DurabilityContract, DurableConfig, DurableGfsl};

fn main() {
    let (dir, keep) = match std::env::args().nth(1) {
        Some(d) => (std::path::PathBuf::from(d), true),
        None => (
            std::env::temp_dir().join(format!("gfsl_durable_store_{}", std::process::id())),
            false,
        ),
    };
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DurableConfig {
        contract: DurabilityContract::Synced,
        seg_records: 64, // small segments so the demo rotates and prunes
        ..DurableConfig::new(&dir)
    };

    // Phase 1: a store takes acknowledged writes. Every `insert`/`remove`
    // below returns only after its record is fsync'd (apply -> log -> sync
    // -> ack), so everything this model sees is a promise.
    let mut model: BTreeMap<u32, u32> = BTreeMap::new();
    let mut eng = DurableGfsl::create(&cfg).expect("create store");
    for k in 1..=300u32 {
        eng.insert(k, k * 7).expect("insert");
        model.insert(k, k * 7);
    }
    for k in (3..=300u32).step_by(3) {
        eng.remove(k).expect("remove");
        model.remove(&k);
    }
    let manifest = eng.checkpoint().expect("checkpoint");
    println!(
        "checkpointed {} pairs at lsn {} (seq {})",
        manifest.n_pairs,
        eng.checkpoint_lsn(),
        manifest.seq
    );

    // A tail past the checkpoint: these live only in the WAL.
    for k in 301..=380u32 {
        eng.insert(k, k * 7).expect("tail insert");
        model.insert(k, k * 7);
    }
    let stats = eng.wal_stats();
    println!(
        "logged {} records in {} group commits ({} segments pruned behind the checkpoint)",
        stats.records, stats.group_commits, stats.pruned_segments
    );

    // Phase 2: the process "dies". No shutdown, no final checkpoint — the
    // engine is dropped mid-flight and only the files remain.
    drop(eng);
    println!("\n-- crash --\n");

    // Phase 3: restart from disk.
    let (eng, report) = DurableGfsl::open(&cfg).expect("recovery");
    println!(
        "recovered: checkpoint seq {:?} ({} pairs) + {} WAL records replayed -> {} keys",
        report.checkpoint_seq, report.checkpoint_pairs, report.replayed, report.recovered_keys
    );
    assert!(report.checkpoint_fallbacks.is_empty(), "no damage expected");

    let recovered: BTreeMap<u32, u32> = eng.list().export_pairs().collect();
    assert_eq!(recovered, model, "every acknowledged write survived");
    eng.list().assert_valid();
    println!("all {} acknowledged writes survived; structure validates", model.len());

    drop(eng);
    if keep {
        println!("state left in {}", dir.display());
    } else {
        destroy(&dir).expect("cleanup");
    }
}
