//! The team: a lockstep group of lanes executing one GFSL operation.

use crate::ballot::Ballot;
use crate::lane::{LaneId, Lanes, TeamSize};

/// A team of `N` lanes that cooperate to execute one skiplist operation.
///
/// The team is a pure description of the lockstep geometry (how many lanes,
/// which lane is the NEXT thread, which is the LOCK thread) plus the warp
/// intrinsics. It holds no memory of its own; per-step lane registers live in
/// [`Lanes`] values owned by the operation code, mirroring how CUDA kernel
/// locals live in the register file.
#[derive(Debug, Clone, Copy)]
pub struct Team {
    size: TeamSize,
}

impl Team {
    /// Create a team of the given size.
    #[inline]
    pub fn new(size: TeamSize) -> Team {
        Team { size }
    }

    /// Team size descriptor.
    #[inline]
    pub fn size(&self) -> TeamSize {
        self.size
    }

    /// Number of lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.size.lanes()
    }

    /// Number of DATA lanes/entries (`DSIZE = N - 2`).
    #[inline]
    pub fn dsize(&self) -> usize {
        self.size.dsize()
    }

    /// Lane index of the NEXT thread (reads the `max`/`next` entry).
    #[inline]
    pub fn next_lane(&self) -> LaneId {
        self.size.lanes() - 2
    }

    /// Lane index of the LOCK thread (reads the lock entry).
    #[inline]
    pub fn lock_lane(&self) -> LaneId {
        self.size.lanes() - 1
    }

    /// Is `lane` a DATA lane?
    #[inline]
    pub fn is_data_lane(&self, lane: LaneId) -> bool {
        lane < self.dsize()
    }

    /// `__ballot`: every lane evaluates `vote(lane)` in lockstep and the team
    /// receives the combined mask.
    ///
    /// The closure is invoked exactly once per lane, in lane order, matching
    /// the deterministic lockstep evaluation on the GPU. (On real hardware
    /// lanes evaluate simultaneously; because GFSL's vote predicates are pure
    /// functions of already-read registers, order is unobservable.)
    #[inline]
    pub fn ballot(&self, mut vote: impl FnMut(LaneId) -> bool) -> Ballot {
        let mut bits = 0u32;
        for lane in 0..self.lanes() {
            if vote(lane) {
                bits |= 1 << lane;
            }
        }
        Ballot::from_bits(bits)
    }

    /// `__shfl(v, src)`: broadcast lane `src`'s register to the whole team.
    #[inline]
    pub fn shfl<T: Copy>(&self, regs: &Lanes<T>, src: LaneId) -> T {
        regs.get(src)
    }

    /// Run a per-lane computation in lockstep and collect each lane's result
    /// into a fresh register file. This is the "each thread computes on the
    /// value it read" step of the paper's cooperative functions.
    #[inline]
    pub fn each_lane<T: Copy + Default>(&self, f: impl FnMut(LaneId) -> T) -> Lanes<T> {
        Lanes::fill_with(self.size, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_roles_32() {
        let t = Team::new(TeamSize::ThirtyTwo);
        assert_eq!(t.lanes(), 32);
        assert_eq!(t.dsize(), 30);
        assert_eq!(t.next_lane(), 30);
        assert_eq!(t.lock_lane(), 31);
        assert!(t.is_data_lane(0));
        assert!(t.is_data_lane(29));
        assert!(!t.is_data_lane(30));
        assert!(!t.is_data_lane(31));
    }

    #[test]
    fn lane_roles_16() {
        let t = Team::new(TeamSize::Sixteen);
        assert_eq!(t.lanes(), 16);
        assert_eq!(t.dsize(), 14);
        assert_eq!(t.next_lane(), 14);
        assert_eq!(t.lock_lane(), 15);
    }

    #[test]
    fn ballot_collects_votes_in_lane_order() {
        let t = Team::new(TeamSize::Sixteen);
        let b = t.ballot(|lane| lane % 3 == 0);
        for lane in 0..16 {
            assert_eq!(b.is_set(lane), lane % 3 == 0, "lane {lane}");
        }
        // Lanes 0,3,6,9,12,15 vote true; highest is 15.
        assert_eq!(b.highest(), Some(15));
    }

    #[test]
    fn ballot_does_not_set_bits_beyond_team() {
        let t = Team::new(TeamSize::Sixteen);
        let b = t.ballot(|_| true);
        assert_eq!(b.bits(), 0xFFFF);
    }

    #[test]
    fn shfl_broadcasts_source_lane() {
        let t = Team::new(TeamSize::ThirtyTwo);
        let regs = t.each_lane(|lane| (lane * lane) as u64);
        assert_eq!(t.shfl(&regs, 5), 25);
        assert_eq!(t.shfl(&regs, 31), 961);
    }

    #[test]
    fn each_lane_evaluates_every_lane_once() {
        let t = Team::new(TeamSize::Sixteen);
        let mut calls = 0;
        let regs = t.each_lane(|lane| {
            calls += 1;
            lane as u32
        });
        assert_eq!(calls, 16);
        assert_eq!(regs.get(15), 15);
    }
}
