//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of config
//! and report types but never actually serializes them (there is no
//! serde_json or other format crate in the tree). This shim provides the
//! two traits as markers plus derive macros that emit empty impls, so the
//! derives keep compiling in the offline container. If real serialization
//! is ever needed, swap the patch back to crates.io serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker form of `serde::Serialize` (no-op shim).
pub trait Serialize {}

/// Marker form of `serde::Deserialize` (no-op shim).
pub trait Deserialize<'de>: Sized {}
