//! Replay-determinism witness: an FNV-1a fold over the service schedule.
//!
//! Uses the same constants and byte-wise fold as the chaos layer's trace
//! (PR 1), so a full service run — batch formation, dispatch grants, sheds,
//! and (in chaos mode) every granted memory-access turn — collapses to one
//! `u64`. Two runs with the same seed and config produce the same hash or
//! something is nondeterministic.

/// FNV-1a offset basis (the chaos trace's initial value). Re-exported from
/// the shared [`gfsl_rng::fnv`] helper so every trace fold in the workspace
/// uses one definition.
pub const FNV_OFFSET: u64 = gfsl_rng::fnv::OFFSET;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = gfsl_rng::fnv::PRIME;

const EV_EPOCH: u64 = 0xE1;
const EV_BATCH: u64 = 0xB2;
const EV_GRANT: u64 = 0x64;
const EV_SHED: u64 = 0x5D;
const EV_CHAOS: u64 = 0xC4;
const EV_MODE: u64 = 0xD3;

/// Accumulating FNV-1a fold over schedule events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHash {
    h: u64,
}

impl Default for TraceHash {
    fn default() -> TraceHash {
        TraceHash::new()
    }
}

impl TraceHash {
    /// Fresh hash at the offset basis.
    pub fn new() -> TraceHash {
        TraceHash { h: FNV_OFFSET }
    }

    /// Fold one 64-bit value, byte-wise little-endian (the shared
    /// [`gfsl_rng::fnv::fold_u64`] helper).
    #[inline]
    pub fn fold(&mut self, x: u64) {
        self.h = gfsl_rng::fnv::fold_u64(self.h, x);
    }

    /// The current hash value.
    pub fn value(&self) -> u64 {
        self.h
    }

    /// An epoch closed at virtual time `close_ns` with `admitted` requests.
    pub fn epoch(&mut self, seq: u64, close_ns: u64, admitted: usize) {
        self.fold(EV_EPOCH);
        self.fold(seq);
        self.fold(close_ns);
        self.fold(admitted as u64);
    }

    /// A batch was formed: its dispatch sequence number, planned worker,
    /// size, and read-only classification.
    pub fn batch(&mut self, seq: u64, worker: usize, len: usize, read_only: bool) {
        self.fold(EV_BATCH);
        self.fold(seq);
        self.fold(worker as u64);
        self.fold((len as u64) << 1 | read_only as u64);
    }

    /// A batch was granted to the worker pool for execution.
    pub fn grant(&mut self, seq: u64) {
        self.fold(EV_GRANT);
        self.fold(seq);
    }

    /// A request was shed at admission.
    pub fn shed(&mut self, client: u64, depth: u64) {
        self.fold(EV_SHED);
        self.fold(client);
        self.fold(depth);
    }

    /// Fold a chaos wave's own trace hash (memory-access-level schedule).
    pub fn chaos(&mut self, wave_trace: u64) {
        self.fold(EV_CHAOS);
        self.fold(wave_trace);
    }

    /// The supervisor changed the service mode (degradation ladder rung
    /// `severity`, see `supervisor::ServiceMode::severity`) at virtual time
    /// `at_ns`. Mode transitions steer admission, so they are part of the
    /// schedule.
    pub fn mode(&mut self, at_ns: u64, severity: u64) {
        self.fold(EV_MODE);
        self.fold(at_ns);
        self.fold(severity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_event_streams_hash_identically() {
        let mut a = TraceHash::new();
        let mut b = TraceHash::new();
        for t in [&mut a, &mut b] {
            t.epoch(0, 100, 32);
            t.batch(0, 1, 32, false);
            t.grant(0);
            t.shed(4, 128);
            t.chaos(0xDEAD_BEEF);
            t.mode(512, 1);
        }
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn event_order_and_kind_matter() {
        let mut a = TraceHash::new();
        a.batch(0, 1, 32, false);
        a.grant(0);
        let mut b = TraceHash::new();
        b.grant(0);
        b.batch(0, 1, 32, false);
        assert_ne!(a.value(), b.value(), "order is part of the schedule");

        let mut c = TraceHash::new();
        c.batch(0, 1, 32, true);
        let mut d = TraceHash::new();
        d.batch(0, 1, 32, false);
        assert_ne!(c.value(), d.value(), "read-only flag is hashed");
    }

    #[test]
    fn fold_matches_reference_fnv1a() {
        // Folding 0u64 must equal hashing eight zero bytes with FNV-1a.
        let mut t = TraceHash::new();
        t.fold(0);
        let mut h = FNV_OFFSET;
        for byte in [0u64; 8] {
            h = (h ^ byte).wrapping_mul(FNV_PRIME);
        }
        assert_eq!(t.value(), h);
    }
}
