//! A concurrent in-memory session store built on GFSL.
//!
//! The paper's motivation (§1): skiplists are "a basis for key-value
//! stores"; GFSL's 32-bit value field "may be used to indicate the address
//! of a larger object in the main memory as in Zhang et al. [MegaKV]".
//! This example does exactly that: session records live in a flat arena and
//! the skiplist maps session id -> arena slot, with expiry sweeps using the
//! ordered structure (ids encode creation time in their high bits, so a
//! range of ids is a time window).
//!
//! ```text
//! cargo run --release --example session_store
//! ```

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use gfsl::{Gfsl, GfslParams};

/// A session record in the side arena (the "larger object in main memory").
#[derive(Debug, Default)]
struct Session {
    user: AtomicU64,
    logins: AtomicU32,
}

/// Session id layout: high 12 bits = coarse epoch (creation window),
/// low 20 bits = sequence. Ordered ids give time-ordered expiry sweeps.
fn session_id(epoch: u32, seq: u32) -> u32 {
    assert!(epoch < (1 << 12) && seq < (1 << 20));
    (epoch << 20 | seq) + 1 // +1 keeps 0 reserved for -inf
}

struct SessionStore {
    index: Gfsl,
    arena: Vec<Session>,
    next_slot: AtomicU32,
}

impl SessionStore {
    fn new(capacity: usize) -> SessionStore {
        SessionStore {
            index: Gfsl::new(GfslParams::sized_for(capacity as u64)).unwrap(),
            arena: (0..capacity).map(|_| Session::default()).collect(),
            next_slot: AtomicU32::new(0),
        }
    }

    /// Create a session; returns false if the id already exists.
    fn create(&self, h: &mut gfsl::GfslHandle<'_, impl gfsl_gpu_mem::MemProbe>, id: u32, user: u64) -> bool {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
        let rec = &self.arena[slot as usize];
        rec.user.store(user, Ordering::Relaxed);
        rec.logins.store(1, Ordering::Relaxed);
        // Publish: the index entry makes the slot reachable.
        h.insert(id, slot).expect("arena sized with the index")
    }

    fn lookup(&self, h: &mut gfsl::GfslHandle<'_, impl gfsl_gpu_mem::MemProbe>, id: u32) -> Option<u64> {
        let slot = h.get(id)?;
        Some(self.arena[slot as usize].user.load(Ordering::Relaxed))
    }

    fn touch(&self, h: &mut gfsl::GfslHandle<'_, impl gfsl_gpu_mem::MemProbe>, id: u32) -> bool {
        match h.get(id) {
            Some(slot) => {
                self.arena[slot as usize].logins.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    fn end(&self, h: &mut gfsl::GfslHandle<'_, impl gfsl_gpu_mem::MemProbe>, id: u32) -> bool {
        h.remove(id)
    }

    /// Expire every session created in `epoch` (a contiguous id range —
    /// this is where the *ordered* index pays off vs a hash table).
    fn expire_epoch(&self, h: &mut gfsl::GfslHandle<'_, impl gfsl_gpu_mem::MemProbe>, epoch: u32) -> usize {
        let lo = session_id(epoch, 0);
        let hi = session_id(epoch, (1 << 20) - 1);
        // Ordered sweep over the quiescent snapshot; delete through the
        // handle so the structure stays consistent.
        let victims: Vec<u32> = self
            .index
            .keys()
            .into_iter()
            .filter(|&k| (lo..=hi).contains(&k))
            .collect();
        let mut n = 0;
        for id in victims {
            if h.remove(id) {
                n += 1;
            }
        }
        n
    }
}

fn main() {
    let store = SessionStore::new(200_000);

    // Four frontend threads create/touch/end sessions concurrently.
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let store = &store;
            s.spawn(move || {
                let mut h = store.index.handle();
                for i in 0..30_000u32 {
                    let seq = i * 4 + t;
                    let epoch = seq % 3;
                    let id = session_id(epoch, seq);
                    assert!(store.create(&mut h, id, (t as u64) << 32 | i as u64));
                    assert!(store.touch(&mut h, id));
                    if i % 5 == 0 {
                        assert!(store.end(&mut h, id));
                    }
                }
            });
        }
    });

    let live_before = store.index.len();
    println!("live sessions after churn : {live_before}");

    // Nightly job: expire epoch 1.
    let mut h = store.index.handle();
    let expired = store.expire_epoch(&mut h, 1);
    println!("expired from epoch 1      : {expired}");
    let live_after = store.index.len();
    assert_eq!(live_after, live_before - expired);
    println!("live sessions after sweep : {live_after}");

    // Lookups still resolve through the arena.
    let probe_id = store.index.keys()[0];
    let user = store.lookup(&mut h, probe_id).expect("live session resolves");
    println!("sample lookup {probe_id} -> user {user:#x}");

    store.index.assert_valid();
    println!("index invariants hold");
}
