//! Cache-line geometry of the simulated device memory.

/// Bytes per word. All GFSL/M&C entries are 8-byte key-value words.
pub const WORD_BYTES: usize = 8;

/// Bytes per cache line / memory transaction on Maxwell-class GPUs.
/// A 128-byte line holds one GFSL-16 chunk exactly; a GFSL-32 chunk spans
/// two lines (hence the paper's "read in two transactions").
pub const LINE_BYTES: usize = 128;

/// Words per cache line.
pub const LINE_WORDS: usize = LINE_BYTES / WORD_BYTES;

/// Address of a 64-bit word in the pool (a 32-bit pool index, as in the
/// paper: "For chunks of size 128B this index size can cover addresses in
/// 512GB of memory").
pub type WordAddr = u32;

/// Address of a 128-byte cache line.
pub type LineAddr = u32;

/// The cache line containing a word.
#[inline]
pub const fn line_of(addr: WordAddr) -> LineAddr {
    addr / LINE_WORDS as u32
}

/// First word of a cache line.
#[inline]
pub const fn line_base(line: LineAddr) -> WordAddr {
    line * LINE_WORDS as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(LINE_WORDS, 16);
        assert_eq!(WORD_BYTES * LINE_WORDS, LINE_BYTES);
    }

    #[test]
    fn line_of_maps_words_to_lines() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(15), 0);
        assert_eq!(line_of(16), 1);
        assert_eq!(line_of(31), 1);
        assert_eq!(line_of(32), 2);
    }

    #[test]
    fn line_base_is_inverse_on_boundaries() {
        for line in [0u32, 1, 7, 1000] {
            assert_eq!(line_of(line_base(line)), line);
        }
    }

    #[test]
    fn a_16_entry_chunk_fits_one_line_a_32_entry_chunk_two() {
        // Chunk base addresses are chunk-size aligned (pool allocates in
        // whole chunks from offset 0), so:
        let lines_16: std::collections::HashSet<_> = (0..16u32).map(line_of).collect();
        assert_eq!(lines_16.len(), 1);
        let lines_32: std::collections::HashSet<_> = (32..64u32).map(line_of).collect();
        assert_eq!(lines_32.len(), 2);
    }
}
