//! Batched operation entry points.
//!
//! The paper's structure only pays off when operations arrive in warp-sized
//! cooperative batches — the shape a kernel launch (or a continuous-batching
//! serving loop, see `gfsl-serve`) produces. [`GfslHandle::execute_batch`]
//! is that entry point: one team drains an ordered slice of operations,
//! appending one typed reply per operation. Inserts that hit a structural
//! error (pool exhaustion, reserved key) record the error in their reply
//! slot and the batch keeps going, so a single bad request cannot abort the
//! dispatch of its batchmates.

use gfsl_gpu_mem::MemProbe;

use crate::skiplist::{Error, GfslHandle};

/// One operation inside a dispatch batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Point lookup: reply [`BatchReply::Got`].
    Get(u32),
    /// Insert `(key, value)`: reply [`BatchReply::Inserted`].
    Insert(u32, u32),
    /// Remove a key: reply [`BatchReply::Removed`].
    Remove(u32),
    /// Count keys in `[lo, hi]`: reply [`BatchReply::Counted`].
    CountRange(u32, u32),
    /// Peek the smallest present entry: reply [`BatchReply::MinIs`].
    MinEntry,
    /// Extract-min (priority-queue pop): reply [`BatchReply::Popped`].
    PopMin,
}

impl BatchOp {
    /// True for operations that never take a chunk lock (`Get` /
    /// `CountRange` / `MinEntry` ride the paper's lock-free Contains fast
    /// path).
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            BatchOp::Get(_) | BatchOp::CountRange(_, _) | BatchOp::MinEntry
        )
    }

    /// The key the operation is routed by (`lo` for a range count) — what
    /// hinted batch execution clusters on. Min ops address the head of the
    /// key space, so they report the smallest user key.
    pub fn key(&self) -> u32 {
        match *self {
            BatchOp::Get(k) | BatchOp::Insert(k, _) | BatchOp::Remove(k) => k,
            BatchOp::CountRange(lo, _) => lo,
            BatchOp::MinEntry | BatchOp::PopMin => 1,
        }
    }
}

/// Typed reply for one [`BatchOp`], index-aligned with the request slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchReply {
    /// Value found (or `None`) for a `Get`.
    Got(Option<u32>),
    /// Whether an `Insert` added a new key (`false`: key already present).
    Inserted(bool),
    /// Whether a `Remove` found and removed the key.
    Removed(bool),
    /// Number of present keys in a `CountRange` window.
    Counted(u32),
    /// The smallest present entry (or `None`) for a `MinEntry` peek.
    MinIs(Option<(u32, u32)>),
    /// The entry a `PopMin` removed, or `None` on an empty structure.
    Popped(Option<(u32, u32)>),
    /// The operation failed structurally (reserved key, pool exhausted).
    Failed(Error),
}

impl<P: MemProbe> GfslHandle<'_, P> {
    /// Execute `ops` in order, appending one [`BatchReply`] per op to `out`.
    ///
    /// Returns the number of replies appended (always `ops.len()`).
    pub fn execute_batch(&mut self, ops: &[BatchOp], out: &mut Vec<BatchReply>) -> usize {
        out.reserve(ops.len());
        for op in ops {
            let reply = self.dispatch_one(*op);
            out.push(reply);
        }
        ops.len()
    }

    /// Execute `ops` in ascending key order (replies stay index-aligned
    /// with the request slice), so consecutive operations land in the same
    /// or adjacent bottom-level chunks and the traversal hint cache
    /// ([`crate::GfslParams::hints`]) turns most descents into one or two
    /// lateral steps.
    ///
    /// Operations on the *same* key keep their original relative order (the
    /// sort is by `(key, index)`), so per-key reply semantics match
    /// [`execute_batch`](Self::execute_batch); operations on different keys
    /// are mutually unordered in either entry point, exactly as they would
    /// be across concurrently dispatched batches.
    pub fn execute_batch_hinted(&mut self, ops: &[BatchOp], out: &mut Vec<BatchReply>) -> usize {
        // The `(key, index)` sort runs on packed `(key << 32) | index` words:
        // one u64 compare per branch instead of a tuple compare that chases
        // `ops[i]`, with the index in the low half keeping same-key ops in
        // their original relative order. The scratch buffer lives on the
        // handle so steady-state batch dispatch allocates nothing.
        let mut order = std::mem::take(&mut self.batch_order);
        order.clear();
        order.extend(
            ops.iter()
                .enumerate()
                .map(|(i, op)| ((op.key() as u64) << 32) | i as u64),
        );
        order.sort_unstable();
        let base = out.len();
        out.resize(base + ops.len(), BatchReply::Got(None));
        for &packed in &order {
            let i = (packed & u32::MAX as u64) as usize;
            out[base + i] = self.dispatch_one(ops[i]);
        }
        self.batch_order = order;
        ops.len()
    }

    fn dispatch_one(&mut self, op: BatchOp) -> BatchReply {
        // Every op runs through its contained (`try_*`) entry point: with
        // [`crate::GfslParams::contain`] off these are plain zero-overhead
        // aliases, with it on a mid-batch crash or budget overrun surfaces
        // as `Failed(Error::Aborted)` in that op's reply slot while its
        // batchmates keep dispatching.
        match op {
            BatchOp::Get(k) => match self.try_get(k) {
                Ok(v) => BatchReply::Got(v),
                Err(e) => BatchReply::Failed(e),
            },
            BatchOp::Insert(k, v) => match self.try_insert(k, v) {
                Ok(added) => BatchReply::Inserted(added),
                Err(e) => BatchReply::Failed(e),
            },
            BatchOp::Remove(k) => match self.try_remove(k) {
                Ok(removed) => BatchReply::Removed(removed),
                Err(e) => BatchReply::Failed(e),
            },
            BatchOp::CountRange(lo, hi) => match self.try_count_range(lo, hi) {
                Ok(n) => BatchReply::Counted(n as u32),
                Err(e) => BatchReply::Failed(e),
            },
            BatchOp::MinEntry => match self.try_min_entry() {
                Ok(kv) => BatchReply::MinIs(kv),
                Err(e) => BatchReply::Failed(e),
            },
            BatchOp::PopMin => match self.try_pop_min() {
                Ok(kv) => BatchReply::Popped(kv),
                Err(e) => BatchReply::Failed(e),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GfslParams;
    use crate::skiplist::Gfsl;
    use gfsl_simt::TeamSize;

    fn params16() -> GfslParams {
        GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        }
    }

    #[test]
    fn batch_replies_are_index_aligned() {
        let list = Gfsl::new(params16()).unwrap();
        let mut h = list.handle();
        let ops = [
            BatchOp::Insert(10, 100),
            BatchOp::Insert(10, 100),
            BatchOp::Get(10),
            BatchOp::Get(11),
            BatchOp::Remove(10),
            BatchOp::Remove(10),
            BatchOp::Insert(0, 1), // reserved key: fails in place
            BatchOp::Get(10),
        ];
        let mut out = Vec::new();
        assert_eq!(h.execute_batch(&ops, &mut out), ops.len());
        assert_eq!(
            out,
            vec![
                BatchReply::Inserted(true),
                BatchReply::Inserted(false),
                BatchReply::Got(Some(100)),
                BatchReply::Got(None),
                BatchReply::Removed(true),
                BatchReply::Removed(false),
                BatchReply::Failed(Error::InvalidKey(0)),
                BatchReply::Got(None),
            ]
        );
        list.assert_valid();
    }

    #[test]
    fn batch_range_counts_present_keys() {
        let list = Gfsl::prefilled(params16(), (1..=100u32).map(|k| k * 2)).unwrap();
        let mut h = list.handle();
        let mut out = Vec::new();
        h.execute_batch(
            &[BatchOp::CountRange(2, 200), BatchOp::CountRange(3, 8)],
            &mut out,
        );
        // Even keys only: [3, 8] holds 4, 6, 8.
        assert_eq!(out, vec![BatchReply::Counted(100), BatchReply::Counted(3)]);
    }

    #[test]
    fn hinted_batch_matches_plain_and_reuses_hints() {
        let params = GfslParams {
            team_size: TeamSize::Sixteen,
            hints: true,
            ..Default::default()
        };
        let list = Gfsl::prefilled(params, (1..=500u32).map(|k| k * 2)).unwrap();
        let mut h = list.handle();
        // Scrambled lookups: hinted execution sorts them, so consecutive
        // probes land in the same or neighbouring bottom chunks.
        let ops: Vec<BatchOp> = (0..400u32).map(|i| BatchOp::Get((i * 37) % 1100 + 1)).collect();
        let mut hinted = Vec::new();
        h.execute_batch_hinted(&ops, &mut hinted);
        assert!(h.stats().hint_hits > 0, "key-sorted batch must reuse the hint");
        let mut plain = Vec::new();
        h.execute_batch(&ops, &mut plain);
        assert_eq!(hinted, plain, "replies independent of execution order");
        list.assert_valid();
    }

    #[test]
    fn hinted_batch_keeps_same_key_order() {
        let list = Gfsl::new(params16()).unwrap();
        let mut h = list.handle();
        let ops = [
            BatchOp::Insert(10, 1),
            BatchOp::Remove(10),
            BatchOp::Insert(10, 2),
            BatchOp::Get(10),
        ];
        let mut out = Vec::new();
        h.execute_batch_hinted(&ops, &mut out);
        assert_eq!(
            out,
            vec![
                BatchReply::Inserted(true),
                BatchReply::Removed(true),
                BatchReply::Inserted(true),
                BatchReply::Got(Some(2)),
            ]
        );
    }

    #[test]
    fn read_only_classification() {
        assert!(BatchOp::Get(1).is_read_only());
        assert!(BatchOp::CountRange(1, 2).is_read_only());
        assert!(BatchOp::MinEntry.is_read_only());
        assert!(!BatchOp::Insert(1, 1).is_read_only());
        assert!(!BatchOp::Remove(1).is_read_only());
        assert!(!BatchOp::PopMin.is_read_only());
    }

    #[test]
    fn batched_min_ops_drain_in_priority_order() {
        let list = Gfsl::prefilled(params16(), [30u32, 10, 20]).unwrap();
        let mut h = list.handle();
        let ops = [
            BatchOp::MinEntry,
            BatchOp::PopMin,
            BatchOp::PopMin,
            BatchOp::PopMin,
            BatchOp::PopMin,
            BatchOp::MinEntry,
        ];
        let mut out = Vec::new();
        h.execute_batch(&ops, &mut out);
        assert_eq!(
            out,
            vec![
                BatchReply::MinIs(Some((10, 10))),
                BatchReply::Popped(Some((10, 10))),
                BatchReply::Popped(Some((20, 20))),
                BatchReply::Popped(Some((30, 30))),
                BatchReply::Popped(None),
                BatchReply::MinIs(None),
            ]
        );
        list.assert_valid();
    }
}
