//! `edgebench` — socket-level load generator for the GFSL edge server.
//!
//! Self-hosts an engine + server on loopback (or targets `--addr`), drives
//! it with the configured population, and prints a JSON summary:
//!
//! ```text
//! edgebench [--engine single|cluster] [--shards N] [--workers N]
//!           [--conns N] [--clients N] [--think-us N] [--open-rate R]
//!           [--duration-ms N] [--mix c80|range10|pq] [--span N]
//!           [--theta F] [--seed N] [--prefill N] [--addr HOST:PORT]
//!           [--mvcc] [--snap-scans]
//! ```
//!
//! `--open-rate R` switches to open-loop at `R` requests/s per connection;
//! the default (0) runs the closed-loop population. `--mvcc` builds the
//! self-hosted engine with the multiversion knob on; `--snap-scans` sends
//! every drawn range as a version-pinned `SnapRange` (the scan-tenant
//! mix — pair with `--mix range10`).

use std::net::SocketAddr;
use std::sync::Arc;

use gfsl::{Gfsl, GfslParams};
use gfsl_cluster::Cluster;
use gfsl_edge::loadgen::{self, LoadConfig};
use gfsl_edge::{EdgeConfig, EdgeEngine, EdgeServer};
use gfsl_workload::ServeMix;
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    mode: String,
    conns: usize,
    duration_ms: u64,
    ops_ok: u64,
    failures: u64,
    snaps: u64,
    sheds: u64,
    retries: u64,
    local_drops: u64,
    conn_errors: u64,
    goodput_ops_s: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    server_epochs: u64,
    server_snaps: u64,
    server_sheds: u64,
    server_proto_errors: u64,
    server_timeouts: u64,
    ryw_violations: u64,
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T
where
    T::Err: std::fmt::Debug,
{
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|e| panic!("bad {flag}: {e:?}")))
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("see crate docs (src/bin/edgebench.rs) for flags");
        return;
    }

    let engine_kind: String = parse(&args, "--engine", "single".to_string());
    let shards: usize = parse(&args, "--shards", 4);
    let workers: usize = parse(&args, "--workers", 2);
    let prefill: u32 = parse(&args, "--prefill", 0);
    let mix_name: String = parse(&args, "--mix", "c80".to_string());
    let mix = match mix_name.as_str() {
        "c80" => ServeMix::C80,
        "range10" => ServeMix::RANGE10,
        "pq" => ServeMix::PQ,
        other => panic!("unknown mix {other:?} (want c80|range10|pq)"),
    };
    let mvcc = args.iter().any(|a| a == "--mvcc");
    let snap_scans = args.iter().any(|a| a == "--snap-scans");
    let cfg = LoadConfig {
        conns: parse(&args, "--conns", 4),
        clients_per_conn: parse(&args, "--clients", 8),
        think_us: parse(&args, "--think-us", 100),
        open_rate_per_conn: parse(&args, "--open-rate", 0.0),
        max_outstanding: parse(&args, "--outstanding", 1024),
        duration_ms: parse(&args, "--duration-ms", 1_000),
        mix,
        key_span: parse(&args, "--span", 10_000),
        zipf_theta: parse(&args, "--theta", 0.6),
        seed: parse(&args, "--seed", 42),
        snap_scans,
    };
    let params = GfslParams { mvcc, ..GfslParams::default() };

    // Target an external server, or self-host one on loopback.
    let external: Option<SocketAddr> = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("bad --addr"));

    let server = if external.is_none() {
        let engine = match engine_kind.as_str() {
            "single" => {
                let list = if prefill > 0 {
                    Arc::new(Gfsl::prefilled(params, 1..=prefill).expect("prefill"))
                } else {
                    Arc::new(Gfsl::new(params).expect("gfsl"))
                };
                EdgeEngine::Single(list)
            }
            "cluster" => {
                let c = Arc::new(Cluster::new(params, shards).expect("cluster"));
                for k in 1..=prefill {
                    c.insert(k, k).expect("prefill insert");
                }
                EdgeEngine::Cluster(c)
            }
            other => panic!("unknown engine {other:?} (want single|cluster)"),
        };
        let ecfg = EdgeConfig {
            workers,
            ..EdgeConfig::default()
        };
        Some(EdgeServer::start(engine, ecfg).expect("start edge server"))
    } else {
        None
    };
    let addr = external.unwrap_or_else(|| server.as_ref().unwrap().addr());

    let report = loadgen::run(addr, &cfg);

    let stats = server.map(EdgeServer::shutdown).unwrap_or_default();
    let summary = Summary {
        mode: if cfg.open_rate_per_conn > 0.0 { "open" } else { "closed" }.to_string(),
        conns: cfg.conns,
        duration_ms: report.wall_ms,
        ops_ok: report.ops_ok,
        failures: report.failures,
        snaps: report.snaps,
        sheds: report.sheds,
        retries: report.retries,
        local_drops: report.local_drops,
        conn_errors: report.conn_errors,
        goodput_ops_s: report.goodput_ops_s,
        p50_us: report.histo.quantile_ns(0.50) as f64 / 1e3,
        p99_us: report.histo.quantile_ns(0.99) as f64 / 1e3,
        p999_us: report.histo.quantile_ns(0.999) as f64 / 1e3,
        server_epochs: stats.epochs,
        server_snaps: stats.snaps,
        server_sheds: stats.sheds,
        server_proto_errors: stats.proto_errors,
        server_timeouts: stats.timeouts,
        ryw_violations: stats.ryw_violations,
    };
    println!("{}", serde::to_json_string(&summary));
}
