//! Cluster scale-out: aggregate throughput vs shard count × read mix, and
//! the hot-shard rebalance scenario. Not a paper artifact — this measures
//! the `gfsl-cluster` subsystem layered on top of the paper's structure.
//!
//! **Throughput table.** One full serve pipeline per shard over a
//! partitioned open-loop arrival stream. Scaling is reported in *virtual*
//! service time (`ExecMode::Modeled`): each pipeline's epoch clock advances
//! by `ns_per_op · max-ops-per-worker`, so the numbers are deterministic
//! and measure the architecture (K independent batching loops) rather than
//! how many host cores CI happens to have. The headline check: ≥ 2.5×
//! aggregate throughput going 1 → 4 shards on the uniform [10,10,80] mix.
//!
//! **Rebalance table.** A zipf stream whose hot head jumps to a different
//! shard mid-run ([`HotShard`]); after every window of routed ops one
//! [`RebalancePolicy`] step may split the hottest shard or merge cold
//! neighbours. Stability = the first post-shift window whose rebalance
//! step proposes nothing; time-to-stable must stay bounded (it is asserted
//! `<` the post-shift window budget).

use gfsl::{GfslParams, TeamSize};
use gfsl_cluster::{Cluster, RebalancePolicy, ReshardEvent};
use gfsl_serve::{ExecMode, ServeConfig, ServiceMetrics};
use gfsl_workload::{HotShard, OpenLoop, ServeMix, ServeOp};

use super::ExpConfig;
use crate::report::{mops, ratio, Table};

/// Modeled per-op service cost, ns (same figure the serve replay uses).
const NS_PER_OP: u64 = 300;

fn cluster_params(range: u32, shards: usize, headroom: u64, seed: u64) -> GfslParams {
    GfslParams {
        team_size: TeamSize::ThirtyTwo,
        pool_chunks: GfslParams::chunks_for(
            range as u64 / shards as u64 + headroom,
            TeamSize::ThirtyTwo,
        ),
        seed,
        ..Default::default()
    }
}

fn prefilled_cluster(range: u32, shards: usize, headroom: u64, seed: u64) -> Cluster {
    let params = cluster_params(range, shards, headroom, seed);
    Cluster::prefilled(
        params,
        shards,
        range,
        (1..range).filter(|k| k % 2 == 0).map(|k| (k, k)),
    )
    .expect("cluster prefill")
}

/// Throughput vs shard count for one mix; returns the per-shard-count
/// virtual Mop/s so the caller can check the scaling headline.
fn throughput_rows(
    cfg: &ExpConfig,
    range: u32,
    n_ops: usize,
    shard_counts: &[usize],
    mix_name: &str,
    mix: ServeMix,
    t: &mut Table,
) -> Vec<f64> {
    // Offered rate above every shard's modeled capacity (workers /
    // ns_per_op per pipeline) even at the widest sharding, so every
    // configuration is saturated, admission control sheds the excess, and
    // the virtual throughput measures service capacity rather than the
    // arrival clock.
    let rate_mops = 150.0;
    let arrivals: Vec<_> =
        OpenLoop::new(mix, range, 256, n_ops as u64, rate_mops, cfg.seed ^ 0xC1).collect();
    let mut out = Vec::new();
    for &k in shard_counts {
        let cluster = prefilled_cluster(range, k, n_ops as u64, cfg.seed);
        let scfg = ServeConfig {
            exec: ExecMode::Modeled { ns_per_op: NS_PER_OP },
            seed: cfg.seed,
            ..ServeConfig::new(cfg.workers)
        };
        let r = cluster.serve_shards(&scfg, &arrivals);
        if k == *shard_counts.last().unwrap() && mix_name == "10/10/80" {
            // Structured sidecar: the per-shard service metrics and shard
            // stats of the widest uniform-mix configuration.
            let metrics: Vec<ServiceMetrics> =
                r.shards.iter().map(|s| s.metrics.clone()).collect();
            t.attach("shard_metrics", &metrics);
            t.attach("shard_stats", &cluster.stats());
        }
        let sheds: u64 = r.shards.iter().map(|s| s.metrics.sheds).sum();
        let base = *out.first().unwrap_or(&r.vmops);
        t.row(vec![
            k.to_string(),
            mix_name.into(),
            mops(r.vmops),
            ratio(r.vmops / base),
            mops(r.mops),
            r.total_ops.to_string(),
            sheds.to_string(),
            format!("{:.3}", r.vwall_s * 1e3),
        ]);
        out.push(r.vmops);
    }
    out
}

/// Run the cluster experiment: the scale-out table and the hot-shard
/// rebalance trace.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let range = cfg.anchor_range();
    let n_ops = cfg
        .ops_override
        .unwrap_or(if cfg.quick { 120_000 } else { 500_000 });
    let shard_counts: &[usize] = if cfg.quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let mut t = Table::new(
        "Cluster: virtual throughput vs shard count (modeled pipelines)",
        &[
            "shards", "mix", "MOPS", "vs 1 shard", "host MOPS", "ops", "sheds", "vwall ms",
        ],
    );
    let uniform = throughput_rows(cfg, range, n_ops, shard_counts, "10/10/80", ServeMix::C80, &mut t);
    throughput_rows(cfg, range, n_ops, shard_counts, "range10", ServeMix::RANGE10, &mut t);
    if shard_counts.contains(&4) {
        let x4 = uniform[shard_counts.iter().position(|&k| k == 4).unwrap()] / uniform[0];
        assert!(
            x4 >= 2.5,
            "1 -> 4 shards must scale the uniform mix at least 2.5x, got {x4:.2}x"
        );
    }

    // Hot-shard rebalance: 4 equal shards, zipf head on shard 0, jumping to
    // shard 2 at mid-run.
    let windows = 16usize;
    let window_ops = (n_ops / windows).max(1_000);
    let shift_window = windows / 2;
    // Theta 0.6: the head is hot enough to overload one shard (its quarter
    // of the key space draws ~57% of traffic) but diffuse enough that
    // key-median splits converge — at 0.9 the head's mass exceeds the hot
    // threshold at every shard count and the policy could never settle.
    // Zipf ranks walk *upward* from the center, so the centers sit at the
    // starts of shard 0 and shard 2: the whole head lands in one shard.
    let hs = HotShard::new(
        range,
        0.6,
        1,
        range / 2 + 1,
        (shift_window * window_ops) as u64,
    );
    let stream = hs.stream(ServeMix::C80, cfg.seed ^ 0x407, windows * window_ops);
    let cluster = prefilled_cluster(range, 4, stream.len() as u64, cfg.seed);
    let policy = RebalancePolicy {
        min_window_ops: window_ops as u64 / 2,
        max_shards: 8,
        min_shards: 2,
        ..Default::default()
    };

    let mut d = Table::new(
        "Cluster: hot-shard rebalance (zipf shift at window 8, policy step per window)",
        &["window", "phase", "MOPS", "shards", "event"],
    );
    let mut time_to_stable: Option<usize> = None;
    for (w, ops) in stream.chunks(window_ops).enumerate() {
        let t0 = std::time::Instant::now();
        for op in ops {
            match *op {
                ServeOp::Get(k) => {
                    cluster.get(k).expect("routed get");
                }
                ServeOp::Insert(k, v) => {
                    cluster.insert(k, v).expect("routed insert");
                }
                ServeOp::Delete(k) => {
                    cluster.remove(k).expect("routed delete");
                }
                ServeOp::Range(lo, hi) => {
                    cluster.count_range(lo, hi).expect("routed range");
                }
                ServeOp::MinEntry => {
                    cluster.min_entry().expect("routed min-entry");
                }
                ServeOp::PopMin => {
                    cluster.pop_min().expect("routed pop-min");
                }
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        let ev = cluster.rebalance_step(&policy).expect("rebalance step");
        if w >= shift_window && ev.is_none() && time_to_stable.is_none() {
            time_to_stable = Some(w - shift_window);
        }
        d.row(vec![
            w.to_string(),
            if w < shift_window { "pre" } else { "post" }.into(),
            mops(ops.len() as f64 / wall / 1e6),
            cluster.shard_count().to_string(),
            match ev {
                Some(ReshardEvent::Split { shard, at, .. }) => format!("split {shard} @ {at}"),
                Some(ReshardEvent::Merge { left, right, .. }) => format!("merge {left}+{right}"),
                None => "-".into(),
            },
        ]);
    }
    let stable = time_to_stable.unwrap_or(windows - shift_window);
    assert!(
        stable < windows - shift_window,
        "rebalance must restabilize within the post-shift budget"
    );
    d.attach("shift_window", &(shift_window as u64));
    d.attach("time_to_stable_windows", &(stable as u64));
    d.attach("final_shard_stats", &cluster.stats());
    cluster.assert_valid();

    vec![t, d]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_experiment_runs_tiny() {
        let cfg = ExpConfig::tiny(2);
        let tables = run(&cfg);
        assert_eq!(tables.len(), 2);
        let scale = &tables[0];
        assert_eq!(scale.rows.len(), 6, "three shard counts x two mixes");
        assert!(
            scale.attachments.iter().any(|(k, _)| k == "shard_metrics"),
            "per-shard service metrics ride along"
        );
        let reb = &tables[1];
        assert_eq!(reb.rows.len(), 16);
        assert!(reb
            .attachments
            .iter()
            .any(|(k, _)| k == "time_to_stable_windows"));
    }
}
