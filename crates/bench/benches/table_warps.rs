//! Tables 5.1/5.2 — the warps-per-block sweep. Criterion measures the
//! occupancy calculator and full model-evaluation pipeline (they run inside
//! every experiment cell), plus one small end-to-end measured cell.

use criterion::{criterion_group, criterion_main, Criterion};
use gfsl::GfslParams;
use gfsl_gpu_model::{occupancy, CostModel, GpuArch, KernelProfile, LaunchConfig};
use gfsl_harness::runner::{run_gfsl, RunConfig};
use gfsl_harness::{evaluate_with_launch, StructureKind};
use gfsl_workload::{OpMix, WorkloadSpec};

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_warps");
    let arch = GpuArch::gtx970();
    let cm = CostModel::calibrated();

    g.bench_function("occupancy_sweep_gfsl", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for warps in [8u32, 16, 24, 32] {
                let o = occupancy::occupancy(
                    &arch,
                    &KernelProfile::gfsl(),
                    &LaunchConfig { warps_per_block: warps },
                );
                acc += o.achieved + o.spill_share;
            }
            acc
        })
    });

    g.bench_function("occupancy_sweep_mc", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for warps in [8u32, 16, 24, 32] {
                let o = occupancy::occupancy(
                    &arch,
                    &KernelProfile::mc(),
                    &LaunchConfig { warps_per_block: warps },
                );
                acc += o.theoretical + o.spill_share;
            }
            acc
        })
    });

    // One measured cell: collect metrics once, then bench the model
    // evaluation across configurations (the per-row work of the tables).
    let spec = WorkloadSpec::mixed(OpMix::C80, 30_000, 10_000, 7);
    let metrics = run_gfsl(
        &spec,
        GfslParams::sized_for(60_000),
        &RunConfig { workers: 2, warp_lanes: 32 },
    );
    g.bench_function("model_eval_four_configs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for warps in [8u32, 16, 24, 32] {
                acc += evaluate_with_launch(
                    StructureKind::Gfsl,
                    &metrics,
                    &LaunchConfig { warps_per_block: warps },
                )
                .mops;
            }
            acc
        })
    });

    let _ = cm; // constants used implicitly by evaluate_with_launch
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
