//! `Insert` (paper §4.2.2): bottom-up insertion under the bottom-level lock,
//! with per-level lock/insert/unlock above and probabilistic key raising
//! after splits.

use gfsl_gpu_mem::MemProbe;

use crate::chunk::{is_user_key, ops, ChunkView, Entry};
use crate::skiplist::{Commit, Error, GfslHandle};

/// What happened when inserting into one level.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LevelOutcome {
    /// The key was already present; the enclosing chunk is returned locked.
    AlreadyPresent { locked: u32 },
    /// The key went in; the chunk now containing it is returned locked.
    Inserted {
        locked: u32,
        /// Should a key be raised to the next level (a split happened and
        /// the `p_chunk` coin came up heads)?
        raise: bool,
        /// The key to raise (`max(k, min-of-new-chunk)` at level 0, `k`
        /// above — paper §4.2.2, `keyForNextLevel`).
        raised_key: u32,
    },
}

impl<'a, P: MemProbe> GfslHandle<'a, P> {
    /// Insert `(k, v)`. Returns `Ok(true)` if the key was added, `Ok(false)`
    /// if it was already present.
    ///
    /// # Errors
    /// [`Error::InvalidKey`] for the reserved keys `0` and `u32::MAX`;
    /// [`Error::PoolExhausted`] when the preallocated chunk pool is full
    /// (the structure is left consistent and usable).
    pub fn insert(&mut self, k: u32, v: u32) -> Result<bool, Error> {
        self.stats.insert_ops += 1;
        if !is_user_key(k) {
            return Err(Error::InvalidKey(k));
        }
        // Stamped with the mvcc version clock (a passthrough without the
        // knob); reclamation maintenance runs inside the stamp but before
        // any lock is taken (the verification scan must never wait on our
        // own locks).
        self.with_version_stamp(|h| {
            h.maybe_reclaim();
            h.with_pin(|h| h.insert_pinned(k, v))
        })
    }

    fn insert_pinned(&mut self, k: u32, v: u32) -> Result<bool, Error> {
        let (found, path) = self.search_slow(k);
        if found.found.is_some() {
            return Ok(false);
        }

        // Bottom level: the chunk that receives k stays locked until every
        // upper-level insertion completes, which is what serializes updates
        // to the same key.
        let (p_bottom, mut raise, mut kk) = match self.insert_to_level(0, path[0], k, v)? {
            LevelOutcome::AlreadyPresent { locked } => {
                // Duplicate observed under the bottom lock: the op's outcome
                // is decided even if the unlock below crashes.
                self.journal.committed = Some(Commit::Inserted(false));
                self.unlock(locked);
                return Ok(false);
            }
            LevelOutcome::Inserted {
                locked,
                raise,
                raised_key,
            } => (locked, raise, raised_key),
        };

        // Value inserted at level i+1 is a pointer to the chunk holding the
        // raised key at level i.
        let mut vv = p_bottom;
        let mut level = 1;
        while raise && level < self.list.params.max_levels() {
            match self.insert_to_level(level, path[level], kk, vv) {
                Ok(LevelOutcome::AlreadyPresent { locked }) => {
                    // The raised key already has an index entry here (it was
                    // raised by an earlier split and never removed). Keep
                    // climbing: it may be missing higher up.
                    vv = locked;
                    self.unlock(locked);
                }
                Ok(LevelOutcome::Inserted {
                    locked,
                    raise: r,
                    raised_key,
                }) => {
                    vv = locked;
                    kk = raised_key;
                    raise = r;
                    self.unlock(locked);
                }
                Err(e) => {
                    // Pool exhausted mid-climb: the key is fully inserted at
                    // all levels up to here; only index levels are missing,
                    // which is always legal. Surface the error after
                    // releasing the bottom lock.
                    self.unlock(p_bottom);
                    return Err(e);
                }
            }
            level += 1;
        }

        self.unlock(p_bottom);
        Ok(true)
    }

    /// Insert `(k, v)`, or overwrite the value if `k` is already present.
    /// Returns the previous value, if any.
    ///
    /// Not part of the paper's API, but a natural extension: the overwrite
    /// is a single atomic store of the entry (same key, new value) under the
    /// bottom-level chunk lock, so it serializes with other updates to `k`
    /// exactly like insert/remove do, and lock-free readers see either the
    /// old or the new value.
    pub fn upsert(&mut self, k: u32, v: u32) -> Result<Option<u32>, Error> {
        if !is_user_key(k) {
            return Err(Error::InvalidKey(k));
        }
        self.with_version_stamp(|h| {
            h.maybe_reclaim();
            h.with_pin(|h| h.upsert_pinned(k, v))
        })
    }

    fn upsert_pinned(&mut self, k: u32, v: u32) -> Result<Option<u32>, Error> {
        let team = self.list.team;
        loop {
            let (_, path) = self.search_slow(k);
            let (p_bottom, view) = self.find_and_lock_enclosing(path[0], k);
            if let Some(lane) = view.lane_of_key(&team, k) {
                let old = view.entry(lane).val();
                ops::write_entry(
                    &self.list.pool,
                    &mut self.probe,
                    self.list.chunk(p_bottom),
                    lane,
                    Entry::new(k, v),
                );
                self.unlock(p_bottom);
                return Ok(Some(old));
            }
            // Absent at lock time: release and take the plain insert path
            // (it redoes the locking); a racing inserter may still beat us,
            // in which case we loop back to the overwrite path.
            self.unlock(p_bottom);
            if self.insert(k, v)? {
                return Ok(None);
            }
        }
    }

    /// Lock `k`'s enclosing chunk at `level` (starting the walk at `start`,
    /// a path hint at-or-left of it) and insert, splitting on overflow
    /// (`insertToLevel`, Algorithm 4.5). All outcomes return with exactly
    /// one chunk locked; errors return with none.
    pub(crate) fn insert_to_level(
        &mut self,
        level: usize,
        start: u32,
        k: u32,
        v: u32,
    ) -> Result<LevelOutcome, Error> {
        let team = self.list.team;
        let (p_enc, view) = self.find_and_lock_enclosing(start, k);
        if view.contains_key(&team, k) {
            return Ok(LevelOutcome::AlreadyPresent { locked: p_enc });
        }
        if (view.num_keys(&team) as usize) < team.dsize() {
            self.execute_insert(p_enc, &view, k, v);
            if level == 0 {
                // Linearization point passed: the key is in the bottom level.
                // A crash from here on must still report Ok(true).
                self.journal.committed = Some(Commit::Inserted(true));
            }
            if level > 0 && self.list.level_chunk_count(level) == 0 {
                // First key in this level: mark it in use so searches start
                // here. (Benign race: two first-inserters may both count.)
                self.list.inc_level_chunks(level);
            }
            Ok(LevelOutcome::Inserted {
                locked: p_enc,
                raise: false,
                raised_key: k,
            })
        } else {
            let (p_insert, raised_key) = self.split_insert(p_enc, &view, k, v, level)?;
            self.list.inc_level_chunks(level);
            let raise =
                level + 1 < self.list.params.max_levels() && self.rng.coin(self.list.params.p_chunk);
            Ok(LevelOutcome::Inserted {
                locked: p_insert,
                raise,
                raised_key,
            })
        }
    }

    /// Physically insert `(k, v)` into a locked, non-full chunk while
    /// keeping it sorted (`executeInsert`, Algorithm 4.7 / Fig. 4.3).
    ///
    /// Each lane takes its left neighbour's entry; writes proceed serially
    /// from the highest DATA lane down to the insertion index so no key ever
    /// transiently disappears (a key may transiently appear twice, which
    /// readers resolve by highest-lane precedence).
    pub(crate) fn execute_insert(&mut self, p_enc: u32, view: &ChunkView, k: u32, v: u32) {
        let team = self.list.team;
        debug_assert!(view.lane_of_key(&team, k).is_none(), "inserting duplicate {k}");
        // Sorted + left-packed under the lock, so the insertion index is the
        // number of keys smaller than k (k >= 1, so `< k` is `<= k-1`).
        let insert_idx = self
            .list
            .params
            .kernel
            .keys_le(view.data_words(&team), k - 1)
            .count() as usize;
        debug_assert!(insert_idx < team.dsize(), "chunk was full");
        let ch = self.list.chunk(p_enc);
        for i in (insert_idx..team.dsize()).rev() {
            let e = if i == insert_idx {
                Entry::new(k, v)
            } else {
                view.entry(i - 1)
            };
            if !e.is_empty() {
                ops::write_entry(&self.list.pool, &mut self.probe, ch, i, e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{KEY_INF, KEY_NEG_INF};
    use crate::params::GfslParams;
    use crate::skiplist::Gfsl;
    use gfsl_simt::TeamSize;

    fn list16() -> Gfsl {
        Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn insert_then_contains() {
        let list = list16();
        let mut h = list.handle();
        assert_eq!(h.insert(42, 420), Ok(true));
        assert!(h.contains(42));
        assert_eq!(h.get(42), Some(420));
        assert!(!h.contains(41));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let list = list16();
        let mut h = list.handle();
        assert_eq!(h.insert(7, 1), Ok(true));
        assert_eq!(h.insert(7, 2), Ok(false));
        assert_eq!(h.get(7), Some(1), "original value preserved");
    }

    #[test]
    fn reserved_keys_error() {
        let list = list16();
        let mut h = list.handle();
        assert_eq!(h.insert(KEY_NEG_INF, 0), Err(Error::InvalidKey(0)));
        assert_eq!(h.insert(KEY_INF, 0), Err(Error::InvalidKey(KEY_INF)));
    }

    #[test]
    fn inserts_stay_sorted_within_chunk() {
        let list = list16();
        let mut h = list.handle();
        for k in [50u32, 10, 30, 20, 40] {
            assert_eq!(h.insert(k, k * 2), Ok(true));
        }
        let head = list.head_of(0);
        let v = h.read_chunk(head);
        let keys: Vec<u32> = v.live_entries(&list.team).map(|(_, e)| e.key()).collect();
        assert_eq!(keys, vec![KEY_NEG_INF, 10, 20, 30, 40, 50]);
        for k in [10u32, 20, 30, 40, 50] {
            assert_eq!(h.get(k), Some(k * 2));
        }
    }

    #[test]
    fn fill_one_chunk_to_capacity_without_split() {
        let list = list16();
        let mut h = list.handle();
        // Sentinel holds -inf, so 13 more keys fill the 14-entry data array.
        for k in 1..=13u32 {
            assert_eq!(h.insert(k, k), Ok(true));
        }
        assert_eq!(list.chunks_allocated(), 16, "no split yet");
        assert_eq!(h.stats().splits, 0);
        for k in 1..=13u32 {
            assert!(h.contains(k));
        }
    }

    #[test]
    fn overflow_triggers_split_and_all_keys_survive() {
        let list = list16();
        let mut h = list.handle();
        for k in 1..=14u32 {
            assert_eq!(h.insert(k, k * 10), Ok(true), "k={k}");
        }
        assert!(h.stats().splits >= 1);
        for k in 1..=14u32 {
            assert_eq!(h.get(k), Some(k * 10), "k={k}");
        }
        assert!(!h.contains(15));
    }

    #[test]
    fn many_inserts_build_multiple_levels() {
        let list = list16();
        let mut h = list.handle();
        for k in 1..=2000u32 {
            assert_eq!(h.insert(k, k), Ok(true), "k={k}");
        }
        assert!(list.height() >= 1, "p_chunk=1 must raise keys");
        for k in 1..=2000u32 {
            assert_eq!(h.get(k), Some(k), "k={k}");
        }
        assert!(!h.contains(2001));
    }

    #[test]
    fn descending_inserts_exercise_index_zero_path() {
        let list = list16();
        let mut h = list.handle();
        for k in (1..=500u32).rev() {
            assert_eq!(h.insert(k, k + 1), Ok(true), "k={k}");
        }
        for k in 1..=500u32 {
            assert_eq!(h.get(k), Some(k + 1), "k={k}");
        }
    }

    #[test]
    fn pool_exhaustion_surfaces_and_leaves_structure_usable() {
        let list = Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            pool_chunks: 18, // 16 sentinels + 2 spare chunks
            ..Default::default()
        })
        .unwrap();
        let mut h = list.handle();
        let mut inserted = Vec::new();
        let mut exhausted = false;
        for k in 1..=2000u32 {
            match h.insert(k, k) {
                Ok(true) => inserted.push(k),
                Ok(false) => unreachable!(),
                Err(Error::PoolExhausted(_)) => {
                    exhausted = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(exhausted, "tiny pool must run out");
        for &k in &inserted {
            assert!(h.contains(k), "k={k} must survive exhaustion");
        }
    }
}
