//! Blocking edge client: handshake, pipelined request frames, and typed
//! response matching by request id.
//!
//! The client is deliberately simple — it exists for the load generator,
//! the tests, and as the reference implementation of the wire contract.
//! Requests pipeline freely over one socket; responses are matched to
//! request ids, so callers can keep many in flight and consume completions
//! out of order.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::proto::{self, DecodeError, Req, Resp};

/// A connected, handshaken edge client.
pub struct EdgeClient {
    stream: TcpStream,
    /// Encoded frames not yet flushed.
    out: Vec<u8>,
    /// Inbound bytes not yet decoded.
    inbuf: Vec<u8>,
    /// Completions decoded but not yet claimed by id.
    ready: HashMap<u64, Resp>,
    next_id: u64,
}

fn proto_err(e: DecodeError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

impl EdgeClient {
    /// Connect and exchange hellos. `read_timeout` bounds every blocking
    /// receive (`None` = wait forever).
    pub fn connect(addr: SocketAddr, read_timeout: Option<Duration>) -> io::Result<EdgeClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        let mut hello = Vec::with_capacity(proto::HELLO_LEN);
        proto::encode_hello(&mut hello);
        stream.write_all(&hello)?;
        let mut server_hello = [0u8; proto::HELLO_LEN];
        stream.read_exact(&mut server_hello)?;
        proto::check_hello(&server_hello).map_err(proto_err)?;
        Ok(EdgeClient {
            stream,
            out: Vec::with_capacity(4096),
            inbuf: Vec::with_capacity(4096),
            ready: HashMap::new(),
            next_id: 1,
        })
    }

    /// Queue one request; returns its id. Nothing hits the socket until
    /// [`EdgeClient::flush`] (or a blocking receive, which flushes first).
    pub fn send(&mut self, req: Req) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        req.encode(id, &mut self.out);
        id
    }

    /// Write all queued frames to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.out.is_empty() {
            self.stream.write_all(&self.out)?;
            self.out.clear();
        }
        Ok(())
    }

    fn drain_inbuf(&mut self) -> io::Result<()> {
        let mut at = 0;
        loop {
            match proto::decode_resp(&self.inbuf[at..]) {
                Ok((id, resp, used)) => {
                    self.ready.insert(id, resp);
                    at += used;
                }
                Err(DecodeError::Incomplete) => break,
                Err(e) => return Err(proto_err(e)),
            }
        }
        self.inbuf.drain(..at);
        Ok(())
    }

    /// Block until the response for `id` arrives (flushing queued requests
    /// first). Respects the connect-time read timeout.
    pub fn recv(&mut self, id: u64) -> io::Result<Resp> {
        self.flush()?;
        loop {
            if let Some(resp) = self.ready.remove(&id) {
                return Ok(resp);
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.inbuf.extend_from_slice(&chunk[..n]);
            self.drain_inbuf()?;
        }
    }

    /// Claim any one already-decoded completion without touching the
    /// socket; `None` when nothing is ready in-process.
    pub fn take_ready(&mut self) -> Option<(u64, Resp)> {
        let id = *self.ready.keys().next()?;
        let resp = self.ready.remove(&id).unwrap();
        Some((id, resp))
    }

    /// Pull whatever the socket has right now (nonblocking-ish: one read
    /// with the configured timeout treated as "nothing yet"), decode, and
    /// report how many completions are ready.
    pub fn poll(&mut self) -> io::Result<usize> {
        self.flush()?;
        let mut chunk = [0u8; 16 * 1024];
        match self.stream.read(&mut chunk) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            }
            Ok(n) => {
                self.inbuf.extend_from_slice(&chunk[..n]);
                self.drain_inbuf()?;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
        Ok(self.ready.len())
    }

    /// Round-trip one request (send, flush, await its reply).
    pub fn call(&mut self, req: Req) -> io::Result<Resp> {
        let id = self.send(req);
        self.recv(id)
    }

    /// Round-trip a `Get`.
    pub fn get(&mut self, key: u32) -> io::Result<Resp> {
        self.call(Req::Get(key))
    }

    /// Round-trip an `Insert`.
    pub fn insert(&mut self, key: u32, value: u32) -> io::Result<Resp> {
        self.call(Req::Insert(key, value))
    }

    /// Round-trip a `Delete`.
    pub fn delete(&mut self, key: u32) -> io::Result<Resp> {
        self.call(Req::Delete(key))
    }

    /// Round-trip a `PopMin`.
    pub fn pop_min(&mut self) -> io::Result<Resp> {
        self.call(Req::PopMin)
    }

    /// Round-trip a `SnapRange` (version-pinned window count).
    pub fn snap_range(&mut self, lo: u32, hi: u32) -> io::Result<Resp> {
        self.call(Req::SnapRange(lo, hi))
    }

    /// Access the underlying socket (tests use this to misbehave on
    /// purpose — raw writes that violate framing).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
