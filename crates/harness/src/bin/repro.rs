//! Reproduction CLI: regenerate any table/figure of the paper's evaluation.
//!
//! ```text
//! repro --experiment fig5_3            # one artifact, quick mode
//! repro --experiment all --full        # everything at near-paper scale
//! repro --experiment table5_1 --workers 8 --out results/
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use gfsl_harness::experiments::{self, ExpConfig, ALL};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--experiment <id>|all] [--quick|--full] [--workers N] [--seed S] [--out DIR]\n\
         experiments: {ALL:?} (default: all)\n\
         --quick (default): small ranges/op counts; --full: near-paper scale"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut cfg = ExpConfig::default();
    let mut which = "all".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--experiment" | "-e" => which = args.next().unwrap_or_else(|| usage()),
            "--quick" => cfg.quick = true,
            "--full" => cfg.quick = false,
            "--workers" | "-w" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                cfg.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" | "-o" => cfg.out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    let ids: Vec<&str> = if which == "all" {
        ALL.to_vec()
    } else if ALL.contains(&which.as_str()) {
        vec![which.as_str()]
    } else {
        eprintln!("unknown experiment '{which}'");
        usage()
    };

    println!(
        "# GFSL reproduction — mode: {}, workers: {}, seed: {:#x}",
        if cfg.quick { "quick" } else { "full" },
        cfg.workers,
        cfg.seed
    );
    for id in ids {
        println!("\n### experiment: {id}\n");
        let t0 = std::time::Instant::now();
        let tables = experiments::run(id, &cfg);
        experiments::emit(id, &tables, &cfg);
        println!("({id} took {:.1}s)", t0.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
