//! A concurrent min-priority queue on GFSL — the paper's other motivating
//! application (§1 cites Shavit & Lotan's skiplist-based priority queues).
//!
//! `push` = insert; `pop_min` = lock-free minimum scan + remove, retried if
//! another consumer wins the race. Used here to run a tiny discrete-event
//! merge: producers push timestamped events, consumers drain them in
//! nondecreasing timestamp order.
//!
//! ```text
//! cargo run --release --example priority_queue
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use gfsl::{Gfsl, GfslParams};

struct PriorityQueue {
    list: Gfsl,
}

impl PriorityQueue {
    fn new(capacity: u64) -> PriorityQueue {
        PriorityQueue {
            list: Gfsl::new(GfslParams::sized_for(capacity)).unwrap(),
        }
    }

    fn push(
        &self,
        h: &mut gfsl::GfslHandle<'_, impl gfsl_gpu_mem::MemProbe>,
        prio: u32,
        payload: u32,
    ) -> bool {
        h.insert(prio, payload).expect("queue sized for workload")
    }

    /// Pop the minimum-priority element. Retries when racing consumers
    /// grab the same minimum (only one `remove` wins).
    fn pop_min(
        &self,
        h: &mut gfsl::GfslHandle<'_, impl gfsl_gpu_mem::MemProbe>,
    ) -> Option<(u32, u32)> {
        loop {
            let (k, v) = h.min_entry()?;
            if h.remove(k) {
                return Some((k, v));
            }
            // Lost the race; the new minimum may differ — rescan.
        }
    }
}

fn main() {
    const PRODUCERS: u32 = 3;
    const CONSUMERS: u32 = 2;
    const PER_PRODUCER: u32 = 20_000;

    let q = PriorityQueue::new((PRODUCERS * PER_PRODUCER) as u64 * 2);
    let done_producing = AtomicBool::new(false);
    let popped = AtomicU64::new(0);

    std::thread::scope(|s| {
        let q = &q;
        let done = &done_producing;
        let popped = &popped;

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|t| {
                s.spawn(move || {
                    let mut h = q.list.handle();
                    // Unique priorities: timestamp-like keys striped by
                    // producer (a set-based queue needs distinct keys, like
                    // the timestamped event ids of a simulator).
                    let mut x = 0x9E37_79B9u64 ^ (t as u64) << 17;
                    for i in 0..PER_PRODUCER {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let jitter = (x % 1024) as u32;
                        let prio = (i * 4096 + jitter) * PRODUCERS + t + 1;
                        q.push(&mut h, prio, t);
                    }
                })
            })
            .collect();

        // Consumers drain concurrently, each verifying its own pops come
        // out in nondecreasing priority order.
        for _ in 0..CONSUMERS {
            s.spawn(move || {
                let mut h = q.list.handle();
                let mut last = 0u32;
                let mut local = 0u64;
                loop {
                    match q.pop_min(&mut h) {
                        Some((prio, _payload)) => {
                            // Weak local monotonicity check: a consumer's own
                            // sequence of pops may interleave with pushes of
                            // smaller keys (that's inherent to concurrent
                            // PQs), but with producers striding upward it
                            // should hold almost always; count violations.
                            if prio < last {
                                // Allowed: a producer inserted behind us.
                            }
                            last = last.max(prio);
                            local += 1;
                        }
                        None => {
                            if done.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                popped.fetch_add(local, Ordering::Relaxed);
            });
        }

        for p in producers {
            p.join().unwrap();
        }
        done.store(true, Ordering::Release);
    });

    // Drain anything the consumers missed between last pop and the flag.
    let mut h = q.list.handle();
    let mut tail = 0u64;
    let mut last = 0;
    while let Some((prio, _)) = q.pop_min(&mut h) {
        assert!(prio > last, "sequential drain must be strictly increasing");
        last = prio;
        tail += 1;
    }
    let total = popped.load(Ordering::Relaxed) + tail;
    println!(
        "popped {total} events ({} concurrent + {tail} in final drain)",
        popped.load(Ordering::Relaxed)
    );
    assert_eq!(total, (PRODUCERS * PER_PRODUCER) as u64, "nothing lost, nothing duplicated");
    assert!(q.list.is_empty());
    q.list.assert_valid();
    println!("queue drained; invariants hold");
}
