//! One shard: a contiguous key range, its own GFSL, an epoch fence, and
//! windowed load counters.
//!
//! The fence is the shard's only migration synchronization point: every
//! routed operation holds it for *read* while it runs, and a migration
//! (split, merge, snapshot) holds it for *write* while it retires the
//! shard's structure. A shard whose fence write section has completed is
//! *retired* — its `Gfsl` was exported into successors and must never be
//! written again; the router detects this by re-checking the shard map
//! after acquiring the read fence (see `Cluster::with_shard`).

use std::sync::atomic::{AtomicU64, Ordering};

use gfsl::Gfsl;
use parking_lot::RwLock;

/// A shard: the half-open user-key range `[lo, hi)` and the GFSL that owns
/// it. `lo >= 1` and `hi <= KEY_INF`; the cluster keeps shards contiguous.
pub struct Shard {
    /// Stable shard identity, unique for the cluster's lifetime (survives
    /// map reshuffles; split/merge products get fresh ids).
    pub id: u64,
    /// Inclusive lower bound of the owned key range.
    pub lo: u32,
    /// Exclusive upper bound of the owned key range.
    pub hi: u32,
    /// The shard's skiplist.
    pub list: Gfsl,
    /// Epoch fence: ops read-hold, migrations write-hold (see module docs).
    pub(crate) fence: RwLock<()>,
    /// Windowed load counters, reset by `take_window`.
    reads: AtomicU64,
    writes: AtomicU64,
}

impl Shard {
    pub(crate) fn new(id: u64, lo: u32, hi: u32, list: Gfsl) -> Shard {
        assert!(lo < hi, "shard range [{lo}, {hi}) is empty");
        Shard {
            id,
            lo,
            hi,
            list,
            fence: RwLock::new(()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Does this shard's range contain `key`?
    #[inline]
    pub fn owns(&self, key: u32) -> bool {
        (self.lo..self.hi).contains(&key)
    }

    /// Record one routed operation against the current load window.
    #[inline]
    pub(crate) fn note(&self, write: bool) {
        if write {
            self.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current window counters `(reads, writes)` without resetting them.
    pub fn window(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }

    /// Take and reset the window counters (the rebalancer's sampling edge).
    pub(crate) fn take_window(&self) -> (u64, u64) {
        (
            self.reads.swap(0, Ordering::Relaxed),
            self.writes.swap(0, Ordering::Relaxed),
        )
    }

    /// A point-in-time statistics snapshot of this shard.
    pub fn stats(&self) -> ShardStats {
        let (reads, writes) = self.window();
        let keys = if self.hi > self.lo {
            self.list.handle().count_range(self.lo, self.hi - 1)
        } else {
            0
        };
        ShardStats {
            id: self.id,
            lo: self.lo,
            hi: self.hi,
            reads,
            writes,
            keys,
            quarantine_depth: self.list.quarantine_depth(),
        }
    }
}

/// Per-shard statistics, emitted into `BENCH_cluster.json` by the harness.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ShardStats {
    /// Stable shard id.
    pub id: u64,
    /// Inclusive lower key bound.
    pub lo: u32,
    /// Exclusive upper key bound.
    pub hi: u32,
    /// Reads routed here since the last window reset.
    pub reads: u64,
    /// Writes routed here since the last window reset.
    pub writes: u64,
    /// Keys currently resident (lock-free range count).
    pub keys: usize,
    /// Quarantined chunks awaiting repair (containment mode).
    pub quarantine_depth: usize,
}
