//! FNV-1a trace hashing — the single home for the fold that previously
//! lived as four copy-pasted implementations (`serve::trace`,
//! `gfsl-core::chaos`, `harness` stress binary, and the kernel-parity
//! suite's commentary).
//!
//! Two fold shapes exist in the codebase and **both are load-bearing**:
//!
//! * [`fold_u64`] — the textbook byte-wise little-endian FNV-1a fold, used
//!   by the serve-layer schedule trace and the stress campaign's per-seed
//!   rollup hash.
//! * [`fold_word`] — the chaos turnstile's word-wise variant (xor the whole
//!   64-bit value, one multiply). It is *not* byte-wise FNV-1a, but every
//!   recorded chaos trace hash since PR 1 is built from it, so replay
//!   stability demands it stay bit-identical.
//!
//! Changing either fold (or the constants) silently invalidates every
//! pinned trace hash in CI and every historical replay transcript; the
//! tests below pin reference values so a well-meaning "cleanup" fails loud.

/// FNV-1a 64-bit offset basis — the initial value of every trace hash.
pub const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01B3;

/// Fold one 64-bit value into `h`, byte-wise little-endian (standard
/// FNV-1a over `x.to_le_bytes()`).
#[inline]
pub fn fold_u64(mut h: u64, x: u64) -> u64 {
    for b in x.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// Fold one 64-bit value into `h`, word-wise: xor the whole value, then a
/// single multiply by [`PRIME`]. This is the chaos turnstile's historical
/// fold; it must never be "fixed" to the byte-wise form.
#[inline]
pub fn fold_word(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(PRIME)
}

/// Standard FNV-1a over a byte slice, starting from [`OFFSET`].
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_reference_vectors() {
        // Landon Curt Noll's published FNV-1a 64-bit test vectors. These pin
        // the constants: if OFFSET or PRIME drift, every replay hash in the
        // repo silently changes, so fail here first.
        assert_eq!(hash_bytes(b""), OFFSET);
        assert_eq!(hash_bytes(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(hash_bytes(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn fold_u64_is_bytewise_fnv1a() {
        // Folding a u64 must equal hashing its 8 little-endian bytes.
        let x = 0x0123_4567_89AB_CDEFu64;
        assert_eq!(fold_u64(OFFSET, x), hash_bytes(&x.to_le_bytes()));
        assert_eq!(fold_u64(OFFSET, 0), hash_bytes(&[0u8; 8]));
    }

    #[test]
    fn fold_word_pins_the_chaos_fold_shape() {
        // The chaos trace folds (id, code) pairs word-wise. Pin the exact
        // arithmetic so the shared helper can never drift from the histories
        // recorded by PR 1's campaigns.
        let h = fold_word(fold_word(OFFSET, 3), 0x42);
        let manual = {
            let mut t = OFFSET;
            t ^= 3;
            t = t.wrapping_mul(PRIME);
            t ^= 0x42;
            t.wrapping_mul(PRIME)
        };
        assert_eq!(h, manual);
        // And pin the concrete value: a change to OFFSET/PRIME or the fold
        // order lands here.
        assert_eq!(h, 0x0836_2C07_B4EE_BC70);
    }

    #[test]
    fn the_two_folds_differ() {
        // Guard against "simplifying" one into the other.
        assert_ne!(fold_u64(OFFSET, 7), fold_word(OFFSET, 7));
    }
}
