//! Chunk splitting (paper §4.2.2, Algorithm 4.9 / Fig. 4.4).
//!
//! A split moves the top `DSIZE/2` entries of an overfull chunk into a newly
//! allocated chunk, publishes the new chunk with a single atomic write of
//! the old chunk's NEXT entry (new max + new next pointer together), and
//! only then empties the moved entries. Lock-free readers racing the split
//! are steered correctly by the lowered max field because ballots give
//! precedence to the NEXT lane over stale DATA lanes.

use gfsl_gpu_mem::probe::CrashPoint;
use gfsl_gpu_mem::MemProbe;

use crate::chunk::{ops, ChunkView, Entry};
use crate::skiplist::{Commit, Error, GfslHandle, Intent};

/// The keys moved out of a split/merged chunk, kept for the down-pointer
/// repair pass. Bounded by `DSIZE`.
pub(crate) struct MovedKeys {
    keys: [u32; gfsl_simt::WARP_SIZE],
    len: usize,
}

impl MovedKeys {
    pub(crate) fn new() -> MovedKeys {
        MovedKeys {
            keys: [0; gfsl_simt::WARP_SIZE],
            len: 0,
        }
    }

    pub(crate) fn push(&mut self, k: u32) {
        self.keys[self.len] = k;
        self.len += 1;
    }

    pub(crate) fn as_slice(&self) -> &[u32] {
        &self.keys[..self.len]
    }
}

impl<'a, P: MemProbe> GfslHandle<'a, P> {
    /// Split the full, locked chunk `p_split` and insert `(k, v)` into
    /// whichever half now encloses it (`splitInsert`).
    ///
    /// On success returns `(p_insert, raised_key)` where `p_insert` is the
    /// still-locked chunk containing `k` (the other half has been unlocked)
    /// and `raised_key` is the key to raise if the level coin says so.
    /// On error every lock taken here is released, including `p_split`.
    pub(crate) fn split_insert(
        &mut self,
        p_split: u32,
        view: &ChunkView,
        k: u32,
        v: u32,
        level: usize,
    ) -> Result<(u32, u32), Error> {
        let team = self.list.team;
        let half = team.dsize() / 2;

        // preSplit: lock the next chunk (unlinking zombies on the way), then
        // allocate the new chunk — it comes out of the allocator locked.
        let p_next = self.lock_next_chunk(p_split, level);
        let p_new = match self.alloc_chunk() {
            Ok(c) => c,
            Err(e) => {
                if let Some(n) = p_next {
                    self.unlock(n);
                }
                self.unlock(p_split);
                return Err(e);
            }
        };

        // splitCopy: copy the top half into the (still unreachable) new
        // chunk, publish with one word, then empty the moved entries.
        let thresh = view.entry(half - 1).key();
        // Journal the structural intent before any store touches p_new: a
        // crash before the publish rolls the unreachable p_new back
        // (retired), one after rolls the split forward.
        self.journal.intent = Intent::Split {
            split: p_split,
            new: p_new,
            thresh,
            level,
            published: false,
        };

        // The new chunk inherits the split chunk's current (max, next): it
        // slots in directly after it.
        let nf = ops::read_next_field(
            &team,
            &self.list.pool,
            &mut self.probe,
            self.list.chunk(p_split),
        );
        let (old_max, old_next) = (nf.key(), nf.val());
        ops::write_next_field(
            &team,
            &self.list.pool,
            &mut self.probe,
            self.list.chunk(p_new),
            old_max,
            old_next,
        );

        let new_ch = self.list.chunk(p_new);
        let mut moved = MovedKeys::new();
        for i in half..team.dsize() {
            let e = view.entry(i);
            debug_assert!(!e.is_empty(), "splitting a non-full chunk");
            moved.push(e.key());
            ops::write_entry(&self.list.pool, &mut self.probe, new_ch, i - half, e);
        }
        self.probe.crash_point(CrashPoint::SplitPublish);
        ops::write_next_field(
            &team,
            &self.list.pool,
            &mut self.probe,
            self.list.chunk(p_split),
            thresh,
            p_new,
        );
        if let Intent::Split { published, .. } = &mut self.journal.intent {
            *published = true;
        }
        let split_ch = self.list.chunk(p_split);
        for i in (half..team.dsize()).rev() {
            ops::write_entry(&self.list.pool, &mut self.probe, split_ch, i, Entry::EMPTY);
        }
        if let Some(n) = p_next {
            self.unlock(n);
        }
        self.stats.splits += 1;

        // insertNewData: k goes into whichever half encloses it; the other
        // half is unlocked. At level 0 the half holding k must stay locked
        // until the whole Insert completes.
        let p_insert = if k <= thresh { p_split } else { p_new };
        let iv = self.read_chunk(p_insert);
        self.execute_insert(p_insert, &iv, k, v);
        if level == 0 {
            self.journal.committed = Some(Commit::Inserted(true));
        }
        if p_insert == p_split {
            self.unlock(p_new);
        } else {
            self.unlock(p_split);
        }

        // keyForNextLevel: the raised key must live in the half that STAYS
        // LOCKED (p_insert) for the rest of the Insert. The paper's
        // max(k, min-of-new-chunk) is only safe when k landed in the new
        // chunk: raising a key whose bottom chunk has already been unlocked
        // races a concurrent Remove of that key, which can lock the new
        // chunk, delete the key from level 0, find no index entry to clean
        // up yet, and leave our subsequently-installed level-1 entry
        // dangling forever (violating upper-subset-of-lower). So: when k
        // went into the old half, raise k itself; when k went into the new
        // half, max(k, min-of-new-chunk) also lives there and is safe.
        let min_moved = view.entry(half).key();
        let unsafe_raise = crate::bug_knobs::revert_split_raised_key();
        let raised = if level == 0 && (p_insert == p_new || unsafe_raise) {
            k.max(min_moved)
        } else {
            k
        };

        // Repair the level-above down-pointers of the moved keys. Stale
        // pointers are legal (they point left of the key, which lateral
        // steps recover), so this is a best-effort performance fix.
        self.update_down_ptrs(level, moved.as_slice(), p_new);

        // The split is fully settled (caller's level-chunk accounting still
        // pending, which repair performs when it finds a Split intent).
        self.journal.intent = Intent::None;
        Ok((p_insert, raised))
    }

    /// Split a locked chunk during a merge (`splitRemove`): identical to the
    /// insert-path split except nothing is inserted and both the new chunk
    /// and the next chunk end up unlocked; `p_next_of_merge` stays locked by
    /// the caller.
    pub(crate) fn split_remove(&mut self, p_split: u32, view: &ChunkView, level: usize) -> Result<(), Error> {
        let team = self.list.team;
        let half = team.dsize() / 2;

        let p_nn = self.lock_next_chunk(p_split, level);
        let p_new = match self.alloc_chunk() {
            Ok(c) => c,
            Err(e) => {
                if let Some(n) = p_nn {
                    self.unlock(n);
                }
                // Caller keeps responsibility for p_split.
                return Err(e);
            }
        };

        // Unlike the insert-path split, the chunk may be only partially full
        // (merging just requires it to be too full to absorb its left
        // neighbour): move the live entries at positions >= DSIZE/2.
        let thresh = view.entry(half - 1).key();
        self.journal.intent = Intent::Split {
            split: p_split,
            new: p_new,
            thresh,
            level,
            published: false,
        };

        let nf = ops::read_next_field(
            &team,
            &self.list.pool,
            &mut self.probe,
            self.list.chunk(p_split),
        );
        ops::write_next_field(
            &team,
            &self.list.pool,
            &mut self.probe,
            self.list.chunk(p_new),
            nf.key(),
            nf.val(),
        );

        debug_assert!(thresh != crate::chunk::KEY_INF, "absorber at least half full");
        let new_ch = self.list.chunk(p_new);
        let mut moved = MovedKeys::new();
        for i in half..team.dsize() {
            let e = view.entry(i);
            if e.is_empty() {
                break; // live entries are left-packed
            }
            moved.push(e.key());
            ops::write_entry(&self.list.pool, &mut self.probe, new_ch, i - half, e);
        }
        self.probe.crash_point(CrashPoint::SplitPublish);
        ops::write_next_field(
            &team,
            &self.list.pool,
            &mut self.probe,
            self.list.chunk(p_split),
            thresh,
            p_new,
        );
        if let Intent::Split { published, .. } = &mut self.journal.intent {
            *published = true;
        }
        let split_ch = self.list.chunk(p_split);
        for i in (half..half + moved.as_slice().len()).rev() {
            ops::write_entry(&self.list.pool, &mut self.probe, split_ch, i, Entry::EMPTY);
        }
        if let Some(n) = p_nn {
            self.unlock(n);
        }
        self.unlock(p_new);
        self.stats.splits += 1;

        self.update_down_ptrs(level, moved.as_slice(), p_new);
        self.journal.intent = Intent::None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::chunk::{KEY_INF, NIL};
    use crate::params::GfslParams;
    use crate::skiplist::Gfsl;
    use gfsl_simt::TeamSize;

    fn list16() -> Gfsl {
        Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        })
        .unwrap()
    }

    /// After one split the level-0 chain must be two sorted chunks with
    /// correct max/next wiring.
    #[test]
    fn split_wires_chain_correctly() {
        let list = list16();
        let mut h = list.handle();
        for k in 1..=14u32 {
            h.insert(k, k).unwrap();
        }
        assert_eq!(h.stats().splits, 1);
        let team = &list.team;
        let first = list.head_of(0);
        let v1 = h.read_chunk(first);
        let second = v1.next(team);
        assert_ne!(second, NIL);
        let v2 = h.read_chunk(second);
        // First chunk: max = threshold key, all keys <= max, no zombies.
        let max1 = v1.max(team);
        assert!(max1 < KEY_INF);
        assert!(v1
            .live_entries(team)
            .all(|(_, e)| e.key() <= max1));
        // Second chunk: last in level.
        assert_eq!(v2.max(team), KEY_INF);
        assert_eq!(v2.next(team), NIL);
        let min2 = v2.live_entries(team).map(|(_, e)| e.key()).min().unwrap();
        assert!(min2 > max1, "chunks laterally ordered");
        // Both sorted.
        for v in [&v1, &v2] {
            let keys: Vec<u32> = v.live_entries(team).map(|(_, e)| e.key()).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(keys, sorted);
        }
    }

    #[test]
    fn raised_key_lands_in_level_one() {
        let list = list16();
        let mut h = list.handle();
        for k in 1..=14u32 {
            h.insert(k, k).unwrap();
        }
        // p_chunk = 1: the split must have raised a key into level 1.
        assert_eq!(list.height(), 1);
        let head1 = list.head_of(1);
        let v = h.read_chunk(head1);
        let raised: Vec<u32> = v
            .live_entries(&list.team)
            .map(|(_, e)| e.key())
            .filter(|&k| k != crate::chunk::KEY_NEG_INF)
            .collect();
        assert_eq!(raised.len(), 1, "exactly one key raised per split");
        // The raised key's down-pointer reaches a chunk that (transitively)
        // contains it.
        let (lane, _) = v
            .live_entries(&list.team)
            .find(|(_, e)| e.key() == raised[0])
            .unwrap();
        let down = v.entry(lane).val();
        let res = h.search_lateral(raised[0], down);
        assert!(res.found.is_some(), "raised key reachable through its down-pointer");
    }

    #[test]
    fn repeated_splits_grow_levels_geometrically() {
        let list = list16();
        let mut h = list.handle();
        for k in 1..=5000u32 {
            h.insert(k, k).unwrap();
        }
        let splits = h.stats().splits;
        assert!(splits >= 5000 / 14, "at least one split per chunk-fill");
        assert!(list.height() >= 2);
        // Level chunk counters roughly track the split counts.
        assert!(list.level_chunk_count(0) as u64 >= 1);
    }

    #[test]
    fn no_raise_when_p_chunk_zero() {
        let list = Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            p_chunk: 0.0,
            ..Default::default()
        })
        .unwrap();
        let mut h = list.handle();
        for k in 1..=500u32 {
            h.insert(k, k).unwrap();
        }
        assert_eq!(list.height(), 0, "nothing ever raised");
        for k in 1..=500u32 {
            assert!(h.contains(k), "flat structure still correct");
        }
    }
}
