//! Derive macros for the offline serde shim.
//!
//! `#[derive(Serialize)]` on a **named-field struct** emits a real
//! field-walking `serialize_value` that renders the struct as an ordered
//! JSON object (fields in declaration order; `#[serde(skip)]` honoured).
//! Enums, tuple structs, and unit structs fall back to
//! `Value::Str(format!("{:?}", self))` — every derive site in the
//! workspace also derives `Debug`, and for unit-variant enums like
//! `BenchKind` the debug name is the natural JSON encoding.
//!
//! The field parser works straight off the token stream (no `syn` in the
//! offline container): attributes (`#` + bracket group) are skipped,
//! visibility (`pub`, `pub(...)`) is skipped, a field is an identifier
//! followed by `:`, and the type is skipped to the next *top-level* comma
//! with `<`/`>` angle-bracket depth tracking (delimited groups arrive as
//! single atomic tokens, so parens and brackets need no tracking).
//! Generic types are not supported — the workspace derives only on
//! concrete types.
//!
//! `#[derive(Deserialize)]` still emits an empty marker impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The derive target, parsed just deeply enough to pick a strategy.
enum Item {
    /// `struct Name { field: Ty, ... }` — fields in declaration order,
    /// `#[serde(skip)]` fields removed.
    NamedStruct { name: String, fields: Vec<String> },
    /// Enum, tuple struct, or unit struct: serialize via `Debug`.
    Fallback { name: String },
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde shim derive: expected item name, got {other:?}"),
                };
                if kw == "struct" {
                    // The body is the next brace group, if any. A paren
                    // group (tuple struct) or a bare `;` (unit struct)
                    // selects the Debug fallback.
                    for tt in iter {
                        if let TokenTree::Group(g) = &tt {
                            if g.delimiter() == Delimiter::Brace {
                                return Item::NamedStruct {
                                    name,
                                    fields: parse_named_fields(g.stream()),
                                };
                            }
                            if g.delimiter() == Delimiter::Parenthesis {
                                break;
                            }
                        }
                    }
                }
                return Item::Fallback { name };
            }
        }
    }
    panic!("serde shim derive: could not find struct/enum name");
}

/// Extract field names (minus `#[serde(skip)]` ones) from the token stream
/// of a named-struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    let mut skip_next_field = false;
    while let Some(tt) = toks.next() {
        match tt {
            // Attribute: `#` then a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        if attr_is_serde_skip(g.stream()) {
                            skip_next_field = true;
                        }
                        toks.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Swallow a `pub(crate)`-style restriction if present.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            TokenTree::Ident(id) => {
                // `ident :` starts a field; then skip the type to the next
                // top-level comma.
                match toks.peek() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
                        toks.next();
                        if skip_next_field {
                            skip_next_field = false;
                        } else {
                            fields.push(id.to_string());
                        }
                        let mut angle_depth = 0i32;
                        for tt in toks.by_ref() {
                            if let TokenTree::Punct(p) = &tt {
                                match p.as_char() {
                                    '<' => angle_depth += 1,
                                    '>' => angle_depth -= 1,
                                    ',' if angle_depth == 0 => break,
                                    _ => {}
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    fields
}

fn attr_is_serde_skip(attr: TokenStream) -> bool {
    let mut toks = attr.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|tt| matches!(&tt, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Derive `serde::Serialize`: field-walking JSON objects for named
/// structs, `Debug`-string fallback for everything else.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), \
                         serde::Serialize::serialize_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Fallback { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> serde::Value {{\n\
                     serde::Value::Str(format!(\"{{:?}}\", self))\n\
                 }}\n\
             }}"
        ),
    };
    body.parse().unwrap()
}

/// Derive a no-op `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::NamedStruct { name, .. } | Item::Fallback { name } => name,
    };
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
