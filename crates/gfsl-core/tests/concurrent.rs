//! Concurrent stress tests: real threads, real atomics, structural
//! validation at quiescence. These exercise the paper's fine-grained locking
//! protocol (bottom-level lock held across multi-level updates, lock-free
//! contains, splits/merges/zombies under contention).

use std::collections::BTreeSet;

use gfsl::{Gfsl, GfslParams, TeamSize};

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Run seed: `GFSL_TEST_SEED` if set, else 0 (which leaves every RNG at its
/// historical constant). Printed so the harness shows it when a test fails;
/// re-run with `GFSL_TEST_SEED=<seed> cargo test` to replay.
fn test_seed() -> u64 {
    let seed = std::env::var("GFSL_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    eprintln!("GFSL_TEST_SEED={seed} (set this env var to replay)");
    seed
}

/// Fold the run seed into an RNG's base state, keeping xorshift state
/// nonzero.
fn mix(base: u64, seed: u64) -> u64 {
    match base ^ seed {
        0 => 0x9E37_79B9_7F4A_7C15,
        x => x,
    }
}

fn params16() -> GfslParams {
    GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 17,
        ..Default::default()
    }
}

/// Threads own disjoint key classes (k % T == t), so each thread's final
/// view of its own keys is deterministic even under full concurrency.
#[test]
fn disjoint_key_classes_are_exact() {
    const THREADS: u32 = 4;
    const OPS: u64 = 12_000;
    let list = Gfsl::new(params16()).unwrap();
    let seed = test_seed();
    let finals: Vec<BTreeSet<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut reference = BTreeSet::new();
                    let mut x = mix(0x1234_5678_9ABC_DEF0u64 ^ (t as u64) << 32, seed);
                    for _ in 0..OPS {
                        let r = xorshift(&mut x);
                        let k = ((r % 3_000) as u32) * THREADS + t + 1;
                        match (r >> 33) % 3 {
                            0 => {
                                assert_eq!(h.insert(k, k).unwrap(), reference.insert(k), "insert {k}");
                            }
                            1 => {
                                assert_eq!(h.remove(k), reference.remove(&k), "remove {k}");
                            }
                            _ => {
                                assert_eq!(h.contains(k), reference.contains(&k), "contains {k}");
                            }
                        }
                    }
                    reference
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    list.assert_valid();
    let keys: BTreeSet<u32> = list.keys().into_iter().collect();
    let mut expected = BTreeSet::new();
    for f in finals {
        expected.extend(f);
    }
    assert_eq!(keys, expected);
}

/// All threads fight over the same small key range: maximum contention on
/// locks, splits, and merges. Correctness here is "the final key set equals
/// the union of net effects", which we can't know a priori — so we check
/// structural invariants plus set membership consistency via per-key
/// last-operation tracking with odd/even value tagging.
#[test]
fn full_contention_structural_integrity() {
    const THREADS: u32 = 8;
    const OPS: u64 = 8_000;
    const RANGE: u64 = 400; // tiny range -> constant chunk-level conflicts
    let list = Gfsl::new(params16()).unwrap();
    let seed = test_seed();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let list = &list;
            s.spawn(move || {
                let mut h = list.handle();
                let mut x = mix(0xDEAD_BEEF_0000_0001u64.wrapping_mul(t as u64 + 1), seed);
                for _ in 0..OPS {
                    let r = xorshift(&mut x);
                    let k = (r % RANGE) as u32 + 1;
                    match (r >> 40) % 4 {
                        0 | 1 => {
                            let _ = h.insert(k, t).unwrap();
                        }
                        2 => {
                            let _ = h.remove(k);
                        }
                        _ => {
                            let _ = h.contains(k);
                        }
                    }
                }
            });
        }
    });
    list.assert_valid();
    // Every surviving key must be in range with a valid writer tag.
    for (k, v) in list.pairs() {
        assert!((1..=RANGE as u32).contains(&k));
        assert!(v < THREADS);
    }
}

/// Lock-free readers run concurrently with writers; reads must never block,
/// crash, or observe keys that were never inserted.
#[test]
fn readers_never_observe_foreign_keys() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let list = Gfsl::new(params16()).unwrap();
    let seed = test_seed();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Writer: churns even keys only.
        let list_ref = &list;
        let stop_ref = &stop;
        s.spawn(move || {
            let mut h = list_ref.handle();
            let mut x = mix(42, seed);
            for _ in 0..30_000 {
                let r = xorshift(&mut x);
                let k = ((r % 2_000) as u32) * 2 + 2;
                if (r >> 41).is_multiple_of(2) {
                    let _ = h.insert(k, k).unwrap();
                } else {
                    let _ = h.remove(k);
                }
            }
            stop_ref.store(true, Ordering::Release);
        });
        // Readers: probe both even keys (may or may not exist) and odd keys
        // (must NEVER exist).
        for t in 0..3u64 {
            s.spawn(move || {
                let mut h = list_ref.handle();
                let mut x = mix(777 + t, seed);
                while !stop_ref.load(Ordering::Acquire) {
                    let r = xorshift(&mut x);
                    let even = ((r % 2_000) as u32) * 2 + 2;
                    let odd = even + 1;
                    let _ = h.contains(even);
                    assert!(!h.contains(odd), "odd key {odd} must never appear");
                    if let Some(v) = h.get(even) {
                        assert_eq!(v, even, "value corruption on {even}");
                    }
                }
            });
        }
    });
    list.assert_valid();
}

/// The paper's restart edge case must stay rare: under a delete-heavy
/// workload, contains restarts should be well below 1% of searches.
#[test]
fn contains_restarts_are_rare() {
    let list = Gfsl::new(params16()).unwrap();
    {
        let mut h = list.handle();
        for k in 1..=4_000u32 {
            h.insert(k, k).unwrap();
        }
    }
    let seed = test_seed();
    let restart_stats = std::thread::scope(|s| {
        let list_ref = &list;
        // Deleters drain keys while searchers probe.
        let del = s.spawn(move || {
            let mut h = list_ref.handle();
            for k in 1..=4_000u32 {
                h.remove(k);
            }
        });
        let search = s.spawn(move || {
            let mut h = list_ref.handle();
            let mut x = mix(31, seed);
            for _ in 0..40_000 {
                let r = xorshift(&mut x);
                h.contains((r % 4_000) as u32 + 1);
            }
            h.stats()
        });
        del.join().unwrap();
        search.join().unwrap()
    });
    let ratio = restart_stats.search_restarts as f64 / restart_stats.contains_ops as f64;
    assert!(
        ratio < 0.01,
        "restart ratio {ratio} too high ({} / {})",
        restart_stats.search_restarts,
        restart_stats.contains_ops
    );
    list.assert_valid();
}

/// 32-entry chunks under concurrency (the paper's primary configuration).
#[test]
fn concurrent_gfsl32_mixed() {
    const THREADS: u32 = 4;
    let list = Gfsl::new(GfslParams {
        pool_chunks: 1 << 16,
        ..Default::default()
    })
    .unwrap();
    let seed = test_seed();
    let finals: Vec<BTreeSet<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut reference = BTreeSet::new();
                    let mut x = mix(0xABCD_EF01_2345_6789u64 ^ (t as u64) << 48, seed);
                    for _ in 0..10_000 {
                        let r = xorshift(&mut x);
                        let k = ((r % 5_000) as u32) * THREADS + t + 1;
                        if (r >> 35) % 5 < 3 {
                            assert_eq!(h.insert(k, k ^ 1).unwrap(), reference.insert(k));
                        } else {
                            assert_eq!(h.remove(k), reference.remove(&k));
                        }
                    }
                    reference
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    list.assert_valid();
    let keys: BTreeSet<u32> = list.keys().into_iter().collect();
    let expected: BTreeSet<u32> = finals.into_iter().flatten().collect();
    assert_eq!(keys, expected);
}
