//! Ablation benches for the design choices DESIGN.md calls out:
//! `p_chunk`, the merge threshold, and instrumentation overhead
//! (`NoProbe` vs `CountingProbe`).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_bench::{ops, KeyStream};
use gfsl_gpu_mem::{CountingProbe, L2Cache};
use gfsl_workload::{Op, OpMix, Prefill};

fn built_with(params: GfslParams, range: u32) -> Gfsl {
    let list = Gfsl::new(params).unwrap();
    {
        let mut h = list.handle();
        for k in Prefill::HalfRandom.keys(range, 5) {
            h.insert(k, k).unwrap();
        }
    }
    list
}

fn bench_ablations(c: &mut Criterion) {
    const RANGE: u32 = 50_000;
    let stream = ops(OpMix::C60, RANGE, 1 << 15);
    let mut g = c.benchmark_group("ablation");

    // p_chunk: lower values mean fewer raised keys, longer lateral walks.
    for p_chunk in [0.25, 1.0] {
        let list = built_with(
            GfslParams {
                p_chunk,
                pool_chunks: GfslParams::chunks_for(RANGE as u64 * 2, TeamSize::ThirtyTwo),
                ..Default::default()
            },
            RANGE,
        );
        let mut h = list.handle();
        let mut keys = KeyStream::new(RANGE);
        g.bench_function(format!("contains_p_chunk_{p_chunk}"), |b| {
            b.iter(|| h.contains(keys.next_key()))
        });
    }

    // Merge threshold: DSIZE/2 merges eagerly, DSIZE/6 lazily.
    for divisor in [2u32, 3, 6] {
        let list = built_with(
            GfslParams {
                merge_divisor: divisor,
                pool_chunks: GfslParams::chunks_for(RANGE as u64 * 3, TeamSize::ThirtyTwo),
                ..Default::default()
            },
            RANGE,
        );
        let mut h = list.handle();
        let mut i = 0usize;
        g.bench_function(format!("mixed_c60_merge_div{divisor}"), |b| {
            b.iter(|| {
                let op = &stream[i % stream.len()];
                i += 1;
                match *op {
                    Op::Insert(k, v) => {
                        let _ = h.insert(k, v).unwrap();
                    }
                    Op::Delete(k) => {
                        let _ = h.remove(k);
                    }
                    Op::Contains(k) => {
                        let _ = h.contains(k);
                    }
                }
            })
        });
    }

    // Probe overhead: the NoProbe fast path must cost nothing; the
    // CountingProbe path pays for coalescing math + shared L2 probes.
    let list = built_with(
        GfslParams {
            pool_chunks: GfslParams::chunks_for(RANGE as u64 * 2, TeamSize::ThirtyTwo),
            ..Default::default()
        },
        RANGE,
    );
    let mut h = list.handle();
    let mut keys = KeyStream::new(RANGE);
    g.bench_function("contains_noprobe", |b| b.iter(|| h.contains(keys.next_key())));

    let l2 = Arc::new(L2Cache::gtx970());
    let mut hp = list.handle_with(CountingProbe::new(l2));
    let mut keys = KeyStream::new(RANGE);
    g.bench_function("contains_countingprobe", |b| {
        b.iter(|| hp.contains(keys.next_key()))
    });

    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
