//! Lane identities and the fixed-width per-lane register file.

/// Number of threads in a full hardware warp on every Nvidia GPU to date
/// (the paper, §2.1, notes this may change in the future; GFSL only relies on
/// a team being *at most* this wide).
pub const WARP_SIZE: usize = 32;

/// A thread's index within its team (`tId` in the paper), in
/// `0..team_size`.
pub type LaneId = usize;

/// Supported team sizes. The number of entries in a GFSL chunk equals the
/// team size, so these are also the two chunk formats evaluated in the paper
/// (GFSL-16: 128 B chunks, one memory transaction; GFSL-32: 256 B chunks, two
/// transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TeamSize {
    /// Half-warp teams: 16 lanes, 128-byte chunks (GFSL-16).
    Sixteen,
    /// Full-warp teams: 32 lanes, 256-byte chunks (GFSL-32).
    ThirtyTwo,
}

impl TeamSize {
    /// Number of lanes in the team (= entries per chunk).
    #[inline]
    pub const fn lanes(self) -> usize {
        match self {
            TeamSize::Sixteen => 16,
            TeamSize::ThirtyTwo => 32,
        }
    }

    /// Number of DATA entries in a chunk of this size (`DSIZE = N - 2`).
    #[inline]
    pub const fn dsize(self) -> usize {
        self.lanes() - 2
    }

    /// Construct from a lane count.
    pub fn from_lanes(n: usize) -> Option<TeamSize> {
        match n {
            16 => Some(TeamSize::Sixteen),
            32 => Some(TeamSize::ThirtyTwo),
            _ => None,
        }
    }
}

impl std::fmt::Display for TeamSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.lanes())
    }
}

/// A per-lane register: one value of type `T` for each lane of a team.
///
/// This is the moral equivalent of "a local variable in kernel code": each
/// lane holds its own copy. Backed by a fixed `[T; WARP_SIZE]` so it never
/// allocates (CUDA local arrays spill to global memory, which is exactly the
/// effect the paper's "artificial array" trick avoids; on the host a stack
/// array is free).
#[derive(Debug, Clone, Copy)]
pub struct Lanes<T> {
    vals: [T; WARP_SIZE],
    size: usize,
}

impl<T: Copy + Default> Lanes<T> {
    /// A register file of `size` lanes, default-initialized.
    #[inline]
    pub fn new(size: TeamSize) -> Self {
        Lanes {
            vals: [T::default(); WARP_SIZE],
            size: size.lanes(),
        }
    }

    /// Populate every lane's register in lockstep: `f(lane)` is the value
    /// computed by `lane`.
    #[inline]
    pub fn fill_with(size: TeamSize, mut f: impl FnMut(LaneId) -> T) -> Self {
        let mut l = Lanes::new(size);
        for lane in 0..l.size {
            l.vals[lane] = f(lane);
        }
        l
    }
}

impl<T: Copy> Lanes<T> {
    /// Number of live lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when the team has no lanes (never happens for valid team sizes;
    /// provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Read lane `lane`'s register. This is `__shfl(value, lane)` observed
    /// from any other lane: in lockstep execution every lane receives the
    /// same broadcast value.
    #[inline]
    pub fn get(&self, lane: LaneId) -> T {
        debug_assert!(lane < self.size, "shfl from lane {lane} of {}", self.size);
        self.vals[lane]
    }

    /// Overwrite lane `lane`'s register.
    #[inline]
    pub fn set(&mut self, lane: LaneId, v: T) {
        debug_assert!(lane < self.size);
        self.vals[lane] = v;
    }

    /// Iterate `(lane, value)` pairs in lane order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (LaneId, T)> + '_ {
        self.vals[..self.size].iter().copied().enumerate()
    }

    /// The live lanes as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.vals[..self.size]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn team_size_lanes_and_dsize() {
        assert_eq!(TeamSize::Sixteen.lanes(), 16);
        assert_eq!(TeamSize::Sixteen.dsize(), 14);
        assert_eq!(TeamSize::ThirtyTwo.lanes(), 32);
        assert_eq!(TeamSize::ThirtyTwo.dsize(), 30);
    }

    #[test]
    fn team_size_from_lanes_roundtrip() {
        assert_eq!(TeamSize::from_lanes(16), Some(TeamSize::Sixteen));
        assert_eq!(TeamSize::from_lanes(32), Some(TeamSize::ThirtyTwo));
        assert_eq!(TeamSize::from_lanes(8), None);
        assert_eq!(TeamSize::from_lanes(0), None);
        assert_eq!(TeamSize::from_lanes(33), None);
    }

    #[test]
    fn lanes_fill_get_set() {
        let mut l = Lanes::fill_with(TeamSize::Sixteen, |lane| lane as u64 * 3);
        assert_eq!(l.len(), 16);
        assert_eq!(l.get(0), 0);
        assert_eq!(l.get(15), 45);
        l.set(7, 999);
        assert_eq!(l.get(7), 999);
    }

    #[test]
    fn lanes_iter_matches_slice() {
        let l = Lanes::fill_with(TeamSize::ThirtyTwo, |lane| lane as u32 + 1);
        let collected: Vec<u32> = l.iter().map(|(_, v)| v).collect();
        assert_eq!(collected.len(), 32);
        assert_eq!(collected.as_slice(), l.as_slice());
        assert_eq!(collected[31], 32);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn lanes_get_out_of_range_panics_in_debug() {
        let l: Lanes<u64> = Lanes::new(TeamSize::Sixteen);
        let _ = l.get(16);
    }

    #[test]
    fn display_prints_lane_count() {
        assert_eq!(TeamSize::Sixteen.to_string(), "16");
        assert_eq!(TeamSize::ThirtyTwo.to_string(), "32");
    }
}
