//! # Streaming-multiprocessor performance model
//!
//! Converts measured memory traffic (from `gfsl-gpu-mem` probes) and
//! lockstep step counts (from `gfsl-simt`) into predicted GPU throughput,
//! reproducing the evaluation methodology of the GFSL paper on a machine
//! without a GPU.
//!
//! The model has three layers:
//!
//! * [`arch`] — the hardware descriptor (GTX 970 / Maxwell GM204, the
//!   paper's testbed).
//! * [`occupancy`] — registers/warps/blocks ⇒ theoretical and achieved
//!   occupancy plus local-memory spillover share. This layer reproduces the
//!   *static* columns of Tables 5.1 and 5.2 **exactly** (registers, active
//!   blocks, theoretical occupancy) from first principles: the register
//!   file is divided per-warp in 256-register units and the compiler caps
//!   per-thread registers to keep two blocks resident.
//! * [`cost`] — a calibrated roofline-style cycle model: memory time from
//!   L2 hits, DRAM transactions and sectors (plus L2-class spill traffic),
//!   compute time from warp steps, saturating latency hiding from achieved
//!   occupancy, and an analytic lock/CAS congestion term bounded by its
//!   overlap with useful work. The hardware constants are calibrated once
//!   against the paper's Table 5.1/5.2 anchor cells and the 10K-range
//!   ordering, then frozen; every other number in the reproduction is
//!   produced by measured traces with no further tuning (see DESIGN.md §7).

#![warn(missing_docs)]

pub mod arch;
pub mod cost;
pub mod occupancy;

pub use arch::{GpuArch, KernelProfile, LaunchConfig};
pub use cost::{CostModel, RunMeasurement, Throughput};
pub use occupancy::Occupancy;
