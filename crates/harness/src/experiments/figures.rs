//! Figures 5.1–5.4: throughput and speedup as functions of key range.

use gfsl::{GfslParams, TeamSize};
use gfsl_workload::{format_count, BenchKind, OpMix, WorkloadSpec};
use mc_skiplist::McParams;

use super::ExpConfig;
use crate::model_eval::{evaluate, StructureKind};
use crate::report::{mops, ratio, Table};
use crate::runner::{run_gfsl, run_mc, RunConfig};

fn run_cfg(cfg: &ExpConfig) -> RunConfig {
    RunConfig {
        workers: cfg.workers,
        ..Default::default()
    }
}

fn gfsl_params(cfg: &ExpConfig, spec: &WorkloadSpec, team: TeamSize) -> GfslParams {
    GfslParams {
        team_size: team,
        pool_chunks: GfslParams::chunks_for(spec.key_range as u64 + spec.n_ops as u64, team),
        seed: cfg.seed,
        ..Default::default()
    }
}

fn mc_params(cfg: &ExpConfig, spec: &WorkloadSpec) -> McParams {
    McParams {
        seed: cfg.seed,
        ..McParams::sized_for(spec.key_range as u64 + spec.n_ops as u64)
    }
}

/// Modeled MOPS for GFSL on a spec.
fn gfsl_mops(cfg: &ExpConfig, spec: &WorkloadSpec, team: TeamSize) -> f64 {
    let m = run_gfsl(spec, gfsl_params(cfg, spec, team), &run_cfg(cfg));
    evaluate(StructureKind::Gfsl, &m).mops
}

/// Modeled MOPS for M&C on a spec.
fn mc_mops(cfg: &ExpConfig, spec: &WorkloadSpec) -> f64 {
    let m = run_mc(spec, mc_params(cfg, spec), &run_cfg(cfg));
    evaluate(StructureKind::Mc, &m).mops
}

/// Fig. 5.1: GFSL-16 vs GFSL-32 vs M&C on `[10,10,80]` across ranges.
pub fn fig5_1(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 5.1: chunk/team size, [10,10,80]",
        &["range", "GFSL-16 (MOPS)", "GFSL-32 (MOPS)", "M&C (MOPS)"],
    );
    for &range in &cfg.ranges() {
        let spec = WorkloadSpec::mixed(OpMix::C80, range, cfg.mixed_ops(), cfg.seed);
        let g16 = gfsl_mops(cfg, &spec, TeamSize::Sixteen);
        let g32 = gfsl_mops(cfg, &spec, TeamSize::ThirtyTwo);
        let mc = if range <= cfg.mc_range_cap() {
            mops(mc_mops(cfg, &spec))
        } else {
            "OOM".into()
        };
        t.row(vec![format_count(range as u64), mops(g16), mops(g32), mc]);
    }
    vec![t]
}

/// Shared grid for Figs. 5.2/5.3: per (mixture, range) modeled MOPS of both
/// structures. Memoized per configuration fingerprint so running `fig5_2`
/// and `fig5_3` in one invocation measures the grid once.
fn mixed_grid(cfg: &ExpConfig) -> Vec<(OpMix, u32, f64, Option<f64>)> {
    use std::sync::Mutex;
    type Grid = Vec<(OpMix, u32, f64, Option<f64>)>;
    static CACHE: Mutex<Option<(String, Grid)>> = Mutex::new(None);

    let fingerprint = format!(
        "{:?}|{}|{}|{}|{}",
        cfg.ranges(),
        cfg.mixed_ops(),
        cfg.mc_range_cap(),
        cfg.workers,
        cfg.seed
    );
    if let Some((fp, grid)) = CACHE.lock().unwrap().as_ref() {
        if *fp == fingerprint {
            return grid.clone();
        }
    }
    let mut out = Vec::new();
    for mix in OpMix::MIXED {
        for &range in &cfg.ranges() {
            let spec = WorkloadSpec::mixed(mix, range, cfg.mixed_ops(), cfg.seed);
            let g = gfsl_mops(cfg, &spec, TeamSize::ThirtyTwo);
            let m = (range <= cfg.mc_range_cap()).then(|| mc_mops(cfg, &spec));
            out.push((mix, range, g, m));
        }
    }
    *CACHE.lock().unwrap() = Some((fingerprint, out.clone()));
    out
}

/// Fig. 5.2: GFSL/M&C speedup ratio per mixture and range.
pub fn fig5_2(cfg: &ExpConfig) -> Vec<Table> {
    let grid = mixed_grid(cfg);
    let mut t = Table::new(
        "Fig 5.2: GFSL-32 / M&C throughput ratio",
        &["range", "[1,1,98]", "[5,5,90]", "[10,10,80]", "[20,20,60]"],
    );
    for &range in &cfg.ranges() {
        let mut cells = vec![format_count(range as u64)];
        for mix in OpMix::MIXED {
            let cell = grid
                .iter()
                .find(|(m, r, _, _)| *m == mix && *r == range)
                .map(|(_, _, g, mc)| match mc {
                    Some(mc) => ratio(g / mc),
                    None => "OOM".into(),
                })
                .unwrap_or_default();
            cells.push(cell);
        }
        t.row(cells);
    }
    vec![t]
}

/// Fig. 5.3: absolute modeled throughput per mixture (four panels).
pub fn fig5_3(cfg: &ExpConfig) -> Vec<Table> {
    let grid = mixed_grid(cfg);
    OpMix::MIXED
        .iter()
        .map(|&mix| {
            let mut t = Table::new(
                format!("Fig 5.3: throughput, mixture {mix}"),
                &["range", "GFSL-32 (MOPS)", "M&C (MOPS)"],
            );
            for &range in &cfg.ranges() {
                if let Some((_, _, g, mc)) =
                    grid.iter().find(|(m, r, _, _)| *m == mix && *r == range)
                {
                    t.row(vec![
                        format_count(range as u64),
                        mops(*g),
                        mc.map(mops).unwrap_or_else(|| "OOM".into()),
                    ]);
                }
            }
            t
        })
        .collect()
}

/// Fig. 5.4: single-operation-type benchmarks (Contains / Insert / Delete).
pub fn fig5_4(cfg: &ExpConfig) -> Vec<Table> {
    let panels: [(&str, BenchKind); 3] = [
        ("Fig 5.4a: Contains-only", BenchKind::ContainsOnly),
        ("Fig 5.4b: Insert-only", BenchKind::InsertOnly),
        ("Fig 5.4c: Delete-only", BenchKind::DeleteOnly),
    ];
    // The paper measures M&C single-op tests only up to 3M (OOM above).
    let mc_cap = cfg.mc_range_cap().min(3_000_000);
    panels
        .iter()
        .map(|&(title, kind)| {
            let mut t = Table::new(title, &["range", "GFSL-32 (MOPS)", "M&C (MOPS)"]);
            for &range in &cfg.ranges() {
                let spec = WorkloadSpec::single(kind, range, cfg.mixed_ops(), cfg.seed);
                let g = gfsl_mops(cfg, &spec, TeamSize::ThirtyTwo);
                let mc = if range <= mc_cap {
                    mops(mc_mops(cfg, &spec))
                } else {
                    "OOM".into()
                };
                t.row(vec![format_count(range as u64), mops(g), mc]);
            }
            t
        })
        .collect()
}
