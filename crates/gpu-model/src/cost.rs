//! Roofline-style cycle/throughput model.
//!
//! Inputs are *measured* (memory transactions, L2 hit/miss split, lockstep
//! step counts, lock/CAS retries from the actual data-structure runs); the
//! model turns them into a predicted wall time on the modeled GPU.
//!
//! ```text
//!   mem_time     = Σ(txn·ns) / (1 − spill_share) / mem_utilization
//!   compute_time = warp_steps · issue_ns / occupancy_utilization
//!   contention   = retries · (gpu_teams / host_workers) · retry_ns
//!   time         = max(mem_time, compute_time) + contention
//! ```
//!
//! The per-transaction nanosecond constants are **calibrated once** against
//! the paper's Table 5.1/5.2 anchor cells (GFSL-32 ≈ 65.7 MOPS and M&C ≈
//! 21.3 MOPS at `[10,10,80]`, 1M keys, 16 warps/block) and are *shared by
//! both structures* — the GFSL/M&C comparison is decided entirely by their
//! measured traffic, not by per-kernel fudge factors.

use serde::{Deserialize, Serialize};

use crate::arch::GpuArch;
use crate::occupancy::Occupancy;

/// Calibrated model constants (nanoseconds per event on the GTX 970).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Per 128-byte transaction served by L2.
    pub l2_hit_ns: f64,
    /// Base cost per transaction that misses to DRAM (row activation /
    /// request overhead, independent of how much of the line is used).
    pub dram_txn_ns: f64,
    /// Additional cost per 32-byte sector actually fetched: a fully-used
    /// GFSL chunk line pays four sectors, a scattered 8-byte M&C access
    /// pays one — this is what makes coalesced bandwidth cheaper per byte.
    pub dram_sector_ns: f64,
    /// Per atomic RMW (serialized in L2).
    pub atomic_ns: f64,
    /// Per warp-wide lockstep step at full occupancy (device aggregate).
    pub issue_ns: f64,
    /// Resident warps per SM needed to saturate the memory system; below
    /// this, latency cannot be hidden and effective bandwidth drops.
    pub saturation_warps: f64,
    /// Cost charged when an update finds its target chunk locked and must
    /// wait for the holder to finish (GFSL's fine-grained locks).
    pub lock_wait_ns: f64,
    /// Cost of a lock-free CAS retry round (M&C): the loser re-reads and
    /// retries, far cheaper than waiting out a lock holder.
    pub cas_retry_ns: f64,
}

impl CostModel {
    /// Constants calibrated against the paper's anchor cells (see module
    /// docs). `dram_miss_ns` ≈ 4× the 128 B/224 GB/s peak-bandwidth cost,
    /// reflecting random-access row-buffer behaviour; `l2_hit_ns` gives L2
    /// ≈ 5× DRAM bandwidth; `issue_ns` = 1 / (13 SMs × 1 warp-instruction
    /// per cycle × 1.05 GHz).
    pub fn calibrated() -> CostModel {
        CostModel {
            l2_hit_ns: 0.12,
            dram_txn_ns: 1.85,
            dram_sector_ns: 0.20,
            atomic_ns: 4.0,
            issue_ns: 1.15,
            saturation_warps: 25.0,
            lock_wait_ns: 70.0,
            cas_retry_ns: 25.0,
        }
    }
}

/// Measured totals from one experiment run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunMeasurement {
    /// Timed operations completed.
    pub n_ops: u64,
    /// Read transactions (coalesced).
    pub read_txns: u64,
    /// Write transactions.
    pub write_txns: u64,
    /// Atomic transactions.
    pub atomic_txns: u64,
    /// Transactions that hit the simulated L2.
    pub l2_hits: u64,
    /// Transactions that missed to DRAM.
    pub l2_misses: u64,
    /// 32-byte sectors fetched by those misses.
    pub miss_sectors: u64,
    /// Warp-wide lockstep steps (divergence-adjusted for M&C).
    pub warp_steps: u64,
    /// Lock/CAS retries measured on the host (reported; the contention term
    /// itself is analytic — host-side retry counts are too noisy at host
    /// concurrency levels to extrapolate to thousands of GPU teams).
    pub retries: u64,
    /// Host worker threads that produced the measurement.
    pub host_workers: u32,
    /// Update operations (inserts + deletes) among `n_ops`.
    pub update_ops: u64,
    /// Width of the contended resource: bottom-level chunks for GFSL (an
    /// update locks one), live keys for M&C (an update CASes one node).
    pub contention_units: u64,
    /// One operation per warp (GFSL team) when false... set true when each
    /// of the warp's 32 lanes runs its own op (M&C), which multiplies the
    /// number of concurrent updaters.
    pub op_per_lane: bool,
    /// Do conflicting updates block on a lock (GFSL) or retry a CAS (M&C)?
    pub blocking_updates: bool,
}

/// Model output.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Throughput {
    /// Millions of operations per second.
    pub mops: f64,
    /// Predicted run time in seconds.
    pub seconds: f64,
    /// Memory-side time (s).
    pub mem_seconds: f64,
    /// Compute-side time (s).
    pub compute_seconds: f64,
    /// Contention time (s).
    pub contention_seconds: f64,
    /// Was the run memory-bound?
    pub memory_bound: bool,
}

/// Predict throughput for a measured run under an occupancy configuration.
pub fn predict(
    arch: &GpuArch,
    occ: &Occupancy,
    cm: &CostModel,
    m: &RunMeasurement,
) -> Throughput {
    let ns = 1e-9;
    // Memory time: structure transactions at their measured hit/miss costs,
    // plus spill traffic. Local-memory spill is L1/L2-cached on Maxwell, so
    // a spill share s adds s/(1-s) extra L2-class transactions rather than
    // inflating everything to DRAM cost (this is why Table 5.1's 24-warp
    // column loses only ~5% to the 16-warp one despite 43% spill share).
    let total_txns = (m.read_txns + m.write_txns + m.atomic_txns) as f64;
    let spill = occ.spill_share.min(0.89);
    let spill_txns = total_txns * spill / (1.0 - spill);
    let txn_ns = m.l2_hits as f64 * cm.l2_hit_ns
        + m.l2_misses as f64 * cm.dram_txn_ns
        + m.miss_sectors as f64 * cm.dram_sector_ns
        + m.atomic_txns as f64 * cm.atomic_ns
        + spill_txns * cm.l2_hit_ns;
    // Under-occupancy starves latency hiding: too few resident warps to
    // keep the memory system saturated.
    let mem_util = (occ.achieved * arch.max_warps_per_sm as f64 / cm.saturation_warps).min(1.0);
    let mem_seconds = txn_ns * ns / mem_util.max(0.05);

    // Compute time: warp steps over the device's aggregate issue rate.
    // Like the memory system, the schedulers saturate once enough warps are
    // resident; below that, issue slots idle while warps wait on memory.
    let compute_util =
        (occ.achieved * arch.max_warps_per_sm as f64 / cm.saturation_warps).min(1.0);
    let compute_seconds = m.warp_steps as f64 * cm.issue_ns * ns / compute_util.max(0.05);

    // Contention: analytic expected-conflict model. An update pays a
    // congestion cost proportional to how crowded the structure is
    // (concurrent actors / contended units); congestion costs a lock wait
    // (GFSL) or a CAS retry round (M&C). The cost is charged per *update*
    // — i.e. overall contention time grows linearly in the update share.
    // (A naive birthday model would square the update share, but measured
    // GPU behaviour — the paper's Fig. 5.3 dips across mixtures — shows
    // sub-quadratic growth: waits overlap with the waiters' own memory
    // stalls and with lock-queue service.) Host-measured retry counts are
    // reported but not extrapolated: at host concurrency they are far too
    // sparse to predict thousands of GPU teams.
    let gpu_actors = (occ.active_warps * arch.sms) as f64
        * if m.op_per_lane {
            arch.warp_size as f64
        } else {
            1.0
        };
    let congestion = (gpu_actors / m.contention_units.max(1) as f64).min(1.0);
    let per_conflict = if m.blocking_updates {
        cm.lock_wait_ns
    } else {
        cm.cas_retry_ns
    };
    let contention_raw = m.update_ops as f64 * congestion * per_conflict * ns;
    // Overlap bound: a warp stalled on a lock/CAS only costs device
    // throughput to the extent the SM lacks other ready warps to cover for
    // it. With ~32 resident warps per SM much of a stall is hidden, so the
    // *visible* contention cost is bounded by a multiple of the useful
    // (memory/compute) time. Without this bound, pure-update workloads on
    // small structures (Fig. 5.4b/c at small ranges) would be modeled as
    // contention-collapsed, which the paper's measurements contradict; the
    // multiple (1.5) trades that against the depth of the mixed-workload
    // small-range dip (Fig. 5.3).
    let base_seconds = mem_seconds.max(compute_seconds);
    let contention_seconds = contention_raw.min(1.5 * base_seconds);

    let seconds = base_seconds + contention_seconds;
    let mops = if seconds > 0.0 {
        m.n_ops as f64 / seconds / 1e6
    } else {
        f64::INFINITY
    };
    Throughput {
        mops,
        seconds,
        mem_seconds,
        compute_seconds,
        contention_seconds,
        memory_bound: mem_seconds >= compute_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{KernelProfile, LaunchConfig};
    use crate::occupancy::occupancy;

    fn anchor_occ(kernel: KernelProfile, warps: u32) -> Occupancy {
        occupancy(&GpuArch::gtx970(), &kernel, &LaunchConfig { warps_per_block: warps })
    }

    /// A structure-free sanity check: all-miss traffic costs more time than
    /// all-hit traffic of the same volume.
    #[test]
    fn misses_cost_more_than_hits() {
        let arch = GpuArch::gtx970();
        let occ = anchor_occ(KernelProfile::gfsl(), 16);
        let cm = CostModel::calibrated();
        let base = RunMeasurement {
            n_ops: 1_000_000,
            read_txns: 8_000_000,
            warp_steps: 4_000_000,
            host_workers: 8,
            ..Default::default()
        };
        let hits = predict(&arch, &occ, &cm, &RunMeasurement { l2_hits: 8_000_000, ..base });
        let misses = predict(
            &arch,
            &occ,
            &cm,
            &RunMeasurement { l2_misses: 8_000_000, miss_sectors: 32_000_000, ..base },
        );
        assert!(misses.seconds > hits.seconds * 2.0);
        assert!(misses.mops < hits.mops);
    }

    /// Spill inflates memory time (the Table 5.1 inverted-U's right side).
    #[test]
    fn spill_share_hurts_memory_bound_runs() {
        let arch = GpuArch::gtx970();
        let cm = CostModel::calibrated();
        let m = RunMeasurement {
            n_ops: 1_000_000,
            read_txns: 8_000_000,
            l2_misses: 8_000_000,
            miss_sectors: 32_000_000,
            warp_steps: 1_000_000,
            host_workers: 8,
            ..Default::default()
        };
        let o16 = anchor_occ(KernelProfile::gfsl(), 16); // 10% spill
        let o32 = anchor_occ(KernelProfile::gfsl(), 32); // ~53% spill
        let t16 = predict(&arch, &o16, &cm, &m);
        let t32 = predict(&arch, &o32, &cm, &m);
        assert!(
            t32.mops < t16.mops,
            "32-warp config must lose to 16 despite higher occupancy: {} vs {}",
            t32.mops,
            t16.mops
        );
    }

    /// Low occupancy starves latency hiding (the inverted-U's left side).
    #[test]
    fn low_occupancy_hurts_despite_zero_spill() {
        let arch = GpuArch::gtx970();
        let cm = CostModel::calibrated();
        let m = RunMeasurement {
            n_ops: 1_000_000,
            read_txns: 8_000_000,
            l2_misses: 8_000_000,
            miss_sectors: 32_000_000,
            warp_steps: 1_000_000,
            host_workers: 8,
            ..Default::default()
        };
        let o8 = anchor_occ(KernelProfile::gfsl(), 8); // 24 warps, 0 spill
        let o16 = anchor_occ(KernelProfile::gfsl(), 16); // 32 warps, 10% spill
        let t8 = predict(&arch, &o8, &cm, &m);
        let t16 = predict(&arch, &o16, &cm, &m);
        // The paper's Table 5.1: 16 warps (65.7) beats 8 warps (58.9).
        assert!(t16.mops > t8.mops, "{} vs {}", t16.mops, t8.mops);
    }

    #[test]
    fn contention_grows_as_structure_shrinks() {
        let arch = GpuArch::gtx970();
        let occ = anchor_occ(KernelProfile::gfsl(), 16);
        let cm = CostModel::calibrated();
        let base = RunMeasurement {
            n_ops: 1_000_000,
            read_txns: 40_000_000,
            l2_misses: 40_000_000,
            miss_sectors: 160_000_000,
            warp_steps: 1_000_000,
            update_ops: 200_000,
            contention_units: 300,
            blocking_updates: true,
            host_workers: 8,
            ..Default::default()
        };
        let small = predict(&arch, &occ, &cm, &base);
        let big = predict(
            &arch,
            &occ,
            &cm,
            &RunMeasurement { contention_units: 30_000, ..base },
        );
        assert!(small.contention_seconds > big.contention_seconds * 10.0);
        // Read-only runs never pay contention.
        let ro = predict(&arch, &occ, &cm, &RunMeasurement { update_ops: 0, ..base });
        assert_eq!(ro.contention_seconds, 0.0);
    }

    #[test]
    fn lock_waits_cost_more_than_cas_retries() {
        let arch = GpuArch::gtx970();
        let cm = CostModel::calibrated();
        let base = RunMeasurement {
            n_ops: 1_000_000,
            read_txns: 40_000_000,
            l2_misses: 40_000_000,
            miss_sectors: 160_000_000,
            warp_steps: 1_000_000,
            update_ops: 400_000,
            contention_units: 1_000,
            blocking_updates: true,
            host_workers: 8,
            ..Default::default()
        };
        let locking = predict(&arch, &anchor_occ(KernelProfile::gfsl(), 16), &cm, &base);
        let casing = predict(
            &arch,
            &anchor_occ(KernelProfile::gfsl(), 16),
            &cm,
            &RunMeasurement { blocking_updates: false, ..base },
        );
        assert!(locking.contention_seconds > casing.contention_seconds);
    }

    #[test]
    fn contention_is_bounded_by_overlap_with_useful_work() {
        // A pure-update run on a tiny structure: raw contention would dwarf
        // the base time, but the visible cost is capped at 60% of it.
        let arch = GpuArch::gtx970();
        let occ = anchor_occ(KernelProfile::gfsl(), 16);
        let cm = CostModel::calibrated();
        let m = RunMeasurement {
            n_ops: 100_000,
            read_txns: 400_000,
            l2_hits: 400_000,
            warp_steps: 500_000,
            update_ops: 100_000, // all updates
            contention_units: 10, // absurdly contended
            blocking_updates: true,
            host_workers: 8,
            ..Default::default()
        };
        let t = predict(&arch, &occ, &cm, &m);
        let base = t.mem_seconds.max(t.compute_seconds);
        assert!(t.contention_seconds <= base * 1.5 + 1e-12);
        assert!(t.contention_seconds > 0.0);
    }

    #[test]
    fn throughput_is_finite_and_positive_for_real_runs() {
        let arch = GpuArch::gtx970();
        let occ = anchor_occ(KernelProfile::mc(), 16);
        let cm = CostModel::calibrated();
        let m = RunMeasurement {
            n_ops: 10_000_000,
            read_txns: 300_000_000,
            l2_hits: 60_000_000,
            l2_misses: 240_000_000,
            miss_sectors: 260_000_000,
            atomic_txns: 2_000_000,
            warp_steps: 80_000_000,
            retries: 5_000,
            host_workers: 8,
            write_txns: 1_000_000,
            update_ops: 2_000_000,
            contention_units: 500_000,
            op_per_lane: true,
            blocking_updates: false,
        };
        let t = predict(&arch, &occ, &cm, &m);
        assert!(t.mops.is_finite() && t.mops > 0.0);
        assert!(t.memory_bound, "M&C-like traffic must be memory-bound");
    }
}
