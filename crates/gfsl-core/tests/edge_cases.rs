//! Edge-case tests for the GFSL core: extreme keys, chunk-boundary
//! behaviours, head-chunk zombies, stats accounting, and handle plumbing.

use gfsl::{Gfsl, GfslParams, TeamSize};

fn list16() -> Gfsl {
    Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        ..Default::default()
    })
    .unwrap()
}

#[test]
fn extreme_user_keys_roundtrip() {
    let list = list16();
    let mut h = list.handle();
    for k in [1u32, 2, u32::MAX - 2, u32::MAX - 1] {
        assert!(h.insert(k, k ^ 0xFFFF).unwrap(), "k={k}");
    }
    for k in [1u32, 2, u32::MAX - 2, u32::MAX - 1] {
        assert_eq!(h.get(k), Some(k ^ 0xFFFF), "k={k}");
    }
    assert!(h.remove(u32::MAX - 1));
    assert!(!h.contains(u32::MAX - 1));
    assert!(h.contains(u32::MAX - 2));
    list.assert_valid();
}

#[test]
fn min_entry_tracks_minimum_through_churn() {
    let list = list16();
    let mut h = list.handle();
    assert_eq!(h.min_entry(), None);
    h.insert(500, 5).unwrap();
    assert_eq!(h.min_entry(), Some((500, 5)));
    h.insert(100, 1).unwrap();
    assert_eq!(h.min_entry(), Some((100, 1)));
    h.insert(300, 3).unwrap();
    assert_eq!(h.min_entry(), Some((100, 1)));
    assert!(h.remove(100));
    assert_eq!(h.min_entry(), Some((300, 3)));
    assert!(h.remove(300));
    assert!(h.remove(500));
    assert_eq!(h.min_entry(), None);
}

/// Drain a multi-chunk level-0 chain from the left so the head chunk keeps
/// merging away: searches must keep working through the zombie chain and
/// the head pointer must eventually be repaired.
#[test]
fn head_chunk_zombie_chain_is_survivable() {
    let list = list16();
    let mut h = list.handle();
    for k in 1..=400u32 {
        h.insert(k, k).unwrap();
    }
    // Delete ascending: the leftmost chunks underflow and merge rightward.
    for k in 1..=300u32 {
        assert!(h.remove(k), "k={k}");
    }
    assert!(h.stats().merges > 0);
    for k in 301..=400u32 {
        assert!(h.contains(k), "k={k}");
    }
    assert!(!h.contains(1));
    assert_eq!(h.min_entry().map(|(k, _)| k), Some(301));
    list.assert_valid();
    assert_eq!(list.len(), 100);
}

/// Insert at a position before every existing key in a chunk (index 0 of a
/// non-first chunk) — the executeInsert edge where the new key becomes the
/// chunk minimum.
#[test]
fn insert_below_chunk_minimum() {
    let list = list16();
    let mut h = list.handle();
    // Build two chunks: 1..14 splits around 7.
    for k in (1..=28u32).map(|k| k * 10) {
        h.insert(k, k).unwrap();
    }
    assert!(h.stats().splits >= 1);
    // 145 falls strictly between chunk boundaries; 5 goes below everything.
    h.insert(145, 1).unwrap();
    h.insert(5, 2).unwrap();
    assert_eq!(h.get(145), Some(1));
    assert_eq!(h.get(5), Some(2));
    list.assert_valid();
}

/// Deleting the maximum key of each chunk exercises the max-field update
/// path repeatedly.
#[test]
fn repeatedly_delete_chunk_maxima() {
    let list = list16();
    let mut h = list.handle();
    for k in 1..=200u32 {
        h.insert(k, k).unwrap();
    }
    // Walk down from the global max; every few deletions hit a chunk max.
    for k in (100..=200u32).rev() {
        assert!(h.remove(k), "k={k}");
        list.assert_valid();
    }
    for k in 1..100u32 {
        assert!(h.contains(k));
    }
}

#[test]
fn stats_counters_move_sensibly() {
    let list = list16();
    let mut h = list.handle();
    for k in 1..=100u32 {
        h.insert(k, k).unwrap();
    }
    let s = h.stats();
    assert_eq!(s.insert_ops, 100);
    assert!(s.splits >= 5, "100 keys / 14-entry chunks must split");
    assert!(s.locks_taken >= 100);
    assert!(s.chunk_reads > 100);
    h.reset_stats();
    assert_eq!(h.stats().insert_ops, 0);
    h.contains(1);
    assert_eq!(h.stats().contains_ops, 1);
}

#[test]
fn into_parts_returns_probe_and_stats() {
    use gfsl_gpu_mem::{CountingProbe, L2Cache};
    use std::sync::Arc;
    let list = list16();
    let mut h = list.handle_with(CountingProbe::new(Arc::new(L2Cache::gtx970())));
    h.insert(9, 9).unwrap();
    let (probe, stats) = h.into_parts();
    assert_eq!(stats.insert_ops, 1);
    assert!(probe.traffic().read_txns > 0);
}

/// p_chunk = 0.5: probabilistic raising still yields a correct structure
/// and at least some upper-level population over many splits.
#[test]
fn fractional_p_chunk() {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        p_chunk: 0.5,
        ..Default::default()
    })
    .unwrap();
    let mut h = list.handle();
    for k in 1..=3_000u32 {
        h.insert(k, k).unwrap();
    }
    assert!(list.height() >= 1, "some splits must raise at p=0.5");
    for k in (1..=3_000u32).step_by(17) {
        assert!(h.contains(k));
    }
    list.assert_valid();
}

/// Aggressive merge threshold (DSIZE/2) must still be correct.
#[test]
fn eager_merge_threshold() {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        merge_divisor: 2,
        ..Default::default()
    })
    .unwrap();
    let mut h = list.handle();
    let mut reference = std::collections::BTreeSet::new();
    let mut x = 7u64;
    for _ in 0..20_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = (x % 600 + 1) as u32;
        if (x >> 37) & 1 == 0 {
            assert_eq!(h.insert(k, k).unwrap(), reference.insert(k));
        } else {
            assert_eq!(h.remove(k), reference.remove(&k));
        }
    }
    assert!(h.stats().merges > 0, "divisor 2 merges eagerly");
    let keys: Vec<u32> = reference.into_iter().collect();
    assert_eq!(list.keys(), keys);
    list.assert_valid();
}

/// Lazy merge threshold (DSIZE/6) leaves sparser chunks but stays correct.
#[test]
fn lazy_merge_threshold() {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::ThirtyTwo,
        merge_divisor: 6,
        ..Default::default()
    })
    .unwrap();
    let mut h = list.handle();
    for k in 1..=1_000u32 {
        h.insert(k, k).unwrap();
    }
    for k in (1..=1_000u32).filter(|k| k % 3 != 0) {
        assert!(h.remove(k));
    }
    list.assert_valid();
    assert_eq!(list.len(), 333);
}

/// Values are independent of keys and survive heavy restructuring.
#[test]
fn values_survive_splits_and_merges() {
    let list = list16();
    let mut h = list.handle();
    for k in 1..=500u32 {
        h.insert(k, k.wrapping_mul(0x9E37_79B9)).unwrap();
    }
    for k in (1..=500u32).step_by(2) {
        assert!(h.remove(k));
    }
    for k in (2..=500u32).step_by(2) {
        assert_eq!(h.get(k), Some(k.wrapping_mul(0x9E37_79B9)), "k={k}");
    }
}

#[test]
fn upsert_inserts_then_overwrites() {
    let list = list16();
    let mut h = list.handle();
    assert_eq!(h.upsert(10, 100), Ok(None));
    assert_eq!(h.get(10), Some(100));
    assert_eq!(h.upsert(10, 200), Ok(Some(100)));
    assert_eq!(h.get(10), Some(200));
    assert!(h.remove(10));
    assert_eq!(h.upsert(10, 300), Ok(None), "fresh after remove");
    assert_eq!(h.get(10), Some(300));
    assert!(matches!(h.upsert(0, 1), Err(gfsl::Error::InvalidKey(0))));
    list.assert_valid();
}

#[test]
fn concurrent_upserts_last_writer_wins_per_key() {
    let list = list16();
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let list = &list;
            s.spawn(move || {
                let mut h = list.handle();
                for round in 0..2_000u32 {
                    for k in 1..=50u32 {
                        h.upsert(k, t * 1_000_000 + round).unwrap();
                    }
                }
            });
        }
    });
    list.assert_valid();
    let pairs = list.pairs();
    assert_eq!(pairs.len(), 50);
    // Every surviving value was written by some thread's final rounds.
    for (k, v) in pairs {
        assert!((1..=50).contains(&k));
        assert!(v % 1_000_000 < 2_000, "value {v} must be a valid round tag");
    }
}

/// A handle sequence on an empty structure: removes and lookups on the
/// pristine sentinels.
#[test]
fn empty_structure_operations() {
    let list = list16();
    let mut h = list.handle();
    assert!(!h.remove(5));
    assert!(!h.contains(5));
    assert_eq!(h.get(5), None);
    assert_eq!(h.min_entry(), None);
    assert_eq!(list.len(), 0);
    list.assert_valid();
}
