//! Per-handle operation statistics.
//!
//! The harness uses these to reproduce the paper's contention effects (the
//! mixed-workload throughput "dip" in small key ranges, §5.3) and to verify
//! the "< 0.01% of Contains restart" claim (§4.2.1).

/// Number of skiplist levels the multi-level finger caches (level 0 = the
/// bottom hint; deeper levels are rarely populated — a 1M-key list is ~4
/// levels tall — so 8 covers every realistic height and the histogram
/// clamps above it).
pub const FINGER_LEVELS: usize = 8;

/// Counters accumulated by one [`crate::GfslHandle`]. Merge across handles
/// for run totals.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// Completed `contains`/`get` operations.
    pub contains_ops: u64,
    /// Completed `insert` calls (including duplicates rejected).
    pub insert_ops: u64,
    /// Completed `remove` calls (including missing keys).
    pub remove_ops: u64,
    /// Full restarts of the lock-free search (the paper's rare edge case).
    pub search_restarts: u64,
    /// Re-reads taken to certify a negative answer (NotFound, range scan,
    /// min-entry) against a concurrent writer: a snapshot whose bracketing
    /// lock words differed (or were locked) is discarded and retried. These
    /// are expected to be common under write contention and are deliberately
    /// NOT counted as `search_restarts`, which tracks the paper's §4.2.1
    /// backtrack-restart claim.
    pub certify_retries: u64,
    /// Successful lock acquisitions.
    pub locks_taken: u64,
    /// Failed lock CAS attempts plus re-read spins while a chunk was held
    /// by another team — the contention signal.
    pub lock_retries: u64,
    /// Backoff waits that escalated past pure spinning into a scheduler
    /// yield (the exponential-backoff tail).
    pub lock_backoff_yields: u64,
    /// Lock acquisitions that crossed the starvation threshold
    /// ([`crate::skiplist::STARVATION_RETRIES`] retries) before succeeding —
    /// each one is a team that went effectively unserved for a long window.
    pub lock_starvation_events: u64,
    /// Chunk splits performed.
    pub splits: u64,
    /// Chunk merges performed (zombies created).
    pub merges: u64,
    /// Lazy next-pointer redirections that unlinked a zombie.
    pub zombie_unlinks: u64,
    /// Down-pointers repaired after splits/merges.
    pub downptr_fixes: u64,
    /// Lockstep traversal steps (chunk reads) executed.
    pub chunk_reads: u64,
    /// Traversal-hint validations that succeeded: the read started its
    /// bottom-level walk at the cached chunk instead of a full descent.
    pub hint_hits: u64,
    /// Traversal-hint validations that failed (lock word moved or the
    /// cached chunk no longer encloses the key): full descent taken.
    pub hint_misses: u64,
    /// Finger restarts by level: slot `d` counts descents that resumed from
    /// a still-valid cached chunk at level `d` (slot 0 = the bottom hint
    /// answered directly; levels above `FINGER_LEVELS - 1` clamp into the
    /// top slot). Only populated when `fingers` is on.
    pub finger_depth_hits: [u64; FINGER_LEVELS],
    /// Descents where no cached finger level validated (restart from head).
    pub finger_misses: u64,
    /// Software prefetches issued for a predicted next chunk.
    pub prefetch_issued: u64,
    /// Lateral steps that skimmed only the `(max, next)` word instead of
    /// reading the whole chunk (the fingered max-skip walk).
    pub skip_reads: u64,
}

impl OpStats {
    /// Fresh, zeroed counters.
    pub fn new() -> OpStats {
        OpStats::default()
    }

    /// Total completed operations.
    pub fn total_ops(&self) -> u64 {
        self.contains_ops + self.insert_ops + self.remove_ops
    }

    /// Fraction of hint validations that succeeded (the locality signal:
    /// near 1.0 for key-sorted batch dispatch, near 0.0 for uncorrelated
    /// streams). `None` when the hint cache was never consulted.
    pub fn hint_hit_rate(&self) -> Option<f64> {
        let probes = self.hint_hits + self.hint_misses;
        if probes == 0 {
            None
        } else {
            Some(self.hint_hits as f64 / probes as f64)
        }
    }

    /// Fraction of fingered descents that resumed from some cached level
    /// (any depth) rather than the head. `None` when fingers never ran.
    pub fn finger_hit_rate(&self) -> Option<f64> {
        let hits: u64 = self.finger_depth_hits.iter().sum();
        let probes = hits + self.finger_misses;
        if probes == 0 {
            None
        } else {
            Some(hits as f64 / probes as f64)
        }
    }

    /// Merge another handle's counters into this one.
    pub fn merge(&mut self, o: &OpStats) {
        self.contains_ops += o.contains_ops;
        self.insert_ops += o.insert_ops;
        self.remove_ops += o.remove_ops;
        self.search_restarts += o.search_restarts;
        self.certify_retries += o.certify_retries;
        self.locks_taken += o.locks_taken;
        self.lock_retries += o.lock_retries;
        self.lock_backoff_yields += o.lock_backoff_yields;
        self.lock_starvation_events += o.lock_starvation_events;
        self.splits += o.splits;
        self.merges += o.merges;
        self.zombie_unlinks += o.zombie_unlinks;
        self.downptr_fixes += o.downptr_fixes;
        self.chunk_reads += o.chunk_reads;
        self.hint_hits += o.hint_hits;
        self.hint_misses += o.hint_misses;
        for (d, v) in self.finger_depth_hits.iter_mut().zip(&o.finger_depth_hits) {
            *d += v;
        }
        self.finger_misses += o.finger_misses;
        self.prefetch_issued += o.prefetch_issued;
        self.skip_reads += o.skip_reads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = OpStats {
            contains_ops: 1,
            insert_ops: 2,
            remove_ops: 3,
            search_restarts: 1,
            certify_retries: 4,
            locks_taken: 5,
            lock_retries: 6,
            lock_backoff_yields: 12,
            lock_starvation_events: 13,
            splits: 7,
            merges: 8,
            zombie_unlinks: 9,
            downptr_fixes: 10,
            chunk_reads: 11,
            hint_hits: 14,
            hint_misses: 15,
            finger_depth_hits: [1, 2, 0, 0, 0, 0, 0, 0],
            finger_misses: 16,
            prefetch_issued: 17,
            skip_reads: 18,
        };
        assert_eq!(a.total_ops(), 6);
        let b = a;
        a.merge(&b);
        assert_eq!(a.total_ops(), 12);
        assert_eq!(a.chunk_reads, 22);
        assert_eq!(a.hint_hits, 28);
        assert_eq!(a.hint_misses, 30);
        assert_eq!(a.downptr_fixes, 20);
        assert_eq!(a.lock_backoff_yields, 24);
        assert_eq!(a.lock_starvation_events, 26);
        assert_eq!(a.certify_retries, 8);
        assert_eq!(a.finger_depth_hits, [2, 4, 0, 0, 0, 0, 0, 0]);
        assert_eq!(a.finger_misses, 32);
        assert_eq!(a.prefetch_issued, 34);
        assert_eq!(a.skip_reads, 36);
    }

    #[test]
    fn finger_hit_rate_counts_all_depths() {
        let mut s = OpStats::new();
        assert_eq!(s.finger_hit_rate(), None);
        s.finger_depth_hits[0] = 2;
        s.finger_depth_hits[3] = 1;
        s.finger_misses = 1;
        assert!((s.finger_hit_rate().unwrap() - 0.75).abs() < 1e-12);
    }
}
