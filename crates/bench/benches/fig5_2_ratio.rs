//! Fig. 5.2 — the GFSL/M&C ratio is a derived artifact; this bench covers
//! the piece unique to it: generating the four paper mixtures' operation
//! streams and the prefill key sets that every ratio cell consumes.

use criterion::{criterion_group, criterion_main, Criterion};
use gfsl_workload::{OpMix, Prefill, WorkloadSpec};

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_2_workloads");

    for mix in OpMix::MIXED {
        g.bench_function(format!("stream_{mix}_100k_ops"), |b| {
            b.iter(|| mix.stream(42, 1_000_000, 100_000))
        });
    }

    g.bench_function("prefill_half_random_1M", |b| {
        b.iter(|| Prefill::HalfRandom.keys(1_000_000, 42))
    });

    g.bench_function("prefill_full_shuffled_1M", |b| {
        b.iter(|| Prefill::FullShuffled.keys(1_000_000, 42))
    });

    g.bench_function("spec_single_op_insert_1M", |b| {
        b.iter(|| {
            WorkloadSpec::single(gfsl_workload::BenchKind::InsertOnly, 1_000_000, 0, 42).ops()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_workload_generation);
criterion_main!(benches);
