//! Socket-level integration tests for the edge server: full round trips,
//! commit-before-ack durability, typed overload shedding, slow-client
//! timeouts, framing-violation handling, and read-your-writes under live
//! shard migrations.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gfsl::{Gfsl, GfslParams};
use gfsl_cluster::Cluster;
use gfsl_edge::proto::{self, Req, Resp};
use gfsl_edge::{EdgeClient, EdgeConfig, EdgeEngine, EdgeServer};
use gfsl_serve::MemorySink;

fn single_engine() -> EdgeEngine {
    EdgeEngine::Single(Arc::new(Gfsl::new(GfslParams::default()).unwrap()))
}

fn connect(server: &EdgeServer) -> EdgeClient {
    EdgeClient::connect(server.addr(), Some(Duration::from_secs(5))).unwrap()
}

#[test]
fn every_op_round_trips_over_the_wire() {
    let server = EdgeServer::start(single_engine(), EdgeConfig::default()).unwrap();
    let mut c = connect(&server);

    assert_eq!(c.call(Req::Ping).unwrap(), Resp::Pong);
    assert_eq!(c.insert(10, 100).unwrap(), Resp::Inserted(true));
    assert_eq!(c.insert(20, 200).unwrap(), Resp::Inserted(true));
    assert_eq!(c.insert(10, 100).unwrap(), Resp::Inserted(false));
    assert_eq!(c.get(10).unwrap(), Resp::Got(Some(100)));
    assert_eq!(c.get(99).unwrap(), Resp::Got(None));
    assert_eq!(c.call(Req::Range(1, 50)).unwrap(), Resp::Ranged(2));
    assert_eq!(c.call(Req::MinEntry).unwrap(), Resp::MinIs(Some((10, 100))));
    assert_eq!(c.pop_min().unwrap(), Resp::Popped(Some((10, 100))));
    assert_eq!(c.delete(20).unwrap(), Resp::Deleted(true));
    assert_eq!(c.pop_min().unwrap(), Resp::Popped(None));

    let stats = server.shutdown();
    assert_eq!(stats.pings, 1);
    assert!(stats.ops_ok >= 10);
    assert_eq!(stats.proto_errors, 0);
    assert_eq!(stats.ryw_violations, 0, "single session, disjoint keys");
}

#[test]
fn pipelined_requests_come_back_id_matched() {
    let server = EdgeServer::start(single_engine(), EdgeConfig::default()).unwrap();
    let mut c = connect(&server);
    let ids: Vec<(u64, u32)> = (1..=64u32).map(|k| (c.send(Req::Insert(k, k * 10)), k)).collect();
    for (id, k) in &ids {
        assert_eq!(c.recv(*id).unwrap(), Resp::Inserted(true), "key {k}");
    }
    // Claim out of order: query evens before odds.
    let gets: Vec<(u64, u32)> = (1..=64u32).map(|k| (c.send(Req::Get(k)), k)).collect();
    for (id, k) in gets.iter().filter(|(_, k)| k % 2 == 0) {
        assert_eq!(c.recv(*id).unwrap(), Resp::Got(Some(k * 10)));
    }
    for (id, k) in gets.iter().filter(|(_, k)| k % 2 == 1) {
        assert_eq!(c.recv(*id).unwrap(), Resp::Got(Some(k * 10)));
    }
    server.shutdown();
}

#[test]
fn writes_commit_to_the_sink_before_ack() {
    let sink = Arc::new(Mutex::new(MemorySink::default()));
    let server = EdgeServer::start_durable(
        single_engine(),
        EdgeConfig::default(),
        sink.clone(),
    )
    .unwrap();
    let mut c = connect(&server);

    assert_eq!(c.insert(7, 70).unwrap(), Resp::Inserted(true));
    // The ack has arrived, so the effect must already be in the sink —
    // commit-before-ack means no window where the reply exists but the
    // durable record does not.
    {
        let s = sink.lock().unwrap();
        assert!(s.commits >= 1);
        assert!(s
            .effects
            .iter()
            .any(|e| e.key == 7 && e.value == Some(70)));
    }
    assert_eq!(c.delete(7).unwrap(), Resp::Deleted(true));
    {
        let s = sink.lock().unwrap();
        assert!(s.effects.iter().any(|e| e.key == 7 && e.value.is_none()));
    }
    // Reads and no-op writes add no effects.
    let effects_now = sink.lock().unwrap().effects.len();
    assert_eq!(c.get(7).unwrap(), Resp::Got(None));
    assert_eq!(c.delete(7).unwrap(), Resp::Deleted(false));
    assert_eq!(sink.lock().unwrap().effects.len(), effects_now);
    server.shutdown();
}

#[test]
fn overload_sheds_with_typed_frames_and_the_connection_survives() {
    // Tiny admission bound, long epoch deadline: a pipelined burst must
    // overflow admission and come back as typed Shed frames — not as a
    // closed connection.
    let cfg = EdgeConfig {
        workers: 1,
        batch_ops: 8,
        intake_cap: 8,
        epoch_us: 2_000,
        drain_ns_per_req: 1_000_000, // 1 ms/req so hints are nonzero ms
        ..EdgeConfig::default()
    };
    let server = EdgeServer::start(single_engine(), cfg).unwrap();
    let mut c = connect(&server);

    let ids: Vec<u64> = (1..=512u32).map(|k| c.send(Req::Insert(k, k))).collect();
    let mut ok = 0u64;
    let mut shed = 0u64;
    for id in ids {
        match c.recv(id).unwrap() {
            Resp::Inserted(_) => ok += 1,
            Resp::Shed { retry_after_ms, .. } => {
                shed += 1;
                assert!(retry_after_ms >= 1, "drain hint surfaces in ms");
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(ok > 0, "some of the burst is admitted");
    assert!(shed > 0, "the rest sheds with typed frames");
    // The same connection still serves after the storm.
    assert_eq!(c.call(Req::Ping).unwrap(), Resp::Pong);
    assert_eq!(c.get(1).unwrap(), Resp::Got(Some(1)));

    let stats = server.shutdown();
    assert_eq!(stats.sheds, shed);
    assert_eq!(stats.proto_errors, 0);
    assert_eq!(stats.timeouts, 0);
}

#[test]
fn malformed_frame_answers_proto_then_sheds_the_connection() {
    let server = EdgeServer::start(single_engine(), EdgeConfig::default()).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut hello = Vec::new();
    proto::encode_hello(&mut hello);
    s.write_all(&hello).unwrap();
    let mut server_hello = [0u8; proto::HELLO_LEN];
    s.read_exact(&mut server_hello).unwrap();
    proto::check_hello(&server_hello).unwrap();

    // A frame with a hostile length field (64 KiB claim).
    s.write_all(&u16::MAX.to_le_bytes()).unwrap();

    // Expect exactly one typed Proto frame, then EOF.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 256];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("expected clean close, got {e}"),
        }
    }
    let (id, resp, used) = proto::decode_resp(&buf).unwrap();
    assert_eq!(id, 0);
    assert_eq!(
        resp,
        Resp::Proto { code: proto::DecodeError::Oversized(u16::MAX).code() }
    );
    assert_eq!(used, buf.len(), "nothing after the final error frame");

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let st = server.stats();
        if st.proto_errors == 1 && st.conns_closed >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "proto shed not accounted: {st:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn slow_clients_time_out_but_idle_clients_do_not() {
    let cfg = EdgeConfig {
        idle_timeout_ms: 150,
        ..EdgeConfig::default()
    };
    let server = EdgeServer::start(single_engine(), cfg).unwrap();

    // An idle-but-clean client survives well past the timeout.
    let mut idle = connect(&server);
    // A slowloris: handshake, then a partial frame and silence.
    let mut slow = TcpStream::connect(server.addr()).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut hello = Vec::new();
    proto::encode_hello(&mut hello);
    slow.write_all(&hello).unwrap();
    let mut server_hello = [0u8; proto::HELLO_LEN];
    slow.read_exact(&mut server_hello).unwrap();
    let mut frame = Vec::new();
    Req::Insert(1, 1).encode(9, &mut frame);
    slow.write_all(&frame[..3]).unwrap(); // length + first byte, then stall

    std::thread::sleep(Duration::from_millis(500));

    // The stalled connection was dropped...
    let mut chunk = [0u8; 64];
    assert_eq!(slow.read(&mut chunk).unwrap(), 0, "slowloris gets EOF");
    // ...the idle one still serves.
    assert_eq!(idle.call(Req::Ping).unwrap(), Resp::Pong);

    let stats = server.shutdown();
    assert_eq!(stats.timeouts, 1, "exactly the stalled session timed out");
}

#[test]
fn snap_range_serves_pinned_counts_over_the_wire() {
    // A scan tenant against an mvcc cluster engine: pinned counts answer
    // at the edge (outside the epoch batch), carry a nondecreasing
    // snapshot version, and a hostile window fails typed — the
    // connection survives all of it.
    let params = GfslParams { mvcc: true, ..GfslParams::default() };
    let cluster = Arc::new(Cluster::new(params, 2).unwrap());
    let server = EdgeServer::start(
        EdgeEngine::Cluster(cluster.clone()),
        EdgeConfig::default(),
    )
    .unwrap();
    let mut c = connect(&server);

    for k in 1..=50u32 {
        assert!(matches!(c.insert(k, k).unwrap(), Resp::Inserted(true)));
    }
    let Resp::Snapped { version: v1, count } = c.snap_range(1, 100).unwrap() else {
        panic!("expected Snapped");
    };
    assert_eq!(count, 50);
    assert!(v1 >= 1, "mvcc engine stamps a real version");

    // More writes advance the clock; a later snapshot never reads older.
    for k in 51..=80u32 {
        assert!(matches!(c.insert(k, k).unwrap(), Resp::Inserted(true)));
    }
    let Resp::Snapped { version: v2, count } = c.snap_range(1, 100).unwrap() else {
        panic!("expected Snapped");
    };
    assert_eq!(count, 80);
    assert!(v2 > v1, "snapshot versions advance with the write clock");

    // Hostile windows: typed failure, connection intact.
    assert!(matches!(c.snap_range(0, 10).unwrap(), Resp::Failed { .. }));
    assert!(matches!(c.snap_range(9, 3).unwrap(), Resp::Failed { .. }));
    assert_eq!(c.get(1).unwrap(), Resp::Got(Some(1)));

    // An engine without the knob still answers, unpinned.
    let plain = EdgeServer::start(single_engine(), EdgeConfig::default()).unwrap();
    let mut p = connect(&plain);
    assert!(matches!(p.insert(5, 5).unwrap(), Resp::Inserted(true)));
    assert_eq!(
        p.snap_range(1, 10).unwrap(),
        Resp::Snapped { version: 0, count: 1 },
        "mvcc-off fallback reports version 0"
    );
    plain.shutdown();

    let stats = server.shutdown();
    assert_eq!(stats.snaps, 4, "two pinned counts + two rejected windows");
    assert_eq!(stats.proto_errors, 0);
}

#[test]
fn read_your_writes_holds_across_live_shard_migrations() {
    // The satellite regression test: sessions hammer write→read cycles in
    // disjoint key namespaces over a cluster engine while a churn thread
    // splits and merges shards under them. Every read must see the
    // session's own last acknowledged write; the server-side tracker
    // counts violations exactly because the namespaces are disjoint.
    let cluster = Arc::new(Cluster::new(GfslParams::default(), 4).unwrap());
    let server = EdgeServer::start(
        EdgeEngine::Cluster(cluster.clone()),
        EdgeConfig { workers: 2, ..EdgeConfig::default() },
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let cluster = cluster.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let ids: Vec<u64> = cluster.shards().iter().map(|s| s.id).collect();
                if round % 2 == 0 {
                    for id in &ids {
                        let _ = cluster.split_shard(*id);
                    }
                } else {
                    for id in &ids {
                        let _ = cluster.merge_with_right(*id);
                    }
                }
                round += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    const SESSIONS: usize = 4;
    const SPAN: u32 = 1 << 20; // spread namespaces across the shard space
    let mut workers = Vec::new();
    for t in 0..SESSIONS {
        let addr = server.addr();
        workers.push(std::thread::spawn(move || {
            let mut c = EdgeClient::connect(addr, Some(Duration::from_secs(5))).unwrap();
            let base = (t as u32) * SPAN + 1;
            let mut checks = 0u64;
            for round in 0..120u32 {
                let k = base + (round % 32) * 97;
                assert!(matches!(c.insert(k, round + 1).unwrap(), Resp::Inserted(_)));
                match c.get(k).unwrap() {
                    Resp::Got(Some(_)) => checks += 1,
                    other => panic!("read-your-write miss on {k}: {other:?}"),
                }
                assert!(matches!(c.delete(k).unwrap(), Resp::Deleted(true)));
                match c.get(k).unwrap() {
                    Resp::Got(None) => checks += 1,
                    other => panic!("read-your-delete miss on {k}: {other:?}"),
                }
            }
            checks
        }));
    }
    let client_checks: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();

    let stats = server.shutdown();
    assert_eq!(client_checks, (SESSIONS as u64) * 240);
    assert_eq!(
        stats.ryw_violations, 0,
        "server-side tracker agrees: no session saw a stale read"
    );
    assert!(stats.ops_ok >= client_checks, "all checks rode real engine replies");
}
