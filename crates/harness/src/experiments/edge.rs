//! Networked edge: socket-level capacity, tail latency, and overload
//! behavior of the `gfsl-edge` TCP server. Not a paper artifact — this
//! measures the serving edge layered on top of the paper's structure.
//!
//! Four cells, all over real loopback sockets:
//!
//! 1. **closed-peak** — a zero-think closed-loop population; its goodput
//!    is the measured service capacity and the denominator below.
//! 2. **open-0.5x** — an open-loop zipf population at half capacity: the
//!    healthy regime (no sheds, tails near the closed-loop floor).
//! 3. **open-10x** — the overload gate: arrivals at ~10× capacity. The
//!    edge must *shed, not collapse*: goodput stays within 2× of peak,
//!    overflow surfaces as typed retry-after frames, and no connection
//!    dies. Both properties are asserted, not just reported.
//! 4. **pq-closed** — the producer/consumer priority-queue mix
//!    ([`ServeMix::PQ`]): inserts racing extract-mins through the wire
//!    `PopMin`/`MinEntry` ops.

use std::sync::Arc;

use gfsl::{Gfsl, GfslParams};
use gfsl_edge::loadgen::{self, LoadConfig, LoadReport};
use gfsl_edge::{EdgeConfig, EdgeEngine, EdgeServer, StatsSnapshot};
use gfsl_workload::ServeMix;
use serde::Serialize;

use super::ExpConfig;
use crate::report::Table;

/// Raw per-cell numbers attached to the bench JSON.
#[derive(Serialize)]
struct CellJson {
    cell: String,
    mode: String,
    conns: usize,
    offered_ops_s: f64,
    goodput_ops_s: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    ops_ok: u64,
    sheds: u64,
    retries: u64,
    local_drops: u64,
    conn_errors: u64,
    server_epochs: u64,
    server_timeouts: u64,
    server_proto_errors: u64,
    ryw_violations: u64,
}

struct Cell {
    label: &'static str,
    mode: &'static str,
    offered: f64,
    report: LoadReport,
    stats: StatsSnapshot,
}

impl Cell {
    fn json(&self, cfg: &LoadConfig) -> CellJson {
        CellJson {
            cell: self.label.to_string(),
            mode: self.mode.to_string(),
            conns: cfg.conns,
            offered_ops_s: self.offered,
            goodput_ops_s: self.report.goodput_ops_s,
            p50_us: self.report.histo.quantile_ns(0.50) as f64 / 1e3,
            p99_us: self.report.histo.quantile_ns(0.99) as f64 / 1e3,
            p999_us: self.report.histo.quantile_ns(0.999) as f64 / 1e3,
            ops_ok: self.report.ops_ok,
            sheds: self.report.sheds,
            retries: self.report.retries,
            local_drops: self.report.local_drops,
            conn_errors: self.report.conn_errors,
            server_epochs: self.stats.epochs,
            server_timeouts: self.stats.timeouts,
            server_proto_errors: self.stats.proto_errors,
            ryw_violations: self.stats.ryw_violations,
        }
    }
}

fn server(cfg: &ExpConfig, prefill: u32) -> EdgeServer {
    let workers = cfg
        .workers
        .min(std::thread::available_parallelism().map_or(2, |p| p.get()))
        .max(1);
    let list = if prefill > 0 {
        Arc::new(Gfsl::prefilled(GfslParams::default(), 1..=prefill).expect("prefill"))
    } else {
        Arc::new(Gfsl::new(GfslParams::default()).expect("gfsl"))
    };
    EdgeServer::start(
        EdgeEngine::Single(list),
        EdgeConfig {
            workers,
            ..EdgeConfig::default()
        },
    )
    .expect("start edge server")
}

fn run_cell(
    cfg: &ExpConfig,
    label: &'static str,
    load: &LoadConfig,
    prefill: u32,
) -> Cell {
    let srv = server(cfg, prefill);
    let report = loadgen::run(srv.addr(), load);
    let stats = srv.shutdown();
    let (mode, offered) = if load.open_rate_per_conn > 0.0 {
        ("open", load.open_rate_per_conn * load.conns as f64)
    } else {
        // Closed loop offers what it completes.
        ("closed", report.goodput_ops_s)
    };
    Cell { label, mode, offered, report, stats }
}

/// Run the edge experiment: capacity, healthy open-loop, the 10× overload
/// gate, and the priority-queue mix — all over real sockets.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let duration_ms = if cfg.quick { 500 } else { 2_000 };
    let conns = if cfg.quick { 4 } else { 8 };
    let base = LoadConfig {
        conns,
        clients_per_conn: 8,
        think_us: 0,
        open_rate_per_conn: 0.0,
        max_outstanding: 2_048,
        duration_ms,
        mix: ServeMix::C80,
        key_span: 10_000,
        zipf_theta: 0.6,
        seed: cfg.seed,
        snap_scans: false,
    };

    // Cell 1: closed-loop peak — the capacity estimate.
    let peak = run_cell(cfg, "closed-peak", &base, 0);
    let capacity = peak.report.goodput_ops_s.max(1.0);

    // Cell 2: open loop at ~0.5x capacity (healthy).
    let half = LoadConfig {
        open_rate_per_conn: capacity * 0.5 / conns as f64,
        ..base.clone()
    };
    let healthy = run_cell(cfg, "open-0.5x", &half, 0);

    // Cell 3: open loop at ~10x capacity (the overload gate).
    let ten = LoadConfig {
        open_rate_per_conn: capacity * 10.0 / conns as f64,
        ..base.clone()
    };
    let overload = run_cell(cfg, "open-10x", &ten, 0);
    assert_eq!(
        overload.report.conn_errors, 0,
        "overload must surface as typed shed frames, not dead connections"
    );
    assert!(
        overload.report.sheds > 0,
        "10x arrivals must overflow admission and shed"
    );
    assert!(
        overload.report.goodput_ops_s >= capacity / 2.0,
        "goodput collapsed under overload: {:.0} ops/s vs peak {:.0}",
        overload.report.goodput_ops_s,
        capacity
    );

    // Cell 4: the priority-queue producer/consumer mix, closed loop.
    let pq = LoadConfig {
        mix: ServeMix::PQ,
        ..base.clone()
    };
    let pq_cell = run_cell(cfg, "pq-closed", &pq, 2_000);

    let cells = [peak, healthy, overload, pq_cell];
    let mut t = Table::new(
        "Edge serving over loopback TCP: goodput and tails per population",
        &[
            "cell", "mode", "offered/s", "goodput/s", "p50 us", "p99 us", "p999 us",
            "sheds", "retries", "conn errs",
        ],
    );
    let loads = [&base, &half, &ten, &pq];
    for (c, l) in cells.iter().zip(loads) {
        let j = c.json(l);
        t.row(vec![
            j.cell.clone(),
            j.mode.clone(),
            format!("{:.0}", j.offered_ops_s),
            format!("{:.0}", j.goodput_ops_s),
            format!("{:.1}", j.p50_us),
            format!("{:.1}", j.p99_us),
            format!("{:.1}", j.p999_us),
            j.sheds.to_string(),
            j.retries.to_string(),
            j.conn_errors.to_string(),
        ]);
    }
    t.attach(
        "cells",
        &cells
            .iter()
            .zip(loads)
            .map(|(c, l)| c.json(l))
            .collect::<Vec<_>>(),
    );
    t.attach("capacity_ops_s", &capacity);
    let no_collapse =
        cells[2].report.goodput_ops_s >= capacity / 2.0 && cells[2].report.conn_errors == 0;
    t.attach("overload_no_collapse", &no_collapse);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_experiment_runs_tiny_and_gates_hold() {
        let cfg = ExpConfig {
            workers: 2,
            ..ExpConfig::tiny(2)
        };
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 4, "peak, healthy, overload, pq");
        assert!(t.attachments.iter().any(|(k, _)| k == "cells"));
        // The overload gate already asserted inside run(); double-check the
        // recorded flag made it into the attachments.
        let flag = t
            .attachments
            .iter()
            .find(|(k, _)| k == "overload_no_collapse")
            .expect("gate flag attached");
        assert_eq!(flag.1.to_json(), "true");
    }
}
