//! Typed recovery failures.
//!
//! The contract: recovery either repairs (torn-tail truncation, checkpoint
//! fallback — both reported in the [`crate::RecoveryReport`]) or refuses to
//! serve with one of these errors. It never silently drops acknowledged
//! data: anything that *could* be silent loss (a CRC mismatch away from the
//! log tail, a missing segment, a damaged header) is an error, not a skip.

use std::path::PathBuf;

/// Why a restart could not produce a servable engine.
#[derive(Debug)]
pub enum RecoverError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// A WAL record away from the log tail failed its CRC or carried the
    /// wrong LSN — mid-log damage that truncation cannot repair without
    /// losing acknowledged writes. Refuse to serve.
    Corrupt {
        /// The damaged file.
        file: PathBuf,
        /// Byte offset of the bad frame.
        offset: u64,
        /// What exactly failed to validate.
        detail: String,
    },
    /// A segment header (other than a torn final segment) is damaged:
    /// without its base LSN the segment's records cannot be placed.
    BadSegmentHeader {
        /// The damaged file.
        file: PathBuf,
        /// What exactly failed to validate.
        detail: String,
    },
    /// The log does not reach back to the chosen checkpoint: records in
    /// `need_from..first_available` are gone (a pruned or deleted segment
    /// paired with a stale checkpoint). Serving would lose them silently.
    WalGap {
        /// First LSN replay needs (checkpoint LSN + 1).
        need_from: u64,
        /// First LSN the surviving segments actually hold.
        first_available: u64,
    },
    /// The rebuilt structure failed the full validation walk.
    Invalid(String),
    /// The bulk rebuild or a replayed operation failed structurally.
    Rebuild(gfsl::Error),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "recovery I/O failure: {e}"),
            RecoverError::Corrupt {
                file,
                offset,
                detail,
            } => write!(
                f,
                "WAL corruption in {} at byte {offset}: {detail} (not at the log \
                 tail, refusing to truncate acknowledged records)",
                file.display()
            ),
            RecoverError::BadSegmentHeader { file, detail } => write!(
                f,
                "damaged WAL segment header in {}: {detail}",
                file.display()
            ),
            RecoverError::WalGap {
                need_from,
                first_available,
            } => write!(
                f,
                "WAL gap: replay needs LSN {need_from} but the oldest surviving \
                 record is LSN {first_available}; refusing to serve with missing \
                 acknowledged writes"
            ),
            RecoverError::Invalid(detail) => {
                write!(f, "recovered structure failed validation: {detail}")
            }
            RecoverError::Rebuild(e) => write!(f, "recovery rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<std::io::Error> for RecoverError {
    fn from(e: std::io::Error) -> RecoverError {
        RecoverError::Io(e)
    }
}

/// Why a live durable operation failed.
///
/// `Io` after a successful structural apply means the write is applied in
/// memory but **not logged**: the caller must treat it as unacknowledged
/// (it will not survive a restart), exactly as if the process had died
/// inside the commit window.
#[derive(Debug)]
pub enum OpError {
    /// The WAL append or sync failed — the write is not durable.
    Io(std::io::Error),
    /// The structural operation itself failed (nothing was applied).
    Structure(gfsl::Error),
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::Io(e) => write!(f, "WAL commit failed (write not durable): {e}"),
            OpError::Structure(e) => write!(f, "structural operation failed: {e}"),
        }
    }
}

impl std::error::Error for OpError {}

impl From<std::io::Error> for OpError {
    fn from(e: std::io::Error) -> OpError {
        OpError::Io(e)
    }
}

impl From<gfsl::Error> for OpError {
    fn from(e: gfsl::Error) -> OpError {
        OpError::Structure(e)
    }
}
