//! Minimal deterministic RNG for the raise-key coin.
//!
//! The paper decides "whether to raise a key after a split ... randomly
//! generated (on-device) according to `p_chunk`" (§4.2.2). Each handle owns
//! an independent SplitMix64 stream so runs are reproducible regardless of
//! thread interleaving. (SplitMix64: Steele, Lea & Flood, "Fast splittable
//! pseudorandom number generators", OOPSLA 2014.)

/// SplitMix64 stream.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    #[inline]
    pub(crate) fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub(crate) fn coin(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            self.next_f64() < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // reference implementation (Vigna).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn coin_extremes_are_deterministic() {
        let mut r = SplitMix64::new(7);
        assert!((0..100).all(|_| r.coin(1.0)));
        assert!((0..100).all(|_| !r.coin(0.0)));
    }

    #[test]
    fn coin_frequency_tracks_p() {
        let mut r = SplitMix64::new(99);
        let hits = (0..10_000).filter(|_| r.coin(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn streams_with_different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
