//! The write-ahead log: append-only, segment-rotated, CRC-guarded.
//!
//! ## On-disk format
//!
//! A WAL directory holds segments `wal-<seq:016x>.log`. Each segment is a
//! 32-byte header followed by fixed-size 24-byte records:
//!
//! ```text
//! header:  magic "GFSLWAL1" | seg_seq u64 | base_lsn u64 | crc32c u32 | pad u32
//! record:  crc32c u32 | lsn u64 | kind u8 | pad[3] | key u32 | val u32
//! ```
//!
//! All integers little-endian. The record CRC covers bytes 4..24; the
//! header CRC covers bytes 0..24. Record `i` of a segment must carry
//! `lsn == base_lsn + i` — LSNs are allocated contiguously, so any hole or
//! repeat is detectable, and a record that CRC-validates but sits at the
//! wrong offset is still rejected.
//!
//! ## Group commit and the torn-tail window
//!
//! [`Wal::append`] writes a whole batch of records and syncs once, per the
//! configured [`DurabilityContract`] — the ack point of everything above
//! this layer. The batch's final record is deliberately written in two
//! parts with [`CrashPoint::WalAppend`] between them: killing the process
//! there leaves a genuinely torn record on disk, which is exactly what a
//! real crash mid-`write(2)` leaves and exactly what replay must truncate.
//! [`CrashPoint::WalFsync`] sits between the writes and the sync: a kill
//! there loses the unsynced suffix under power loss, but nothing in it was
//! acknowledged.
//!
//! ## Replay rules ([`scan_wal`])
//!
//! * An invalid record (bad CRC, wrong LSN, or a partial frame) at the
//!   **tail of the final segment** — with no valid record after it — is a
//!   torn write: everything from it on is truncated and replay succeeds.
//!   (Nothing torn was ever acknowledged: the ack waits for the sync that
//!   never completed.)
//! * An invalid record anywhere **else** is real damage under acknowledged
//!   records: replay refuses with [`RecoverError::Corrupt`].
//! * A final segment shorter than its header is a crash between segment
//!   creation and header write: the file is removed, never holding records.
//! * Any other damaged header refuses with
//!   [`RecoverError::BadSegmentHeader`]; segment base LSNs must chain
//!   contiguously or replay refuses with [`RecoverError::WalGap`].

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use gfsl::CrashPoint;
use gfsl_serve::DurabilityContract;

use crate::crc::crc32c;
use crate::error::RecoverError;
use crate::hook::Failpoints;

/// Bytes per WAL record.
pub const RECORD_BYTES: usize = 24;
/// Bytes per segment header.
pub const SEG_HEADER_BYTES: usize = 32;
/// Segment header magic.
pub const WAL_MAGIC: [u8; 8] = *b"GFSLWAL1";

const KIND_PUT: u8 = 1;
const KIND_DEL: u8 = 2;

/// One logical write the log can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// `key` now holds `val`.
    Put {
        /// The key written.
        key: u32,
        /// The value it now holds.
        val: u32,
    },
    /// `key` was removed.
    Del {
        /// The key removed.
        key: u32,
    },
}

/// A decoded record: an op with its log sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// Global, contiguous, 1-based sequence number.
    pub lsn: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// Encode one record frame.
pub fn encode_record(lsn: u64, op: WalOp) -> [u8; RECORD_BYTES] {
    let mut b = [0u8; RECORD_BYTES];
    b[4..12].copy_from_slice(&lsn.to_le_bytes());
    let (kind, key, val) = match op {
        WalOp::Put { key, val } => (KIND_PUT, key, val),
        WalOp::Del { key } => (KIND_DEL, key, 0),
    };
    b[12] = kind;
    b[16..20].copy_from_slice(&key.to_le_bytes());
    b[20..24].copy_from_slice(&val.to_le_bytes());
    let crc = crc32c(&b[4..]);
    b[0..4].copy_from_slice(&crc.to_le_bytes());
    b
}

/// Decode one record frame; `None` on CRC mismatch, unknown kind, or
/// nonzero padding.
pub fn decode_record(b: &[u8]) -> Option<WalRecord> {
    if b.len() < RECORD_BYTES {
        return None;
    }
    let crc = u32::from_le_bytes(b[0..4].try_into().unwrap());
    if crc32c(&b[4..RECORD_BYTES]) != crc {
        return None;
    }
    let lsn = u64::from_le_bytes(b[4..12].try_into().unwrap());
    let key = u32::from_le_bytes(b[16..20].try_into().unwrap());
    let val = u32::from_le_bytes(b[20..24].try_into().unwrap());
    if b[13..16] != [0, 0, 0] {
        return None;
    }
    let op = match b[12] {
        KIND_PUT => WalOp::Put { key, val },
        KIND_DEL => WalOp::Del { key },
        _ => return None,
    };
    Some(WalRecord { lsn, op })
}

fn encode_header(seg_seq: u64, base_lsn: u64) -> [u8; SEG_HEADER_BYTES] {
    let mut b = [0u8; SEG_HEADER_BYTES];
    b[0..8].copy_from_slice(&WAL_MAGIC);
    b[8..16].copy_from_slice(&seg_seq.to_le_bytes());
    b[16..24].copy_from_slice(&base_lsn.to_le_bytes());
    let crc = crc32c(&b[0..24]);
    b[24..28].copy_from_slice(&crc.to_le_bytes());
    b
}

/// `(seg_seq, base_lsn)` from a header, or a description of the damage.
fn decode_header(b: &[u8]) -> Result<(u64, u64), String> {
    if b.len() < SEG_HEADER_BYTES {
        return Err(format!("{} bytes, need {SEG_HEADER_BYTES}", b.len()));
    }
    if b[0..8] != WAL_MAGIC {
        return Err("bad magic".to_string());
    }
    let crc = u32::from_le_bytes(b[24..28].try_into().unwrap());
    if crc32c(&b[0..24]) != crc {
        return Err("header CRC mismatch".to_string());
    }
    Ok((
        u64::from_le_bytes(b[8..16].try_into().unwrap()),
        u64::from_le_bytes(b[16..24].try_into().unwrap()),
    ))
}

/// Segment path for `seq` under `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:016x}.log"))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Ascending `(seq, path)` of every segment file in `dir`.
pub fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Counters over a [`Wal`]'s lifetime (this process only).
#[derive(Debug, Default, Clone, Copy, serde::Serialize)]
pub struct WalStats {
    /// `append` calls (= group commits).
    pub group_commits: u64,
    /// Records written.
    pub records: u64,
    /// Sync calls issued (no-ops under `Buffered` still count).
    pub syncs: u64,
    /// Segment rotations.
    pub rotations: u64,
    /// Segments deleted by pruning.
    pub pruned_segments: u64,
}

/// The append side of the log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    contract: DurabilityContract,
    seg_records: u32,
    file: File,
    seg_seq: u64,
    records_in_seg: u32,
    next_lsn: u64,
    /// Lifetime counters.
    pub stats: WalStats,
}

impl Wal {
    /// Create a fresh log in `dir` (made if missing): segment 0, LSNs from 1.
    pub fn create(
        dir: impl Into<PathBuf>,
        contract: DurabilityContract,
        seg_records: u32,
    ) -> std::io::Result<Wal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let file = new_segment(&dir, 0, 1, contract)?;
        Ok(Wal {
            dir,
            contract,
            seg_records: seg_records.max(1),
            file,
            seg_seq: 0,
            records_in_seg: 0,
            next_lsn: 1,
            stats: WalStats::default(),
        })
    }

    /// Reopen a scanned log for appending. `floor_lsn` is the highest LSN
    /// known durable elsewhere (checkpoint LSN); appending resumes after
    /// `max(scan.last_lsn, floor_lsn)`.
    pub fn resume(
        dir: impl Into<PathBuf>,
        contract: DurabilityContract,
        seg_records: u32,
        scan: &WalScanned,
        floor_lsn: u64,
    ) -> std::io::Result<Wal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let next_lsn = scan.last_lsn.max(floor_lsn) + 1;
        let mut stats = WalStats::default();
        let (file, seg_seq, records_in_seg) = match scan.tail {
            // A surviving tail segment that still agrees with the resume
            // LSN: append into it.
            Some(tail) if tail.base_lsn + u64::from(tail.records) == next_lsn => {
                let file = OpenOptions::new()
                    .append(true)
                    .open(segment_path(&dir, tail.seq))?;
                (file, tail.seq, tail.records)
            }
            // No usable tail (empty dir, torn-away segment, or a checkpoint
            // ahead of the surviving log): start a fresh segment.
            other => {
                let seq = other.map_or(0, |t| t.seq + 1);
                stats.rotations += u64::from(other.is_some());
                (new_segment(&dir, seq, next_lsn, contract)?, seq, 0)
            }
        };
        Ok(Wal {
            dir,
            contract,
            seg_records: seg_records.max(1),
            file,
            seg_seq,
            records_in_seg,
            next_lsn,
            stats,
        })
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sync policy every append honors.
    pub fn contract(&self) -> DurabilityContract {
        self.contract
    }

    /// Last LSN assigned (0 before the first append).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Append `ops` as one group commit: assign contiguous LSNs, write
    /// (rotating segments as needed), sync once per the contract, return
    /// `(first, last)` LSN. The batch is durable to the contract's level
    /// when this returns — the caller may acknowledge.
    pub fn append(
        &mut self,
        ops: &[WalOp],
        hook: &mut Failpoints,
    ) -> std::io::Result<(u64, u64)> {
        assert!(!ops.is_empty(), "empty group commit");
        let first = self.next_lsn;
        let mut remaining = ops;
        while !remaining.is_empty() {
            let room = (self.seg_records - self.records_in_seg) as usize;
            if room == 0 {
                self.rotate()?;
                continue;
            }
            let take = remaining.len().min(room);
            let mut buf = Vec::with_capacity(take * RECORD_BYTES);
            for &op in &remaining[..take] {
                buf.extend_from_slice(&encode_record(self.next_lsn, op));
                self.next_lsn += 1;
            }
            // The torn-tail window: the batch's final record goes out in
            // two halves with the crash point between them. A kill here
            // leaves a genuine partial record for replay to truncate.
            let split = buf.len() - RECORD_BYTES / 2;
            self.file.write_all(&buf[..split])?;
            hook.hit(CrashPoint::WalAppend);
            self.file.write_all(&buf[split..])?;
            self.records_in_seg += take as u32;
            self.stats.records += take as u64;
            remaining = &remaining[take..];
        }
        // Records written, sync pending: a kill here loses only unacked
        // bytes (under power loss; process death keeps the page cache).
        hook.hit(CrashPoint::WalFsync);
        self.contract.sync(&self.file)?;
        self.stats.syncs += 1;
        self.stats.group_commits += 1;
        Ok((first, self.next_lsn - 1))
    }

    fn rotate(&mut self) -> std::io::Result<()> {
        // Seal the full segment before opening its successor.
        self.contract.sync(&self.file)?;
        self.seg_seq += 1;
        self.records_in_seg = 0;
        self.file = new_segment(&self.dir, self.seg_seq, self.next_lsn, self.contract)?;
        self.stats.rotations += 1;
        Ok(())
    }

    /// Delete sealed segments whose every record has LSN ≤ `upto` (they are
    /// covered by a published checkpoint). The active segment is never
    /// touched. Returns segments deleted.
    pub fn prune_upto(&mut self, upto: u64, hook: &mut Failpoints) -> std::io::Result<u64> {
        let mut pruned = 0;
        for (seq, path) in list_segments(&self.dir)? {
            if seq == self.seg_seq {
                continue;
            }
            let Ok((base, records)) = segment_extent(&path) else {
                continue; // damaged segments are replay's problem, not prune's
            };
            if records == 0 || base + u64::from(records) - 1 > upto {
                continue;
            }
            hook.hit(CrashPoint::WalPrune);
            fs::remove_file(&path)?;
            pruned += 1;
            self.stats.pruned_segments += 1;
        }
        Ok(pruned)
    }
}

fn new_segment(
    dir: &Path,
    seq: u64,
    base_lsn: u64,
    contract: DurabilityContract,
) -> std::io::Result<File> {
    let path = segment_path(dir, seq);
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)?;
    file.write_all(&encode_header(seq, base_lsn))?;
    contract.sync(&file)?;
    Ok(file)
}

/// `(base_lsn, complete_records)` of a segment, from header + file size.
fn segment_extent(path: &Path) -> Result<(u64, u32), String> {
    let mut header = [0u8; SEG_HEADER_BYTES];
    let mut f = File::open(path).map_err(|e| e.to_string())?;
    f.read_exact(&mut header).map_err(|e| e.to_string())?;
    let (_, base) = decode_header(&header)?;
    let len = f.metadata().map_err(|e| e.to_string())?.len();
    let records = (len.saturating_sub(SEG_HEADER_BYTES as u64)) / RECORD_BYTES as u64;
    Ok((base, records as u32))
}

/// The surviving tail segment after a scan (where appends resume).
#[derive(Debug, Clone, Copy)]
pub struct TailSegment {
    /// Its sequence number.
    pub seq: u64,
    /// Its base LSN.
    pub base_lsn: u64,
    /// Complete records it holds after any truncation.
    pub records: u32,
}

/// Everything a scan recovers from a WAL directory.
#[derive(Debug)]
pub struct WalScanned {
    /// Every valid record, ascending by LSN.
    pub records: Vec<WalRecord>,
    /// Base LSN of the oldest surviving segment (0 when none).
    pub first_lsn: u64,
    /// Highest valid LSN found (0 when none).
    pub last_lsn: u64,
    /// Segments examined (after torn-segment removal).
    pub segments: u64,
    /// Bytes truncated from a torn tail (0 when clean).
    pub truncated_bytes: u64,
    /// Headerless final segments removed (crash between create and header).
    pub removed_torn_segments: u64,
    /// The tail segment appends should resume into.
    pub tail: Option<TailSegment>,
}

/// Scan (and, for torn tails, repair) the WAL under `dir`. See module docs
/// for the exact accept/truncate/refuse rules.
pub fn scan_wal(dir: &Path) -> Result<WalScanned, RecoverError> {
    let mut segs = list_segments(dir)?;

    // A final segment too short to hold its header is a crash between
    // segment creation and the header write: it never held a record.
    let mut removed_torn_segments = 0;
    while let Some((_, path)) = segs.last() {
        if fs::metadata(path)?.len() >= SEG_HEADER_BYTES as u64 {
            break;
        }
        fs::remove_file(path)?;
        removed_torn_segments += 1;
        segs.pop();
    }

    let mut out = WalScanned {
        records: Vec::new(),
        first_lsn: 0,
        last_lsn: 0,
        segments: segs.len() as u64,
        truncated_bytes: 0,
        removed_torn_segments,
        tail: None,
    };

    let last_idx = segs.len().wrapping_sub(1);
    let mut expected_base: Option<u64> = None;
    for (i, (seq, path)) in segs.iter().enumerate() {
        let is_last = i == last_idx;
        let bytes = fs::read(path)?;
        let (hdr_seq, base) = decode_header(&bytes).map_err(|detail| {
            RecoverError::BadSegmentHeader {
                file: path.clone(),
                detail,
            }
        })?;
        if hdr_seq != *seq {
            return Err(RecoverError::BadSegmentHeader {
                file: path.clone(),
                detail: format!("header says segment {hdr_seq}, filename says {seq}"),
            });
        }
        if let Some(need) = expected_base {
            if base != need {
                return Err(RecoverError::WalGap {
                    need_from: need,
                    first_available: base,
                });
            }
        }
        if out.first_lsn == 0 {
            out.first_lsn = base;
        }

        let body = &bytes[SEG_HEADER_BYTES..];
        let mut valid_records = 0u32;
        let mut torn_at: Option<usize> = None;
        let mut offset = 0usize;
        while offset < body.len() {
            let frame = &body[offset..body.len().min(offset + RECORD_BYTES)];
            let expected_lsn = base + (offset / RECORD_BYTES) as u64;
            match decode_record(frame) {
                Some(r) if r.lsn == expected_lsn => {
                    if let Some(bad_off) = torn_at {
                        // A valid record BEYOND the bad frame: this is
                        // mid-segment damage, not a torn write.
                        return Err(RecoverError::Corrupt {
                            file: path.clone(),
                            offset: (SEG_HEADER_BYTES + bad_off) as u64,
                            detail: "invalid record followed by valid records".into(),
                        });
                    }
                    out.records.push(r);
                    out.last_lsn = r.lsn;
                    valid_records += 1;
                }
                bad => {
                    let detail = match bad {
                        Some(r) => format!(
                            "record carries LSN {} where {expected_lsn} belongs",
                            r.lsn
                        ),
                        None if frame.len() < RECORD_BYTES => {
                            format!("partial {}-byte frame", frame.len())
                        }
                        None => "record CRC mismatch".into(),
                    };
                    if !is_last {
                        return Err(RecoverError::Corrupt {
                            file: path.clone(),
                            offset: (SEG_HEADER_BYTES + offset) as u64,
                            detail,
                        });
                    }
                    if torn_at.is_none() {
                        torn_at = Some(offset);
                    }
                }
            }
            offset += RECORD_BYTES;
        }
        if let Some(cut) = torn_at {
            // Torn tail: truncate the file back to its last valid record.
            let keep = (SEG_HEADER_BYTES + cut) as u64;
            out.truncated_bytes += bytes.len() as u64 - keep;
            OpenOptions::new()
                .write(true)
                .open(path)?
                .set_len(keep)?;
        }
        expected_base = Some(base + (body.len() / RECORD_BYTES) as u64);
        if is_last {
            out.tail = Some(TailSegment {
                seq: *seq,
                base_lsn: base,
                records: valid_records,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gfsl_wal_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ops(n: u32) -> Vec<WalOp> {
        (0..n)
            .map(|i| {
                if i % 3 == 2 {
                    WalOp::Del { key: i }
                } else {
                    WalOp::Put { key: i, val: i * 10 }
                }
            })
            .collect()
    }

    #[test]
    fn record_roundtrip_and_crc_rejection() {
        let r = encode_record(42, WalOp::Put { key: 7, val: 9 });
        assert_eq!(
            decode_record(&r),
            Some(WalRecord {
                lsn: 42,
                op: WalOp::Put { key: 7, val: 9 }
            })
        );
        let mut bad = r;
        bad[17] ^= 0x40;
        assert_eq!(decode_record(&bad), None, "flipped body byte must fail CRC");
        let d = encode_record(1, WalOp::Del { key: 3 });
        assert_eq!(
            decode_record(&d).unwrap().op,
            WalOp::Del { key: 3 }
        );
    }

    #[test]
    fn append_scan_roundtrip_across_rotations() {
        let dir = tmp("roundtrip");
        let mut hook = Failpoints::Off;
        let mut wal = Wal::create(&dir, DurabilityContract::Synced, 4).unwrap();
        let batch = ops(11); // 11 records over 4-record segments: 2 rotations
        let (first, last) = wal.append(&batch, &mut hook).unwrap();
        assert_eq!((first, last), (1, 11));
        assert_eq!(wal.stats.rotations, 2);
        drop(wal);

        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 11);
        assert_eq!(scan.first_lsn, 1);
        assert_eq!(scan.last_lsn, 11);
        assert_eq!(scan.truncated_bytes, 0);
        assert!(scan
            .records
            .iter()
            .enumerate()
            .all(|(i, r)| r.lsn == i as u64 + 1));
        assert_eq!(
            scan.records[0].op,
            WalOp::Put { key: 0, val: 0 }
        );

        // Resume and keep appending: LSNs continue, tail segment reused.
        let mut wal = Wal::resume(&dir, DurabilityContract::Synced, 4, &scan, 0).unwrap();
        let (first, last) = wal.append(&ops(2), &mut hook).unwrap();
        assert_eq!((first, last), (12, 13));
        drop(wal);
        assert_eq!(scan_wal(&dir).unwrap().records.len(), 13);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_and_resumes() {
        let dir = tmp("torn");
        let mut hook = Failpoints::Off;
        let mut wal = Wal::create(&dir, DurabilityContract::DataSynced, 64).unwrap();
        wal.append(&ops(5), &mut hook).unwrap();
        let seg = segment_path(&dir, 0);
        drop(wal);
        // A torn write: 10 bytes of a sixth record.
        let garbage = encode_record(6, WalOp::Put { key: 9, val: 9 });
        OpenOptions::new()
            .append(true)
            .open(&seg)
            .unwrap()
            .write_all(&garbage[..10])
            .unwrap();

        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 5, "valid prefix survives");
        assert_eq!(scan.truncated_bytes, 10);
        assert_eq!(
            fs::metadata(&seg).unwrap().len(),
            (SEG_HEADER_BYTES + 5 * RECORD_BYTES) as u64,
            "file physically truncated"
        );
        // And the repaired log appends cleanly.
        let mut wal =
            Wal::resume(&dir, DurabilityContract::DataSynced, 64, &scan, 0).unwrap();
        assert_eq!(wal.append(&ops(1), &mut hook).unwrap(), (6, 6));
        drop(wal);
        assert_eq!(scan_wal(&dir).unwrap().records.len(), 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_refused() {
        let dir = tmp("midlog");
        let mut hook = Failpoints::Off;
        let mut wal = Wal::create(&dir, DurabilityContract::Buffered, 64).unwrap();
        wal.append(&ops(4), &mut hook).unwrap();
        drop(wal);
        // Flip one byte in record 1 (not the tail: records 2..4 follow).
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        bytes[SEG_HEADER_BYTES + RECORD_BYTES + 18] ^= 1;
        fs::write(&seg, &bytes).unwrap();
        match scan_wal(&dir) {
            Err(RecoverError::Corrupt { offset, .. }) => {
                assert_eq!(offset, (SEG_HEADER_BYTES + RECORD_BYTES) as u64);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_segment_is_a_gap() {
        let dir = tmp("gap");
        let mut hook = Failpoints::Off;
        let mut wal = Wal::create(&dir, DurabilityContract::Buffered, 2).unwrap();
        wal.append(&ops(6), &mut hook).unwrap(); // segments 0,1,2
        drop(wal);
        fs::remove_file(segment_path(&dir, 1)).unwrap();
        match scan_wal(&dir) {
            Err(RecoverError::WalGap {
                need_from,
                first_available,
            }) => {
                assert_eq!(need_from, 3);
                assert_eq!(first_available, 5);
            }
            other => panic!("expected WalGap, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_the_active_segment_and_uncovered_records() {
        let dir = tmp("prune");
        let mut hook = Failpoints::Off;
        let mut wal = Wal::create(&dir, DurabilityContract::Synced, 2).unwrap();
        wal.append(&ops(7), &mut hook).unwrap(); // segs 0..3, seg 3 active
        let pruned = wal.prune_upto(4, &mut hook).unwrap();
        assert_eq!(pruned, 2, "segments [1,2] and [3,4] are covered");
        let left: Vec<u64> = list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(left, vec![2, 3]);
        // Scan after prune: records 5..=7 survive, base continuity holds.
        drop(wal);
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.first_lsn, 5);
        assert_eq!(scan.last_lsn, 7);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn headerless_final_segment_is_removed() {
        let dir = tmp("headerless");
        let mut hook = Failpoints::Off;
        let mut wal = Wal::create(&dir, DurabilityContract::Synced, 8).unwrap();
        wal.append(&ops(3), &mut hook).unwrap();
        drop(wal);
        // Crash between segment creation and header write: 5 stray bytes.
        fs::write(segment_path(&dir, 1), [0u8; 5]).unwrap();
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.removed_torn_segments, 1);
        assert_eq!(scan.records.len(), 3);
        assert!(!segment_path(&dir, 1).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
