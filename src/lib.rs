//! Workspace umbrella crate for the GFSL reproduction.
//!
//! This crate exists to host the workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). It re-exports the member crates so the
//! examples can be written against a single façade.

pub use gfsl;
pub use gfsl_gpu_mem as gpu_mem;
pub use gfsl_gpu_exec as gpu_exec;
pub use gfsl_gpu_model as gpu_model;
pub use gfsl_harness as harness;
pub use gfsl_simt as simt;
pub use gfsl_workload as workload;
pub use mc_skiplist;
