//! # gfsl-edge — the networked serving edge for GFSL
//!
//! Everything below this crate is in-process: the structure
//! ([`gfsl`]), the batched serving loop ([`gfsl_serve`]), the sharded
//! cluster ([`gfsl_cluster`]). This crate puts a real network in front of
//! it:
//!
//! - [`proto`] — a compact, versioned binary wire protocol. Fixed-width
//!   frames, typed decode errors, and backpressure *in the protocol*: shed
//!   requests answer with a retry-after hint (milliseconds on the wire),
//!   framing violations with a final typed error frame.
//! - [`session`] — per-connection state: streaming decode, buffered
//!   writes, read-your-writes tracking, slow-client accounting.
//! - [`engine`] — the storage behind the edge: one GFSL or a live
//!   migrating cluster, executing whole epoch batches.
//! - [`server`] — a thread-per-core TCP server: one acceptor, per-core
//!   workers with connection affinity, epoch batching onto the engine,
//!   commit-before-ack durability, and the supervisor's degradation
//!   ladder surfacing as typed shed frames.
//! - [`client`] — the blocking reference client (pipelined, id-matched).
//! - [`loadgen`] — closed-loop and open-loop client populations over real
//!   sockets, with zipf-skewed per-tenant key windows, for capacity and
//!   overload measurement (`edgebench` binary).

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod session;

pub use client::EdgeClient;
pub use engine::EdgeEngine;
pub use loadgen::{LoadConfig, LoadReport};
pub use proto::{DecodeError, Req, Resp};
pub use server::{EdgeConfig, EdgeServer, EdgeStats, SharedSink, StatsSnapshot};
pub use session::Session;
