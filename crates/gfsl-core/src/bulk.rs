//! Bulk loading and quiescent compaction.
//!
//! The paper leaves memory reclamation as future work and sketches the
//! intended mechanism: "a possible reclamation scheme would be to compact
//! the structure between kernel launches" (§4.1). [`Gfsl::compacted`] is
//! that scheme: at quiescence, rebuild the structure into a fresh pool,
//! dropping every zombie and defragmenting chunks to a uniform fill.
//!
//! The underlying [`Gfsl::from_sorted_pairs`] is also useful on its own: it
//! bulk-loads a sorted stream without any splits, producing an ideal
//! structure (exactly one index key per chunk per level — the paper's "in
//! an ideal structure at most one key from each chunk in level i would
//! appear in level i+1").

use gfsl_gpu_mem::NoProbe;

use crate::chunk::{is_user_key, ChunkRef, Entry, KEY_INF, KEY_NEG_INF, LOCK_UNLOCKED, NIL};
use crate::params::GfslParams;
use crate::skiplist::{Error, Gfsl};

impl Gfsl {
    /// Build a structure from strictly-ascending `(key, value)` pairs.
    ///
    /// Bottom-level chunks are packed to ~3/4 fill (comfortably above the
    /// merge threshold, with room for inserts before the first split), and
    /// each chunk beyond the first contributes its minimum key to the level
    /// above, recursively — the deterministic ideal of `p_chunk = 1`.
    ///
    /// # Errors
    /// [`Error::InvalidKey`] if a key is reserved, out of order, or
    /// duplicated; [`Error::PoolExhausted`] if `params.pool_chunks` is too
    /// small.
    pub fn from_sorted_pairs(
        params: GfslParams,
        pairs: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<Gfsl, Error> {
        let list = Gfsl::new(params)?;
        let team = list.team;
        let dsize = team.dsize();
        // Fill target: at least one above the merge threshold so a single
        // delete never immediately merges, at most dsize - 2 so a couple of
        // inserts fit before a split.
        let fill = ((dsize * 3) / 4)
            .max(params.merge_threshold() as usize + 1)
            .min(dsize - 2)
            .max(1);

        // Level 0: pack pairs into chained chunks. The level sentinel keeps
        // -inf and receives the first fill-1 pairs.
        let mut handle = list.handle_with(NoProbe);
        let mut last_key: Option<u32> = None;
        // (chunk index, min key) of every non-sentinel chunk, for level 1.
        let mut raised: Vec<(u32, u32)> = Vec::new();

        let mut cur = list.head_of(0);
        let mut cur_ref = list.chunk(cur);
        let mut slot = 1usize; // sentinel slot 0 = -inf
        let mut cur_min = KEY_NEG_INF;
        let mut prev_written_max = KEY_NEG_INF;

        let finish_chunk = |list: &Gfsl, ch: ChunkRef, max: u32, next: u32| {
            list.pool
                .write(ch.entry_addr(team.next_lane()), Entry::new(max, next).0);
            list.pool.write(ch.entry_addr(team.lock_lane()), LOCK_UNLOCKED);
        };

        for (k, v) in pairs {
            if !is_user_key(k) || last_key.is_some_and(|p| p >= k) {
                return Err(Error::InvalidKey(k));
            }
            last_key = Some(k);
            if slot == fill.max(1) || slot == dsize {
                // Seal the current chunk and open a new one.
                let new_idx = handle.alloc_chunk()?;
                finish_chunk(&list, cur_ref, prev_written_max, new_idx);
                if cur != list.head_of(0) {
                    raised.push((cur, cur_min));
                }
                cur = new_idx;
                cur_ref = list.chunk(cur);
                slot = 0;
                cur_min = k;
            }
            list.pool.write(cur_ref.entry_addr(slot), Entry::new(k, v).0);
            if slot == 0 {
                cur_min = k;
            }
            prev_written_max = k;
            slot += 1;
        }
        // Seal the last chunk: it is the end of the level.
        finish_chunk(&list, cur_ref, KEY_INF, NIL);
        if cur != list.head_of(0) {
            raised.push((cur, cur_min));
        }
        list.level_chunks[0].store(raised.len() as u32, std::sync::atomic::Ordering::Relaxed);

        // Upper levels: each non-sentinel chunk of level i is indexed by one
        // (min key -> chunk) entry in level i+1.
        let mut level = 1usize;
        while !raised.is_empty() && level < params.max_levels() {
            let mut next_raised: Vec<(u32, u32)> = Vec::new();
            let mut cur = list.head_of(level);
            let mut cur_ref = list.chunk(cur);
            let mut slot = 1usize;
            let mut cur_min = KEY_NEG_INF;
            let mut prev_max = KEY_NEG_INF;
            for &(below_chunk, k) in &raised {
                if slot == fill.max(1) || slot == dsize {
                    let new_idx = handle.alloc_chunk()?;
                    finish_chunk(&list, cur_ref, prev_max, new_idx);
                    if cur != list.head_of(level) {
                        next_raised.push((cur, cur_min));
                    }
                    cur = new_idx;
                    cur_ref = list.chunk(cur);
                    slot = 0;
                }
                list.pool
                    .write(cur_ref.entry_addr(slot), Entry::new(k, below_chunk).0);
                if slot == 0 {
                    cur_min = k;
                }
                prev_max = k;
                slot += 1;
            }
            finish_chunk(&list, cur_ref, KEY_INF, NIL);
            if cur != list.head_of(level) {
                next_raised.push((cur, cur_min));
            }
            list.level_chunks[level]
                .store(raised.len() as u32, std::sync::atomic::Ordering::Relaxed);
            raised = next_raised;
            level += 1;
        }

        // Every allocated chunk has been sealed unlocked by finish_chunk's
        // direct pool writes; clear the held-lock tracker so dropping the
        // handle is not misread as a team dying with locks held.
        handle.held.clear();
        drop(handle);
        Ok(list)
    }

    /// Build a structure prefilled with `keys` (values = keys), sorting and
    /// deduplicating first.
    ///
    /// This is the serving front end's load path: a service run prefills via
    /// bulk load instead of replaying millions of single-key inserts, so a
    /// `serve` experiment spends its wall-clock on the measured phase.
    ///
    /// # Errors
    /// [`Error::InvalidKey`] if any key is reserved (`0` / `u32::MAX`);
    /// [`Error::PoolExhausted`] if the pool is too small.
    pub fn prefilled(params: GfslParams, keys: impl IntoIterator<Item = u32>) -> Result<Gfsl, Error> {
        let mut keys: Vec<u32> = keys.into_iter().collect();
        keys.sort_unstable();
        keys.dedup();
        Gfsl::from_sorted_pairs(params, keys.into_iter().map(|k| (k, k)))
    }

    /// Rebuild this structure into a fresh pool at quiescence, dropping
    /// zombies and defragmenting — the paper's sketched "compact between
    /// kernel launches" reclamation scheme (§4.1, future work there).
    ///
    /// Takes `&mut self` as a compile-time proof of quiescence (no handles
    /// can be alive). Returns the compacted replacement.
    pub fn compacted(&mut self) -> Result<Gfsl, Error> {
        Gfsl::from_sorted_pairs(self.params, self.pairs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfsl_simt::TeamSize;

    fn params16() -> GfslParams {
        GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        }
    }

    #[test]
    fn bulk_load_roundtrips_and_validates() {
        let pairs: Vec<(u32, u32)> = (1..=5_000u32).map(|k| (k * 2, k)).collect();
        let list = Gfsl::from_sorted_pairs(params16(), pairs.iter().copied()).unwrap();
        list.assert_valid();
        assert_eq!(list.pairs(), pairs);
        let mut h = list.handle();
        assert_eq!(h.get(10_000), Some(5_000));
        assert!(!h.contains(9_999));
        assert!(list.height() >= 1, "bulk load builds index levels");
    }

    #[test]
    fn bulk_loaded_structure_accepts_updates() {
        let list =
            Gfsl::from_sorted_pairs(params16(), (1..=1_000u32).map(|k| (k * 10, k))).unwrap();
        let mut h = list.handle();
        // Inserts between, below, and above the loaded keys; deletes too.
        assert!(h.insert(5, 5).unwrap());
        assert!(h.insert(10_005, 5).unwrap());
        assert!(h.insert(55, 55).unwrap());
        assert!(h.remove(500));
        assert!(!h.contains(500));
        assert!(h.contains(55));
        list.assert_valid();
        assert_eq!(list.len(), 1_002);
    }

    #[test]
    fn bulk_load_rejects_disorder_and_reserved_keys() {
        assert!(matches!(
            Gfsl::from_sorted_pairs(params16(), [(5, 0), (5, 1)]),
            Err(Error::InvalidKey(5))
        ));
        assert!(matches!(
            Gfsl::from_sorted_pairs(params16(), [(9, 0), (3, 1)]),
            Err(Error::InvalidKey(3))
        ));
        assert!(matches!(
            Gfsl::from_sorted_pairs(params16(), [(0, 0)]),
            Err(Error::InvalidKey(0))
        ));
        assert!(matches!(
            Gfsl::from_sorted_pairs(params16(), [(u32::MAX, 0)]),
            Err(Error::InvalidKey(u32::MAX))
        ));
    }

    #[test]
    fn empty_bulk_load_is_an_empty_list() {
        let list = Gfsl::from_sorted_pairs(params16(), std::iter::empty()).unwrap();
        assert!(list.is_empty());
        list.assert_valid();
        let mut h = list.handle();
        assert!(h.insert(1, 1).unwrap());
    }

    #[test]
    fn compaction_reclaims_zombie_chunks() {
        let mut list = Gfsl::new(params16()).unwrap();
        {
            let mut h = list.handle();
            for k in 1..=5_000u32 {
                h.insert(k, k).unwrap();
            }
            for k in 1..=4_500u32 {
                h.remove(k);
            }
            assert!(h.stats().merges > 0);
        }
        let before = list.chunks_allocated();
        let compacted = list.compacted().unwrap();
        compacted.assert_valid();
        assert_eq!(compacted.pairs(), list.pairs());
        assert!(
            compacted.chunks_allocated() < before / 4,
            "compaction must shed zombies and fragmentation: {} -> {}",
            before,
            compacted.chunks_allocated()
        );
        // And the compacted structure is fully usable.
        let mut h = compacted.handle();
        assert!(h.insert(3, 3).unwrap());
        assert!(h.remove(4_999));
        compacted.assert_valid();
    }

    #[test]
    fn prefilled_sorts_and_dedups() {
        let list = Gfsl::prefilled(params16(), [7u32, 3, 9, 3, 1, 7]).unwrap();
        list.assert_valid();
        assert_eq!(list.pairs(), vec![(1, 1), (3, 3), (7, 7), (9, 9)]);
        assert!(matches!(
            Gfsl::prefilled(params16(), [1u32, 0]),
            Err(Error::InvalidKey(0))
        ));
    }

    #[test]
    fn bulk_load_32_lane_chunks() {
        let list = Gfsl::from_sorted_pairs(
            GfslParams::default(),
            (1..=20_000u32).map(|k| (k, k ^ 0xAA)),
        )
        .unwrap();
        list.assert_valid();
        assert_eq!(list.len(), 20_000);
        let mut h = list.handle();
        assert_eq!(h.get(12_345), Some(12_345 ^ 0xAA));
    }
}
