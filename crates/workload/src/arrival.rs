//! Open- and closed-loop arrival processes for the serving front end.
//!
//! The harness's op streams (`OpMix::stream`) model a saturating benchmark
//! loop: every worker always has the next operation ready. A serving system
//! sees something different — requests *arrive* over time, attributed to
//! clients, and the server's batching decisions depend on that arrival
//! process. This module provides both classic load-generation shapes,
//! deterministically seeded so a service run replays bit-for-bit:
//!
//! * **Open loop** ([`OpenLoop`]): Poisson arrivals at a fixed offered rate,
//!   independent of completions. Models internet-facing traffic; overload is
//!   possible and sheds are expected.
//! * **Closed loop** ([`ClosedLoop`]): each client keeps at most one request
//!   outstanding and thinks (exponentially distributed pause) between its
//!   completion and its next issue. Models a fixed client population;
//!   offered load self-limits to `clients / (think + latency)`.
//!
//! Requests use [`ServeOp`], the four-kind superset of [`crate::Op`] that
//! adds `Range` scans (the serving API exposes them; the saturating harness
//! mixes do not).

use crate::rng::{Lehmer64, SplitMix64};

/// One serving-request operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOp {
    /// Point lookup.
    Get(u32),
    /// Insert `(key, value)`.
    Insert(u32, u32),
    /// Delete a key.
    Delete(u32),
    /// Count keys in the inclusive window `[lo, hi]`.
    Range(u32, u32),
    /// Peek the smallest present entry (priority-queue front).
    MinEntry,
    /// Extract-min: remove and return the smallest present entry.
    PopMin,
}

impl ServeOp {
    /// The (low) key the operation addresses — what sharded batch policies
    /// partition on. Min ops address the head of the key space, so they
    /// report the smallest user key.
    #[inline]
    pub fn key(&self) -> u32 {
        match *self {
            ServeOp::Get(k) | ServeOp::Insert(k, _) | ServeOp::Delete(k) | ServeOp::Range(k, _) => {
                k
            }
            ServeOp::MinEntry | ServeOp::PopMin => 1,
        }
    }

    /// True for operations that never take a chunk lock (the paper's
    /// lock-free Contains fast path, the range scan built on it, and the
    /// min-entry peek). `PopMin` removes, so it is a write.
    #[inline]
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            ServeOp::Get(_) | ServeOp::Range(_, _) | ServeOp::MinEntry
        )
    }
}

/// Percent mixture over the request kinds, plus the key span of range
/// scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeMix {
    /// Percent of `Insert` requests.
    pub insert_pct: u32,
    /// Percent of `Delete` requests.
    pub delete_pct: u32,
    /// Percent of `Get` requests.
    pub get_pct: u32,
    /// Percent of `Range` requests.
    pub range_pct: u32,
    /// Percent of `PopMin` (extract-min) requests.
    pub pop_pct: u32,
    /// Percent of `MinEntry` (peek-min) requests.
    pub min_pct: u32,
    /// Key span of each range scan (`hi = lo + range_span`, clamped).
    pub range_span: u32,
}

impl ServeMix {
    /// The paper's anchor mix, 10% insert / 10% delete / 80% lookup, with
    /// range scans disabled — directly comparable to [`crate::OpMix::C80`].
    pub const C80: ServeMix = ServeMix::new(10, 10, 80, 0, 0);

    /// A range-bearing service mix: 10/10/70 point ops plus 10% scans of a
    /// 64-key window.
    pub const RANGE10: ServeMix = ServeMix::new(10, 10, 70, 10, 64);

    /// The producer/consumer priority-queue mix: producers insert
    /// timestamped work items, consumers extract-min, a few peek the front
    /// — the shape of *Practical Concurrent Priority Queues* workloads.
    /// Slightly producer-heavy so the queue never empties out under load.
    pub const PQ: ServeMix = ServeMix::new_pq(48, 0, 5, 0, 42, 5, 0);

    /// A new mixture over the point/range kinds; percentages must sum
    /// to 100. Min ops are disabled — see [`ServeMix::new_pq`].
    pub const fn new(
        insert_pct: u32,
        delete_pct: u32,
        get_pct: u32,
        range_pct: u32,
        range_span: u32,
    ) -> ServeMix {
        ServeMix::new_pq(insert_pct, delete_pct, get_pct, range_pct, 0, 0, range_span)
    }

    /// A new mixture over all six request kinds; percentages must sum
    /// to 100.
    pub const fn new_pq(
        insert_pct: u32,
        delete_pct: u32,
        get_pct: u32,
        range_pct: u32,
        pop_pct: u32,
        min_pct: u32,
        range_span: u32,
    ) -> ServeMix {
        assert!(
            insert_pct + delete_pct + get_pct + range_pct + pop_pct + min_pct == 100,
            "request mix must sum to 100%"
        );
        ServeMix {
            insert_pct,
            delete_pct,
            get_pct,
            range_pct,
            pop_pct,
            min_pct,
            range_span,
        }
    }

    /// Draw one request with a uniform key in `1..=key_range`.
    #[inline]
    pub fn draw(&self, rng: &mut Lehmer64, key_range: u32) -> ServeOp {
        let k = rng.below(key_range as u64) as u32 + 1;
        self.draw_keyed(rng, k, key_range)
    }

    /// Draw one request for a caller-chosen key `k` (skewed scenarios pick
    /// keys from their own distribution and only roll the op kind here).
    #[inline]
    pub fn draw_keyed(&self, rng: &mut Lehmer64, k: u32, key_range: u32) -> ServeOp {
        let roll = rng.below(100) as u32;
        if roll < self.insert_pct {
            ServeOp::Insert(k, k)
        } else if roll < self.insert_pct + self.delete_pct {
            ServeOp::Delete(k)
        } else if roll < self.insert_pct + self.delete_pct + self.get_pct {
            ServeOp::Get(k)
        } else if roll < self.insert_pct + self.delete_pct + self.get_pct + self.range_pct {
            let hi = k.saturating_add(self.range_span).min(key_range);
            ServeOp::Range(k, hi)
        } else if roll
            < self.insert_pct + self.delete_pct + self.get_pct + self.range_pct + self.pop_pct
        {
            ServeOp::PopMin
        } else {
            ServeOp::MinEntry
        }
    }

    /// Generate a full deterministic request stream (uniform keys).
    pub fn stream(&self, seed: u64, key_range: u32, n_ops: usize) -> Vec<ServeOp> {
        let mut rng = Lehmer64::new(seed);
        (0..n_ops).map(|_| self.draw(&mut rng, key_range)).collect()
    }
}

/// Deterministic exponential inter-arrival / think-time sampler.
#[derive(Debug, Clone)]
pub struct Exponential {
    rng: SplitMix64,
    mean_ns: f64,
}

impl Exponential {
    /// Sampler with the given mean, in nanoseconds. A zero mean always
    /// samples zero (back-to-back arrivals).
    pub fn new(seed: u64, mean_ns: u64) -> Exponential {
        Exponential {
            rng: SplitMix64::new(seed),
            mean_ns: mean_ns as f64,
        }
    }

    /// Next interval in nanoseconds: `-mean · ln(1 - U)`, `U ∈ [0, 1)` so
    /// the argument stays in `(0, 1]` and the draw is finite.
    #[inline]
    pub fn next_ns(&mut self) -> u64 {
        if self.mean_ns <= 0.0 {
            return 0;
        }
        let u = self.rng.unit_f64();
        (-self.mean_ns * (1.0 - u).ln()) as u64
    }
}

/// One arrival: a request op attributed to a client at a virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival time in nanoseconds since the run started.
    pub at_ns: u64,
    /// Issuing client.
    pub client: u32,
    /// The request operation.
    pub op: ServeOp,
}

/// Open-loop (Poisson) arrival process: `n_ops` requests at a fixed offered
/// rate, attributed uniformly to `clients` simulated clients.
#[derive(Debug, Clone)]
pub struct OpenLoop {
    mix: ServeMix,
    key_range: u32,
    clients: u32,
    remaining: u64,
    clock_ns: u64,
    iat: Exponential,
    ops: Lehmer64,
    assign: SplitMix64,
}

impl OpenLoop {
    /// A process offering `rate_mops` million requests per second.
    pub fn new(
        mix: ServeMix,
        key_range: u32,
        clients: u32,
        n_ops: u64,
        rate_mops: f64,
        seed: u64,
    ) -> OpenLoop {
        assert!(clients > 0 && key_range > 0 && rate_mops > 0.0);
        let mean_ns = (1_000.0 / rate_mops).max(0.0) as u64;
        OpenLoop {
            mix,
            key_range,
            clients,
            remaining: n_ops,
            clock_ns: 0,
            iat: Exponential::new(seed ^ 0x0A11_AB1E, mean_ns),
            ops: Lehmer64::new(seed ^ 0x0BEA_7E11),
            assign: SplitMix64::new(seed ^ 0x0C0F_FEE5),
        }
    }

    /// Requests this process will still yield.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Iterator for OpenLoop {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.clock_ns += self.iat.next_ns();
        Some(Arrival {
            at_ns: self.clock_ns,
            client: self.assign.below(self.clients as u64) as u32,
            op: self.mix.draw(&mut self.ops, self.key_range),
        })
    }
}

/// One closed-loop client: a deterministic op stream plus a think-time
/// sampler. The *server* drives the state machine — it calls [`next_op`]
/// when the client issues and [`think_ns`] when a completion comes back.
///
/// [`next_op`]: ClientStream::next_op
/// [`think_ns`]: ClientStream::think_ns
#[derive(Debug, Clone)]
pub struct ClientStream {
    mix: ServeMix,
    key_range: u32,
    remaining: u64,
    ops: Lehmer64,
    think: Exponential,
}

impl ClientStream {
    /// The client's next request, or `None` when its script is exhausted.
    pub fn next_op(&mut self) -> Option<ServeOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.mix.draw(&mut self.ops, self.key_range))
    }

    /// Think-time pause before the client's next issue, in nanoseconds.
    pub fn think_ns(&mut self) -> u64 {
        self.think.next_ns()
    }

    /// Requests this client will still issue.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

/// A closed-loop client population: each client keeps one request
/// outstanding and thinks between completion and the next issue.
#[derive(Debug, Clone)]
pub struct ClosedLoop {
    /// Per-client streams, indexed by client id.
    pub streams: Vec<ClientStream>,
}

impl ClosedLoop {
    /// `clients` clients, each scripted for `ops_per_client` requests with
    /// mean think time `think_mean_ns`.
    pub fn new(
        clients: u32,
        ops_per_client: u64,
        think_mean_ns: u64,
        mix: ServeMix,
        key_range: u32,
        seed: u64,
    ) -> ClosedLoop {
        assert!(clients > 0 && key_range > 0);
        let streams = (0..clients)
            .map(|c| ClientStream {
                mix,
                key_range,
                remaining: ops_per_client,
                ops: Lehmer64::new(seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5E12_CE00),
                think: Exponential::new(
                    seed ^ (c as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ 0x7417_4B11,
                    think_mean_ns,
                ),
            })
            .collect();
        ClosedLoop { streams }
    }

    /// Total requests the population will issue.
    pub fn total_ops(&self) -> u64 {
        self.streams.iter().map(|s| s.remaining).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_mix_respects_percentages() {
        let mut rng = Lehmer64::new(7);
        let mix = ServeMix::RANGE10;
        let n = 100_000;
        let mut counts = [0u32; 6];
        for _ in 0..n {
            match mix.draw(&mut rng, 1_000_000) {
                ServeOp::Insert(..) => counts[0] += 1,
                ServeOp::Delete(_) => counts[1] += 1,
                ServeOp::Get(_) => counts[2] += 1,
                ServeOp::Range(..) => counts[3] += 1,
                ServeOp::PopMin => counts[4] += 1,
                ServeOp::MinEntry => counts[5] += 1,
            }
        }
        let pct = |c: u32| c as f64 / n as f64 * 100.0;
        assert!((pct(counts[0]) - 10.0).abs() < 1.0);
        assert!((pct(counts[1]) - 10.0).abs() < 1.0);
        assert!((pct(counts[2]) - 70.0).abs() < 1.0);
        assert!((pct(counts[3]) - 10.0).abs() < 1.0);
        assert_eq!(counts[4] + counts[5], 0, "min ops disabled in RANGE10");
    }

    #[test]
    fn pq_mix_produces_producer_consumer_streams() {
        let mut rng = Lehmer64::new(13);
        let mix = ServeMix::PQ;
        let n = 100_000;
        let (mut pops, mut mins, mut inserts) = (0u32, 0u32, 0u32);
        for _ in 0..n {
            match mix.draw(&mut rng, 1_000_000) {
                ServeOp::PopMin => pops += 1,
                ServeOp::MinEntry => mins += 1,
                ServeOp::Insert(..) => inserts += 1,
                _ => {}
            }
        }
        let pct = |c: u32| c as f64 / n as f64 * 100.0;
        assert!((pct(inserts) - 48.0).abs() < 1.0);
        assert!((pct(pops) - 42.0).abs() < 1.0);
        assert!((pct(mins) - 5.0).abs() < 1.0);
        assert!(inserts > pops, "producer-heavy: the queue must not drain dry");
    }

    #[test]
    fn c80_is_the_harness_anchor_mix() {
        let mix = ServeMix::C80;
        let ops = mix.stream(42, 1000, 10_000);
        assert!(ops.iter().all(|o| !matches!(o, ServeOp::Range(..))));
        assert!(ops.iter().all(|o| (1..=1000).contains(&o.key())));
    }

    #[test]
    fn range_windows_are_well_formed() {
        let ops = ServeMix::RANGE10.stream(9, 500, 20_000);
        for op in ops {
            if let ServeOp::Range(lo, hi) = op {
                assert!(lo <= hi && hi <= 500);
            }
        }
    }

    #[test]
    fn exponential_mean_tracks_parameter() {
        let mut e = Exponential::new(3, 1_000);
        let n = 200_000u64;
        let total: u64 = (0..n).map(|_| e.next_ns()).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1_000.0).abs() < 25.0, "mean = {mean}");
        assert_eq!(Exponential::new(3, 0).next_ns(), 0);
    }

    #[test]
    fn open_loop_is_deterministic_and_time_ordered() {
        let a: Vec<Arrival> =
            OpenLoop::new(ServeMix::C80, 1000, 8, 5_000, 1.0, 11).collect();
        let b: Vec<Arrival> =
            OpenLoop::new(ServeMix::C80, 1000, 8, 5_000, 1.0, 11).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(a.iter().all(|r| r.client < 8));
        let c: Vec<Arrival> =
            OpenLoop::new(ServeMix::C80, 1000, 8, 5_000, 1.0, 12).collect();
        assert_ne!(a, c, "different seed, different arrivals");
    }

    #[test]
    fn open_loop_rate_sets_mean_spacing() {
        let arrivals: Vec<Arrival> =
            OpenLoop::new(ServeMix::C80, 1000, 4, 50_000, 2.0, 5).collect();
        // 2 Mops/s -> mean inter-arrival 500 ns.
        let span = arrivals.last().unwrap().at_ns as f64;
        let mean = span / arrivals.len() as f64;
        assert!((mean - 500.0).abs() < 20.0, "mean spacing = {mean}");
    }

    #[test]
    fn closed_loop_clients_are_independent_deterministic_streams() {
        let mut a = ClosedLoop::new(4, 100, 1_000, ServeMix::C80, 1000, 21);
        let mut b = ClosedLoop::new(4, 100, 1_000, ServeMix::C80, 1000, 21);
        assert_eq!(a.total_ops(), 400);
        let ops_a: Vec<_> = (0..100).map_while(|_| a.streams[2].next_op()).collect();
        let ops_b: Vec<_> = (0..100).map_while(|_| b.streams[2].next_op()).collect();
        assert_eq!(ops_a, ops_b);
        assert_eq!(a.streams[2].next_op(), None, "script exhausts at 100");
        let ops_other: Vec<_> = (0..100).map_while(|_| b.streams[3].next_op()).collect();
        assert_ne!(ops_a, ops_other, "clients draw distinct streams");
    }
}
