//! Key distributions beyond the paper's uniform draws.
//!
//! The paper generates keys uniformly (§5.1). Real key-value workloads are
//! usually skewed, and skew interacts with both of the effects the paper
//! studies: hot keys concentrate traffic into few cache lines (raising the
//! L2 hit rate) and concentrate updates onto few chunks (raising lock
//! contention). The `ablate` experiment uses [`Zipf`] to measure both.

use serde::{Deserialize, Serialize};

use crate::rng::Lehmer64;

/// A key distribution over `1..=range`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDist {
    /// Uniform (the paper's setting).
    Uniform,
    /// Zipf-like power law with skew `theta` in `[0, 1)`; larger is more
    /// skewed. 0.99 approximates YCSB's default.
    Zipf(f64),
}

impl KeyDist {
    /// Draw one key in `1..=range`.
    #[inline]
    pub fn draw(&self, rng: &mut Lehmer64, range: u32) -> u32 {
        match *self {
            KeyDist::Uniform => rng.below(range as u64) as u32 + 1,
            KeyDist::Zipf(theta) => Zipf::new(range, theta).draw(rng),
        }
    }
}

/// Approximate Zipf sampler via continuous inverse-CDF: for skew
/// `theta < 1`, `P(X <= x) ∝ x^(1-theta)`, so `X = ceil(range ·
/// U^(1/(1-theta)))`. Rank 1 is the hottest key. The approximation error
/// against the exact discrete Zipf is negligible for the range sizes used
/// here and the sampler is O(1) with no precomputed tables (a 10M-entry CDF
/// table would be bigger than the structure under test).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    /// Number of distinct keys.
    pub range: u32,
    /// Skew parameter in `[0, 1)`; 0 degenerates to (approximately)
    /// uniform.
    pub theta: f64,
    exponent: f64,
}

impl Zipf {
    /// Build a sampler.
    ///
    /// # Panics
    /// Panics if `theta` is outside `[0, 1)` or `range` is zero.
    pub fn new(range: u32, theta: f64) -> Zipf {
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        assert!(range > 0);
        Zipf {
            range,
            theta,
            exponent: 1.0 / (1.0 - theta),
        }
    }

    /// Draw a key in `1..=range`; small keys are hot.
    #[inline]
    pub fn draw(&self, rng: &mut Lehmer64) -> u32 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = (self.range as f64 * u.powf(self.exponent)).ceil() as u32;
        x.clamp(1, self.range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw_many(theta: f64, range: u32, n: usize) -> Vec<u32> {
        let z = Zipf::new(range, theta);
        let mut rng = Lehmer64::new(42);
        (0..n).map(|_| z.draw(&mut rng)).collect()
    }

    #[test]
    fn all_draws_in_range() {
        for theta in [0.0, 0.5, 0.99] {
            let xs = draw_many(theta, 1000, 20_000);
            assert!(xs.iter().all(|&x| (1..=1000).contains(&x)), "theta={theta}");
        }
    }

    #[test]
    fn higher_theta_concentrates_mass() {
        let head = |theta: f64| {
            draw_many(theta, 10_000, 50_000)
                .iter()
                .filter(|&&x| x <= 100) // hottest 1%
                .count()
        };
        let h0 = head(0.0);
        let h5 = head(0.5);
        let h99 = head(0.99);
        assert!(h5 > h0 * 3, "theta=0.5 head {h5} vs uniform {h0}");
        assert!(h99 > h5 * 2, "theta=0.99 head {h99} vs {h5}");
        // Uniform puts ~1% in the head.
        assert!((300..=900).contains(&h0), "uniform head {h0} ~ 1% of 50k");
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let xs = draw_many(0.0, 100, 100_000);
        let mut counts = [0u32; 101];
        for x in xs {
            counts[x as usize] += 1;
        }
        let (min, max) = (counts[1..].iter().min().unwrap(), counts[1..].iter().max().unwrap());
        assert!(*max < *min * 2, "uniform-ish spread: min {min} max {max}");
    }

    #[test]
    fn sampler_is_deterministic() {
        assert_eq!(draw_many(0.8, 500, 100), draw_many(0.8, 500, 100));
    }

    #[test]
    fn keydist_enum_dispatch() {
        let mut rng = Lehmer64::new(7);
        let u = KeyDist::Uniform.draw(&mut rng, 10);
        assert!((1..=10).contains(&u));
        let z = KeyDist::Zipf(0.9).draw(&mut rng, 10);
        assert!((1..=10).contains(&z));
    }

    #[test]
    #[should_panic]
    fn theta_one_rejected() {
        let _ = Zipf::new(10, 1.0);
    }
}
