//! Set-associative LRU model of the GPU's L2 cache.
//!
//! On the GTX 970 every global-memory transaction goes through a 1.75 MB L2
//! shared by all SMs. Whether the working set fits is the pivotal effect in
//! the paper's evaluation (§5.3): in the 10K key range "the entire structure
//! fits into the L2 cache in both implementations", neutralizing GFSL's
//! coalescing advantage; on large ranges M&C's scattered accesses miss and
//! its performance "melts down".
//!
//! The model is a straightforward set-associative cache with per-set LRU,
//! sharded behind `parking_lot` mutexes so concurrently running worker
//! threads can probe it without a global bottleneck. Hit/miss totals are
//! aggregated in the callers' [`crate::Traffic`] counters.

use parking_lot::Mutex;

use crate::layout::{LineAddr, LINE_BYTES};

/// Result of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The line was resident.
    Hit,
    /// The line was fetched from DRAM (and inserted).
    Miss,
}

#[derive(Clone)]
struct Set {
    /// Tags of resident lines, most-recently-used last. The flag marks a
    /// line brought in by a software prefetch that no demand access has
    /// touched yet (cleared on first demand hit so usefulness is counted
    /// once per fill).
    tags: Vec<(LineAddr, bool)>,
}

/// A set-associative, LRU, write-allocate cache of 128-byte lines.
pub struct L2Cache {
    sets: Vec<Mutex<Set>>,
    ways: usize,
}

impl L2Cache {
    /// Build a cache with the given capacity and associativity.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero ways or capacity smaller
    /// than one set). Set indexing is modulo, so any set count works — the
    /// GTX 970's 1.75 MB / 16 ways gives exactly 896 sets.
    pub fn new(capacity_bytes: usize, ways: usize) -> L2Cache {
        assert!(ways > 0, "associativity must be positive");
        let lines = capacity_bytes / LINE_BYTES;
        assert!(lines >= ways, "capacity must hold at least one set");
        let n_sets = (lines / ways).max(1);
        let sets = (0..n_sets)
            .map(|_| {
                Mutex::new(Set {
                    tags: Vec::with_capacity(ways),
                })
            })
            .collect();
        L2Cache { sets, ways }
    }

    /// GTX 970 L2: 1.75 MB, modeled 16-way.
    pub fn gtx970() -> L2Cache {
        L2Cache::new(1_792 * 1024, 16)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Probe (and on miss, fill) the line. LRU within the set.
    pub fn access(&self, line: LineAddr) -> Probe {
        self.demand_access(line).0
    }

    /// Probe like [`access`](Self::access), additionally reporting whether a
    /// hit landed on a line a software prefetch brought in (first demand
    /// touch only). Replacement behaviour is identical to `access`.
    pub fn demand_access(&self, line: LineAddr) -> (Probe, bool) {
        let set = &self.sets[line as usize % self.sets.len()];
        let mut s = set.lock();
        if let Some(pos) = s.tags.iter().position(|&(t, _)| t == line) {
            // Move to MRU position, consuming the prefetched flag.
            let (tag, prefetched) = s.tags.remove(pos);
            s.tags.push((tag, false));
            (Probe::Hit, prefetched)
        } else {
            if s.tags.len() == self.ways {
                s.tags.remove(0); // evict LRU
            }
            s.tags.push((line, false));
            (Probe::Miss, false)
        }
    }

    /// Software-prefetch the line: if absent, fill it (evicting LRU) and
    /// mark it prefetched; if already resident, leave the set untouched —
    /// including its LRU order, so a useless prefetch cannot extend a
    /// line's lifetime. Returns `true` when the line was actually fetched
    /// from DRAM.
    pub fn prefetch(&self, line: LineAddr) -> bool {
        let set = &self.sets[line as usize % self.sets.len()];
        let mut s = set.lock();
        if s.tags.iter().any(|&(t, _)| t == line) {
            return false;
        }
        if s.tags.len() == self.ways {
            s.tags.remove(0); // evict LRU
        }
        s.tags.push((line, true));
        true
    }

    /// Drop all resident lines (used between experiment phases so the timed
    /// phase starts from a warm-from-prefill or explicitly cold state).
    pub fn flush(&self) {
        for set in &self.sets {
            set.lock().tags.clear();
        }
    }

    /// Number of currently resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.lock().tags.len()).sum()
    }
}

impl std::fmt::Debug for L2Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("L2Cache")
            .field("sets", &self.sets.len())
            .field("ways", &self.ways)
            .field("capacity_lines", &self.capacity_lines())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx970_geometry_close_to_spec() {
        let c = L2Cache::gtx970();
        // 1.75MB / 128B = 14336 lines, 16 ways -> exactly 896 sets.
        assert_eq!(c.capacity_lines(), 14336);
        assert_eq!(c.sets(), 896);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let c = L2Cache::new(16 * 1024, 4);
        assert_eq!(c.access(42), Probe::Miss);
        assert_eq!(c.access(42), Probe::Hit);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        let c = L2Cache::new(LINE_BYTES * 4, 4); // 1 set, 4 ways
        assert_eq!(c.sets(), 1);
        for line in 0..4 {
            assert_eq!(c.access(line), Probe::Miss);
        }
        // Touch line 0 so line 1 becomes LRU.
        assert_eq!(c.access(0), Probe::Hit);
        assert_eq!(c.access(99), Probe::Miss); // evicts 1
        assert_eq!(c.access(0), Probe::Hit);
        assert_eq!(c.access(1), Probe::Miss);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let c = L2Cache::new(LINE_BYTES * 8, 4); // 2 sets
        assert_eq!(c.sets(), 2);
        // Even lines map to set 0, odd to set 1.
        for line in [0u32, 2, 4, 6] {
            c.access(line);
        }
        assert_eq!(c.access(1), Probe::Miss);
        assert_eq!(c.access(0), Probe::Hit, "set 0 untouched by set 1 fill");
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let c = L2Cache::new(LINE_BYTES * 64, 4);
        let cap = c.capacity_lines() as u32;
        // Stream 4x capacity twice; second pass must still miss everywhere
        // (LRU + streaming = no reuse).
        for pass in 0..2 {
            for line in 0..cap * 4 {
                let p = c.access(line);
                assert_eq!(p, Probe::Miss, "pass {pass} line {line}");
            }
        }
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let c = L2Cache::new(LINE_BYTES * 256, 16);
        let resident = (c.capacity_lines() / 2) as u32;
        for line in 0..resident {
            c.access(line);
        }
        for line in 0..resident {
            assert_eq!(c.access(line), Probe::Hit);
        }
    }

    #[test]
    fn flush_empties_cache() {
        let c = L2Cache::new(16 * 1024, 4);
        for line in 0..10 {
            c.access(line);
        }
        assert!(c.resident_lines() > 0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.access(3), Probe::Miss);
    }

    #[test]
    fn prefetch_fills_and_first_demand_touch_reports_it() {
        let c = L2Cache::new(16 * 1024, 4);
        assert!(c.prefetch(42), "absent line fetched");
        assert!(!c.prefetch(42), "resident line not re-fetched");
        assert_eq!(c.resident_lines(), 1);
        assert_eq!(c.demand_access(42), (Probe::Hit, true), "useful prefetch");
        assert_eq!(c.demand_access(42), (Probe::Hit, false), "counted once");
    }

    #[test]
    fn prefetch_of_resident_line_does_not_refresh_lru() {
        let c = L2Cache::new(LINE_BYTES * 4, 4); // 1 set, 4 ways
        for line in 0..4 {
            c.access(line);
        }
        // Line 0 is LRU; a prefetch of it must NOT move it to MRU.
        assert!(!c.prefetch(0));
        assert_eq!(c.access(99), Probe::Miss); // evicts 0, not 1
        assert_eq!(c.access(1), Probe::Hit);
        assert_eq!(c.access(0), Probe::Miss);
    }

    #[test]
    fn demand_miss_clears_nothing_and_evicted_prefetch_is_wasted() {
        let c = L2Cache::new(LINE_BYTES * 4, 4); // 1 set, 4 ways
        assert!(c.prefetch(7));
        // Stream enough demand lines to evict the prefetched one.
        for line in 100..104 {
            c.access(line);
        }
        assert_eq!(c.demand_access(7), (Probe::Miss, false), "wasted prefetch");
    }

    #[test]
    fn concurrent_probes_do_not_panic_or_deadlock() {
        let c = std::sync::Arc::new(L2Cache::new(64 * 1024, 8));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..10_000u32 {
                        c.access((i * 7 + t) % 4096);
                    }
                });
            }
        });
        assert!(c.resident_lines() <= c.capacity_lines());
    }
}
