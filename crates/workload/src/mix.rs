//! Operation mixtures `[i, d, c]` and the operation stream they induce.

use serde::{Deserialize, Serialize};

use crate::rng::Lehmer64;

/// One skiplist operation of the benchmark stream. Inserted values are NULL
/// (0-equivalent) in the paper's kernels; we use the key itself so value
/// integrity is checkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert `(key, value)`.
    Insert(u32, u32),
    /// Delete `key`.
    Delete(u32),
    /// Look up `key`.
    Contains(u32),
}

impl Op {
    /// The operation's key.
    pub fn key(&self) -> u32 {
        match *self {
            Op::Insert(k, _) | Op::Delete(k) | Op::Contains(k) => k,
        }
    }

    /// The operation's kind.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Insert(..) => OpKind::Insert,
            Op::Delete(..) => OpKind::Delete,
            Op::Contains(..) => OpKind::Contains,
        }
    }
}

/// Operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// An insert.
    Insert,
    /// A delete.
    Delete,
    /// A membership query.
    Contains,
}

/// An `[i, d, c]` mixture: percentage of inserts, deletes, and contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpMix {
    /// Percent inserts.
    pub insert_pct: u32,
    /// Percent deletes.
    pub delete_pct: u32,
    /// Percent contains.
    pub contains_pct: u32,
}

impl OpMix {
    /// `[1, 1, 98]` (paper Fig. 5.3a).
    pub const C98: OpMix = OpMix::new(1, 1, 98);
    /// `[5, 5, 90]` (Fig. 5.3b).
    pub const C90: OpMix = OpMix::new(5, 5, 90);
    /// `[10, 10, 80]` (Fig. 5.3c — also the Table 5.1/5.2 anchor).
    pub const C80: OpMix = OpMix::new(10, 10, 80);
    /// `[20, 20, 60]` (Fig. 5.3d).
    pub const C60: OpMix = OpMix::new(20, 20, 60);
    /// Insert-only (Fig. 5.4b).
    pub const INSERT_ONLY: OpMix = OpMix::new(100, 0, 0);
    /// Delete-only (Fig. 5.4c).
    pub const DELETE_ONLY: OpMix = OpMix::new(0, 100, 0);
    /// Contains-only (Fig. 5.4a).
    pub const CONTAINS_ONLY: OpMix = OpMix::new(0, 0, 100);

    /// The four mixed-operation benchmarks of Fig. 5.2/5.3.
    pub const MIXED: [OpMix; 4] = [OpMix::C98, OpMix::C90, OpMix::C80, OpMix::C60];

    /// Build a mixture; percentages must total 100.
    pub const fn new(insert_pct: u32, delete_pct: u32, contains_pct: u32) -> OpMix {
        assert!(insert_pct + delete_pct + contains_pct == 100);
        OpMix {
            insert_pct,
            delete_pct,
            contains_pct,
        }
    }

    /// Draw one operation with a uniform key in `1..=key_range`.
    #[inline]
    pub fn draw(&self, rng: &mut Lehmer64, key_range: u32) -> Op {
        let k = rng.below(key_range as u64) as u32 + 1;
        let roll = rng.below(100) as u32;
        if roll < self.insert_pct {
            Op::Insert(k, k)
        } else if roll < self.insert_pct + self.delete_pct {
            Op::Delete(k)
        } else {
            Op::Contains(k)
        }
    }

    /// Generate a full operation stream (uniform keys, the paper's
    /// setting).
    pub fn stream(&self, seed: u64, key_range: u32, n_ops: usize) -> Vec<Op> {
        self.stream_dist(seed, key_range, n_ops, crate::dist::KeyDist::Uniform)
    }

    /// Generate a stream with an explicit key distribution (skew
    /// ablations).
    pub fn stream_dist(
        &self,
        seed: u64,
        key_range: u32,
        n_ops: usize,
        dist: crate::dist::KeyDist,
    ) -> Vec<Op> {
        let mut rng = Lehmer64::new(seed);
        (0..n_ops)
            .map(|_| {
                let k = dist.draw(&mut rng, key_range);
                let roll = rng.below(100) as u32;
                if roll < self.insert_pct {
                    Op::Insert(k, k)
                } else if roll < self.insert_pct + self.delete_pct {
                    Op::Delete(k)
                } else {
                    Op::Contains(k)
                }
            })
            .collect()
    }

    /// Update fraction (inserts + deletes) in `0..=1`.
    pub fn update_fraction(&self) -> f64 {
        (self.insert_pct + self.delete_pct) as f64 / 100.0
    }
}

impl std::fmt::Display for OpMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{},{},{}]",
            self.insert_pct, self.delete_pct, self.contains_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_sum_to_100() {
        for m in [
            OpMix::C98,
            OpMix::C90,
            OpMix::C80,
            OpMix::C60,
            OpMix::INSERT_ONLY,
            OpMix::DELETE_ONLY,
            OpMix::CONTAINS_ONLY,
        ] {
            assert_eq!(m.insert_pct + m.delete_pct + m.contains_pct, 100);
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let a = OpMix::C80.stream(7, 1000, 500);
        let b = OpMix::C80.stream(7, 1000, 500);
        let c = OpMix::C80.stream(8, 1000, 500);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_frequencies_match_mixture() {
        let ops = OpMix::C80.stream(3, 10_000, 100_000);
        let ins = ops.iter().filter(|o| o.kind() == OpKind::Insert).count() as f64;
        let del = ops.iter().filter(|o| o.kind() == OpKind::Delete).count() as f64;
        let con = ops.iter().filter(|o| o.kind() == OpKind::Contains).count() as f64;
        let n = ops.len() as f64;
        assert!((ins / n - 0.10).abs() < 0.01);
        assert!((del / n - 0.10).abs() < 0.01);
        assert!((con / n - 0.80).abs() < 0.01);
    }

    #[test]
    fn keys_stay_in_range_and_avoid_zero() {
        let ops = OpMix::C60.stream(5, 77, 10_000);
        assert!(ops.iter().all(|o| (1..=77).contains(&o.key())));
    }

    #[test]
    fn single_op_streams_are_pure() {
        assert!(OpMix::CONTAINS_ONLY
            .stream(1, 100, 1000)
            .iter()
            .all(|o| o.kind() == OpKind::Contains));
        assert!(OpMix::INSERT_ONLY
            .stream(1, 100, 1000)
            .iter()
            .all(|o| o.kind() == OpKind::Insert));
        assert!(OpMix::DELETE_ONLY
            .stream(1, 100, 1000)
            .iter()
            .all(|o| o.kind() == OpKind::Delete));
    }

    #[test]
    fn display_format_matches_paper_notation() {
        assert_eq!(OpMix::C80.to_string(), "[10,10,80]");
    }

    #[test]
    #[should_panic]
    fn bad_percentages_panic() {
        let _ = OpMix::new(50, 50, 50);
    }
}
