//! Per-worker memory-traffic counters.
//!
//! Counters are plain integers owned by one worker thread and merged after a
//! run; the instrumented fast path therefore costs a handful of increments,
//! not atomic RMWs.

/// Memory-system event totals for one worker (or, after merging, one run).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Traffic {
    /// Coalesced read transactions issued (one per distinct line per
    /// half-warp per access).
    pub read_txns: u64,
    /// Write transactions issued.
    pub write_txns: u64,
    /// Atomic (CAS / atomic-store-with-contention) transactions. On Maxwell
    /// atomics resolve in L2 and serialize per address.
    pub atomic_txns: u64,
    /// Transactions that hit in the simulated L2.
    pub l2_hits: u64,
    /// Transactions that missed to DRAM.
    pub l2_misses: u64,
    /// 32-byte DRAM sectors fetched by the misses (a fully-used line costs
    /// four sectors; a scattered 8-byte access costs one).
    pub miss_sectors: u64,
    /// Total 8-byte words transferred by reads (for bandwidth accounting).
    pub words_read: u64,
    /// Total words written.
    pub words_written: u64,
    /// Software-prefetch transactions issued (one per distinct line).
    pub prefetch_txns: u64,
    /// Prefetch transactions that actually fetched a line from DRAM (the
    /// rest found the line already resident).
    pub prefetch_fills: u64,
    /// Demand accesses whose hit landed on a prefetched line (first touch
    /// per fill) — the "useful prefetch" count.
    pub prefetch_useful: u64,
}

impl Traffic {
    /// Fresh, zeroed counters.
    pub fn new() -> Traffic {
        Traffic::default()
    }

    /// All transactions of any kind.
    pub fn total_txns(&self) -> u64 {
        self.read_txns + self.write_txns + self.atomic_txns
    }

    /// L2 hit ratio over transactions that probed the cache.
    pub fn l2_hit_ratio(&self) -> f64 {
        let probes = self.l2_hits + self.l2_misses;
        if probes == 0 {
            0.0
        } else {
            self.l2_hits as f64 / probes as f64
        }
    }

    /// Fraction of issued prefetches whose line was demand-hit before
    /// eviction.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetch_txns == 0 {
            0.0
        } else {
            self.prefetch_useful as f64 / self.prefetch_txns as f64
        }
    }

    /// Merge another worker's counters into this one.
    pub fn merge(&mut self, o: &Traffic) {
        self.read_txns += o.read_txns;
        self.write_txns += o.write_txns;
        self.atomic_txns += o.atomic_txns;
        self.l2_hits += o.l2_hits;
        self.l2_misses += o.l2_misses;
        self.miss_sectors += o.miss_sectors;
        self.words_read += o.words_read;
        self.words_written += o.words_written;
        self.prefetch_txns += o.prefetch_txns;
        self.prefetch_fills += o.prefetch_fills;
        self.prefetch_useful += o.prefetch_useful;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let t = Traffic::new();
        assert_eq!(t.total_txns(), 0);
        assert_eq!(t.l2_hit_ratio(), 0.0);
    }

    #[test]
    fn totals_and_ratio() {
        let t = Traffic {
            read_txns: 10,
            write_txns: 4,
            atomic_txns: 1,
            l2_hits: 9,
            l2_misses: 3,
            miss_sectors: 7,
            words_read: 100,
            words_written: 40,
            prefetch_txns: 8,
            prefetch_fills: 5,
            prefetch_useful: 4,
        };
        assert_eq!(t.total_txns(), 15, "prefetches are hints, not txns");
        assert!((t.l2_hit_ratio() - 0.75).abs() < 1e-12);
        assert!((t.prefetch_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_is_componentwise_sum() {
        let mut a = Traffic {
            read_txns: 1,
            write_txns: 2,
            atomic_txns: 3,
            l2_hits: 4,
            l2_misses: 5,
            miss_sectors: 11,
            words_read: 6,
            words_written: 7,
            prefetch_txns: 8,
            prefetch_fills: 9,
            prefetch_useful: 10,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            Traffic {
                read_txns: 2,
                write_txns: 4,
                atomic_txns: 6,
                l2_hits: 8,
                l2_misses: 10,
                miss_sectors: 22,
                words_read: 12,
                words_written: 14,
                prefetch_txns: 16,
                prefetch_fills: 18,
                prefetch_useful: 20,
            }
        );
    }
}
