//! Epoch-based reclamation of retired (zombie) chunks.
//!
//! The paper never frees memory: `LOCK_ZOMBIE` is terminal and the pool's
//! bump pointer only grows, so sustained insert/delete churn exhausts the
//! pool even when the live set is tiny (§5.3 shows M&C hitting exactly this
//! wall). [`EpochReclaimer`] closes the loop with classic three-epoch EBR,
//! adapted to GFSL's team model:
//!
//! * every worker (team) registers a **slot** and *pins* it for the duration
//!   of each operation, announcing the global epoch it observed at entry;
//! * a chunk is **retired** (not recycled) at the moment it is *unlinked*
//!   from its level's list — the only point where the unlinking team holds
//!   exclusive authority over the pointer that made it reachable;
//! * a retired chunk becomes a **candidate** once two epoch advances have
//!   happened after its retirement: every team that could have held a
//!   reference from before the unlink has since passed through a quiescent
//!   (unpinned) state;
//! * the structure layer then performs its own reachability check on each
//!   candidate (stale down pointers may still name it — see DESIGN.md) and
//!   either [`stage_verified`](EpochReclaimer::stage_verified)s it or
//!   [`requeue`](EpochReclaimer::requeue)s it for a later round;
//! * a staged chunk waits out **one more grace period** before
//!   [`harvest_verified`](EpochReclaimer::harvest_verified) moves it to the
//!   free list: the verification scan proves no reference exists *in
//!   memory*, but a reader may have copied a stale pointer into a register
//!   just before its source was repaired — the second grace covers every
//!   pin that was live at scan time;
//! * `alloc_chunk` consumes the free list before touching the bump pointer,
//!   so churn runs at a bounded high-water mark.
//!
//! Pinning is reentrant (a per-slot depth counter): `pop_min` runs a search
//! inside a remove, `upsert` runs an insert inside a get, and each entry
//! point pins unconditionally.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Index of a registered reclamation slot (one per worker/handle).
pub type SlotId = usize;

/// A chunk retired at `epoch`, awaiting grace + reachability verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Retired {
    chunk: u32,
    level: u8,
    epoch: u64,
}

/// One worker's epoch announcement.
///
/// `announce == 0` means quiescent (not inside an operation); otherwise it
/// is the global epoch the worker observed when it pinned. `depth` makes
/// pinning reentrant and is only ever touched by the owning worker.
#[derive(Debug)]
struct Slot {
    registered: AtomicU32,
    announce: AtomicU64,
    depth: AtomicU32,
}

/// Counters describing reclamation progress (see `introspect.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Global epoch advances since construction.
    pub epochs_advanced: u64,
    /// Chunks retired (unlinked zombies handed to the reclaimer).
    pub retired: u64,
    /// Chunks recycled onto the free list after grace + verification.
    pub zombies_reclaimed: u64,
    /// Recycled chunks re-issued by `try_alloc`.
    pub reused: u64,
    /// Chunks currently in limbo (retired, grace not yet confirmed).
    pub limbo_len: u64,
    /// Chunks verified unreachable, waiting out the second grace period.
    pub staged_len: u64,
    /// Chunks currently on the free list.
    pub free_len: u64,
    /// Opaque deferred tokens (mvcc version pre-images) still in grace.
    pub deferred_len: u64,
    /// Deferred tokens whose grace elapsed and were drained back.
    pub deferred_drained: u64,
}

/// Epoch-based reclaimer for fixed-size chunk slots.
///
/// The reclaimer deals purely in opaque `u32` chunk indices: it neither
/// reads nor writes pool memory. The structure layer decides *when* a chunk
/// is retired (at unlink) and performs the final reachability verification;
/// this type provides the grace-period machinery in between.
pub struct EpochReclaimer {
    /// Global epoch. Starts at 1 so an announcement of 0 is unambiguous.
    global: AtomicU64,
    slots: Box<[Slot]>,
    limbo: Mutex<Vec<Retired>>,
    /// Verified-unreachable chunks serving their second grace period
    /// (`level` is unused here; the field is repurposed as the staging
    /// epoch record).
    verified: Mutex<Vec<Retired>>,
    free: Mutex<Vec<u32>>,
    /// Opaque tokens (not chunk indices) riding the same two-advance grace
    /// pipeline as limbo chunks. The mvcc layer defers condemned version
    /// pre-images here so a reader that resolved a chain entry just before
    /// it was condemned has quiesced before the image is dropped.
    deferred: Mutex<Vec<(u64, u64)>>,
    epochs_advanced: AtomicU64,
    retired_total: AtomicU64,
    reclaimed_total: AtomicU64,
    reused_total: AtomicU64,
    deferred_drained_total: AtomicU64,
}

impl EpochReclaimer {
    /// A reclaimer supporting up to `max_slots` concurrently registered
    /// workers.
    pub fn new(max_slots: usize) -> EpochReclaimer {
        let slots = (0..max_slots)
            .map(|_| Slot {
                registered: AtomicU32::new(0),
                announce: AtomicU64::new(0),
                depth: AtomicU32::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EpochReclaimer {
            global: AtomicU64::new(1),
            slots,
            limbo: Mutex::new(Vec::new()),
            verified: Mutex::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            deferred: Mutex::new(Vec::new()),
            epochs_advanced: AtomicU64::new(0),
            retired_total: AtomicU64::new(0),
            reclaimed_total: AtomicU64::new(0),
            reused_total: AtomicU64::new(0),
            deferred_drained_total: AtomicU64::new(0),
        }
    }

    /// Claim a slot for a new worker. `None` when all slots are taken.
    pub fn register(&self) -> Option<SlotId> {
        for (i, s) in self.slots.iter().enumerate() {
            if s.registered
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                s.announce.store(0, Ordering::Release);
                s.depth.store(0, Ordering::Relaxed);
                return Some(i);
            }
        }
        None
    }

    /// Release a slot. The worker is normally unpinned by now; if its owner
    /// died mid-operation (panic unwinding past a pin), the slot is
    /// force-quiesced instead of asserting — the dying thread can no longer
    /// hold chunk references, and a leaked announcement would block epoch
    /// advance (and with it all reclamation) forever.
    pub fn unregister(&self, slot: SlotId) {
        let s = &self.slots[slot];
        s.depth.store(0, Ordering::Relaxed);
        s.announce.store(0, Ordering::Release);
        s.registered.store(0, Ordering::Release);
    }

    /// Enter an operation: announce the current epoch (outermost pin only).
    ///
    /// The announcement store is `SeqCst` so it is globally ordered before
    /// any chunk reads the operation performs; a reclaimer scan that sees
    /// this slot quiescent is therefore ordered before those reads too.
    #[inline]
    pub fn pin(&self, slot: SlotId) {
        let s = &self.slots[slot];
        let d = s.depth.load(Ordering::Relaxed);
        s.depth.store(d + 1, Ordering::Relaxed);
        if d == 0 {
            let e = self.global.load(Ordering::SeqCst);
            s.announce.store(e, Ordering::SeqCst);
        }
    }

    /// Leave an operation: go quiescent when the outermost pin unwinds.
    #[inline]
    pub fn unpin(&self, slot: SlotId) {
        let s = &self.slots[slot];
        let d = s.depth.load(Ordering::Relaxed);
        debug_assert!(d > 0, "unpin without pin");
        s.depth.store(d - 1, Ordering::Relaxed);
        if d == 1 {
            s.announce.store(0, Ordering::Release);
        }
    }

    /// Hand an unlinked zombie chunk to the reclaimer.
    ///
    /// Must be called by the team that made the chunk unreachable on its own
    /// level (it holds the lock / won the CAS that swung the pointer past
    /// it), stamping the level so the verification pass knows which parent
    /// level to scan for stale down pointers.
    pub fn retire(&self, chunk: u32, level: u8) {
        let epoch = self.global.load(Ordering::SeqCst);
        self.retired_total.fetch_add(1, Ordering::Relaxed);
        self.limbo.lock().unwrap().push(Retired { chunk, level, epoch });
    }

    /// Put a grace-passed candidate back in limbo (a stale down pointer
    /// still referenced it); it re-enters grace at the current epoch.
    pub fn requeue(&self, chunk: u32, level: u8) {
        self.retire(chunk, level);
        self.retired_total.fetch_sub(1, Ordering::Relaxed);
    }

    /// Try to advance the global epoch: possible when every pinned slot has
    /// announced the current epoch. Returns the (possibly new) epoch.
    pub fn try_advance(&self) -> u64 {
        let e = self.global.load(Ordering::SeqCst);
        for s in self.slots.iter() {
            if s.registered.load(Ordering::Acquire) == 0 {
                continue;
            }
            let a = s.announce.load(Ordering::SeqCst);
            if a != 0 && a != e {
                return e; // someone is still inside an older epoch
            }
        }
        match self
            .global
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => {
                self.epochs_advanced.fetch_add(1, Ordering::Relaxed);
                e + 1
            }
            Err(cur) => cur,
        }
    }

    /// Move every retired chunk whose grace period has elapsed (two epoch
    /// advances since retirement) into `out` as `(chunk, level)` pairs.
    ///
    /// The caller owns the candidates: it must either `recycle` or
    /// `requeue` each one. Tries an epoch advance first so a quiescent
    /// system drains in a bounded number of calls.
    pub fn drain_candidates(&self, out: &mut Vec<(u32, u8)>) {
        let now = self.try_advance();
        let mut limbo = self.limbo.lock().unwrap();
        let mut i = 0;
        while i < limbo.len() {
            if now >= limbo[i].epoch + 2 {
                let r = limbo.swap_remove(i);
                out.push((r.chunk, r.level));
            } else {
                i += 1;
            }
        }
    }

    /// Put a verified-unreachable chunk on the free list for reuse.
    ///
    /// Callers that verified reachability by scanning shared memory should
    /// prefer [`Self::stage_verified`], which interposes a second grace
    /// period; direct `recycle` is for callers that can prove no reader
    /// holds the chunk at all (tests, single-threaded maintenance).
    pub fn recycle(&self, chunk: u32) {
        self.reclaimed_total.fetch_add(1, Ordering::Relaxed);
        self.free.lock().unwrap().push(chunk);
    }

    /// Stage a candidate that passed the reachability scan: it becomes
    /// allocatable only after one further grace period (covering readers
    /// that copied a soon-after-repaired stale pointer into a register
    /// before the scan ran), via [`Self::harvest_verified`].
    pub fn stage_verified(&self, chunk: u32) {
        let epoch = self.global.load(Ordering::SeqCst);
        self.verified.lock().unwrap().push(Retired {
            chunk,
            level: 0,
            epoch,
        });
    }

    /// Move staged chunks whose second grace period has elapsed onto the
    /// free list; returns how many were moved. References to a verified
    /// chunk cannot reappear in memory, so no rescan is needed.
    pub fn harvest_verified(&self) -> usize {
        let now = self.try_advance();
        let mut staged = self.verified.lock().unwrap();
        let mut moved = 0;
        let mut i = 0;
        while i < staged.len() {
            if now >= staged[i].epoch + 2 {
                let r = staged.swap_remove(i);
                self.recycle(r.chunk);
                moved += 1;
            } else {
                i += 1;
            }
        }
        moved
    }

    /// Append every chunk still awaiting reclamation (in limbo or staged)
    /// to `out`. The structure layer's verification pass treats the frozen
    /// next pointers of these chunks as live references — a reader parked
    /// on one can still step through it.
    pub fn pending_chunks(&self, out: &mut Vec<u32>) {
        out.extend(self.limbo.lock().unwrap().iter().map(|r| r.chunk));
        out.extend(self.verified.lock().unwrap().iter().map(|r| r.chunk));
    }

    /// Defer an opaque token until two epoch advances have passed.
    ///
    /// Tokens are never interpreted: the caller (the mvcc engine) maps them
    /// back to condemned version pre-images when [`Self::drain_deferred`]
    /// hands them back, and only then drops the backing memory. The grace
    /// rule is identical to retired chunks — any reader that could have
    /// been resolving the image when it was condemned was pinned then, and
    /// two advances prove every such pin has since quiesced.
    pub fn defer(&self, token: u64) {
        let epoch = self.global.load(Ordering::SeqCst);
        self.deferred.lock().unwrap().push((token, epoch));
    }

    /// Move every deferred token whose grace period has elapsed into `out`.
    /// Tries an epoch advance first, like [`Self::drain_candidates`].
    pub fn drain_deferred(&self, out: &mut Vec<u64>) {
        let now = self.try_advance();
        let mut deferred = self.deferred.lock().unwrap();
        let mut i = 0;
        while i < deferred.len() {
            if now >= deferred[i].1 + 2 {
                let (tok, _) = deferred.swap_remove(i);
                out.push(tok);
                self.deferred_drained_total.fetch_add(1, Ordering::Relaxed);
            } else {
                i += 1;
            }
        }
    }

    /// Pop a recycled chunk index, if any.
    pub fn try_alloc(&self) -> Option<u32> {
        let c = self.free.lock().unwrap().pop();
        if c.is_some() {
            self.reused_total.fetch_add(1, Ordering::Relaxed);
        }
        c
    }

    /// Current global epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// Snapshot of the reclamation counters.
    pub fn stats(&self) -> ReclaimStats {
        ReclaimStats {
            epochs_advanced: self.epochs_advanced.load(Ordering::Relaxed),
            retired: self.retired_total.load(Ordering::Relaxed),
            zombies_reclaimed: self.reclaimed_total.load(Ordering::Relaxed),
            reused: self.reused_total.load(Ordering::Relaxed),
            limbo_len: self.limbo.lock().unwrap().len() as u64,
            staged_len: self.verified.lock().unwrap().len() as u64,
            free_len: self.free.lock().unwrap().len() as u64,
            deferred_len: self.deferred.lock().unwrap().len() as u64,
            deferred_drained: self.deferred_drained_total.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for EpochReclaimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochReclaimer")
            .field("epoch", &self.epoch())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_unregister_reuses_slots() {
        let r = EpochReclaimer::new(2);
        let a = r.register().unwrap();
        let b = r.register().unwrap();
        assert_ne!(a, b);
        assert!(r.register().is_none(), "capacity is enforced");
        r.unregister(a);
        assert_eq!(r.register(), Some(a), "freed slot is reused");
        r.unregister(a);
        r.unregister(b);
    }

    #[test]
    fn unpinned_world_advances_and_drains() {
        let r = EpochReclaimer::new(4);
        r.retire(7, 0);
        let mut out = Vec::new();
        r.drain_candidates(&mut out);
        assert!(out.is_empty(), "one advance is not grace");
        r.drain_candidates(&mut out);
        assert_eq!(out, vec![(7, 0)], "two advances past retirement = grace");
        r.recycle(7);
        assert_eq!(r.try_alloc(), Some(7));
        assert_eq!(r.try_alloc(), None);
        let s = r.stats();
        assert_eq!(s.zombies_reclaimed, 1);
        assert_eq!(s.reused, 1);
        assert!(s.epochs_advanced >= 2);
    }

    #[test]
    fn pinned_slot_blocks_grace() {
        let r = EpochReclaimer::new(4);
        let slot = r.register().unwrap();
        r.pin(slot);
        r.retire(3, 1);
        let mut out = Vec::new();
        for _ in 0..5 {
            r.drain_candidates(&mut out);
        }
        assert!(out.is_empty(), "epoch cannot advance past a pinned slot");
        r.unpin(slot);
        r.drain_candidates(&mut out);
        r.drain_candidates(&mut out);
        assert_eq!(out, vec![(3, 1)]);
        r.unregister(slot);
    }

    #[test]
    fn repinning_announces_fresh_epoch() {
        let r = EpochReclaimer::new(4);
        let slot = r.register().unwrap();
        r.pin(slot);
        r.retire(9, 0);
        r.unpin(slot);
        // The worker starts a *new* operation: it re-announces the current
        // epoch, so it no longer holds grace back.
        r.pin(slot);
        let mut out = Vec::new();
        r.drain_candidates(&mut out); // advances once; worker now lags
        r.unpin(slot);
        r.pin(slot); // quiesced + repinned at the newer epoch
        r.drain_candidates(&mut out);
        r.drain_candidates(&mut out);
        assert_eq!(out, vec![(9, 0)]);
        r.unpin(slot);
        r.unregister(slot);
    }

    #[test]
    fn reentrant_pin_stays_pinned_until_outermost_unpin() {
        let r = EpochReclaimer::new(4);
        let slot = r.register().unwrap();
        r.pin(slot);
        r.pin(slot); // nested (pop_min -> remove)
        r.retire(5, 0);
        r.unpin(slot);
        let mut out = Vec::new();
        for _ in 0..4 {
            r.drain_candidates(&mut out);
        }
        assert!(out.is_empty(), "still pinned at depth 1");
        r.unpin(slot);
        r.drain_candidates(&mut out);
        r.drain_candidates(&mut out);
        assert_eq!(out, vec![(5, 0)]);
        r.unregister(slot);
    }

    #[test]
    fn requeue_restarts_grace() {
        let r = EpochReclaimer::new(4);
        r.retire(11, 2);
        let mut out = Vec::new();
        r.drain_candidates(&mut out);
        r.drain_candidates(&mut out);
        assert_eq!(out, vec![(11, 2)]);
        out.clear();
        r.requeue(11, 2);
        r.drain_candidates(&mut out);
        assert!(out.is_empty(), "requeued chunk re-enters grace");
        r.drain_candidates(&mut out);
        assert_eq!(out, vec![(11, 2)]);
        assert_eq!(r.stats().retired, 1, "requeue does not double-count");
    }

    #[test]
    fn staged_chunks_wait_out_second_grace() {
        let r = EpochReclaimer::new(4);
        r.stage_verified(13);
        assert_eq!(r.harvest_verified(), 0, "one advance is not grace");
        assert_eq!(r.try_alloc(), None, "staged chunks are not yet allocatable");
        assert_eq!(r.harvest_verified(), 1, "second advance completes the grace");
        assert_eq!(r.try_alloc(), Some(13));
        let s = r.stats();
        assert_eq!(s.zombies_reclaimed, 1);
        assert_eq!(s.staged_len, 0);
    }

    #[test]
    fn pending_covers_limbo_and_staged() {
        let r = EpochReclaimer::new(4);
        r.retire(1, 0);
        r.stage_verified(2);
        let mut out = Vec::new();
        r.pending_chunks(&mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn deferred_tokens_wait_out_grace() {
        let r = EpochReclaimer::new(4);
        r.defer(0xdead_beef);
        let mut out = Vec::new();
        r.drain_deferred(&mut out);
        assert!(out.is_empty(), "one advance is not grace");
        r.drain_deferred(&mut out);
        assert_eq!(out, vec![0xdead_beef]);
        let s = r.stats();
        assert_eq!(s.deferred_len, 0);
        assert_eq!(s.deferred_drained, 1);
    }

    #[test]
    fn pinned_slot_blocks_deferred_drain() {
        let r = EpochReclaimer::new(4);
        let slot = r.register().unwrap();
        r.pin(slot);
        r.defer(42);
        let mut out = Vec::new();
        for _ in 0..5 {
            r.drain_deferred(&mut out);
        }
        assert!(out.is_empty(), "pinned reader holds deferred grace back");
        assert_eq!(r.stats().deferred_len, 1);
        r.unpin(slot);
        r.drain_deferred(&mut out);
        r.drain_deferred(&mut out);
        assert_eq!(out, vec![42]);
        r.unregister(slot);
    }

    #[test]
    fn concurrent_pin_retire_drain_is_safe() {
        use std::sync::atomic::AtomicBool;
        let r = EpochReclaimer::new(8);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let slot = r.register().unwrap();
                    for i in 0..2000u32 {
                        r.pin(slot);
                        if i % 7 == 0 {
                            r.retire(i, 0);
                        }
                        r.unpin(slot);
                    }
                    r.unregister(slot);
                });
            }
            s.spawn(|| {
                let mut out = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    r.drain_candidates(&mut out);
                    for (c, _) in out.drain(..) {
                        r.recycle(c);
                    }
                }
            });
            // Let the workers churn a while, then stop the drainer; the
            // scope joins everything.
            std::thread::sleep(std::time::Duration::from_millis(50));
            stop.store(true, Ordering::Relaxed);
        });
        let mut out = Vec::new();
        r.drain_candidates(&mut out);
        r.drain_candidates(&mut out);
        for (c, _) in out.drain(..) {
            r.recycle(c);
        }
        let s = r.stats();
        assert_eq!(s.retired, s.zombies_reclaimed + s.limbo_len);
    }
}
