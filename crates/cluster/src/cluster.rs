//! The cluster router: epoch-verified single-key dispatch and fenced
//! multi-shard fan-out.
//!
//! ## Lock protocol
//!
//! Every path acquires locks in the same global order — **fences before the
//! map, fences in ascending shard-index order** — so routing, fan-out,
//! migration, and snapshot compose without deadlock:
//!
//! * a routed op: `map.read` (route, drop) → `fence.read(S)` →
//!   `map.read` (verify, drop) → run → drop fence;
//! * a fan-out op: route all overlapping shards, `fence.read` each in index
//!   order, re-verify the epoch, run each sub-op, drop;
//! * a migration (`reshard.rs`): `fence.write` on the victims in index
//!   order → export/rebuild → `map.write` (swap + epoch bump, held briefly
//!   with no further acquisitions inside).
//!
//! The verify step is what makes stale routing safe: between routing and
//! fencing, a migration may have retired the routed shard. Holding the read
//! fence blocks any *future* migration of that shard, and the map re-read
//! tells us whether one already happened — if the key no longer routes to
//! the very same `Arc<Shard>`, the op returns a typed
//! [`ClusterError::WrongShard`] redirect and the caller re-routes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gfsl::{Error, Gfsl, GfslParams, MemProbe, Violation, KEY_INF};
use parking_lot::{Mutex, RwLock};

use crate::map::MapInner;
use crate::shard::{Shard, ShardStats};

/// A cluster-level operation failure.
#[derive(Debug)]
pub enum ClusterError {
    /// The op was routed under a shard map that changed before the shard
    /// fence was acquired, and the key now belongs to a different shard.
    /// Retry routes correctly; the convenience wrappers do so internally.
    WrongShard {
        /// The key that was being routed.
        key: u32,
        /// Map epoch the stale route was computed under.
        routed_epoch: u64,
        /// Map epoch observed at verification.
        current_epoch: u64,
    },
    /// The underlying shard operation failed (abort, pool exhaustion, …).
    Shard(Error),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::WrongShard {
                key,
                routed_epoch,
                current_epoch,
            } => write!(
                f,
                "key {key} routed at epoch {routed_epoch} no longer maps to the \
                 fenced shard (epoch is now {current_epoch}); re-route"
            ),
            ClusterError::Shard(e) => write!(f, "shard operation failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<Error> for ClusterError {
    fn from(e: Error) -> ClusterError {
        ClusterError::Shard(e)
    }
}

/// K GFSL shards behind an epoch-versioned key-range router.
pub struct Cluster {
    pub(crate) params: GfslParams,
    pub(crate) map: RwLock<MapInner>,
    /// Serializes structural changes (split, merge, snapshot) so each sees
    /// a stable shard set; never taken by routed operations.
    pub(crate) reshard: Mutex<()>,
    next_shard_id: AtomicU64,
}

impl Cluster {
    /// A cluster of `n_shards` equal-width shards covering `[1, KEY_INF)`.
    pub fn new(params: GfslParams, n_shards: usize) -> Result<Cluster, Error> {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(
            (n_shards as u64) < u64::from(KEY_INF - 1),
            "more shards than user keys"
        );
        let width = (u64::from(KEY_INF) - 1) / n_shards as u64;
        let bounds: Vec<u32> = (1..n_shards as u64)
            .map(|i| (1 + i * width) as u32)
            .collect();
        Cluster::with_bounds(params, &bounds)
    }

    /// A cluster with explicit interior split keys: `bounds = [b1 < b2 < …]`
    /// yields shards `[1, b1), [b1, b2), …, [bk, KEY_INF)`.
    pub fn with_bounds(params: GfslParams, bounds: &[u32]) -> Result<Cluster, Error> {
        let mut edges = vec![1u32];
        edges.extend_from_slice(bounds);
        edges.push(KEY_INF);
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "interior bounds must be strictly ascending user keys"
        );
        let next_shard_id = AtomicU64::new(0);
        let shards: Result<Vec<_>, Error> = edges
            .windows(2)
            .map(|w| {
                let id = next_shard_id.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::new(Shard::new(id, w[0], w[1], Gfsl::new(params)?)))
            })
            .collect();
        let map = MapInner {
            epoch: 0,
            shards: shards?,
        };
        map.check();
        Ok(Cluster {
            params,
            map: RwLock::new(map),
            reshard: Mutex::new(()),
            next_shard_id,
        })
    }

    /// A cluster of `n_shards` shards equal-width over the *working* key
    /// range `1..=key_range` (the top shard additionally owns everything up
    /// to `KEY_INF`, keeping the whole space covered), bulk-loaded from an
    /// ascending `(key, value)` stream — each shard's slice goes through
    /// `Gfsl::from_sorted_pairs`, so prefill cost is linear and the chunks
    /// start at the bulk fill target instead of insert-path shapes.
    pub fn prefilled(
        params: GfslParams,
        n_shards: usize,
        key_range: u32,
        pairs: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<Cluster, Error> {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(
            key_range < KEY_INF && (n_shards as u64) < u64::from(key_range),
            "more shards than working keys"
        );
        let width = u64::from(key_range) / n_shards as u64;
        let mut edges: Vec<u32> = (0..n_shards as u64).map(|i| (1 + i * width) as u32).collect();
        edges.push(KEY_INF);

        let next_shard_id = AtomicU64::new(0);
        let mut pairs = pairs.into_iter().peekable();
        let mut shards = Vec::with_capacity(n_shards);
        for w in edges.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let slice = std::iter::from_fn(|| pairs.next_if(|&(k, _)| k < hi));
            let list = Gfsl::from_sorted_pairs(params, slice)?;
            let id = next_shard_id.fetch_add(1, Ordering::Relaxed);
            shards.push(Arc::new(Shard::new(id, lo, hi, list)));
        }
        assert!(
            pairs.peek().is_none(),
            "prefill pairs must be ascending user keys below KEY_INF"
        );
        let map = MapInner { epoch: 0, shards };
        map.check();
        Ok(Cluster {
            params,
            map: RwLock::new(map),
            reshard: Mutex::new(()),
            next_shard_id,
        })
    }

    /// [`Cluster::prefilled`], but with an explicit interior-bounds layout
    /// (as in [`Cluster::with_bounds`]) instead of equal-width shards —
    /// how durable recovery restores the exact shard map a checkpoint
    /// manifest recorded, so per-shard WAL lanes line up across restarts.
    pub fn prefilled_with_bounds(
        params: GfslParams,
        bounds: &[u32],
        pairs: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<Cluster, Error> {
        let mut edges = vec![1u32];
        edges.extend_from_slice(bounds);
        edges.push(KEY_INF);
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "interior bounds must be strictly ascending user keys"
        );
        let next_shard_id = AtomicU64::new(0);
        let mut pairs = pairs.into_iter().peekable();
        let mut shards = Vec::with_capacity(edges.len() - 1);
        for w in edges.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let slice = std::iter::from_fn(|| pairs.next_if(|&(k, _)| k < hi));
            let list = Gfsl::from_sorted_pairs(params, slice)?;
            let id = next_shard_id.fetch_add(1, Ordering::Relaxed);
            shards.push(Arc::new(Shard::new(id, lo, hi, list)));
        }
        assert!(
            pairs.peek().is_none(),
            "prefill pairs must be ascending user keys below KEY_INF"
        );
        let map = MapInner { epoch: 0, shards };
        map.check();
        Ok(Cluster {
            params,
            map: RwLock::new(map),
            reshard: Mutex::new(()),
            next_shard_id,
        })
    }

    /// The parameters every shard is built with.
    pub fn params(&self) -> &GfslParams {
        &self.params
    }

    /// Current shard-map epoch.
    pub fn epoch(&self) -> u64 {
        self.map.read().epoch
    }

    /// Current number of shards.
    pub fn shard_count(&self) -> usize {
        self.map.read().shards.len()
    }

    /// A snapshot of the current shard vector (identities may be retired by
    /// a later migration; use for introspection and static pipelines only).
    pub fn shards(&self) -> Vec<Arc<Shard>> {
        self.map.read().shards.clone()
    }

    /// The current key-range cover as `(lo, hi)` half-open pairs.
    pub fn bounds(&self) -> Vec<(u32, u32)> {
        self.map
            .read()
            .shards
            .iter()
            .map(|s| (s.lo, s.hi))
            .collect()
    }

    pub(crate) fn mint_shard_id(&self) -> u64 {
        self.next_shard_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Route `key`, clone its shard, and report the epoch routed under.
    fn route(&self, key: u32) -> (Arc<Shard>, u64) {
        let m = self.map.read();
        (m.shards[m.find(key)].clone(), m.epoch)
    }

    /// Run `f` against the live shard owning `key`, under the full routed
    /// protocol (see module docs). `write` feeds the shard's load window.
    pub(crate) fn with_shard<T>(
        &self,
        key: u32,
        write: bool,
        f: impl FnOnce(&Shard) -> T,
    ) -> Result<T, ClusterError> {
        assert!((1..KEY_INF).contains(&key), "key {key} outside the user range");
        let (shard, routed_epoch) = self.route(key);
        let _fence = shard.fence.read();
        {
            let m = self.map.read();
            if m.epoch != routed_epoch && !Arc::ptr_eq(&m.shards[m.find(key)], &shard) {
                return Err(ClusterError::WrongShard {
                    key,
                    routed_epoch,
                    current_epoch: m.epoch,
                });
            }
        }
        shard.note(write);
        Ok(f(&shard))
    }

    /// Run `f` once per live shard overlapping the inclusive window
    /// `[lo, hi]`, all fences read-held simultaneously (a consistent cut).
    /// `f` receives each shard plus the window clipped to its range.
    pub(crate) fn with_range_shards<T>(
        &self,
        lo: u32,
        hi: u32,
        mut f: impl FnMut(&Shard, u32, u32) -> T,
    ) -> Result<Vec<T>, ClusterError> {
        assert!(lo >= 1 && hi < KEY_INF && lo <= hi, "bad window [{lo}, {hi}]");
        let (shards, routed_epoch) = {
            let m = self.map.read();
            (m.shards[m.overlapping(lo, hi)].to_vec(), m.epoch)
        };
        // Index order — the same global fence order migrations use.
        let _fences: Vec<_> = shards.iter().map(|s| s.fence.read()).collect();
        {
            // Any epoch motion can have reshuffled an overlapped range;
            // unlike the single-key path there is no cheap identity check
            // across a window, so redirect on any bump (rare, cheap retry).
            let m = self.map.read();
            if m.epoch != routed_epoch {
                return Err(ClusterError::WrongShard {
                    key: lo,
                    routed_epoch,
                    current_epoch: m.epoch,
                });
            }
        }
        Ok(shards
            .iter()
            .map(|s| {
                s.note(false);
                f(s, lo.max(s.lo), hi.min(s.hi - 1))
            })
            .collect())
    }

    /// Run `f` once per live shard overlapping `[lo, hi]` against a
    /// **version-pinned cut** (mvcc only): every overlapped shard's fence
    /// is write-held just long enough to pin one version per shard — the
    /// instant `T` of the cut — then the fences drop and `f` runs against
    /// the tickets, wait-free with respect to resumed writers.
    ///
    /// Lock order matches the global protocol: fences (write, ascending
    /// shard index) before the map read. A concurrent migration takes its
    /// victims' fences in the same index order, so the two cannot deadlock;
    /// an epoch bump between routing and fencing surfaces as the usual
    /// [`ClusterError::WrongShard`] redirect.
    pub(crate) fn with_range_shards_pinned<T>(
        &self,
        lo: u32,
        hi: u32,
        mut f: impl FnMut(&Shard, &gfsl::ReadTicket<'_>, u32, u32) -> T,
    ) -> Result<Vec<T>, ClusterError> {
        assert!(lo >= 1 && hi < KEY_INF && lo <= hi, "bad window [{lo}, {hi}]");
        debug_assert!(self.params.mvcc, "pinned fan-out needs the mvcc knob");
        let (shards, routed_epoch) = {
            let m = self.map.read();
            (m.shards[m.overlapping(lo, hi)].to_vec(), m.epoch)
        };
        // Write fences in index order: drain in-flight routed ops so the
        // pins below jointly name one instant across all overlapped shards.
        let fences: Vec<_> = shards.iter().map(|s| s.fence.write()).collect();
        {
            let m = self.map.read();
            if m.epoch != routed_epoch {
                return Err(ClusterError::WrongShard {
                    key: lo,
                    routed_epoch,
                    current_epoch: m.epoch,
                });
            }
        }
        let tickets: Vec<_> = shards
            .iter()
            .map(|s| s.list.pin_version().expect("mvcc knob is on"))
            .collect();
        drop(fences);
        Ok(shards
            .iter()
            .zip(&tickets)
            .map(|(s, t)| {
                s.note(false);
                f(s, t, lo.max(s.lo), hi.min(s.hi - 1))
            })
            .collect())
    }

    // ---- one-shot routed operations (surface WrongShard) ----

    /// Routed lookup; one routing attempt.
    pub fn try_get(&self, key: u32) -> Result<Option<u32>, ClusterError> {
        self.with_shard(key, false, |s| s.list.handle().try_get(key))?
            .map_err(ClusterError::Shard)
    }

    /// Routed membership test; one routing attempt.
    pub fn try_contains(&self, key: u32) -> Result<bool, ClusterError> {
        self.with_shard(key, false, |s| s.list.handle().try_contains(key))?
            .map_err(ClusterError::Shard)
    }

    /// Routed insert; one routing attempt. Set-like: `Ok(false)` keeps the
    /// resident value, exactly as [`gfsl::GfslHandle`] does.
    pub fn try_insert(&self, key: u32, value: u32) -> Result<bool, ClusterError> {
        self.with_shard(key, true, |s| s.list.handle().try_insert(key, value))?
            .map_err(ClusterError::Shard)
    }

    /// Routed remove; one routing attempt.
    pub fn try_remove(&self, key: u32) -> Result<bool, ClusterError> {
        self.with_shard(key, true, |s| s.list.handle().try_remove(key))?
            .map_err(ClusterError::Shard)
    }

    // ---- probed one-shot variants (chaos campaigns) ----
    //
    // The probe is supplied as a *factory* invoked only after the shard
    // fence is read-held, and the probe drops (retiring its chaos
    // participant) before the fence releases. Minting it earlier would
    // deadlock chaos campaigns against migrations: a live turnstile
    // participant blocked on the fence (an OS lock, not a parked turn)
    // stalls every grant, while the migration writer waits on a fence some
    // parked participant holds.

    /// Like [`Cluster::try_get`], probed; `probe` is minted post-fence.
    pub fn try_get_with<P: MemProbe>(
        &self,
        probe: impl FnOnce() -> P,
        key: u32,
    ) -> Result<Option<u32>, ClusterError> {
        self.with_shard(key, false, move |s| s.list.handle_with(probe()).try_get(key))?
            .map_err(ClusterError::Shard)
    }

    /// Like [`Cluster::try_insert`], probed; `probe` is minted post-fence.
    pub fn try_insert_with<P: MemProbe>(
        &self,
        probe: impl FnOnce() -> P,
        key: u32,
        value: u32,
    ) -> Result<bool, ClusterError> {
        self.with_shard(key, true, move |s| {
            s.list.handle_with(probe()).try_insert(key, value)
        })?
        .map_err(ClusterError::Shard)
    }

    /// Like [`Cluster::try_remove`], probed; `probe` is minted post-fence.
    pub fn try_remove_with<P: MemProbe>(
        &self,
        probe: impl FnOnce() -> P,
        key: u32,
    ) -> Result<bool, ClusterError> {
        self.with_shard(key, true, move |s| {
            s.list.handle_with(probe()).try_remove(key)
        })?
        .map_err(ClusterError::Shard)
    }

    // ---- retrying convenience operations ----

    fn retry<T>(&self, mut attempt: impl FnMut() -> Result<T, ClusterError>) -> Result<T, Error> {
        loop {
            match attempt() {
                Ok(v) => return Ok(v),
                // A redirect means the map moved: re-route and go again.
                // Progress: each retry re-routes under the *current* map,
                // and a migration's fence-write section cannot start while
                // the retried op holds the fresh shard's read fence.
                Err(ClusterError::WrongShard { .. }) => continue,
                Err(ClusterError::Shard(e)) => return Err(e),
            }
        }
    }

    /// Lookup, re-routing through migrations.
    pub fn get(&self, key: u32) -> Result<Option<u32>, Error> {
        self.retry(|| self.try_get(key))
    }

    /// Membership test, re-routing through migrations.
    pub fn contains(&self, key: u32) -> Result<bool, Error> {
        self.retry(|| self.try_contains(key))
    }

    /// Set-like insert, re-routing through migrations.
    pub fn insert(&self, key: u32, value: u32) -> Result<bool, Error> {
        self.retry(|| self.try_insert(key, value))
    }

    /// Remove, re-routing through migrations.
    pub fn remove(&self, key: u32) -> Result<bool, Error> {
        self.retry(|| self.try_remove(key))
    }

    // ---- fan-out reads ----

    /// All pairs in the inclusive window `[lo, hi]`, stitched across shard
    /// boundaries from a consistent cut; one routing attempt. With mvcc on
    /// the cut is version-pinned (fences held only to stamp it, the walk
    /// wait-free w.r.t. writers); otherwise every overlapped fence stays
    /// read-held for the walk.
    pub fn try_range(&self, lo: u32, hi: u32) -> Result<Vec<(u32, u32)>, ClusterError> {
        // Shards are visited in ascending range order, so concatenation is
        // already globally sorted.
        let per = if self.params.mvcc {
            self.with_range_shards_pinned(lo, hi, |s, t, clo, chi| {
                s.list.handle().range_at(clo, chi, t)
            })?
        } else {
            self.with_range_shards(lo, hi, |s, clo, chi| s.list.handle().range(clo, chi))?
        };
        Ok(per.into_iter().flatten().collect())
    }

    /// Count keys in the inclusive window `[lo, hi]` across shards; one
    /// routing attempt. Same cut modes as [`Cluster::try_range`].
    pub fn try_count_range(&self, lo: u32, hi: u32) -> Result<usize, ClusterError> {
        let per = if self.params.mvcc {
            self.with_range_shards_pinned(lo, hi, |s, t, clo, chi| {
                s.list.handle().count_range_at(clo, chi, t)
            })?
        } else {
            self.with_range_shards(lo, hi, |s, clo, chi| s.list.handle().count_range(clo, chi))?
        };
        Ok(per.into_iter().sum())
    }

    /// Stitched range query, re-routing through migrations.
    pub fn range(&self, lo: u32, hi: u32) -> Result<Vec<(u32, u32)>, Error> {
        self.retry(|| self.try_range(lo, hi))
    }

    /// Stitched range count, re-routing through migrations.
    pub fn count_range(&self, lo: u32, hi: u32) -> Result<usize, Error> {
        self.retry(|| self.try_count_range(lo, hi))
    }

    /// Version-stamped spanning count: `(version, count)`; one routing
    /// attempt. With mvcc on the count is read from a version-pinned cut
    /// and `version` names it (the newest shard version in the cut — the
    /// clock value the fences jointly stamped at the cut instant); with
    /// mvcc off it falls back to the fence-held legacy count and reports
    /// version 0, so callers (the edge wire, notably) never need to know
    /// which engine they are talking to.
    pub fn try_snap_count_range(&self, lo: u32, hi: u32) -> Result<(u64, u64), ClusterError> {
        if !self.params.mvcc {
            return self.try_count_range(lo, hi).map(|n| (0, n as u64));
        }
        let per = self.with_range_shards_pinned(lo, hi, |s, t, clo, chi| {
            (t.version(), s.list.handle().count_range_at(clo, chi, t) as u64)
        })?;
        let version = per.iter().map(|&(v, _)| v).max().unwrap_or(0);
        let count = per.iter().map(|&(_, n)| n).sum();
        Ok((version, count))
    }

    /// Version-stamped spanning count, re-routing through migrations; see
    /// [`Cluster::try_snap_count_range`].
    pub fn snap_count_range(&self, lo: u32, hi: u32) -> Result<(u64, u64), Error> {
        self.retry(|| self.try_snap_count_range(lo, hi))
    }

    // ---- priority-queue front (min-entry scan) ----

    /// Walk shards in ascending key order under the routed single-key
    /// protocol, running `f` on each until it yields `Some`. The global
    /// minimum lives in the lowest non-empty shard, so the first hit wins.
    ///
    /// Each step fences one shard at a time (not a consistent cut): a
    /// concurrent insert of a smaller key into a shard already found empty
    /// can be missed by *this* scan — the same relaxed-front semantics
    /// concurrent priority queues give, where racing consumers agree each
    /// element is consumed once but not on a total front order.
    fn scan_min<T>(
        &self,
        write: bool,
        mut f: impl FnMut(&Shard) -> Result<Option<T>, Error>,
    ) -> Result<Option<T>, ClusterError> {
        let mut key = 1u32;
        loop {
            let (found, hi) = self.with_shard(key, write, |s| (f(s), s.hi))?;
            match found {
                Ok(Some(v)) => return Ok(Some(v)),
                Ok(None) if hi == KEY_INF => return Ok(None),
                Ok(None) => key = hi,
                Err(e) => return Err(ClusterError::Shard(e)),
            }
        }
    }

    /// The smallest present entry across all shards; one routing attempt
    /// per shard visited.
    pub fn try_min_entry(&self) -> Result<Option<(u32, u32)>, ClusterError> {
        self.scan_min(false, |s| s.list.handle().try_min_entry())
    }

    /// Extract-min across all shards: remove and return the smallest
    /// present entry; one routing attempt per shard visited. Racing
    /// consumers never pop the same element (the per-shard extract-min is
    /// atomic); see [`Self::try_min_entry`] for the cross-shard caveat.
    pub fn try_pop_min(&self) -> Result<Option<(u32, u32)>, ClusterError> {
        self.scan_min(true, |s| s.list.handle().try_pop_min())
    }

    /// Minimum-entry peek, re-routing through migrations.
    pub fn min_entry(&self) -> Result<Option<(u32, u32)>, Error> {
        self.retry(|| self.try_min_entry())
    }

    /// Extract-min, re-routing through migrations.
    pub fn pop_min(&self) -> Result<Option<(u32, u32)>, Error> {
        self.retry(|| self.try_pop_min())
    }

    // ---- introspection (quiescent use) ----

    /// Per-shard statistics for the current map.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards().iter().map(|s| s.stats()).collect()
    }

    /// Per-shard mvcc counters for the current map (`None` when the knob
    /// is off). Shard order matches [`Cluster::shards`].
    pub fn mvcc_stats(&self) -> Option<Vec<gfsl::MvccStats>> {
        self.shards()
            .iter()
            .map(|s| s.list.mvcc_stats())
            .collect()
    }

    /// Every pair in the cluster, ascending. Quiescent use only.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        self.shards()
            .iter()
            .flat_map(|s| s.list.pairs())
            .collect()
    }

    /// Total resident keys. Quiescent use only.
    pub fn len(&self) -> usize {
        self.shards().iter().map(|s| s.list.len()).sum()
    }

    /// Is the cluster empty? Quiescent use only.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validate every shard's structure *and* that each shard holds only
    /// keys inside its assigned range. Quiescent use only.
    pub fn validate(&self) -> Vec<(u64, Vec<Violation>)> {
        let mut out = Vec::new();
        let m = self.map.read();
        m.check();
        for s in m.shards.iter() {
            let mut v = s.list.validate();
            for k in s.list.keys() {
                if !s.owns(k) {
                    v.push(Violation {
                        rule: "key-in-shard-range",
                        level: 0,
                        chunk: None,
                        detail: format!("key {k} outside shard range [{}, {})", s.lo, s.hi),
                    });
                }
            }
            if !v.is_empty() {
                out.push((s.id, v));
            }
        }
        out
    }

    /// Panic with a readable report on any invariant violation.
    pub fn assert_valid(&self) {
        let bad = self.validate();
        assert!(bad.is_empty(), "cluster invariant violations: {bad:?}");
    }
}
