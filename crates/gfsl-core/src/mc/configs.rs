//! Named model-check configurations.
//!
//! Each configuration is a small, fully scripted concurrent run chosen to
//! put one protocol path under systematic schedule exploration. They are
//! shared between the `gfsl` integration tests (tier-1 and the CI
//! `modelcheck` job) and `stress --modelcheck <name>`, so a counterexample
//! spec printed by either replays in both.
//!
//! Sizing discipline: exhaustive exploration cost grows roughly with
//! `(decision points)^(preemption bound)`, and every gated pool access is
//! a decision point, so chunked configs stay at 2–3 threads and 1–3 ops
//! per thread over a single near-full chunk. Flat configs are cheap (only
//! lock acquisitions are gated) and exhaust in seconds even at bound 3.

use gfsl_simt::TeamSize;

use super::{McConfig, McOp, Target};
use crate::params::GfslParams;

/// Chunked-engine parameters every config shares: the 16-lane team (14
/// data entries — smallest structure, shortest episodes), a tiny pool,
/// deterministic raise coins via `p_chunk = 1`, and the PR-3/PR-8 read
/// locality knobs on so the *certified-snapshot hinted read path* is what
/// gets explored.
fn mc_params() -> GfslParams {
    GfslParams {
        team_size: TeamSize::Sixteen,
        p_chunk: 1.0,
        pool_chunks: 64,
        hints: true,
        fingers: true,
        ..GfslParams::default()
    }
}

/// Keys `2, 4, …, 26`: together with the `-inf` sentinel entry these 13
/// keys exactly fill the 14-slot head chunk, so the *scripted* insert —
/// not the prefill — takes the split path.
fn full_chunk_prefill() -> Vec<(u32, u32)> {
    (1..=13u32).map(|i| (2 * i, 100 + i)).collect()
}

/// [`mc_params`] with the multiversion engine on: updates stamp through
/// the version fence and capture chunk pre-images, `SnapGet` ops pin and
/// resolve — the publish/pin/retire path is what gets explored.
fn mvcc_params() -> GfslParams {
    GfslParams {
        mvcc: true,
        ..mc_params()
    }
}

/// All registered configurations.
pub fn all() -> Vec<McConfig> {
    vec![
        McConfig {
            name: "cert-read-2t",
            about: "certified-snapshot hinted reads racing a chunk split",
            target: Target::Chunked(Box::new(mc_params())),
            prefill: full_chunk_prefill(),
            threads: vec![
                // Splitter: insert below every prefilled key into the full
                // chunk — forces split + raise while the reader walks.
                vec![McOp::Insert(1, 1)],
                // Reader: certified reads on both halves of the split (14
                // is the first key moved to the new chunk, 26 the last).
                vec![McOp::Get(14), McOp::Get(26)],
            ],
            max_steps: 20_000,
        },
        McConfig {
            name: "cert-read-3t",
            about: "hinted reads racing a split and a removal",
            target: Target::Chunked(Box::new(mc_params())),
            prefill: full_chunk_prefill(),
            threads: vec![
                vec![McOp::Insert(1, 1)],
                vec![McOp::Remove(26)],
                vec![McOp::Get(14), McOp::Get(2)],
            ],
            max_steps: 30_000,
        },
        McConfig {
            name: "split-raise-2t",
            about: "split raised-key placement vs. concurrent remove (PR 1 seed race #1 oracle)",
            target: Target::Chunked(Box::new(mc_params())),
            prefill: full_chunk_prefill(),
            threads: vec![
                // Insert(1) lands in the old (still locked) half, so the
                // fixed code raises key 1 itself; the reverted bug raises
                // max(k, min_moved) = 14 — a key living in the *unlocked*
                // new chunk.
                vec![McOp::Insert(1, 1)],
                // Racing remove of that raised key: scheduled between the
                // new chunk's unlock and the level-1 install, it deletes 14
                // from level 0, finds no index entry to clean, and leaves
                // the subsequently installed level-1 entry dangling.
                vec![McOp::Remove(14)],
            ],
            max_steps: 20_000,
        },
        McConfig {
            name: "remove-shift-2t",
            about: "remove compaction shift vs. concurrent reads (PR 1 seed race #2 oracle)",
            target: Target::Chunked(Box::new(mc_params())),
            // Four keys in one chunk; removing 20 shifts 30 and 40 left.
            prefill: vec![(10, 1), (20, 2), (30, 3), (40, 4)],
            threads: vec![
                vec![McOp::Remove(20)],
                // The reverted right-to-left shift makes 30 transiently
                // vanish (slot overwritten by 40 before 30 moves left); a
                // lock-free read in that window returns Get(30) = None,
                // which no linearization of {remove 20 ∥ get 30, get 40}
                // permits.
                vec![McOp::Get(30), McOp::Get(40)],
            ],
            max_steps: 20_000,
        },
        McConfig {
            name: "mvcc-snap-2t",
            about: "pinned snapshot reads racing a stamped split: version \
                    publish (fence-shared stamp + capture-on-lock) vs pin \
                    (fence-exclusive drain) vs ticket release",
            target: Target::Chunked(Box::new(mvcc_params())),
            prefill: full_chunk_prefill(),
            threads: vec![
                // Splitter: stamped insert into the full chunk — the split
                // locks (and therefore captures) both halves.
                vec![McOp::Insert(1, 1)],
                // Snapshot reader: each SnapGet pins a version (draining
                // the stamp fence), resolves through the version chain,
                // and releases the ticket. Key 14 moves to the new chunk
                // in a split, 26 stays rightmost — both sides covered.
                vec![McOp::SnapGet(14), McOp::SnapGet(26)],
            ],
            max_steps: 30_000,
        },
        McConfig {
            name: "mvcc-snap-3t",
            about: "pinned snapshot read racing a stamped split and a \
                    stamped removal (two writers contending on the fence)",
            target: Target::Chunked(Box::new(mvcc_params())),
            prefill: full_chunk_prefill(),
            threads: vec![
                vec![McOp::Insert(1, 1)],
                vec![McOp::Remove(26)],
                vec![McOp::SnapGet(26)],
            ],
            max_steps: 40_000,
        },
        McConfig {
            name: "flat-split-2t",
            about: "flat-bottom leaf split racing a second inserter",
            target: Target::Flat { leaf_cap: 4 },
            prefill: vec![(10, 1), (20, 2), (30, 3), (40, 4)],
            threads: vec![
                // Both inserts land in the one full leaf: each drops its
                // locks, splits under the write lock, and retries — the
                // double-split / already-split-by-peer interleavings are
                // the point.
                vec![McOp::Insert(15, 5)],
                vec![McOp::Insert(25, 6)],
            ],
            max_steps: 2_000,
        },
        McConfig {
            name: "flat-split-3t",
            about: "flat-bottom split, empty-leaf retirement, and a reader",
            target: Target::Flat { leaf_cap: 4 },
            prefill: vec![(10, 1), (20, 2), (30, 3), (40, 4)],
            threads: vec![
                vec![McOp::Insert(15, 5)],
                // Drains a leaf so retirement (index write lock) races the
                // split and the reader.
                vec![McOp::Remove(10), McOp::Remove(20)],
                vec![McOp::Get(30)],
            ],
            max_steps: 4_000,
        },
    ]
}

/// Look up a configuration by its registry name.
pub fn by_name(name: &str) -> Option<McConfig> {
    all().into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique_and_resolvable() {
        let cfgs = all();
        for c in &cfgs {
            assert!(by_name(c.name).is_some());
            assert!(!c.threads.is_empty());
            assert!(c.threads.iter().all(|ops| !ops.is_empty()));
        }
        let mut names: Vec<_> = cfgs.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cfgs.len(), "duplicate config name");
    }

    #[test]
    fn full_chunk_prefill_exactly_fills_sixteen_team_chunk() {
        // The head chunk holds the -inf sentinel in one of its dsize slots.
        assert_eq!(full_chunk_prefill().len(), mc_params().dsize() - 1);
    }
}
