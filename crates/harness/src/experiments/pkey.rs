//! §5.2 static-configuration sweeps: `p_key` for M&C, `p_chunk` for GFSL.
//!
//! The paper reports `p_key = 0.5` best for M&C among 0.2–0.8 and
//! `p_chunk ≈ 1` best for GFSL in every mixture tested.

use gfsl::{GfslParams, TeamSize};
use gfsl_workload::{OpMix, WorkloadSpec};
use mc_skiplist::McParams;

use super::ExpConfig;
use crate::model_eval::{evaluate, StructureKind};
use crate::report::{mops, Table};
use crate::runner::{run_gfsl, run_mc, RunConfig};

/// Run both sweeps at the anchor range on `[10,10,80]`.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let range = cfg.anchor_range();
    let spec = WorkloadSpec::mixed(OpMix::C80, range, cfg.mixed_ops(), cfg.seed);
    let run_cfg = RunConfig {
        workers: cfg.workers,
        ..Default::default()
    };

    let mut t_chunk = Table::new(
        format!("p_chunk sweep: GFSL-32, [10,10,80], range {}", spec.range_label()),
        &["p_chunk", "MOPS (model)", "txns/op", "splits"],
    );
    for p_chunk in [0.25, 0.5, 0.75, 1.0] {
        let params = GfslParams {
            p_chunk,
            pool_chunks: GfslParams::chunks_for(
                range as u64 + spec.n_ops as u64,
                TeamSize::ThirtyTwo,
            ),
            seed: cfg.seed,
            ..Default::default()
        };
        let m = run_gfsl(&spec, params, &run_cfg);
        let tp = evaluate(StructureKind::Gfsl, &m);
        t_chunk.row(vec![
            format!("{p_chunk:.2}"),
            mops(tp.mops),
            format!("{:.1}", m.txns_per_op()),
            m.splits.to_string(),
        ]);
    }

    let mut t_key = Table::new(
        format!("p_key sweep: M&C, [10,10,80], range {}", spec.range_label()),
        &["p_key", "MOPS (model)", "txns/op"],
    );
    for p_key in [0.2, 0.35, 0.5, 0.65, 0.8] {
        let params = McParams {
            p_key,
            seed: cfg.seed,
            ..McParams::sized_for(range as u64 + spec.n_ops as u64)
        };
        let m = run_mc(&spec, params, &run_cfg);
        let tp = evaluate(StructureKind::Mc, &m);
        t_key.row(vec![
            format!("{p_key:.2}"),
            mops(tp.mops),
            format!("{:.1}", m.txns_per_op()),
        ]);
    }

    vec![t_chunk, t_key]
}
