//! Consistent cluster-wide snapshots under a brief all-shard epoch fence.
//!
//! Consistency argument: the snapshot write-holds *every* shard fence
//! simultaneously (acquired in index order, the global fence order), so
//! there is an instant `T` — after the last fence is acquired and before
//! the first is released — at which no routed operation is running
//! anywhere. Every op completed before its shard's fence acquisition is
//! included; every op blocked on a fence completes after release. The
//! snapshot is therefore exactly the cluster state at `T`: a linearizable
//! cut, including across shards. The fences are held only for the eager
//! per-shard export (a sequential pair walk), not for any rebuild.

use gfsl::{Error, Gfsl, GfslParams};

use crate::cluster::Cluster;

/// Where each shard's pairs landed inside a [`ClusterSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct ShardCut {
    /// Shard id at the cut.
    pub id: u64,
    /// Inclusive lower key bound at the cut.
    pub lo: u32,
    /// Exclusive upper key bound at the cut.
    pub hi: u32,
    /// Number of pairs this shard contributed.
    pub pairs: usize,
}

/// A consistent, point-in-time image of the whole cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// Shard-map epoch the cut was taken under.
    pub epoch: u64,
    /// Every pair in the cluster, ascending by key.
    pub pairs: Vec<(u32, u32)>,
    /// Per-shard contribution layout.
    pub cuts: Vec<ShardCut>,
}

impl ClusterSnapshot {
    /// Materialize the snapshot as a single bulk-built GFSL (the export
    /// path: a cluster collapses into one structure for offline use).
    pub fn to_gfsl(&self, params: GfslParams) -> Result<Gfsl, Error> {
        Gfsl::from_sorted_pairs(params, self.pairs.iter().copied())
    }
}

impl Cluster {
    /// Take a consistent cluster-wide snapshot (see module docs). Blocks
    /// routed ops only for the duration of the export walks.
    pub fn snapshot(&self) -> ClusterSnapshot {
        // Stabilize the shard set against concurrent migrations.
        let _structural = self.reshard.lock();
        let (shards, epoch) = {
            let m = self.map.read();
            (m.shards.clone(), m.epoch)
        };
        let fences: Vec<_> = shards.iter().map(|s| s.fence.write()).collect();
        // Heal before walking: exports must not traverse quarantined chunks.
        for s in &shards {
            if s.list.params().contain && s.list.quarantine_depth() > 0 {
                s.list.handle().repair_quarantine();
            }
        }
        let per_shard: Vec<Vec<(u32, u32)>> = shards
            .iter()
            .map(|s| s.list.export_pairs().collect())
            .collect();
        drop(fences);

        let mut pairs = Vec::with_capacity(per_shard.iter().map(Vec::len).sum());
        let mut cuts = Vec::with_capacity(shards.len());
        for (s, p) in shards.iter().zip(per_shard) {
            cuts.push(ShardCut {
                id: s.id,
                lo: s.lo,
                hi: s.hi,
                pairs: p.len(),
            });
            pairs.extend(p);
        }
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "sorted stitch");
        ClusterSnapshot { epoch, pairs, cuts }
    }
}
