//! Systematic schedule exploration of the lock protocol (ISSUE 9).
//!
//! Every test explores a named configuration from `gfsl::mc::configs` and
//! asserts that **no reachable schedule** violates structure invariants,
//! linearizability, or panic-freedom — printing the explored-schedule
//! count so CI can archive it.
//!
//! Cost scaling: exhaustive DFS cost grows with the preemption bound, so
//! tier-1 (debug) runs the cheap configs at bound 2 and the expensive
//! chunked ones at bound 1, while the CI `modelcheck` job (release) runs
//! everything at bound 2. `--nocapture` shows the schedule counts.

use gfsl::mc::strategy::{DfsBounded, RandomWalk};
use gfsl::mc::{configs, explore, replay};

/// Preemption bound scaled to build profile: debug tier-1 stays fast,
/// release CI explores the full bound-2 space.
fn bound(debug: u32, release: u32) -> u32 {
    if cfg!(debug_assertions) {
        debug
    } else {
        release
    }
}

fn check_exhaustive(name: &str, bound: u32, cap: u64, allow_truncation: bool) {
    let cfg = configs::by_name(name).expect("config registered");
    let report = explore(&cfg, Box::new(DfsBounded::new(bound, true, cap)));
    println!("modelcheck [bound {bound}] {}", report.summary());
    assert!(
        report.counterexample.is_none(),
        "counterexample found: {}",
        report.summary()
    );
    if !allow_truncation {
        assert!(
            !report.truncated,
            "{name}: episode cap {cap} hit before exhausting bound-{bound} space"
        );
    }
    assert!(
        report.episodes > 1,
        "{name}: only {} schedule(s) explored — gating is not reaching the scheduler",
        report.episodes
    );
}

#[test]
fn flat_split_2t_exhaustive() {
    check_exhaustive("flat-split-2t", 2, 2_000_000, false);
}

#[test]
fn flat_split_3t_exhaustive() {
    check_exhaustive("flat-split-3t", bound(2, 2), 2_000_000, false);
}

#[test]
fn cert_read_2t_exhaustive() {
    check_exhaustive("cert-read-2t", bound(1, 2), 5_000_000, false);
}

#[test]
fn cert_read_3t_bounded() {
    // Three threads over the split path: the bound-2 space is large, so a
    // cap keeps CI bounded; the run still covers every schedule the DFS
    // reaches within it.
    check_exhaustive("cert-read-3t", bound(1, 2), if cfg!(debug_assertions) { 30_000 } else { 300_000 }, true);
}

#[test]
fn mvcc_snap_2t_bounded() {
    // Pinned snapshot reads vs a stamped split: the version fence adds a
    // yield point per acquisition attempt on both sides, so the space is
    // larger than cert-read-2t — capped, every schedule reached within
    // the cap is checked.
    check_exhaustive(
        "mvcc-snap-2t",
        bound(1, 2),
        if cfg!(debug_assertions) { 30_000 } else { 300_000 },
        true,
    );
}

#[test]
fn mvcc_snap_3t_bounded() {
    check_exhaustive(
        "mvcc-snap-3t",
        bound(1, 2),
        if cfg!(debug_assertions) { 30_000 } else { 300_000 },
        true,
    );
}

#[test]
fn random_walk_soak_finds_nothing() {
    // Seeded random walks over every registered config — the strategy the
    // CI soak job runs for much longer. Complements DFS: walks routinely
    // exceed the preemption bound.
    let episodes = if cfg!(debug_assertions) { 40 } else { 400 };
    for cfg in configs::all() {
        let report = explore(&cfg, Box::new(RandomWalk::new(0x5EED_0003, episodes)));
        println!("modelcheck [walk x{episodes}] {}", report.summary());
        assert!(
            report.counterexample.is_none(),
            "random walk counterexample: {}",
            report.summary()
        );
        assert_eq!(report.episodes, episodes);
    }
}

#[test]
fn replay_is_deterministic() {
    // The property every repro workflow rests on: same decisions, same
    // trace hash, same verdict — across fresh structure instances.
    let cfg = configs::by_name("flat-split-2t").expect("config registered");
    let a = replay(&cfg, vec![1, 0, 1, 1, 0, 1]);
    let b = replay(&cfg, vec![1, 0, 1, 1, 0, 1]);
    assert_eq!(a.trace, b.trace, "trace hash must be schedule-deterministic");
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.failure.is_some(), b.failure.is_some());
    let c = replay(&cfg, vec![0, 1, 0, 0, 1, 0]);
    assert_ne!(
        a.trace, c.trace,
        "different decisions must reach a different interleaving"
    );
}
