//! # gfsl-serve — a batched request-serving front end for GFSL
//!
//! The paper's structure only pays off when operations arrive in warp-sized
//! cooperative teams — exactly the shape a kernel-launch / continuous-
//! batching serving loop produces, and nothing like the one-op-at-a-time
//! API a client holds. This crate is the subsystem in between: simulated
//! clients issue `Get/Insert/Delete/Range` requests over time, and the
//! service
//!
//! 1. **admits** them into a bounded intake queue, shedding with a typed
//!    error under overload ([`admission`]);
//! 2. **batches** them per epoch — deadline- and size-triggered, like an
//!    inference server's continuous batching — under a pluggable policy
//!    ([`scheduler`]: FIFO, key-range-sharded, read/write-separated);
//! 3. **dispatches** each warp-aligned batch onto a GFSL team via the
//!    structure's batched entry point ([`service`]);
//! 4. **routes** typed responses back through per-client completion queues
//!    ([`request`]), feeding closed-loop clients their next issue;
//! 5. **measures** everything — occupancy, queue depth, formation wait,
//!    p50/p99/p999 latency, sheds ([`metrics`]) — and folds the entire
//!    schedule into a replayable FNV-1a trace hash ([`trace`]);
//! 6. **heals** itself: with the structure in containment mode
//!    (`GfslParams::contain`), crashed operations surface as typed aborts,
//!    a per-epoch repair pass drains the quarantine, and a supervisor
//!    walks the Normal → Shed-writes → Read-only → Drain degradation
//!    ladder until the structure is healthy again ([`supervisor`]).
//!
//! See [`service::serve`] for the event loop and [`service::ExecMode`] for
//! the measured / modeled / chaos clock modes.

#![warn(missing_docs)]

pub mod admission;
pub mod durability;
pub mod metrics;
pub mod request;
pub mod scheduler;
pub mod service;
pub mod source;
pub mod supervisor;
pub mod trace;

pub use admission::{IntakeQueue, ShedError};
pub use durability::{CommitSink, DurabilityContract, MemorySink, WriteEffect};
pub use metrics::{LatencyHisto, ServiceMetrics};
pub use request::{ClientId, ClientQueues, Reply, Request, Response};
pub use scheduler::{Batch, BatchPolicy, Fifo, KeyRangeSharded, KeySorted, PolicyCtx, ReadWriteSeparated};
pub use service::{
    env_seed, raw_batch_mops, serve, serve_durable, serve_durable_supervised, serve_supervised,
    ExecMode, ServeConfig, ServiceReport,
};
pub use source::{ClosedSource, OpenSource, ReplaySource, RequestSource};
pub use supervisor::{ServiceMode, Supervisor};
pub use trace::TraceHash;
