//! Graceful-degradation supervisor: the service's recovery state machine.
//!
//! Once the structure runs in containment mode
//! ([`gfsl::GfslParams::contain`]), operation crashes surface as typed
//! aborts and quarantined chunks instead of a poisoned structure — the
//! service can keep running *through* a fault. The supervisor decides what
//! "keep running" means at each moment: it observes per-epoch recovery
//! signals (aborted replies, quarantine depth) and walks a degradation
//! ladder
//!
//! ```text
//! Normal  →  ShedWrites  →  ReadOnly  →  Drain
//! ```
//!
//! escalating one rung per sustained-trouble window and de-escalating one
//! rung per sustained-clean window, so a single transient crash costs one
//! epoch of write shedding while a crash storm converges to read-only (and,
//! if even repair cannot keep up, to full drain) instead of a latency
//! collapse. Every transition is counted and the full degraded interval —
//! first rung up to the return to [`ServiceMode::Normal`] — is reported as
//! the *time to heal* in virtual nanoseconds.

use gfsl_workload::ServeOp;

/// The service's admission rung. Ordering is severity: each rung admits a
/// subset of what the previous one admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ServiceMode {
    /// Full service: everything is admitted.
    #[default]
    Normal,
    /// Soft backpressure: writes are shed once the intake queue is at half
    /// capacity; reads are admitted unconditionally.
    ShedWrites,
    /// Reads only: every write arrival is shed with a retry hint.
    ReadOnly,
    /// Nothing is admitted; queued requests drain and the service quiesces.
    Drain,
}

impl ServiceMode {
    /// Ladder rung as a number (`Normal` = 0 … `Drain` = 3), the form the
    /// trace hash folds and the escalation arithmetic uses.
    pub fn severity(self) -> u8 {
        match self {
            ServiceMode::Normal => 0,
            ServiceMode::ShedWrites => 1,
            ServiceMode::ReadOnly => 2,
            ServiceMode::Drain => 3,
        }
    }

    fn from_severity(s: u8) -> ServiceMode {
        match s {
            0 => ServiceMode::Normal,
            1 => ServiceMode::ShedWrites,
            2 => ServiceMode::ReadOnly,
            _ => ServiceMode::Drain,
        }
    }

    /// Would this rung admit `op` when the intake queue holds `depth` of
    /// `cap` requests? Reads (`Get`/`Range`/`MinEntry`) ride the
    /// structure's lock-free path and stay admitted until `Drain`; writes
    /// (`Insert`/`Delete`/`PopMin`) are shed progressively.
    pub fn admits(self, op: ServeOp, depth: usize, cap: usize) -> bool {
        let write = matches!(
            op,
            ServeOp::Insert(..) | ServeOp::Delete(_) | ServeOp::PopMin
        );
        match self {
            ServiceMode::Normal => true,
            ServiceMode::ShedWrites => !write || depth < cap / 2,
            ServiceMode::ReadOnly => !write,
            ServiceMode::Drain => false,
        }
    }
}

impl std::fmt::Display for ServiceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServiceMode::Normal => "normal",
            ServiceMode::ShedWrites => "shed-writes",
            ServiceMode::ReadOnly => "read-only",
            ServiceMode::Drain => "drain",
        })
    }
}

/// The escalation state machine. Deterministic: the next mode is a pure
/// function of the observation stream, so supervised runs still replay
/// bit-for-bit (transitions are folded into the service trace).
pub struct Supervisor {
    mode: ServiceMode,
    bad_streak: u32,
    clean_streak: u32,
    degraded_since_ns: Option<u64>,
    /// Observations with trouble before each further escalation rung.
    escalate_after: u32,
    /// Consecutive clean observations before each de-escalation rung.
    deescalate_after: u32,
    /// Latched once the service quiesces in `Drain` (see
    /// [`Supervisor::notify_drain_quiesced`]); cleared on leaving `Drain`.
    drain_quiesced: bool,
    /// Drain-completion hook, fired at the quiescent instant.
    on_drain: Option<Box<dyn FnMut(u64) + Send>>,
    /// Mode changes so far (both directions).
    pub transitions: u64,
    /// Duration of the last completed degraded interval (first rung up to
    /// the return to `Normal`), virtual ns. Zero until a full heal happened.
    pub time_to_heal_ns: u64,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("mode", &self.mode)
            .field("bad_streak", &self.bad_streak)
            .field("clean_streak", &self.clean_streak)
            .field("drain_quiesced", &self.drain_quiesced)
            .field("has_drain_hook", &self.on_drain.is_some())
            .field("transitions", &self.transitions)
            .field("time_to_heal_ns", &self.time_to_heal_ns)
            .finish_non_exhaustive()
    }
}

impl Default for Supervisor {
    fn default() -> Supervisor {
        Supervisor::new(2, 2)
    }
}

impl Supervisor {
    /// A supervisor escalating one rung per `escalate_after` troubled
    /// observations and de-escalating one rung per `deescalate_after`
    /// consecutive clean ones (both clamped to at least 1). The first
    /// troubled observation always leaves `Normal` immediately.
    pub fn new(escalate_after: u32, deescalate_after: u32) -> Supervisor {
        Supervisor {
            mode: ServiceMode::Normal,
            bad_streak: 0,
            clean_streak: 0,
            degraded_since_ns: None,
            escalate_after: escalate_after.max(1),
            deescalate_after: deescalate_after.max(1),
            drain_quiesced: false,
            on_drain: None,
            transitions: 0,
            time_to_heal_ns: 0,
        }
    }

    /// Install the drain-completion hook: called exactly once per `Drain`
    /// visit, at the instant the service quiesces there (intake empty, no
    /// epoch in flight). Shutdown uses this to trigger a final checkpoint;
    /// tests use it to await quiescence deterministically.
    pub fn on_drain_quiesced(&mut self, f: impl FnMut(u64) + Send + 'static) {
        self.on_drain = Some(Box::new(f));
    }

    /// Has the service quiesced in `Drain`? Latched at the quiescent
    /// instant and cleared when the ladder steps back down, so a caller
    /// polling after a run sees whether a full drain completed.
    pub fn drain_quiesced(&self) -> bool {
        self.drain_quiesced
    }

    /// The driver reports that the service is quiescent — nothing queued,
    /// nothing in flight. Only meaningful in `Drain`: latches the flag and
    /// fires the completion hook on the first quiescent instant per visit.
    pub fn notify_drain_quiesced(&mut self, now_ns: u64) {
        if self.mode == ServiceMode::Drain && !self.drain_quiesced {
            self.drain_quiesced = true;
            if let Some(f) = self.on_drain.as_mut() {
                f(now_ns);
            }
        }
    }

    /// Current rung.
    pub fn mode(&self) -> ServiceMode {
        self.mode
    }

    /// True while the service is anywhere below full service.
    pub fn degraded(&self) -> bool {
        self.mode != ServiceMode::Normal
    }

    /// Feed one epoch's recovery signals; returns the (possibly new) mode.
    ///
    /// `faults_delta` is the fault activity since the previous call —
    /// aborted replies plus chunks the repair pass had to handle;
    /// `quarantine_depth` is the structure's quarantine depth at
    /// observation time (after the epoch's repair pass, so a depth that
    /// *stays* positive means repair is not keeping up — exactly the
    /// signal that should climb past `ShedWrites`).
    pub fn observe(&mut self, now_ns: u64, faults_delta: u64, quarantine_depth: usize) -> ServiceMode {
        let trouble = faults_delta > 0 || quarantine_depth > 0;
        if trouble {
            self.clean_streak = 0;
            self.bad_streak += 1;
            // First trouble leaves Normal at once; each further
            // `escalate_after` window climbs one rung.
            let target = 1 + (self.bad_streak - 1) / self.escalate_after;
            let target = ServiceMode::from_severity(target.min(3) as u8);
            if target > self.mode {
                self.switch(target, now_ns);
            }
        } else {
            self.bad_streak = 0;
            if self.mode != ServiceMode::Normal {
                self.clean_streak += 1;
                if self.clean_streak >= self.deescalate_after {
                    self.clean_streak = 0;
                    let down = ServiceMode::from_severity(self.mode.severity() - 1);
                    self.switch(down, now_ns);
                }
            }
        }
        self.mode
    }

    fn switch(&mut self, to: ServiceMode, now_ns: u64) {
        debug_assert_ne!(to, self.mode);
        if self.mode == ServiceMode::Drain {
            // Leaving Drain re-arms the hook for the next visit.
            self.drain_quiesced = false;
        }
        if self.mode == ServiceMode::Normal {
            self.degraded_since_ns = Some(now_ns);
        }
        if to == ServiceMode::Normal {
            if let Some(t0) = self.degraded_since_ns.take() {
                // A heal that completes within one observation still counts
                // as a measurable interval.
                self.time_to_heal_ns = now_ns.saturating_sub(t0).max(1);
            }
        }
        self.mode = to;
        self.transitions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fault_costs_one_rung_then_heals() {
        let mut sup = Supervisor::default();
        assert_eq!(sup.observe(100, 1, 0), ServiceMode::ShedWrites);
        assert_eq!(sup.observe(200, 0, 0), ServiceMode::ShedWrites);
        assert_eq!(sup.observe(300, 0, 0), ServiceMode::Normal);
        assert_eq!(sup.transitions, 2);
        assert_eq!(sup.time_to_heal_ns, 200);
        assert!(!sup.degraded());
    }

    #[test]
    fn sustained_trouble_climbs_the_whole_ladder() {
        let mut sup = Supervisor::new(2, 2);
        let mut seen = Vec::new();
        for i in 0..8u64 {
            seen.push(sup.observe(i * 100, 0, 5));
        }
        assert_eq!(seen[0], ServiceMode::ShedWrites);
        assert!(seen.contains(&ServiceMode::ReadOnly));
        assert_eq!(*seen.last().unwrap(), ServiceMode::Drain);
        assert!(seen.windows(2).all(|w| w[0] <= w[1]), "monotone climb: {seen:?}");
    }

    #[test]
    fn deescalation_steps_down_one_rung_per_clean_window() {
        let mut sup = Supervisor::new(1, 2);
        for i in 0..6u64 {
            sup.observe(i, 3, 1);
        }
        assert_eq!(sup.mode(), ServiceMode::Drain);
        let mut t = 100u64;
        let mut modes = Vec::new();
        while sup.degraded() {
            t += 100;
            modes.push(sup.observe(t, 0, 0));
            assert!(modes.len() < 32, "must converge to Normal: {modes:?}");
        }
        assert!(modes.windows(2).all(|w| w[0] >= w[1]), "monotone descent: {modes:?}");
        assert!(sup.time_to_heal_ns > 0);
    }

    #[test]
    fn trouble_mid_descent_restarts_the_climb() {
        let mut sup = Supervisor::new(1, 1);
        sup.observe(0, 1, 0); // ShedWrites
        sup.observe(1, 1, 0); // ReadOnly
        sup.observe(2, 0, 0); // back to ShedWrites
        assert_eq!(sup.mode(), ServiceMode::ShedWrites);
        assert_eq!(sup.observe(3, 0, 1), ServiceMode::ShedWrites, "rung held, streak reset");
        assert_eq!(sup.observe(4, 0, 1), ServiceMode::ReadOnly);
    }

    #[test]
    fn drain_hook_fires_once_per_visit_and_rearms() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let fired = Arc::new(AtomicU64::new(0));
        let at = Arc::new(AtomicU64::new(0));
        let mut sup = Supervisor::new(1, 1);
        {
            let (fired, at) = (fired.clone(), at.clone());
            sup.on_drain_quiesced(move |now| {
                fired.fetch_add(1, Ordering::SeqCst);
                at.store(now, Ordering::SeqCst);
            });
        }

        // Not in Drain: notifications are ignored.
        sup.notify_drain_quiesced(10);
        assert!(!sup.drain_quiesced());
        assert_eq!(fired.load(Ordering::SeqCst), 0);

        for i in 0..3u64 {
            sup.observe(i, 1, 0); // climb to Drain
        }
        assert_eq!(sup.mode(), ServiceMode::Drain);
        sup.notify_drain_quiesced(500);
        assert!(sup.drain_quiesced());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(at.load(Ordering::SeqCst), 500);
        sup.notify_drain_quiesced(600);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "latched: once per visit");

        // Step down a rung and climb back: the hook is re-armed.
        sup.observe(700, 0, 0);
        assert!(!sup.drain_quiesced(), "leaving Drain clears the latch");
        for i in 0..3u64 {
            sup.observe(800 + i, 1, 0);
        }
        assert_eq!(sup.mode(), ServiceMode::Drain);
        sup.notify_drain_quiesced(900);
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn admission_matrix_matches_the_ladder() {
        let w = ServeOp::Insert(1, 1);
        let d = ServeOp::Delete(1);
        let r = ServeOp::Get(1);
        let q = ServeOp::Range(1, 9);
        assert!(ServiceMode::Normal.admits(w, 99, 100));
        assert!(ServiceMode::ShedWrites.admits(w, 10, 100), "half-empty queue admits writes");
        assert!(!ServiceMode::ShedWrites.admits(w, 60, 100), "half-full queue sheds writes");
        assert!(ServiceMode::ShedWrites.admits(r, 99, 100));
        assert!(!ServiceMode::ReadOnly.admits(w, 0, 100));
        assert!(!ServiceMode::ReadOnly.admits(d, 0, 100));
        assert!(ServiceMode::ReadOnly.admits(q, 99, 100));
        assert!(!ServiceMode::Drain.admits(r, 0, 100));
        // Min ops: the peek is a read, the pop removes and is a write.
        assert!(ServiceMode::ReadOnly.admits(ServeOp::MinEntry, 99, 100));
        assert!(!ServiceMode::ReadOnly.admits(ServeOp::PopMin, 0, 100));
        assert!(!ServiceMode::ShedWrites.admits(ServeOp::PopMin, 60, 100));
    }
}
