//! Regression: a team that dies (panics) mid-insert while holding chunk
//! locks must be *detected* — the structure reports itself poisoned and
//! later writers fail fast with a diagnosis — instead of silently
//! deadlocking every team that needs the orphaned locks.
//!
//! The panic is injected deterministically with the chaos layer: the worker
//! is killed at its first `SplitPublish` crash point, i.e. after it locked
//! the splitting chunk AND the freshly allocated (locked-at-birth) new
//! chunk, the worst case for orphaned locks.

use std::panic::{catch_unwind, AssertUnwindSafe};

use gfsl::chaos::{ChaosController, ChaosOptions};
use gfsl::{CrashPoint, Gfsl, GfslParams, TeamSize};

#[test]
fn panic_mid_split_poisons_instead_of_deadlocking() {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        ..Default::default()
    })
    .unwrap();

    let ctl = ChaosController::new(
        1,
        ChaosOptions {
            panic_at: Some((CrashPoint::SplitPublish, 1)),
            max_stall_turns: 0,
            ..Default::default()
        },
    );

    std::thread::scope(|s| {
        let worker = s.spawn(|| {
            let mut h = list.handle_with(ctl.probe(0));
            // The 14th insert overflows the 16-entry chunk's data array and
            // triggers the first split.
            for k in 1..=100u32 {
                let _ = h.insert(k, k);
            }
        });
        assert!(
            worker.join().is_err(),
            "worker must die at the injected crash point"
        );
    });

    // The held-lock tracker saw the unwind and poisoned the structure.
    assert!(list.is_poisoned(), "dead team went undetected");
    let report = list.poison_report().expect("poison carries a report");
    assert!(
        report.contains("chunk"),
        "report should name the orphaned chunks: {report}"
    );

    // Lock-free reads still work: keys inserted before the crash are
    // reachable (the split never published, so nothing moved).
    let mut reader = list.handle();
    for k in 1..=13u32 {
        assert!(reader.contains(k), "pre-crash key {k} must stay readable");
    }

    // A writer that needs one of the orphaned locks fails FAST with the
    // poison diagnosis (bounded wait + periodic poison check) instead of
    // spinning forever. The test completing at all is the no-deadlock
    // assertion.
    let res = catch_unwind(AssertUnwindSafe(|| {
        let mut h = list.handle();
        let _ = h.insert(500, 1);
    }));
    let err = res.expect_err("writer must abort, not complete or hang");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("poisoned"),
        "writer's panic should carry the poison diagnosis, got: {msg}"
    );
}

#[test]
fn surviving_teams_keep_running_after_peer_dies_elsewhere() {
    // A peer dying while holding locks on chunks another team never touches
    // must not stop that team: poisoning is detected at lock-wait time.
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        ..Default::default()
    })
    .unwrap();
    // Push enough keys that low and high key ranges live in distinct chunks.
    {
        let mut h = list.handle();
        for k in 1..=200u32 {
            h.insert(k * 10, k).unwrap();
        }
    }

    let ctl = ChaosController::new(
        1,
        ChaosOptions {
            // Die at the first zombie-mark: the victim is mid-merge holding
            // the bottom chunk's lock, which gets orphaned by the unwind.
            panic_at: Some((CrashPoint::MergeZombieMark, 1)),
            max_stall_turns: 0,
            ..Default::default()
        },
    );
    std::thread::scope(|s| {
        let victim = s.spawn(|| {
            let mut h = list.handle_with(ctl.probe(0));
            // Remove low keys until a merge (zombie-mark) happens.
            for k in 1..=200u32 {
                h.remove(k * 10);
            }
        });
        let _ = victim.join();
    });

    // Whether or not the merge fired (it does with these parameters), the
    // high end of the key space must stay fully operational.
    let mut h = list.handle();
    for k in 150..=200u32 {
        assert!(h.contains(k * 10) || list.is_poisoned());
    }
    assert!(h.insert(100_000, 1).unwrap_or(false) || list.is_poisoned());
}
