//! The GFSL structure and per-thread operation handles.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use gfsl_gpu_mem::{EpochReclaimer, MemProbe, NoProbe, PoolExhausted, ReclaimStats, SlotId, WordPool};
use gfsl_simt::Team;

use crate::chunk::{ops, ChunkRef, ChunkView, Entry, KEY_INF, KEY_NEG_INF, LOCK_UNLOCKED, NIL};
use crate::params::GfslParams;
use gfsl_rng::SplitMix64;
use crate::stats::{OpStats, FINGER_LEVELS};

/// Errors surfaced by updating operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The preallocated device pool ran out of chunks.
    PoolExhausted(PoolExhausted),
    /// The key collides with a reserved sentinel (`0` is `-∞`,
    /// `u32::MAX` is `∞`).
    InvalidKey(u32),
    /// A contained operation aborted instead of completing (see
    /// [`GfslParams::contain`] and the `try_*` entry points).
    Aborted(OpAbort),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::PoolExhausted(e) => write!(f, "{e}"),
            Error::InvalidKey(k) => write!(f, "key {k} is reserved (0 = -inf, u32::MAX = inf)"),
            Error::Aborted(a) => write!(f, "{a}"),
        }
    }
}

impl std::error::Error for Error {}

/// Why a contained operation aborted, and where. Returned inside
/// [`Error::Aborted`] by the `try_*` entry points when
/// [`GfslParams::contain`] is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpAbort {
    /// What cut the operation short.
    pub reason: AbortReason,
    /// The chunk the abort centers on: the chunk being waited on for a
    /// clean abort, or the first quarantined chunk for a crash.
    pub chunk: u32,
}

impl std::fmt::Display for OpAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "operation aborted ({:?}) at chunk {}", self.reason, self.chunk)
    }
}

/// The cause carried by an [`OpAbort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The operation itself panicked mid-protocol (e.g. a chaos-injected
    /// crash); its held chunks moved to the quarantine set. Unless the
    /// journal had already recorded the commit point, the op's outcome is
    /// *unknown* until repair runs.
    Crashed,
    /// The operation was about to wait on a quarantined chunk; it released
    /// everything it held (all individually consistent) and had **no
    /// effect** on the structure.
    Quarantined,
    /// The per-op retry budget ([`GfslParams::retry_budget`]) ran out at a
    /// wait point. No effect on the structure.
    RetryBudget,
    /// The per-op deadline ([`GfslParams::op_deadline_ns`]) passed at a
    /// wait point. No effect on the structure.
    Deadline,
}

/// Internal panic payload for *clean* aborts raised at wait points. Caught
/// by [`GfslHandle::contained`]; never escapes the `try_*` entry points.
pub(crate) struct AbortSignal {
    pub(crate) reason: AbortReason,
    pub(crate) chunk: u32,
}

/// Cumulative recovery counters (see [`Gfsl::repair_stats`]). All counts
/// are totals since construction; `quarantine_depth` is the current value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Contained operations that aborted (any [`AbortReason`]).
    pub aborts: u64,
    /// Contained operations that crashed (panicked) mid-protocol.
    pub crashed_ops: u64,
    /// Chunks ever moved into the quarantine set.
    pub chunks_quarantined: u64,
    /// Chunks currently quarantined.
    pub quarantine_depth: usize,
    /// Quarantined chunks repaired by rolling the interrupted op forward.
    pub repaired_forward: u64,
    /// Quarantined chunks repaired by restoring the pre-op snapshot.
    pub repaired_back: u64,
    /// Quarantined chunks whose image was already consistent (clean
    /// unlock, no rewrite needed).
    pub unpoisoned_clean: u64,
    /// Down-pointer repairs queued and applied by `repair_quarantine`.
    pub downptr_repairs: u64,
    /// Live chunks re-validated by the background scrubber.
    pub scrubbed_chunks: u64,
    /// Invariant violations the scrubber observed on settled chunks.
    pub scrub_violations: u64,
}

/// Atomic backing store for [`RepairStats`].
#[derive(Default)]
pub(crate) struct RecoveryCounters {
    pub(crate) aborts: AtomicU64,
    pub(crate) crashed_ops: AtomicU64,
    pub(crate) chunks_quarantined: AtomicU64,
    pub(crate) repaired_forward: AtomicU64,
    pub(crate) repaired_back: AtomicU64,
    pub(crate) unpoisoned_clean: AtomicU64,
    pub(crate) downptr_repairs: AtomicU64,
    pub(crate) scrubbed_chunks: AtomicU64,
    pub(crate) scrub_violations: AtomicU64,
}

/// A chunk parked in the quarantine set: still lock-held by a crashed op,
/// waiting for [`GfslHandle::repair_quarantine`] to roll it forward or back.
pub(crate) struct QuarantinedChunk {
    /// Pool chunk index.
    pub(crate) chunk: u32,
    /// Full chunk image (all lanes) captured when the crashed op acquired
    /// the lock — the certified pre-op state the rollback path restores.
    pub(crate) snapshot: Vec<u64>,
    /// The crashed op's journal stub at crash time, shared by every chunk
    /// it held.
    pub(crate) intent: Intent,
}

/// Journal stub describing the structural mutation an op is mid-way
/// through; consulted by repair to decide roll-forward vs roll-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum Intent {
    /// No structural mutation in flight.
    #[default]
    None,
    /// Splitting `split` at `level`; `new` is the freshly allocated half,
    /// `thresh` the max the old half keeps, `published` whether the
    /// one-word publish store has been issued.
    Split {
        split: u32,
        new: u32,
        thresh: u32,
        level: usize,
        published: bool,
    },
    /// Merging `dying` into `absorber` at `level` (removing `k`); `copied`
    /// is set once every surviving entry has been written into the
    /// absorber, after which the merge must roll forward.
    Merge {
        dying: u32,
        absorber: u32,
        k: u32,
        level: usize,
        copied: bool,
    },
}

/// Committed outcome recorded by the journal once an op's linearization
/// point has passed; a crash after this returns the real outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Commit {
    Inserted(bool),
    Removed(bool),
}

/// Per-op containment journal carried by the handle.
#[derive(Default)]
pub(crate) struct OpJournal {
    pub(crate) intent: Intent,
    pub(crate) committed: Option<Commit>,
}

/// A GPU-friendly skiplist (GFSL).
///
/// The structure itself is `Sync`: share it by reference between worker
/// threads and give each thread its own [`GfslHandle`] (via
/// [`Gfsl::handle`]) to run operations, mirroring one GPU team per handle.
///
/// ```
/// use gfsl::{Gfsl, GfslParams};
///
/// let list = Gfsl::new(GfslParams::default()).unwrap();
/// let mut h = list.handle();
/// assert!(h.insert(10, 100).unwrap());
/// assert_eq!(h.get(10), Some(100));
/// assert!(h.remove(10));
/// assert!(!h.contains(10));
/// ```
pub struct Gfsl {
    pub(crate) pool: WordPool,
    pub(crate) params: GfslParams,
    pub(crate) team: Team,
    /// `head[i]` = pointer to the first chunk of level `i`. Redirected
    /// (CAS) only when the first chunk becomes a zombie.
    pub(crate) head: Vec<AtomicU32>,
    /// Per-level utilized-chunk counters; `level_chunks[i] > 0` marks level
    /// `i` as in use (drives [`Gfsl::height`]).
    pub(crate) level_chunks: Vec<AtomicU32>,
    handle_seq: AtomicU32,
    /// Set when a team died (panicked) while holding chunk locks: those
    /// locks can never be released, so waiters must fail fast, not spin.
    poisoned: AtomicBool,
    /// Human-readable account of the first poisoning event.
    poison_note: Mutex<Option<String>>,
    /// Epoch-based reclaimer for unlinked zombie chunks (`None` when
    /// [`GfslParams::reclaim`] is off). See DESIGN.md for the safety
    /// argument.
    pub(crate) reclaim: Option<EpochReclaimer>,
    /// Quarantined chunks awaiting repair (containment mode only).
    pub(crate) quarantine: Mutex<Vec<QuarantinedChunk>>,
    /// Lock-free mirror of the quarantine set's size, so the hot path can
    /// skip the mutex when nothing is quarantined.
    pub(crate) quarantine_len: AtomicUsize,
    /// Cumulative recovery counters behind [`Gfsl::repair_stats`].
    pub(crate) recovery: RecoveryCounters,
    /// Background scrubber cursor: `(level, next chunk to visit)`.
    pub(crate) scrub_cursor: Mutex<(usize, u32)>,
    /// Multiversion engine (`None` when [`GfslParams::mvcc`] is off):
    /// version clock, per-chunk copy-on-write version chains, read-ticket
    /// registry. See `mvcc.rs` and DESIGN.md §19.
    pub(crate) mvcc: Option<Box<crate::mvcc::MvccEngine>>,
}

/// Maximum concurrently-live handles when reclamation is enabled (epoch
/// slots are recycled as handles drop, so this bounds *concurrent* handles,
/// not total).
pub const MAX_RECLAIM_HANDLES: usize = 1024;

/// A reclamation pass (drain + verify + recycle) runs every this many
/// update operations per handle; allocation also consumes the free list
/// directly, so the period only bounds how long verified-free chunks wait.
const RECLAIM_PERIOD: u32 = 16;

impl Gfsl {
    /// Create an empty skiplist: one unlocked sentinel chunk per level
    /// holding `-∞` and a down-pointer to the sentinel below (§4.1).
    /// # Panics
    /// Panics if `params` fail [`GfslParams::validate`] (misconfiguration is
    /// a programming error, not a runtime condition).
    pub fn new(params: GfslParams) -> Result<Gfsl, Error> {
        if let Err(msg) = params.validate() {
            panic!("invalid GfslParams: {msg}");
        }
        let lanes = params.lanes() as u32;
        let capacity_words = params.pool_chunks as usize * lanes as usize;
        let pool = WordPool::new(capacity_words);
        let team = Team::new(params.team_size);
        let levels = params.max_levels();

        // Allocate the per-level sentinels bottom-up so each can point to
        // the one below.
        let mut sentinels = vec![0u32; levels];
        for level in 0..levels {
            let base = pool.alloc(lanes, lanes).map_err(Error::PoolExhausted)?;
            sentinels[level] = base / lanes; // store chunk index
            let ch = ChunkRef { base };
            let below = if level == 0 { 0 } else { sentinels[level - 1] };
            pool.write(ch.entry_addr(0), Entry::new(KEY_NEG_INF, below).0);
            for i in 1..team.dsize() {
                pool.write(ch.entry_addr(i), Entry::EMPTY.0);
            }
            pool.write(ch.entry_addr(team.next_lane()), Entry::new(KEY_INF, NIL).0);
            pool.write(ch.entry_addr(team.lock_lane()), LOCK_UNLOCKED);
        }

        Ok(Gfsl {
            pool,
            team,
            head: sentinels.iter().map(|&c| AtomicU32::new(c)).collect(),
            level_chunks: (0..levels).map(|_| AtomicU32::new(0)).collect(),
            handle_seq: AtomicU32::new(0),
            poisoned: AtomicBool::new(false),
            poison_note: Mutex::new(None),
            reclaim: params
                .reclaim
                .then(|| EpochReclaimer::new(MAX_RECLAIM_HANDLES)),
            quarantine: Mutex::new(Vec::new()),
            quarantine_len: AtomicUsize::new(0),
            recovery: RecoveryCounters::default(),
            scrub_cursor: Mutex::new((0, sentinels[0])),
            mvcc: params
                .mvcc
                .then(|| Box::new(crate::mvcc::MvccEngine::new(params.pool_chunks))),
            params,
        })
    }

    /// Cumulative recovery counters: aborts, quarantined chunks, repairs by
    /// kind, scrubber progress. Cheap (atomic loads).
    pub fn repair_stats(&self) -> RepairStats {
        let r = &self.recovery;
        let o = Ordering::Relaxed;
        RepairStats {
            aborts: r.aborts.load(o),
            crashed_ops: r.crashed_ops.load(o),
            chunks_quarantined: r.chunks_quarantined.load(o),
            quarantine_depth: self.quarantine_depth(),
            repaired_forward: r.repaired_forward.load(o),
            repaired_back: r.repaired_back.load(o),
            unpoisoned_clean: r.unpoisoned_clean.load(o),
            downptr_repairs: r.downptr_repairs.load(o),
            scrubbed_chunks: r.scrubbed_chunks.load(o),
            scrub_violations: r.scrub_violations.load(o),
        }
    }

    /// Number of chunks currently quarantined (lock-free snapshot).
    pub fn quarantine_depth(&self) -> usize {
        self.quarantine_len.load(Ordering::Acquire)
    }

    /// Is `ch` in the quarantine set? Fast-pathed on the depth counter so
    /// it costs one atomic load while the set is empty.
    pub(crate) fn is_quarantined(&self, ch: u32) -> bool {
        if self.quarantine_depth() == 0 {
            return false;
        }
        self.quarantine
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .any(|q| q.chunk == ch)
    }

    /// Reclamation counters (zombies retired/reclaimed, epochs advanced,
    /// free-list depth), or `None` when [`GfslParams::reclaim`] is off.
    pub fn reclaim_stats(&self) -> Option<ReclaimStats> {
        self.reclaim.as_ref().map(|r| r.stats())
    }

    /// The configuration this instance was built with.
    pub fn params(&self) -> &GfslParams {
        &self.params
    }

    /// The team geometry.
    pub fn team(&self) -> &Team {
        &self.team
    }

    /// Raw access to the underlying device-memory pool (for external
    /// simulators and tooling; the pool is append-only and safe to read
    /// concurrently).
    pub fn raw_pool(&self) -> &WordPool {
        &self.pool
    }

    /// The chunk reference for a pool chunk index (advanced/simulator API).
    pub fn chunk_ref(&self, index: u32) -> ChunkRef {
        self.chunk(index)
    }

    /// First-chunk index of a level (advanced/simulator API; lock-free
    /// snapshot).
    pub fn head_chunk(&self, level: usize) -> u32 {
        self.head_of(level)
    }

    /// Chunks allocated so far (sentinels included).
    pub fn chunks_allocated(&self) -> u32 {
        self.pool.used() / self.params.lanes() as u32
    }

    /// Create an uninstrumented operation handle. Each worker thread gets
    /// its own handle; the handle embeds an independent RNG stream for the
    /// raise-key coin.
    pub fn handle(&self) -> GfslHandle<'_, NoProbe> {
        self.handle_with(NoProbe)
    }

    /// Create a handle with a custom memory probe (the harness passes a
    /// `CountingProbe` sharing the run's L2 model).
    pub fn handle_with<P: MemProbe>(&self, probe: P) -> GfslHandle<'_, P> {
        let n = self.handle_seq.fetch_add(1, Ordering::Relaxed) as u64;
        let slot = self.reclaim.as_ref().map(|r| {
            r.register().unwrap_or_else(|| {
                panic!("more than {MAX_RECLAIM_HANDLES} concurrently-live handles with reclamation enabled")
            })
        });
        GfslHandle {
            list: self,
            probe,
            rng: SplitMix64::new(self.params.seed ^ (n.wrapping_mul(0xA076_1D64_78BD_642F))),
            stats: OpStats::new(),
            held: HeldLocks::new(self),
            reclaim_slot: ReclaimGuard { list: self, slot },
            hint0: None,
            hint_view: None,
            finger: [None; FINGER_LEVELS],
            reclaim_tick: 0,
            batch_order: Vec::new(),
            journal: OpJournal::default(),
            op_waits: 0,
            op_deadline: None,
        }
    }

    /// Resolve a chunk index to its pool word base.
    #[inline]
    pub(crate) fn chunk(&self, index: u32) -> ChunkRef {
        debug_assert_ne!(index, NIL, "dereferencing NIL chunk pointer");
        ChunkRef {
            base: index * self.params.lanes() as u32,
        }
    }

    /// Highest level currently in use (0 when only the bottom level holds
    /// keys). Reads are unlocked: a stale-low answer merely starts searches
    /// lower (level 0 always holds every key), a stale-high answer starts at
    /// an empty sentinel — both are benign.
    pub fn height(&self) -> usize {
        for i in (1..self.params.max_levels()).rev() {
            if self.level_chunks[i].load(Ordering::Relaxed) > 0 {
                return i;
            }
        }
        0
    }

    /// First-chunk pointer for a level.
    #[inline]
    pub(crate) fn head_of(&self, level: usize) -> u32 {
        self.head[level].load(Ordering::Acquire)
    }

    pub(crate) fn inc_level_chunks(&self, level: usize) {
        self.level_chunks[level].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn dec_level_chunks(&self, level: usize) {
        // Saturating decrement: counters are a heuristic height signal, and
        // racing "level emptied" stores may otherwise underflow.
        let _ = self.level_chunks[level].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            v.checked_sub(1)
        });
    }

    pub(crate) fn level_chunk_count(&self, level: usize) -> u32 {
        self.level_chunks[level].load(Ordering::Relaxed)
    }

    /// Has a team died while holding chunk locks?
    ///
    /// Once poisoned, the affected chunks can never be unlocked; teams that
    /// subsequently wait on any lock panic with [`Gfsl::poison_report`]
    /// instead of spinning forever. Operations that never touch the dead
    /// team's chunks may still complete — poisoning is detected at lock-wait
    /// time, not checked up front.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// The first poisoning event, if any (which chunks went down with the
    /// dead team).
    pub fn poison_report(&self) -> Option<String> {
        if !self.is_poisoned() {
            return None;
        }
        self.poison_note
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Record that a team died holding `held`. First report wins; the flag
    /// is sticky.
    pub(crate) fn poison(&self, held: &[u32]) {
        let mut note = self.poison_note.lock().unwrap_or_else(|p| p.into_inner());
        if note.is_none() {
            *note = Some(format!(
                "a team died (panicked) while holding lock(s) on chunk(s) {held:?}; \
                 those locks can never be released"
            ));
        }
        self.poisoned.store(true, Ordering::Release);
    }
}

/// The chunk locks a handle currently holds. Tracked so that a team dying
/// mid-operation (a panic unwinding through [`GfslHandle`]) is *detected* —
/// the structure is poisoned with a report naming the orphaned locks —
/// instead of silently deadlocking every team that later needs those chunks.
pub(crate) struct HeldLocks<'a> {
    list: &'a Gfsl,
    chunks: Vec<u32>,
    /// Pre-op chunk images captured at lock acquisition, keyed by chunk.
    /// Only populated in containment mode ([`GfslParams::contain`]); the
    /// quarantine entries carry these as certified rollback states (the
    /// lock CAS preceding the capture means no other writer can have
    /// touched the chunk since).
    snaps: Vec<(u32, Vec<u64>)>,
    /// The in-flight update's mvcc publish stamp (`0` = unstamped). Set by
    /// `with_version_stamp` while the operation holds the version fence
    /// shared; lock acquisitions capture version pre-images tagged with it.
    pub(crate) stamp: u64,
}

impl<'a> HeldLocks<'a> {
    fn new(list: &'a Gfsl) -> HeldLocks<'a> {
        HeldLocks {
            list,
            chunks: Vec::new(),
            snaps: Vec::new(),
            stamp: 0,
        }
    }

    #[inline]
    pub(crate) fn acquired(&mut self, ch: u32) {
        if self.list.params.contain {
            let lanes = self.list.params.lanes();
            let base = self.list.chunk(ch);
            let snap = (0..lanes).map(|i| self.list.pool.read(base.entry_addr(i))).collect();
            self.snaps.push((ch, snap));
        }
        // Mvcc capture-on-lock-acquire: the first time a stamped update
        // locks a chunk in its stamp epoch (with readers outstanding), the
        // chunk's pre-image goes onto its version chain *before any
        // mutation* — this is what lets a pinned reader resolve the chunk
        // without waiting for the lock. The lanes are read here (gated pool
        // reads, outside the chain mutex); unstamped lock holders (the
        // reclamation sweeps) skip capture — their mutations are
        // single-word zombie-unlink swings that never move keys.
        if let Some(mvcc) = self.list.mvcc.as_deref() {
            if self.stamp != 0 && mvcc.wants_capture(ch, self.stamp) {
                let lanes = self.list.params.lanes();
                let base = self.list.chunk(ch);
                let img: Vec<u64> = (0..lanes)
                    .map(|i| self.list.pool.read(base.entry_addr(i)))
                    .collect();
                mvcc.capture(ch, self.stamp, img);
            }
        }
        self.chunks.push(ch);
    }

    /// Forget all tracked locks. Only for code paths that release lock words
    /// by direct pool writes instead of [`GfslHandle::unlock`] (bulk
    /// construction, where every chunk is sealed unlocked by hand) and for
    /// the containment paths that already dispatched every held chunk.
    pub(crate) fn clear(&mut self) {
        self.chunks.clear();
        self.snaps.clear();
    }

    #[inline]
    pub(crate) fn released(&mut self, ch: u32) {
        match self.chunks.iter().rposition(|&c| c == ch) {
            Some(i) => {
                self.chunks.swap_remove(i);
            }
            None => debug_assert!(false, "releasing untracked lock on chunk {ch}"),
        }
        if let Some(i) = self.snaps.iter().rposition(|&(c, _)| c == ch) {
            self.snaps.swap_remove(i);
        }
    }

    /// The chunks currently held (containment paths).
    pub(crate) fn chunks(&self) -> &[u32] {
        &self.chunks
    }

    /// The captured pre-op image of a held chunk, if containment recorded
    /// one.
    fn snapshot_of(&self, ch: u32) -> Option<Vec<u64>> {
        self.snaps
            .iter()
            .rfind(|&&(c, _)| c == ch)
            .map(|(_, s)| s.clone())
    }
}

impl Drop for HeldLocks<'_> {
    fn drop(&mut self) {
        // Non-empty on drop means the op never released these locks: the
        // thread is unwinding from a panic mid-protocol (or the handle was
        // leaked mid-op, which safe callers cannot do).
        if !self.chunks.is_empty() {
            self.list.poison(&self.chunks);
        }
    }
}

impl std::fmt::Debug for Gfsl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gfsl")
            .field("team_size", &self.params.team_size)
            .field("height", &self.height())
            .field("chunks_allocated", &self.chunks_allocated())
            .finish()
    }
}

/// Lock retries after which a single acquisition is counted as a
/// starvation event in [`OpStats::lock_starvation_events`]. With the
/// exponential backoff capped at a 64-iteration spin plus a yield per
/// retry, 4096 retries is a long wall-clock window of being unserved.
pub const STARVATION_RETRIES: u32 = 1 << 12;

/// Hard bound on retries for one lock acquisition. The protocol's hold
/// times are bounded (no operation blocks while holding a chunk lock), so
/// crossing this bound means the holder is gone for good — the waiter
/// panics with a deadlock diagnosis instead of spinning forever.
pub const LOCK_RETRY_BOUND: u32 = 1 << 26;

/// Chunk-move budget for a lateral walk started from a validated traversal
/// hint. A validated hint only proves the enclosing chunk is at-or-right of
/// the cached one; clustered streams land within a step or two, while an
/// arbitrary jump could be the whole bottom level away. Past this many
/// moves the walk gives up and the lookup falls back to the O(log n)
/// descent, so a hint can never cost more than `HINT_WALK_BUDGET` extra
/// chunk reads.
pub(crate) const HINT_WALK_BUDGET: u32 = 8;

/// Lateral steps a finger-restarted descent may take before abandoning the
/// finger and re-descending from the head. A validated finger is only
/// *at-or-left* on its level; when the access pattern jumps to a new hot
/// band the cached chunk can be arbitrarily far left, and crawling a low
/// level across that gap costs unboundedly more than the head descent the
/// finger was meant to save. Eight lateral reads is well under one head
/// descent's worth of chunk reads at the 1M anchor, and a *good* restart
/// rarely needs more than two: the budget trades a sliver of reach on
/// borderline restarts for a tight cap on what an adversarial pattern
/// (alternating far-apart keys, e.g. a churn window's two edges) can burn
/// per operation.
pub(crate) const FINGER_WALK_BUDGET: u32 = 8;

/// A per-thread session on a [`Gfsl`]: the moral equivalent of one GPU team.
///
/// Holds the thread's memory probe, RNG stream, and operation statistics.
/// All skiplist operations ([`contains`](GfslHandle::contains),
/// [`get`](GfslHandle::get), [`insert`](GfslHandle::insert),
/// [`remove`](GfslHandle::remove)) live on the handle.
pub struct GfslHandle<'a, P: MemProbe> {
    pub(crate) list: &'a Gfsl,
    pub(crate) probe: P,
    pub(crate) rng: SplitMix64,
    pub(crate) stats: OpStats,
    pub(crate) held: HeldLocks<'a>,
    /// This handle's epoch slot; unregisters itself on drop.
    reclaim_slot: ReclaimGuard<'a>,
    /// Bottom-level traversal hint: the last bottom chunk this handle's
    /// reads touched, with the lock word observed unlocked there. A later
    /// lookup revalidates the pair (word equality ⇒ the chunk is the same
    /// incarnation and unmutated since) and starts its lateral walk there,
    /// skipping the descent entirely.
    hint0: Option<Hint0>,
    /// Fat bottom-level hint: the last *certified* snapshot this handle's
    /// traversals produced, tagged with its chunk index (the observed
    /// unlocked word is the view's own lock lane). When the next lookup's
    /// [`hint0`](Self::hint0) names the same `(chunk, word)` pair,
    /// [`hint_start`](Self::hint_start) revalidates with a single lock-lane
    /// read instead of the full team read: the identical unlocked word
    /// proves no writer completed since the snapshot was certified, so the
    /// cached data lanes are still authentic. Only views whose data lanes
    /// were *bracketed* by two observations of the same unlocked word may
    /// be stashed here — the later one-word re-read extends a bracket
    /// forward, it cannot create one around an uncertified read.
    hint_view: Option<(u32, ChunkView)>,
    /// Multi-level finger: the cached descent path, one `(chunk, lock word)`
    /// pair per level (slot `i` = level `i`; slot 0 is unused — the bottom
    /// level lives in [`hint0`](Self::hint0), whose validated snapshot
    /// doubles as the answer certification). A descent revalidates entries
    /// deepest-first and restarts from the deepest still-valid level
    /// instead of the head. Only populated when [`GfslParams::fingers`] is
    /// on.
    finger: [Option<Hint0>; FINGER_LEVELS],
    /// Update-op counter driving periodic reclamation passes.
    reclaim_tick: u32,
    /// Reusable `(key << 32) | index` sort scratch for
    /// [`execute_batch_hinted`](Self::execute_batch_hinted), so steady-state
    /// batch dispatch allocates nothing.
    pub(crate) batch_order: Vec<u64>,
    /// Containment journal for the op in flight (intent stub + commit
    /// point); reset by [`Self::contained`].
    pub(crate) journal: OpJournal,
    /// Lock-wait + certification retries spent by the contained op in
    /// flight, charged against [`GfslParams::retry_budget`].
    op_waits: u32,
    /// Deadline of the contained op in flight, when
    /// [`GfslParams::op_deadline_ns`] is set.
    op_deadline: Option<std::time::Instant>,
}

/// A cached bottom-level traversal hint (see [`GfslHandle`]). Beyond the
/// `(chunk, lock word)` pair, the hint carries the reclaimer epoch at
/// capture time: lock-word versions are monotonic across recycling (see
/// `reinit_chunk`), but the epoch tag additionally bounds how *old* a hint
/// may be — a hint that survived two reclaim epochs has had time for its
/// chunk to be retired, verified, recycled, and re-churned, so it is
/// dropped outright rather than trusted to a word comparison.
#[derive(Debug, Clone, Copy)]
struct Hint0 {
    chunk: u32,
    word: u64,
    epoch: u64,
}

/// Unregisters a handle's epoch slot when the handle drops. A separate
/// struct (like [`HeldLocks`]) so `GfslHandle::into_parts` can still move
/// fields out of the handle.
struct ReclaimGuard<'a> {
    list: &'a Gfsl,
    slot: Option<SlotId>,
}

impl Drop for ReclaimGuard<'_> {
    fn drop(&mut self) {
        if let (Some(rec), Some(slot)) = (self.list.reclaim.as_ref(), self.slot) {
            rec.unregister(slot);
        }
    }
}

impl<'a, P: MemProbe> GfslHandle<'a, P> {
    /// The underlying structure.
    pub fn list(&self) -> &'a Gfsl {
        self.list
    }

    /// Statistics accumulated by this handle.
    pub fn stats(&self) -> OpStats {
        self.stats
    }

    /// Reset this handle's statistics.
    pub fn reset_stats(&mut self) {
        self.stats = OpStats::new();
    }

    /// Consume the handle, returning its probe and stats.
    pub fn into_parts(self) -> (P, OpStats) {
        (self.probe, self.stats)
    }

    /// Read a whole chunk in one lockstep team read.
    #[inline]
    pub(crate) fn read_chunk(&mut self, index: u32) -> ChunkView {
        self.stats.chunk_reads += 1;
        ChunkView::read(
            &self.list.team,
            &self.list.pool,
            &mut self.probe,
            self.list.chunk(index),
        )
    }

    /// Read a chunk until the view is *certified*: two consecutive reads
    /// whose lock words agree and show the chunk unlocked prove no writer
    /// moved an entry while the later view's data lanes were read (entry
    /// moves happen only under the chunk lock, and every release bumps the
    /// lock word's version). Zombie views are terminal, hence trivially
    /// consistent. Used by lock-free readers whose answer asserts the
    /// *absence* of a key in the view (`NotFound`, range scans, `min_entry`)
    /// — a single ascending-order read can miss a key being shifted toward
    /// lower lanes by a concurrent `executeRemove`.
    pub(crate) fn read_chunk_certified(&mut self, index: u32) -> ChunkView {
        let team = self.list.team;
        let mut prev = self.read_chunk(index);
        loop {
            if prev.is_zombie(&team) {
                return prev;
            }
            let before = prev.lock_word(&team);
            let view = self.read_chunk(index);
            if crate::chunk::lock_state(before) == crate::chunk::LOCK_UNLOCKED
                && view.lock_word(&team) == before
            {
                return view;
            }
            self.certify_poison_check(index);
            prev = view;
        }
    }

    /// Certified-read `cur`, stepping right past zombies: the first
    /// non-zombie `(chunk, certified view)` at-or-right of `cur`, or `None`
    /// past the end of the level. The shared chunk-step helper for the
    /// bottom-level scans (`min_entry`, range iteration).
    pub(crate) fn next_live_certified(&mut self, mut cur: u32) -> Option<(u32, ChunkView)> {
        let team = self.list.team;
        loop {
            let view = self.read_chunk_certified(cur);
            if !view.is_zombie(&team) {
                return Some((cur, view));
            }
            let next = view.next(&team);
            if next == NIL {
                return None;
            }
            cur = next;
        }
    }

    /// Run `f` with this handle's epoch slot pinned (no-op when reclamation
    /// is off). Pinning is reentrant, so composite operations (`pop_min`,
    /// `upsert`) may nest pinned primitives freely. Every public operation
    /// that dereferences chunk pointers runs under a pin: the reclaimer
    /// cannot recycle a chunk retired after the pin was announced, which is
    /// what makes traversal-held pointers safe to follow.
    /// The unpin runs from a drop guard so a chaos-injected panic mid-`f`
    /// (a "crashed team") still quiesces the slot while unwinding: a dead
    /// team's stack holds no chunk references, and leaving its announcement
    /// behind would halt epoch advance — and with it all reclamation —
    /// forever.
    #[inline]
    pub(crate) fn with_pin<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        struct UnpinGuard<'r> {
            rec: &'r EpochReclaimer,
            slot: SlotId,
        }
        impl Drop for UnpinGuard<'_> {
            fn drop(&mut self) {
                self.rec.unpin(self.slot);
            }
        }
        let _guard = match (self.list.reclaim.as_ref(), self.reclaim_slot.slot) {
            (Some(rec), Some(s)) => {
                rec.pin(s);
                Some(UnpinGuard { rec, slot: s })
            }
            _ => None,
        };
        f(self)
    }

    /// Run one update operation stamped with the mvcc version clock: the
    /// fence is held **shared** for the whole call (so [`Gfsl::pin_version`]
    /// drains this op before minting a ticket) and `held.stamp` carries the
    /// observed clock value for the capture hook in [`HeldLocks::acquired`].
    /// A zero-cost passthrough when [`GfslParams::mvcc`] is off, and a
    /// plain call when already stamped (no update nests inside another
    /// today; the guard keeps a future composite from deadlocking on the
    /// non-reentrant fence).
    ///
    /// On panic the shared guard releases during unwind; the stale
    /// `held.stamp` is reset by [`Self::contained`]'s abort path (the only
    /// way a handle survives a panic).
    #[inline]
    pub(crate) fn with_version_stamp<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let Some(mvcc) = self.list.mvcc.as_deref() else {
            return f(self);
        };
        if self.held.stamp != 0 {
            return f(self);
        }
        let fence = mvcc.writer_fence();
        self.held.stamp = *fence;
        let r = f(self);
        self.held.stamp = 0;
        // Opportunistic retention bound, paid by the path that created the
        // retention: if this op's captures pushed the live-image count past
        // the high water, sweep once before releasing the fence (still held
        // shared, as `vacuum_locked` requires). Readers never sweep.
        mvcc.try_vacuum(self.list.reclaim.as_ref());
        drop(fence);
        r
    }

    /// Run one operation inside the containment unwind boundary. A no-op
    /// passthrough when [`GfslParams::contain`] is off (plain call, zero
    /// bookkeeping). With containment on: resets the op journal and
    /// retry/deadline budgets, runs `f` under `catch_unwind`, and converts
    /// any panic into a typed [`OpAbort`] —
    ///
    /// * a clean [`AbortSignal`] (raised by [`Self::note_wait`] at a wait
    ///   point, where every held chunk is individually consistent) releases
    ///   all held locks with a version bump and reports the signalled
    ///   reason;
    /// * any other panic (a *crash*: chaos injection, poison-detection, or
    ///   a genuine bug mid-protocol) moves the held chunks — with their
    ///   pre-op snapshots and the op's journal intent — into the quarantine
    ///   set for [`Self::repair_quarantine`], leaving the rest of the
    ///   structure unpoisoned and live.
    ///
    /// The caller inspects `self.journal.committed` on `Err`: a recorded
    /// commit means the op's linearization point had already passed, so its
    /// outcome is real and must be reported (this is what keeps
    /// acknowledged writes from being lost across crashes).
    pub(crate) fn contained<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> Result<R, OpAbort> {
        if !self.list.params.contain {
            return Ok(f(self));
        }
        self.journal = OpJournal::default();
        self.op_waits = 0;
        self.op_deadline = (self.list.params.op_deadline_ns > 0).then(|| {
            std::time::Instant::now()
                + std::time::Duration::from_nanos(self.list.params.op_deadline_ns)
        });
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self))) {
            Ok(r) => {
                self.journal.intent = Intent::None;
                Ok(r)
            }
            Err(payload) => {
                // The panic unwound through `with_version_stamp`: its fence
                // guard released on the way out, but the stamp field stayed
                // set. Reset it, or the handle's next update would skip
                // stamping (and run unfenced).
                self.held.stamp = 0;
                self.list.recovery.aborts.fetch_add(1, Ordering::Relaxed);
                match payload.downcast::<AbortSignal>() {
                    Ok(sig) => {
                        self.abort_release_held();
                        Err(OpAbort {
                            reason: sig.reason,
                            chunk: sig.chunk,
                        })
                    }
                    Err(_) => {
                        // A killing probe (chaos) deregistered this team from
                        // its scheduler mid-panic; we caught the kill, so tell
                        // the probe the team lives on — even when the crash is
                        // reported to the caller as a committed `Ok`. This
                        // must happen *before* any quarantine bookkeeping: if
                        // that bookkeeping ever performs a probed or
                        // schedule-gated access (the pool accesses are gated
                        // under the `sched` feature), a still-retired
                        // participant would park in the turnstile waiting for
                        // a turn no scheduler grants to the retired.
                        self.probe.crash_recovered();
                        let chunk = self.quarantine_held();
                        self.list.recovery.crashed_ops.fetch_add(1, Ordering::Relaxed);
                        Err(OpAbort {
                            reason: AbortReason::Crashed,
                            chunk,
                        })
                    }
                }
            }
        }
    }

    /// Blanket-release every held lock after a *clean* abort. Sound because
    /// clean aborts are raised only at wait points, where each held chunk's
    /// image is individually consistent (see [`Self::note_wait`]); the
    /// release bumps the version exactly like [`ops::unlock`] so snapshot
    /// certification and hints observe the mutation window.
    fn abort_release_held(&mut self) {
        let team = &self.list.team;
        let pool = &self.list.pool;
        for &ch in self.held.chunks() {
            let addr = self.list.chunk(ch).entry_addr(team.lock_lane());
            let cur = pool.read(addr);
            debug_assert_eq!(
                crate::chunk::lock_state(cur),
                crate::chunk::LOCK_LOCKED,
                "abort-releasing chunk {ch} that is not locked"
            );
            pool.write(
                addr,
                (cur & !crate::chunk::LOCK_STATE_MASK)
                    .wrapping_add(crate::chunk::LOCK_VERSION_UNIT)
                    | LOCK_UNLOCKED,
            );
        }
        self.held.clear();
    }

    /// Move every held chunk into the quarantine set (still lock-held, with
    /// its pre-op snapshot and the crashed op's intent stub) and forget them
    /// locally, so the handle's unwind does not poison the structure.
    /// Returns the first quarantined chunk (for the [`OpAbort`] report), or
    /// `NIL` if the crash held nothing.
    fn quarantine_held(&mut self) -> u32 {
        let held: Vec<u32> = self.held.chunks().to_vec();
        let first = held.first().copied().unwrap_or(NIL);
        let intent = self.journal.intent;
        if !held.is_empty() {
            let mut q = self
                .list
                .quarantine
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            for &ch in &held {
                let snapshot = self.held.snapshot_of(ch).unwrap_or_default();
                q.push(QuarantinedChunk {
                    chunk: ch,
                    snapshot,
                    intent,
                });
            }
            self.list.quarantine_len.store(q.len(), Ordering::Release);
            self.list
                .recovery
                .chunks_quarantined
                .fetch_add(held.len() as u64, Ordering::Relaxed);
        }
        self.held.clear();
        first
    }

    /// Contained insert: like [`insert`](Self::insert), but a panic or
    /// budget overrun mid-protocol surfaces as [`Error::Aborted`] (with the
    /// faulty chunks quarantined) instead of poisoning the structure.
    /// Requires [`GfslParams::contain`]; without it this is a plain
    /// zero-overhead alias of `insert`. If the operation had already passed
    /// its linearization point when it aborted, the recorded outcome is
    /// returned as `Ok` — an acknowledged insert is never silently lost.
    pub fn try_insert(&mut self, k: u32, v: u32) -> Result<bool, Error> {
        match self.contained(|h| h.insert(k, v)) {
            Ok(r) => r,
            Err(abort) => match self.journal.committed.take() {
                Some(Commit::Inserted(a)) => Ok(a),
                _ => Err(Error::Aborted(abort)),
            },
        }
    }

    /// Contained remove; see [`Self::try_insert`] for the abort contract.
    pub fn try_remove(&mut self, k: u32) -> Result<bool, Error> {
        match self.contained(|h| h.remove(k)) {
            Ok(r) => Ok(r),
            Err(abort) => match self.journal.committed.take() {
                Some(Commit::Removed(a)) => Ok(a),
                _ => Err(Error::Aborted(abort)),
            },
        }
    }

    /// Contained lookup; reads never mutate, so an abort simply means the
    /// read gave up (quarantined chunk in its path, or budget spent).
    pub fn try_get(&mut self, k: u32) -> Result<Option<u32>, Error> {
        self.contained(|h| h.get(k)).map_err(Error::Aborted)
    }

    /// Contained membership test; see [`Self::try_get`].
    pub fn try_contains(&mut self, k: u32) -> Result<bool, Error> {
        self.contained(|h| h.contains(k)).map_err(Error::Aborted)
    }

    /// Contained range count; see [`Self::try_get`].
    pub fn try_count_range(&mut self, lo: u32, hi: u32) -> Result<usize, Error> {
        self.contained(|h| h.count_range(lo, hi))
            .map_err(Error::Aborted)
    }

    /// Contained minimum-entry scan; see [`Self::try_get`] (reads never
    /// mutate, so an abort simply means the scan gave up).
    pub fn try_min_entry(&mut self) -> Result<Option<(u32, u32)>, Error> {
        self.contained(|h| h.min_entry()).map_err(Error::Aborted)
    }

    /// Contained extract-min: the priority-queue pop built from
    /// [`min_entry`](Self::min_entry) + [`try_remove`](Self::try_remove).
    /// Composing at this level (rather than containing
    /// [`pop_min`](Self::pop_min) wholesale) keeps `try_remove`'s abort
    /// contract intact: a removal that crashed *after* its linearization
    /// point still reports `Ok`, so an acknowledged pop is never lost.
    pub fn try_pop_min(&mut self) -> Result<Option<(u32, u32)>, Error> {
        loop {
            let Some((k, v)) = self.try_min_entry()? else {
                return Ok(None);
            };
            if self.try_remove(k)? {
                return Ok(Some((k, v)));
            }
        }
    }

    /// Validate the bottom-level hint against `k` and return its chunk with
    /// the validated snapshot, or `None` (clearing the hint) on miss.
    ///
    /// Validity argument: re-reading the hinted chunk and seeing the *same
    /// unlocked lock word* proves no writer completed (versions bump on
    /// every unlock, monotonically across recycling) or is active, so the
    /// fresh view's data is an authentic consistent snapshot of a live
    /// bottom-level chunk. Its entry 0 is then the chunk's minimum, and
    /// `min <= k` places `k`'s enclosing chunk at-or-right of the hint:
    /// keys only migrate rightward (splits and merges move keys to the
    /// right; a chunk's max never increases), so chunks left of the hint
    /// can never come to hold `k`.
    ///
    /// The returned view is moreover *certified* in the
    /// [`search_lateral`](Self::search_lateral) sense: its data lanes are
    /// bracketed by two observations of the same unlocked lock word (the
    /// cached one and the view's own lock lane, which `read_chunk` reads
    /// last), so a negative answer derived from it needs no re-read.
    pub(crate) fn hint_start(&mut self, k: u32) -> Option<(u32, ChunkView)> {
        if !self.list.params.hinted_dispatch() {
            return None;
        }
        let Hint0 { chunk: c, word: w, epoch } = self.hint0?;
        // Reclamation guard: if the reclaimer advanced two or more epochs
        // since the hint was captured, the hinted chunk may have completed
        // a full retire→verify→recycle cycle in the meantime. Versions stay
        // monotonic across recycling, so the word compare below would still
        // reject a recycled incarnation — this epoch tag is defense in
        // depth against any future free-list path that loses that
        // monotonicity (and it keeps pathologically stale hints from ever
        // reaching the compare).
        if let Some(rec) = self.list.reclaim.as_ref() {
            if rec.epoch().wrapping_sub(epoch) >= 2 {
                self.stats.hint_misses += 1;
                self.hint0 = None;
                // The snapshot is as old as the hint it certified; the same
                // defense-in-depth retires it.
                self.hint_view = None;
                return None;
            }
        }
        let team = self.list.team;
        // Fat-hint fast path: when the last certified snapshot is of this
        // very `(chunk, word)` pair, one lock-lane read re-certifies the
        // whole cached view — the full team read is only paid when the hint
        // moved to a chunk we have no snapshot of.
        if let Some((vc, view)) = self.hint_view {
            if vc == c && view.lock_word(&team) == w {
                let addr = ops::lock_addr(&team, self.list.chunk(c));
                self.probe.lane_read(addr);
                self.stats.skip_reads += 1;
                if self.list.pool.read(addr) == w && view.entry(0).key() <= k {
                    self.stats.hint_hits += 1;
                    if self.list.params.fingers {
                        // A validated bottom hint is a depth-0 finger restart.
                        self.stats.finger_depth_hits[0] += 1;
                    }
                    return Some((c, view));
                }
                // Either the chunk mutated since the snapshot (the word
                // changed, so a full re-read would fail the same compare) or
                // its authentic minimum sits right of `k`; both are exactly
                // the miss conditions of the full-read path below, so
                // declare the miss without paying the team read.
                self.hint_view = None;
                self.stats.hint_misses += 1;
                self.hint0 = None;
                return None;
            }
        }
        let view = self.read_chunk(c);
        if view.lock_word(&team) == w && view.entry(0).key() <= k {
            self.stats.hint_hits += 1;
            if self.list.params.fingers {
                // A validated bottom hint is a depth-0 finger restart.
                self.stats.finger_depth_hits[0] += 1;
            }
            // Bracketed by the cached word observation (before this read's
            // data lanes) and the view's own lock lane (after them): a
            // certified snapshot, eligible for the fast path above.
            self.hint_view = Some((c, view));
            Some((c, view))
        } else {
            self.stats.hint_misses += 1;
            self.hint0 = None;
            None
        }
    }

    /// Stash a *certified* view (data lanes bracketed by two observations of
    /// the same unlocked lock word) as the fat bottom-level hint, so a later
    /// [`Self::hint_start`] for the same `(chunk, word)` can revalidate it
    /// with a single lock-lane read. Uncertified views must never be passed
    /// here — see [`Self::hint_view`].
    #[inline]
    pub(crate) fn stash_hint_view(&mut self, chunk: u32, view: &ChunkView) {
        if self.list.params.hinted_dispatch() {
            self.hint_view = Some((chunk, *view));
        }
    }

    /// Demote the hint hit just recorded by [`Self::hint_start`] to a miss:
    /// the hint validated but its chunk was too far left to reach within
    /// the walk budget, so the lookup fell back to a full descent. Clearing
    /// it keeps the next operation from paying the budget again.
    pub(crate) fn hint_overrun(&mut self) {
        self.stats.hint_hits -= 1;
        self.stats.hint_misses += 1;
        if self.list.params.fingers {
            self.stats.finger_depth_hits[0] -= 1;
        }
        self.hint0 = None;
        self.hint_view = None;
    }

    /// Demote the finger hit just recorded by [`Self::finger_restart`] to a
    /// miss: the finger validated but sat too far left of `k` on its level,
    /// so the descent burned its lateral budget
    /// ([`FINGER_WALK_BUDGET`](crate::skiplist::FINGER_WALK_BUDGET)) and
    /// fell back to the head. Clearing the slot keeps the next descent from
    /// paying the crawl again.
    pub(crate) fn finger_overrun(&mut self, level: usize) {
        self.stats.finger_depth_hits[level] -= 1;
        self.stats.finger_misses += 1;
        // The whole stack, not just the restart level: every cached level
        // points into the neighborhood the access pattern just left, so a
        // shallower slot would only validate and burn the budget again on
        // the very next descent.
        self.finger = [None; FINGER_LEVELS];
    }

    /// Record a bottom-level chunk as the traversal hint. `word` must be its
    /// lock word as observed *unlocked* in the view that certified the
    /// chunk (see [`Self::hint_start`]); callers pass `None` when no
    /// unlocked observation is available, leaving the previous hint alone.
    #[inline]
    pub(crate) fn note_hint(&mut self, chunk: u32, word: Option<u64>) {
        if self.list.params.hinted_dispatch() {
            if let Some(w) = word {
                let epoch = self.list.reclaim.as_ref().map_or(0, |r| r.epoch());
                self.hint0 = Some(Hint0 { chunk, word: w, epoch });
            }
        }
    }

    /// Record a level-`level` chunk the descent passed down through as that
    /// level's finger. `word` must be its lock word as observed *unlocked*
    /// in the descent's view (callers pass `None` otherwise, leaving the
    /// slot alone). The capture view needs no certification: validity is
    /// established at restart time, when [`Self::finger_restart`] re-reads
    /// the chunk and demands the same unlocked word.
    #[inline]
    pub(crate) fn note_finger(&mut self, level: usize, chunk: u32, word: Option<u64>) {
        if self.list.params.fingers && level > 0 && level < FINGER_LEVELS {
            if let Some(w) = word {
                let epoch = self.list.reclaim.as_ref().map_or(0, |r| r.epoch());
                self.finger[level] = Some(Hint0 { chunk, word: w, epoch });
            }
        }
    }

    /// Find the deepest still-valid finger level for `k`: revalidate cached
    /// `(chunk, word)` pairs bottom-up (cheapest win first) and return the
    /// first that passes, with the validating view so the descent's first
    /// step pays no second read. Invalid entries are cleared as they fail.
    ///
    /// Validity mirrors [`Self::hint_start`]: the same epoch guard, then a
    /// fresh read showing the identical *unlocked* lock word (⇒ same chunk
    /// incarnation — and therefore still on the same level — unmutated and
    /// writer-free since capture) whose `entry(0) <= k` places the chunk
    /// at-or-left of `k`'s position on that level. Upper levels of the
    /// update path above the restart level simply keep their level-head
    /// defaults, which are trivially at-or-left.
    pub(crate) fn finger_restart(&mut self, k: u32) -> Option<(usize, u32, ChunkView)> {
        let team = self.list.team;
        let epoch_now = self.list.reclaim.as_ref().map(|r| r.epoch());
        for level in 1..FINGER_LEVELS {
            let Some(Hint0 { chunk: c, word: w, epoch }) = self.finger[level] else {
                continue;
            };
            if let Some(now) = epoch_now {
                if now.wrapping_sub(epoch) >= 2 {
                    self.finger[level] = None;
                    continue;
                }
            }
            let view = self.read_chunk(c);
            if view.lock_word(&team) == w && view.entry(0).key() <= k {
                self.stats.finger_depth_hits[level] += 1;
                return Some((level, c, view));
            }
            self.finger[level] = None;
        }
        self.stats.finger_misses += 1;
        None
    }

    /// Issue a software prefetch for the chunk's words: the host-CPU hint
    /// plus the modeled L2 fill in instrumented runs. A no-op unless
    /// [`GfslParams::prefetch`] asks for it.
    #[inline]
    pub(crate) fn prefetch_chunk(&mut self, index: u32) {
        if !self.list.params.prefetch.enabled() || index == NIL {
            return;
        }
        let lanes = self.list.params.lanes();
        let base = self.list.chunk(index).base;
        self.list.pool.prefetch(base, lanes as u32);
        let mut addrs = [0u32; gfsl_simt::WARP_SIZE];
        for (i, a) in addrs.iter_mut().enumerate().take(lanes) {
            *a = base + i as u32;
        }
        self.probe.warp_prefetch(&addrs[..lanes]);
        self.stats.prefetch_issued += 1;
    }

    /// Spin until the chunk that *encloses* `k` is locked, walking right
    /// past zombies and smaller-max chunks (paper Algorithm 4.8).
    ///
    /// Returns the locked chunk's index and its view as re-read under the
    /// lock. `start` must be at-or-left of the enclosing chunk, which the
    /// caller guarantees from traversal invariants (the max field only
    /// decreases).
    pub(crate) fn find_and_lock_enclosing(&mut self, start: u32, k: u32) -> (u32, ChunkView) {
        let team = self.list.team;
        let mut ch = start;
        let mut spins = 0u32;
        loop {
            let view = self.read_chunk(ch);
            if view.not_enclosing(&team, k) {
                let next = view.next(&team);
                debug_assert_ne!(next, NIL, "walked past the last chunk hunting for {k}");
                ch = next;
                continue;
            }
            if view.is_locked(&team) {
                self.stats.lock_retries += 1;
                self.lock_backoff(&mut spins, ch);
                continue;
            }
            if !ops::try_lock(&team, &self.list.pool, &mut self.probe, self.list.chunk(ch)) {
                self.stats.lock_retries += 1;
                self.lock_backoff(&mut spins, ch);
                continue;
            }
            self.stats.locks_taken += 1;
            self.held.acquired(ch);
            // Re-read under the lock; the chunk may have stopped enclosing
            // `k` between the read and the CAS.
            let view = self.read_chunk(ch);
            if view.not_enclosing(&team, k) {
                self.unlock(ch);
                ch = view.next(&team);
                continue;
            }
            return (ch, view);
        }
    }

    /// Lock the first non-zombie chunk right of `ch` (which the caller holds
    /// locked), unlinking any zombies skipped by rewriting `ch`'s next
    /// pointer. Returns `None` when `ch` is the last chunk in its level.
    /// `level` is the level `ch` lives in, so unlinked zombies can be
    /// retired for reclamation.
    pub(crate) fn lock_next_chunk(&mut self, ch: u32, level: usize) -> Option<u32> {
        let team = self.list.team;
        let pool = &self.list.pool;
        let first_next =
            ops::read_next_field(&team, pool, &mut self.probe, self.list.chunk(ch)).val();
        let mut cur = first_next;
        let mut spins = 0u32;
        loop {
            if cur == NIL {
                return None;
            }
            let view = self.read_chunk(cur);
            if view.is_zombie(&team) {
                cur = view.next(&team);
                continue;
            }
            if view.is_locked(&team) {
                self.stats.lock_retries += 1;
                self.lock_backoff(&mut spins, cur);
                continue;
            }
            if !ops::try_lock(&team, &self.list.pool, &mut self.probe, self.list.chunk(cur)) {
                self.stats.lock_retries += 1;
                self.lock_backoff(&mut spins, cur);
                continue;
            }
            self.stats.locks_taken += 1;
            self.held.acquired(cur);
            if cur != first_next {
                // Unlink the zombies we skipped: we hold `ch`'s lock, so its
                // max is stable and rewriting (max, next) in one word is safe.
                let nf = ops::read_next_field(&team, &self.list.pool, &mut self.probe, self.list.chunk(ch));
                ops::write_next_field(
                    &team,
                    &self.list.pool,
                    &mut self.probe,
                    self.list.chunk(ch),
                    nf.key(),
                    cur,
                );
                self.stats.zombie_unlinks += 1;
                // Holding `ch`'s lock makes this team the unique unlinker of
                // the skipped run: hand it to the reclaimer.
                self.retire_run(first_next, cur, level);
            }
            return Some(cur);
        }
    }

    /// Unlock a held chunk.
    #[inline]
    pub(crate) fn unlock(&mut self, ch: u32) {
        ops::unlock(
            &self.list.team,
            &self.list.pool,
            &mut self.probe,
            self.list.chunk(ch),
        );
        self.held.released(ch);
    }

    /// Bounded, poison-aware wait between lock attempts: exponential spin
    /// (capped at 64 iterations) escalating into a scheduler yield, so a
    /// descheduled lock holder can run (essential on machines with fewer
    /// cores than worker threads; a GPU scheduler interleaves stalled warps
    /// for the same reason). Periodically re-checks [`Gfsl::is_poisoned`] so
    /// waiters on an orphaned lock fail fast with the poison report instead
    /// of spinning until [`LOCK_RETRY_BOUND`].
    /// Abort a snapshot-certification spin if the structure is poisoned.
    /// Certification waits for the chunk's lock word to settle UNLOCKED; if
    /// the lock's holder died mid-operation that never happens, and without
    /// this check a *reader* would spin forever on a chunk orphaned by a
    /// writer's panic.
    pub(crate) fn certify_poison_check(&mut self, ch: u32) {
        self.stats.certify_retries += 1;
        self.note_wait(ch);
        // Tell the model checker (if one is driving this thread) that we are
        // spinning on this chunk's lock word: exploration deprioritizes and
        // never branches into a waiting thread, so bounded-exhaustive search
        // does not enumerate futile spin permutations.
        gfsl_gpu_mem::schedule::wait_hint(
            self.list.chunk(ch).entry_addr(self.list.team.lock_lane()),
        );
        if let Some(report) = self.list.poison_report() {
            panic!("read certification on chunk {ch} aborted: structure poisoned ({report})");
        }
        std::hint::spin_loop();
    }

    /// Containment-mode wait accounting, called at every retry of every
    /// wait point (lock backoff, snapshot certification). Raises a *clean*
    /// [`AbortSignal`] — caught by [`Self::contained`] — when the wait
    /// targets a quarantined chunk or the op's retry/deadline budget is
    /// spent. Every wait point in the protocol occurs while each held chunk
    /// is individually consistent (waits happen before a chunk's mutation
    /// starts or after it fully completes; the shift/copy loops themselves
    /// never wait), which is what entitles the catch site to blanket-release
    /// the held locks.
    #[inline]
    fn note_wait(&mut self, ch: u32) {
        if !self.list.params.contain {
            return;
        }
        self.op_waits += 1;
        let budget = self.list.params.retry_budget;
        if budget > 0 && self.op_waits > budget {
            std::panic::panic_any(AbortSignal { reason: AbortReason::RetryBudget, chunk: ch });
        }
        if self.op_waits < 4 || self.op_waits.is_multiple_of(16) {
            if self.list.is_quarantined(ch) {
                std::panic::panic_any(AbortSignal { reason: AbortReason::Quarantined, chunk: ch });
            }
            if let Some(d) = self.op_deadline {
                if std::time::Instant::now() >= d {
                    std::panic::panic_any(AbortSignal { reason: AbortReason::Deadline, chunk: ch });
                }
            }
        }
    }

    fn lock_backoff(&mut self, spins: &mut u32, ch: u32) {
        *spins += 1;
        let n = *spins;
        self.note_wait(ch);
        // Spin-wait advisory for the model checker (see certify_poison_check).
        gfsl_gpu_mem::schedule::wait_hint(
            self.list.chunk(ch).entry_addr(self.list.team.lock_lane()),
        );
        if n.is_multiple_of(64) {
            if let Some(report) = self.list.poison_report() {
                panic!("lock wait on chunk {ch} aborted: structure poisoned ({report})");
            }
        }
        if n == STARVATION_RETRIES {
            self.stats.lock_starvation_events += 1;
        }
        assert!(
            n < LOCK_RETRY_BOUND,
            "lock acquisition on chunk {ch} exceeded {LOCK_RETRY_BOUND} retries: \
             the holder is likely dead (undetected) or the protocol deadlocked"
        );
        if n < 7 {
            for _ in 0..(1u32 << n) {
                std::hint::spin_loop();
            }
        } else {
            self.stats.lock_backoff_yields += 1;
            std::thread::yield_now();
        }
    }

    /// Allocate a fresh chunk: all data entries EMPTY, `max = ∞`,
    /// `next = NIL`, **locked** (paper §4.1: "all chunks are allocated
    /// locked"). Recycled zombie chunks are consumed before the pool's bump
    /// pointer moves, which is what bounds the memory high-water mark under
    /// churn.
    pub(crate) fn alloc_chunk(&mut self) -> Result<u32, Error> {
        let lanes = self.list.params.lanes() as u32;
        if let Some(idx) = self.list.reclaim.as_ref().and_then(|r| r.try_alloc()) {
            return Ok(self.reinit_chunk(idx, true));
        }
        let base = self
            .list
            .pool
            .alloc(lanes, lanes)
            .map_err(Error::PoolExhausted)?;
        Ok(self.reinit_chunk(base / lanes, false))
    }

    /// Write a fresh-chunk image (EMPTY data, `(∞, NIL)` next, locked) over
    /// chunk `idx`. For a recycled chunk the lock word *continues the dead
    /// incarnation's version sequence* instead of restarting at zero: hint
    /// validation distinguishes incarnations purely by lock-word equality,
    /// which only works if a chunk's versions are monotonic across its
    /// lifetimes.
    fn reinit_chunk(&mut self, idx: u32, recycled: bool) -> u32 {
        let ch = self.list.chunk(idx);
        let team = &self.list.team;
        let pool = &self.list.pool;
        // Mvcc: a long-lived ticket may still resolve this chunk's *old*
        // incarnation through an image's next pointer (ticket pins outlive
        // reclaimer grace). Before the lanes are overwritten, push the dead
        // incarnation's terminal zombie state onto the chain so those walks
        // keep seeing it; for a bump-fresh chunk there is no prior state
        // and the mark merely keeps this stamp epoch's later lock
        // acquisitions from capturing the half-built chunk.
        if let Some(mvcc) = self.list.mvcc.as_deref() {
            let tag = if self.held.stamp != 0 {
                self.held.stamp
            } else {
                mvcc.clock_now() + 1
            };
            if recycled && mvcc.wants_capture(idx, tag) {
                let img: Vec<u64> = (0..team.lanes())
                    .map(|i| pool.read(ch.entry_addr(i)))
                    .collect();
                mvcc.capture(idx, tag, img);
            } else {
                mvcc.mark_created(idx, tag);
            }
        }
        let mut addrs = [0u32; gfsl_simt::WARP_SIZE];
        for (i, a) in addrs.iter_mut().enumerate().take(team.lanes()) {
            *a = ch.entry_addr(i);
        }
        self.probe.warp_write(&addrs[..team.lanes()]);
        for i in 0..team.dsize() {
            pool.write(ch.entry_addr(i), Entry::EMPTY.0);
        }
        pool.write(ch.entry_addr(team.next_lane()), Entry::new(KEY_INF, NIL).0);
        let lock = if recycled {
            let old = pool.read(ch.entry_addr(team.lock_lane()));
            debug_assert_eq!(
                crate::chunk::lock_state(old),
                crate::chunk::LOCK_ZOMBIE,
                "recycled chunk {idx} was not a zombie"
            );
            (old & !crate::chunk::LOCK_STATE_MASK).wrapping_add(crate::chunk::LOCK_VERSION_UNIT)
                | crate::chunk::LOCK_LOCKED
        } else {
            crate::chunk::LOCK_LOCKED
        };
        pool.write(ch.entry_addr(team.lock_lane()), lock);
        self.held.acquired(idx);
        idx
    }

    /// Hand an unlinked zombie run to the reclaimer: every chunk on the
    /// frozen next-chain from `from` (inclusive) to `until` (exclusive).
    /// The caller must be the run's unique unlinker (it holds the lock or
    /// won the CAS that made the run unreachable). Chain reads go straight
    /// to the pool — reclamation bookkeeping is not algorithmic memory
    /// traffic, so it stays out of the probe stream.
    pub(crate) fn retire_run(&mut self, from: u32, until: u32, level: usize) {
        let Some(rec) = self.list.reclaim.as_ref() else {
            return;
        };
        let team = &self.list.team;
        let pool = &self.list.pool;
        let mut cur = from;
        while cur != until && cur != NIL {
            let ch = self.list.chunk(cur);
            debug_assert_eq!(
                crate::chunk::lock_state(pool.read(ch.entry_addr(team.lock_lane()))),
                crate::chunk::LOCK_ZOMBIE,
                "retiring non-zombie chunk {cur}"
            );
            rec.retire(cur, level as u8);
            cur = Entry(pool.read(ch.entry_addr(team.next_lane()))).val();
        }
    }

    /// Periodic reclamation driver, called from the update entry points
    /// (never while holding chunk locks — the verification scan performs
    /// certified reads, which may wait on lock holders).
    pub(crate) fn maybe_reclaim(&mut self) {
        if self.list.reclaim.is_none() {
            return;
        }
        self.reclaim_tick = self.reclaim_tick.wrapping_add(1);
        if self.reclaim_tick.is_multiple_of(RECLAIM_PERIOD) {
            self.reclaim_pass();
        }
    }

    /// Run one full reclamation pass now: move verified chunks whose second
    /// grace period elapsed to the free list, then drain newly grace-passed
    /// retired candidates and verify them. Returns the number of chunks
    /// that reached the free list. No-op (0) when reclamation is disabled.
    ///
    /// Must not be called while holding chunk locks (see
    /// [`Self::maybe_reclaim`]); public operations call it automatically,
    /// tests and maintenance loops may call it directly.
    pub fn reclaim_pass(&mut self) -> usize {
        if self.list.reclaim.is_none() {
            self.vacuum_versions();
            return 0;
        }
        self.sweep_head_edge();
        let freed = self.list.reclaim.as_ref().unwrap().harvest_verified();
        let mut cands = Vec::new();
        self.list
            .reclaim
            .as_ref()
            .unwrap()
            .drain_candidates(&mut cands);
        if !cands.is_empty() {
            self.with_pin(|h| h.verify_candidates(cands));
        }
        self.vacuum_versions();
        freed
    }

    /// Vacuum the mvcc version chains (no-op without the knob). The vacuum
    /// must run with the version fence held so no ticket can be minted
    /// mid-pass: a stamped caller (the periodic pass inside an update)
    /// already holds it shared via `with_version_stamp`; direct callers
    /// (tests, maintenance loops) acquire it here.
    fn vacuum_versions(&mut self) {
        let Some(mvcc) = self.list.mvcc.as_deref() else {
            return;
        };
        if self.held.stamp != 0 {
            mvcc.vacuum_locked(self.list.reclaim.as_ref());
        } else {
            let _fence = mvcc.writer_fence();
            mvcc.vacuum_locked(self.list.reclaim.as_ref());
        }
    }

    /// Unlink zombie runs parked at the head edge of every level.
    ///
    /// Traversal unlinks are lazy: a run is swung past when a walk
    /// lateral-steps onto it with a known predecessor
    /// (`redirect_past_zombies`) or when `lock_next_chunk` skips it. A run
    /// sitting directly behind a level's first chunk is invisible to both —
    /// no traversal ever lateral-steps *from* a sentinel, and merges repair
    /// parent down pointers to land past the run. Monotone workloads
    /// (sliding windows, FIFO churn) retire chunks exclusively at that left
    /// edge, so without this sweep they would never be retired at all. The
    /// sweep reuses the traversal protocol: best-effort try-lock on the
    /// first live chunk, re-verify, single-word pointer swing, retire.
    fn sweep_head_edge(&mut self) {
        let team = self.list.team;
        for level in 0..self.list.params.max_levels() {
            // A zombified first chunk: swing the head-array pointer itself.
            loop {
                let head = self.list.head_of(level);
                let view = self.read_chunk(head);
                if !view.is_zombie(&team) {
                    break;
                }
                let Some((nz, _)) = self.first_non_zombie(view) else {
                    break;
                };
                self.update_head(level, head, nz);
                // A failed CAS means a racer swung it first; re-check.
            }
            // A zombie run right behind the first live chunk.
            let head = self.list.head_of(level);
            let view = self.read_chunk(head);
            if view.is_zombie(&team) {
                continue; // raced a fresh head merge; next pass gets it
            }
            let next = view.next(&team);
            if next == NIL {
                continue;
            }
            let nview = self.read_chunk(next);
            if !nview.is_zombie(&team) {
                continue;
            }
            if let Some((nz, _)) = self.first_non_zombie(nview) {
                self.redirect_past_zombies(head, next, nz, level);
            }
        }
    }

    /// Decide each grace-passed candidate's fate: stage it for the free
    /// list if nothing can still lead a reader to it, otherwise requeue it
    /// for a later pass.
    ///
    /// A reader can only *acquire* a pointer to an unlinked zombie from
    /// (a) a stale down-pointer still sitting in the live chain one level
    /// up (installed by a repairer that obtained the chunk before it was
    /// retired — any such repairer was pinned before the retire, so after
    /// the first grace period the scan sees the final set of installs, and
    /// no new ones can appear), (b) the frozen next pointer of another
    /// zombie that is itself still awaiting reclamation (a reader parked
    /// there steps through it), or (c) the head array (defensive — heads
    /// are CASed away before retirement). Candidates clean on all three
    /// are *staged*, not freed: a reader may have copied a stale pointer
    /// into a register just before its source was repaired, so the chunk
    /// waits out one more grace period (covering every pin live at scan
    /// time) before `alloc_chunk` may reuse it.
    fn verify_candidates(&mut self, cands: Vec<(u32, u8)>) {
        let list = self.list;
        let rec = list.reclaim.as_ref().unwrap();
        let team = list.team;
        let mut referenced = std::collections::HashSet::new();
        // (a) data entries (down-pointers) in the live chain of each
        // candidate's parent level.
        let mut parent_levels: Vec<usize> = cands.iter().map(|&(_, l)| l as usize + 1).collect();
        parent_levels.sort_unstable();
        parent_levels.dedup();
        for &pl in &parent_levels {
            if pl >= list.params.max_levels() {
                continue;
            }
            let mut cur = list.head_of(pl);
            loop {
                let view = self.read_chunk_certified(cur);
                if !view.is_zombie(&team) {
                    for (_, e) in view.live_entries(&team) {
                        referenced.insert(e.val());
                    }
                }
                let next = view.next(&team);
                if next == NIL {
                    break;
                }
                cur = next;
            }
        }
        // (b) frozen next pointers of everything still awaiting reclamation
        // *outside* this batch (pending retirees and staged chunks).
        // References between batch members are handled by the run fixpoint
        // below instead of blocking verification outright.
        let next_of = |z: u32| {
            let ch = list.chunk(z);
            Entry(list.pool.read(ch.entry_addr(team.next_lane()))).val()
        };
        let in_batch: std::collections::HashSet<u32> = cands.iter().map(|&(c, _)| c).collect();
        let mut pending = Vec::new();
        rec.pending_chunks(&mut pending);
        for &z in &pending {
            if !in_batch.contains(&z) {
                referenced.insert(next_of(z));
            }
        }
        // (c) the head array.
        for lvl in 0..list.params.max_levels() {
            referenced.insert(list.head_of(lvl));
        }
        // Whole-run staging fixpoint. A retired run Z1 → Z2 → … → Zk is
        // chained by its own frozen next pointers; treating those as live
        // references would drain one chunk per grace period and lose the
        // race against steady churn. Instead, stage the largest subset `S`
        // of the batch in which every member is unreferenced by live memory
        // AND by batch members outside `S`: a reader can only be inside an
        // externally-unreferenced run if it was pinned before this scan, so
        // the single staging grace shared by the whole run covers it, and
        // after that grace no pointer into the run exists anywhere.
        let mut staged: std::collections::HashSet<u32> = cands
            .iter()
            .map(|&(c, _)| c)
            .filter(|c| !referenced.contains(c))
            .collect();
        loop {
            let blocked: std::collections::HashSet<u32> = cands
                .iter()
                .filter(|&&(z, _)| !staged.contains(&z))
                .map(|&(z, _)| next_of(z))
                .collect();
            let before = staged.len();
            staged.retain(|c| !blocked.contains(c));
            if staged.len() == before {
                break;
            }
        }
        for (c, lvl) in cands {
            if staged.contains(&c) {
                rec.stage_verified(c);
            } else {
                rec.requeue(c, lvl);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_list_has_sentinel_per_level() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        assert_eq!(list.chunks_allocated(), 32, "one sentinel per level");
        assert_eq!(list.height(), 0);
        let mut h = list.handle();
        // Bottom sentinel: -inf at entry 0, rest empty, max = inf, next NIL.
        let head0 = list.head_of(0);
        let v = h.read_chunk(head0);
        let team = list.team;
        assert_eq!(v.entry(0).key(), KEY_NEG_INF);
        assert!(v.entry(1).is_empty());
        assert_eq!(v.max(&team), KEY_INF);
        assert_eq!(v.next(&team), NIL);
        assert!(!v.is_zombie(&team));
        // Upper sentinel points down to the one below.
        let head1 = list.head_of(1);
        let v1 = h.read_chunk(head1);
        assert_eq!(v1.entry(0).val(), head0);
    }

    #[test]
    fn handles_get_distinct_rng_streams() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        let mut a = list.handle();
        let mut b = list.handle();
        assert_ne!(a.rng.next_u64(), b.rng.next_u64());
    }

    #[test]
    fn alloc_chunk_is_locked_and_empty() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        let mut h = list.handle();
        let c = h.alloc_chunk().unwrap();
        let v = h.read_chunk(c);
        let team = list.team;
        assert!(v.is_locked(&team));
        assert_eq!(v.num_keys(&team), 0);
        assert_eq!(v.max(&team), KEY_INF);
        assert_eq!(v.next(&team), NIL);
    }

    #[test]
    fn pool_exhaustion_is_reported() {
        let params = GfslParams {
            pool_chunks: 33,
            ..Default::default()
        };
        let list = Gfsl::new(params).unwrap();
        let mut h = list.handle();
        assert!(h.alloc_chunk().is_ok());
        match h.alloc_chunk() {
            Err(Error::PoolExhausted(_)) => {}
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn level_counters_saturate_at_zero() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        list.dec_level_chunks(3);
        assert_eq!(list.level_chunk_count(3), 0);
        list.inc_level_chunks(3);
        assert_eq!(list.level_chunk_count(3), 1);
        assert_eq!(list.height(), 3);
        list.dec_level_chunks(3);
        assert_eq!(list.height(), 0);
    }

    #[test]
    fn find_and_lock_enclosing_locks_sentinel_for_any_key() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        let mut h = list.handle();
        let head0 = list.head_of(0);
        let (locked, _) = h.find_and_lock_enclosing(head0, 500);
        assert_eq!(locked, head0, "sentinel has max = inf, encloses everything");
        let v = h.read_chunk(locked);
        assert!(v.is_locked(&list.team));
        h.unlock(locked);
    }

    #[test]
    fn lock_next_chunk_of_last_is_none() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        let mut h = list.handle();
        let head0 = list.head_of(0);
        let (locked, _) = h.find_and_lock_enclosing(head0, 5);
        assert_eq!(h.lock_next_chunk(locked, 0), None);
        h.unlock(locked);
    }
}
