//! Targeted races against the lock-free reader guarantees of §4.3:
//! readers must stay correct while chunks split, merge, and shift under
//! them. These tests concentrate updates on tiny regions so the racy
//! windows (publish-then-clear during splits, right-to-left shift during
//! inserts, left-to-right shift during removes, merge copies) are hit many
//! times per second even on one core.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use gfsl::{Gfsl, GfslParams, TeamSize};

/// Run seed: `GFSL_TEST_SEED` if set, else 0 (which leaves every RNG at its
/// historical constant). Printed so the harness shows it when a test fails;
/// re-run with `GFSL_TEST_SEED=<seed> cargo test` to replay.
fn test_seed() -> u64 {
    let seed = std::env::var("GFSL_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    eprintln!("GFSL_TEST_SEED={seed} (set this env var to replay)");
    seed
}

/// Fold the run seed into an RNG's base state, keeping xorshift state
/// nonzero.
fn mix(base: u64, seed: u64) -> u64 {
    match base ^ seed {
        0 => 0x9E37_79B9_7F4A_7C15,
        x => x,
    }
}

/// Keys that are never removed must be visible to every read, at all times,
/// while neighbouring keys churn hard enough to split/merge their chunks
/// constantly.
#[test]
fn anchored_keys_never_flicker() {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 16,
        ..Default::default()
    })
    .unwrap();
    // Anchors: every 10th key in a small space.
    let anchors: Vec<u32> = (1..=30).map(|i| i * 10).collect();
    {
        let mut h = list.handle();
        for &a in &anchors {
            h.insert(a, a * 7).unwrap();
        }
    }
    let seed = test_seed();
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        let list_ref = &list;
        let stop_ref = &stop;
        let anchors_ref = &anchors;
        let reads_ref = &reads;
        // Churners: insert/remove filler keys adjacent to the anchors so
        // the anchors' chunks split and merge repeatedly.
        for t in 0..2u64 {
            s.spawn(move || {
                let mut h = list_ref.handle();
                let mut x = mix(0x1111_2222 + t, seed);
                for _ in 0..25_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let base = ((x % 30 + 1) * 10) as u32;
                    let filler = base + 1 + ((x >> 32) % 8) as u32; // 10x+1..10x+8
                    if (x >> 45).is_multiple_of(2) {
                        let _ = h.insert(filler, 1).unwrap();
                    } else {
                        let _ = h.remove(filler);
                    }
                }
                stop_ref.store(true, Ordering::Release);
            });
        }
        // Readers: anchors must be found on EVERY probe, with intact values.
        for t in 0..2u64 {
            s.spawn(move || {
                let mut h = list_ref.handle();
                let mut i = t as usize;
                let mut n = 0u64;
                while !stop_ref.load(Ordering::Acquire) {
                    let a = anchors_ref[i % anchors_ref.len()];
                    i += 1;
                    n += 1;
                    match h.get(a) {
                        Some(v) => assert_eq!(v, a * 7, "anchor {a} value torn"),
                        None => panic!("anchor {a} vanished during churn (read {n})"),
                    }
                }
                reads_ref.fetch_add(n, Ordering::Relaxed);
            });
        }
    });
    assert!(reads.load(Ordering::Relaxed) > 1_000, "readers actually ran");
    list.assert_valid();
    let mut h = list.handle();
    for &a in &anchors {
        assert_eq!(h.get(a), Some(a * 7));
    }
}

/// Range scans racing heavy churn: scans must never yield out-of-order or
/// duplicate keys, and anchors must always be present in covering scans.
#[test]
fn range_scans_stay_ordered_under_churn() {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 16,
        ..Default::default()
    })
    .unwrap();
    let anchors: Vec<u32> = (1..=20).map(|i| i * 50).collect(); // 50,100,...,1000
    {
        let mut h = list.handle();
        for &a in &anchors {
            h.insert(a, a).unwrap();
        }
    }
    let seed = test_seed();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let list_ref = &list;
        let stop_ref = &stop;
        let anchors_ref = &anchors;
        s.spawn(move || {
            let mut h = list_ref.handle();
            let mut x = mix(0xF00D, seed);
            for _ in 0..40_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let k = (x % 1_000) as u32 + 1;
                if k.is_multiple_of(50) {
                    continue; // never touch anchors
                }
                if (x >> 40).is_multiple_of(2) {
                    let _ = h.insert(k, k).unwrap();
                } else {
                    let _ = h.remove(k);
                }
            }
            stop_ref.store(true, Ordering::Release);
        });
        s.spawn(move || {
            let mut h = list_ref.handle();
            while !stop_ref.load(Ordering::Acquire) {
                let got = h.range(1, 1_100);
                assert!(
                    got.windows(2).all(|w| w[0].0 < w[1].0),
                    "scan out of order or duplicated: {got:?}"
                );
                let keys: std::collections::HashSet<u32> =
                    got.iter().map(|&(k, _)| k).collect();
                for &a in anchors_ref {
                    assert!(keys.contains(&a), "anchor {a} missing from covering scan");
                }
            }
        });
    });
    list.assert_valid();
}

/// min_entry racing deletions of the minimum: it must always return either
/// a current minimum candidate or None, never a key that was never present.
#[test]
fn min_entry_under_min_deletion_churn() {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 16,
        ..Default::default()
    })
    .unwrap();
    {
        let mut h = list.handle();
        for k in 1..=2_000u32 {
            h.insert(k, k + 1).unwrap();
        }
    }
    std::thread::scope(|s| {
        let list_ref = &list;
        s.spawn(move || {
            let mut h = list_ref.handle();
            for k in 1..=1_800u32 {
                assert!(h.remove(k));
            }
        });
        s.spawn(move || {
            let mut h = list_ref.handle();
            let mut last_seen = 0u32;
            for _ in 0..20_000 {
                if let Some((k, v)) = h.min_entry() {
                    assert!((1..=2_000).contains(&k));
                    assert_eq!(v, k + 1, "value of min {k}");
                    // The minimum can only move right over time (deletions
                    // from the left, no inserts), modulo transient lag one
                    // chunk behind; allow equality and forward movement.
                    assert!(
                        k + 50 >= last_seen,
                        "minimum moved sharply backwards: {last_seen} -> {k}"
                    );
                    last_seen = last_seen.max(k);
                }
            }
        });
    });
    assert_eq!(list.len(), 200);
    list.assert_valid();
}
