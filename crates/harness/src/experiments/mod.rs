//! One module per paper artifact; see the crate docs for the index.

pub mod ablate;
pub mod churn_diag;
pub mod cluster;
pub mod cyclesim;
pub mod diag;
pub mod durable;
pub mod edge;
pub mod figures;
pub mod hotpath;
pub mod mvcc;
pub mod pkey;
pub mod serve;
pub mod table_warps;

use std::path::PathBuf;

use crate::report::Table;

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Quick mode: smaller ranges and op counts (CI-friendly); full mode
    /// approaches the paper's scales.
    pub quick: bool,
    /// Host worker threads.
    pub workers: usize,
    /// Where to drop CSV artifacts (`None` = print only).
    pub out_dir: Option<PathBuf>,
    /// Master seed.
    pub seed: u64,
    /// Override the sweep ranges (tests use tiny ones).
    pub ranges_override: Option<Vec<u32>>,
    /// Override the anchor range (tests use a tiny one).
    pub anchor_override: Option<u32>,
    /// Override the timed op count.
    pub ops_override: Option<usize>,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            quick: true,
            workers: 4,
            out_dir: None,
            seed: 0x6F5_CA1E,
            ranges_override: None,
            anchor_override: None,
            ops_override: None,
        }
    }
}

impl ExpConfig {
    /// Timed operations for mixed/contains benchmarks (paper: 10M).
    pub fn mixed_ops(&self) -> usize {
        if let Some(n) = self.ops_override {
            return n;
        }
        if self.quick {
            60_000
        } else {
            1_000_000
        }
    }

    /// A minimal configuration for integration tests.
    pub fn tiny(workers: usize) -> ExpConfig {
        ExpConfig {
            quick: true,
            workers,
            out_dir: None,
            seed: 0xACE,
            ranges_override: Some(vec![2_000, 10_000]),
            anchor_override: Some(10_000),
            ops_override: Some(8_000),
        }
    }

    /// Key ranges for the range sweeps (paper: 10K..100M).
    pub fn ranges(&self) -> Vec<u32> {
        if let Some(r) = &self.ranges_override {
            return r.clone();
        }
        if self.quick {
            vec![10_000, 30_000, 100_000, 300_000, 1_000_000]
        } else {
            vec![
                10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000,
            ]
        }
    }

    /// Largest range at which M&C is measured (the paper's M&C runs out of
    /// memory beyond 10M mixed / 3M single-op; we additionally cap the
    /// host-side cost in quick mode).
    pub fn mc_range_cap(&self) -> u32 {
        if self.quick {
            1_000_000
        } else {
            10_000_000
        }
    }

    /// The anchor range for the static-configuration tables (paper: 1M).
    /// Used at full size even in quick mode: the Table 5.1/5.2 throughput
    /// rows are only meaningful when memory (and its spill share) binds.
    pub fn anchor_range(&self) -> u32 {
        self.anchor_override.unwrap_or(1_000_000)
    }
}

/// Names of all experiments, in run order.
pub const ALL: &[&str] = &[
    "table5_1", "table5_2", "fig5_1", "fig5_2", "fig5_3", "fig5_4", "pkey", "ablate", "cyclesim",
    "diag", "serve", "hotpath", "churn_diag", "cluster", "durable", "edge", "mvcc",
];

/// Run one experiment by id, returning its rendered tables.
pub fn run(id: &str, cfg: &ExpConfig) -> Vec<Table> {
    match id {
        "table5_1" => table_warps::table5_1(cfg),
        "table5_2" => table_warps::table5_2(cfg),
        "fig5_1" => figures::fig5_1(cfg),
        "fig5_2" => figures::fig5_2(cfg),
        "fig5_3" => figures::fig5_3(cfg),
        "fig5_4" => figures::fig5_4(cfg),
        "pkey" => pkey::run(cfg),
        "ablate" => ablate::run(cfg),
        "cyclesim" => cyclesim::run(cfg),
        "diag" => diag::run(cfg),
        "serve" => serve::run(cfg),
        "hotpath" => hotpath::run(cfg),
        "churn_diag" => churn_diag::run(cfg),
        "cluster" => cluster::run(cfg),
        "durable" => durable::run(cfg),
        "edge" => edge::run(cfg),
        "mvcc" => mvcc::run(cfg),
        other => panic!("unknown experiment '{other}'; known: {ALL:?}"),
    }
}

/// Emit one experiment's tables: print, and optionally write per-table
/// CSVs plus one machine-readable `BENCH_<id>.json` rollup.
pub fn emit(id: &str, tables: &[Table], cfg: &ExpConfig) {
    for t in tables {
        println!("{}", t.render());
        if let Some(dir) = &cfg.out_dir {
            match t.write_csv(dir) {
                Ok(p) => println!("   -> {}", p.display()),
                Err(e) => eprintln!("   !! csv write failed: {e}"),
            }
        }
    }
    if let Some(dir) = &cfg.out_dir {
        match crate::report::write_bench_json(dir, id, tables) {
            Ok(p) => println!("   -> {}", p.display()),
            Err(e) => eprintln!("   !! bench json write failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_and_full_scales_differ() {
        let quick = ExpConfig::default();
        let full = ExpConfig {
            quick: false,
            ..Default::default()
        };
        assert!(quick.mixed_ops() < full.mixed_ops());
        assert!(quick.ranges().len() < full.ranges().len());
        assert!(quick.mc_range_cap() < full.mc_range_cap());
        assert_eq!(full.ranges().last(), Some(&10_000_000));
        assert_eq!(quick.anchor_range(), full.anchor_range(), "anchor fixed at 1M");
    }

    #[test]
    fn tiny_config_overrides_everything() {
        let t = ExpConfig::tiny(3);
        assert_eq!(t.workers, 3);
        assert!(t.mixed_ops() <= 10_000);
        assert!(t.ranges().iter().all(|&r| r <= 10_000));
        assert!(t.anchor_range() <= 10_000);
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_experiment_panics() {
        let _ = run("fig9_9", &ExpConfig::tiny(1));
    }

    #[test]
    fn experiment_registry_is_complete() {
        assert_eq!(ALL.len(), 17);
        assert!(ALL.contains(&"table5_1"));
        assert!(ALL.contains(&"fig5_4"));
        assert!(ALL.contains(&"diag"));
        assert!(ALL.contains(&"serve"));
        assert!(ALL.contains(&"hotpath"));
        assert!(ALL.contains(&"churn_diag"));
        assert!(ALL.contains(&"cluster"));
        assert!(ALL.contains(&"durable"));
        assert!(ALL.contains(&"edge"));
        assert!(ALL.contains(&"mvcc"));
    }
}
