//! Scheduled-atomic instrumentation: the model checker's view of memory.
//!
//! The chaos layer (PR 1) intercepts *logical* accesses through [`MemProbe`]
//! — one probe event per warp read, per lane write, per lock CAS. That is
//! the right granularity for fault injection, but a schedule-*exploring*
//! checker needs to interleave at the granularity the hardware does: every
//! individual atomic word access. This module provides that layer:
//!
//! * [`ScheduledAtomicU64`] — a `#[repr(transparent)]` wrapper over
//!   `AtomicU64` whose operations take the word's *logical* pool address.
//!   In normal builds every method is a zero-cost passthrough. With the
//!   `sched` cargo feature each load/store/CAS/fetch-op first consults a
//!   thread-local [`SchedHook`], turning the access into a numbered yield
//!   point that reports its [`AccessKind`] and address to a controller.
//! * [`SchedHook`] — the controller-side trait. A hook decides *when* the
//!   calling thread proceeds (typically by parking it in a turnstile until
//!   granted a turn) and records the access for trace hashing and
//!   partial-order reduction.
//! * [`register`] / [`yield_point`] / [`wait_hint`] / [`hooked`] — the
//!   thread-local registry. Registration returns a guard so a panicking
//!   worker (chaos panic injection!) unregisters on unwind instead of
//!   leaving a dangling hook in a pooled thread.
//!
//! Addresses are logical [`WordAddr`] indexes, never host pointers: pointer
//! identity varies run-to-run under ASLR and would break the bit-identical
//! trace hashes the replay machinery depends on. Structures that do not
//! live in the word pool (e.g. the flat engine's leaf mutexes) participate
//! by minting stable synthetic addresses in a reserved high range.
//!
//! Why the hook is consulted through TLS rather than a field: the pool is
//! shared by every handle, but only *scheduled* threads should be gated —
//! the validation walk at quiescence and the test's own setup code must run
//! untouched. TLS gives exactly per-thread opt-in with no hot-path cost
//! when the feature is off (the check is not even compiled).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::layout::WordAddr;

/// True when this crate was built with the `sched` feature, i.e. when the
/// pool's word accesses are numbered yield points. Binaries that offer
/// model-check modes (e.g. `stress --modelcheck`) check this at startup so
/// a build without the feature fails fast with a rebuild hint instead of
/// panicking deep in episode-sanity guards.
pub const POOL_GATED: bool = cfg!(feature = "sched");

/// Synthetic address of the pool's bump allocator (`WordPool::next`).
///
/// The allocator counter is not itself a pool word, but concurrent `alloc`
/// calls are real lock-free interleavings worth exploring, so each CAS
/// attempt gates on this reserved address. The reserved range sits at the
/// very top of the 32-bit space, which no real pool can reach (capacity is
/// checked `< u32::MAX` and practical pools are orders of magnitude
/// smaller).
pub const SYNTH_ALLOC: WordAddr = 0xFFFF_FFFD;

/// Synthetic address of the mvcc version-clock fence (`RwLock<u64>`).
/// Writers take it shared to stamp their publish version; `pin_version`
/// takes it exclusive to mint a read ticket, draining in-flight writers so
/// the pinned version is operation-quiescent. Both sides gate every
/// acquisition attempt on this address so the model checker owns the
/// interleaving of stamp vs pin.
pub const SYNTH_MVCC_FENCE: WordAddr = 0xFFFF_FFFC;

/// Synthetic address of the flat engine's index `RwLock`.
pub const SYNTH_FLAT_INDEX: WordAddr = 0xFFFF_FFFE;

/// Base of the synthetic address range for flat-engine leaf mutexes: leaf
/// `id` gates on `SYNTH_FLAT_LEAF_BASE | id`.
pub const SYNTH_FLAT_LEAF_BASE: WordAddr = 0xF000_0000;

/// What kind of memory access a yield point guards.
///
/// The partial-order-reduction rule keys on this: two accesses are
/// *independent* (their order cannot matter) iff they touch different
/// addresses or are both plain loads. Stores and read-modify-writes
/// conflict with everything else at the same address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An atomic load.
    Load,
    /// An atomic store.
    Store,
    /// An atomic read-modify-write (CAS, fetch-add, swap, ...).
    Rmw,
}

impl AccessKind {
    /// True if two accesses of these kinds to the *same* address commute.
    #[inline]
    pub fn independent_with(self, other: AccessKind) -> bool {
        self == AccessKind::Load && other == AccessKind::Load
    }

    /// Stable event code for trace hashing (disjoint from the chaos layer's
    /// 0..=9 access codes and 16.. crash-point codes).
    #[inline]
    pub fn code(self) -> u16 {
        match self {
            AccessKind::Load => 32,
            AccessKind::Store => 33,
            AccessKind::Rmw => 34,
        }
    }
}

/// Controller-side interface for scheduled threads.
///
/// `yield_point` blocks until the controller grants the calling thread the
/// right to perform the access it describes. `wait_hint` is advisory: the
/// calling thread is spinning on `addr` (a lock word held by a peer) and
/// scheduling it again before that word changes is pointless — exploration
/// strategies use this to avoid enumerating futile spin permutations, and
/// the liveness watchdog uses it to distinguish a livelocked schedule from
/// a genuinely stuck one.
pub trait SchedHook: Send + Sync {
    /// Block until this thread may perform the described access.
    fn yield_point(&self, kind: AccessKind, addr: WordAddr);
    /// Advise the controller this thread is spinning on `addr`.
    fn wait_hint(&self, addr: WordAddr);
}

thread_local! {
    static HOOK: RefCell<Option<Arc<dyn SchedHook>>> = const { RefCell::new(None) };
}

/// Unregisters the thread's hook on drop (including panic unwind).
///
/// Must not be mem::forgotten across thread reuse: a pooled thread with a
/// stale hook would gate unrelated work through a finished controller.
#[must_use = "dropping the guard immediately would unregister the hook"]
pub struct HookGuard {
    _private: (),
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        HOOK.with(|h| *h.borrow_mut() = None);
    }
}

/// Register `hook` as the calling thread's scheduler for the lifetime of
/// the returned guard. Nested registration is a bug (the outer hook would
/// be silently dropped), so it panics.
pub fn register(hook: Arc<dyn SchedHook>) -> HookGuard {
    HOOK.with(|h| {
        let mut slot = h.borrow_mut();
        assert!(
            slot.is_none(),
            "schedule::register: thread already has a hook registered"
        );
        *slot = Some(hook);
    });
    HookGuard { _private: () }
}

/// True if the calling thread currently has a hook registered.
#[inline]
pub fn hooked() -> bool {
    HOOK.with(|h| h.borrow().is_some())
}

/// Report a yield point to the calling thread's hook, if any.
///
/// Always compiled (callers outside the pool — spin loops, the flat
/// engine's lock acquisitions — gate through this directly); without a
/// registered hook it is a branch on a TLS option.
#[inline]
pub fn yield_point(kind: AccessKind, addr: WordAddr) {
    if let Some(hook) = HOOK.with(|h| h.borrow().clone()) {
        hook.yield_point(kind, addr);
    }
}

/// Report a spin-wait on `addr` to the calling thread's hook, if any.
#[inline]
pub fn wait_hint(addr: WordAddr) {
    if let Some(hook) = HOOK.with(|h| h.borrow().clone()) {
        hook.wait_hint(addr);
    }
}

/// An `AtomicU64` whose operations are numbered yield points in `sched`
/// builds and zero-cost passthroughs otherwise.
///
/// Operations take the word's logical address explicitly — the wrapper is
/// `#[repr(transparent)]` so a slice of these has the exact memory layout
/// of a slice of `AtomicU64` (the pool's prefetch path relies on this),
/// which also means the word cannot carry its own address.
#[repr(transparent)]
#[derive(Debug, Default)]
pub struct ScheduledAtomicU64 {
    inner: AtomicU64,
}

impl ScheduledAtomicU64 {
    /// A new word holding `v`.
    #[inline]
    pub const fn new(v: u64) -> ScheduledAtomicU64 {
        ScheduledAtomicU64 {
            inner: AtomicU64::new(v),
        }
    }

    #[cfg(feature = "sched")]
    #[inline]
    fn gate(kind: AccessKind, addr: WordAddr) {
        yield_point(kind, addr);
    }

    #[cfg(not(feature = "sched"))]
    #[inline(always)]
    fn gate(_kind: AccessKind, _addr: WordAddr) {}

    /// Atomic load of the word at logical address `addr`.
    #[inline]
    pub fn load(&self, addr: WordAddr, order: Ordering) -> u64 {
        Self::gate(AccessKind::Load, addr);
        self.inner.load(order)
    }

    /// Atomic store to the word at logical address `addr`.
    #[inline]
    pub fn store(&self, addr: WordAddr, value: u64, order: Ordering) {
        Self::gate(AccessKind::Store, addr);
        self.inner.store(value, order);
    }

    /// Atomic compare-exchange on the word at logical address `addr`.
    #[inline]
    pub fn compare_exchange(
        &self,
        addr: WordAddr,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        Self::gate(AccessKind::Rmw, addr);
        self.inner.compare_exchange(expected, new, success, failure)
    }

    /// Atomic weak compare-exchange on the word at logical address `addr`.
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        addr: WordAddr,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        Self::gate(AccessKind::Rmw, addr);
        self.inner
            .compare_exchange_weak(expected, new, success, failure)
    }

    /// Atomic fetch-add on the word at logical address `addr`.
    #[inline]
    pub fn fetch_add(&self, addr: WordAddr, value: u64, order: Ordering) -> u64 {
        Self::gate(AccessKind::Rmw, addr);
        self.inner.fetch_add(value, order)
    }

    /// Raw pointer to the underlying word (for prefetch hints only).
    #[inline]
    pub fn as_ptr(&self) -> *const u64 {
        self.inner.as_ptr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct RecordingHook {
        events: Mutex<Vec<(AccessKind, WordAddr)>>,
        waits: Mutex<Vec<WordAddr>>,
    }

    impl SchedHook for RecordingHook {
        fn yield_point(&self, kind: AccessKind, addr: WordAddr) {
            self.events.lock().unwrap().push((kind, addr));
        }
        fn wait_hint(&self, addr: WordAddr) {
            self.waits.lock().unwrap().push(addr);
        }
    }

    #[test]
    fn unhooked_thread_is_passthrough() {
        assert!(!hooked());
        let w = ScheduledAtomicU64::new(5);
        assert_eq!(w.load(3, Ordering::Acquire), 5);
        w.store(3, 9, Ordering::Release);
        assert_eq!(
            w.compare_exchange(3, 9, 12, Ordering::AcqRel, Ordering::Acquire),
            Ok(9)
        );
        yield_point(AccessKind::Load, 0); // no hook: must not panic
        wait_hint(0);
    }

    #[test]
    fn guard_unregisters_on_drop_and_unwind() {
        let hook = Arc::new(RecordingHook {
            events: Mutex::new(Vec::new()),
            waits: Mutex::new(Vec::new()),
        });
        {
            let _g = register(hook.clone());
            assert!(hooked());
        }
        assert!(!hooked());
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = register(hook.clone());
            panic!("boom");
        }));
        assert!(res.is_err());
        assert!(!hooked(), "unwind must unregister the hook");
    }

    #[test]
    fn nested_registration_panics() {
        let hook = Arc::new(RecordingHook {
            events: Mutex::new(Vec::new()),
            waits: Mutex::new(Vec::new()),
        });
        let _g = register(hook.clone());
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g2 = register(hook.clone());
        }));
        assert!(res.is_err());
    }

    #[cfg(feature = "sched")]
    #[test]
    fn sched_builds_report_kind_and_address() {
        let hook = Arc::new(RecordingHook {
            events: Mutex::new(Vec::new()),
            waits: Mutex::new(Vec::new()),
        });
        let _g = register(hook.clone());
        let w = ScheduledAtomicU64::new(1);
        w.load(10, Ordering::Acquire);
        w.store(11, 2, Ordering::Release);
        let _ = w.compare_exchange(12, 2, 3, Ordering::AcqRel, Ordering::Acquire);
        let _ = w.fetch_add(13, 1, Ordering::AcqRel);
        wait_hint(44);
        drop(_g);
        assert_eq!(
            *hook.events.lock().unwrap(),
            vec![
                (AccessKind::Load, 10),
                (AccessKind::Store, 11),
                (AccessKind::Rmw, 12),
                (AccessKind::Rmw, 13),
            ]
        );
        assert_eq!(*hook.waits.lock().unwrap(), vec![44]);
    }

    #[test]
    fn independence_rule() {
        assert!(AccessKind::Load.independent_with(AccessKind::Load));
        assert!(!AccessKind::Load.independent_with(AccessKind::Store));
        assert!(!AccessKind::Rmw.independent_with(AccessKind::Rmw));
        assert!(!AccessKind::Store.independent_with(AccessKind::Load));
    }
}
