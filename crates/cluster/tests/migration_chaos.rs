//! Migration-under-chaos soak: seeded splits, merges, and snapshots race
//! probed client operations while the chaos layer kills one operation at
//! every crash point in the lock protocol.
//!
//! A cell passes only if
//!
//! 1. no acknowledged write is lost and every crashed op either fully
//!    happened or not at all — the per-worker histories (crashed ops as
//!    `InsertMaybe` / `RemoveMaybe`, `WrongShard` redirects retried under
//!    the same invocation) stitch into one cluster history that
//!    linearizes;
//! 2. after the run every surviving shard passes the full validation walk,
//!    including the shard-range ownership rule, with an empty quarantine;
//! 3. snapshots taken mid-chaos are well-formed (strictly ascending).
//!
//! Worker probes are minted only after the shard fence is held (see
//! `Cluster::try_insert_with`): a turnstile participant must never block
//! on an OS lock while live, or grants stall against the migration driver.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

use gfsl::chaos::{ChaosController, ChaosOptions, LOCK_CRASH_POINTS};
use gfsl::history::{check_linearizable, HistoryClock, OpAction, Recorder};
use gfsl::{AbortReason, CrashPoint, Error, GfslParams, TeamSize};
use gfsl_cluster::{Cluster, ClusterError};
use gfsl_rng::SplitMix64;

const KEY_SPACE: u32 = 110;
const OPS_PER_WORKER: usize = 200;
const WORKERS: usize = 2;
const MAX_SHARDS: usize = 6;
/// Pause between driver actions: continuous export→rebuild cycles would
/// keep every chunk compacted to the bulk fill target and starve the
/// split/merge crash windows of pressure.
const DRIVER_PAUSE: std::time::Duration = std::time::Duration::from_micros(800);

/// Silence the default panic hook for *injected* unwinds only (same
/// convention as the single-structure recovery soak).
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.as_str()));
            let injected = match msg {
                Some(m) => m.starts_with("chaos: injected"),
                None => true, // typed AbortSignal payloads
            };
            if !injected {
                prev(info);
            }
        }));
    });
}

fn soak_seeds() -> u64 {
    std::env::var("GFSL_CLUSTER_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// One soak cell: two probed workers churn the key space while a
/// free-running driver splits, merges, and snapshots the shards, and the
/// chaos layer kills the seeded occurrence of `point`. Returns
/// `(crashed_ops, migrations)`.
fn soak_cell(point: CrashPoint, seed: u64) -> (u64, u64) {
    quiet_injected_panics();
    let params = GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        contain: true,
        retry_budget: 1 << 20,
        ..Default::default()
    };
    // One shard at full key density: the migration driver introduces (and
    // removes) the sharding mid-run, so early crash windows see the same
    // structure depth as the single-structure soak.
    let cluster = Cluster::with_bounds(params, &[]).unwrap();
    for k in (2..KEY_SPACE).step_by(2) {
        cluster.insert(k, k).unwrap();
    }
    let occurrence = 1 + seed % 3;
    let ctl = ChaosController::new(
        WORKERS,
        ChaosOptions {
            panic_at: Some((point, occurrence)),
            max_stall_turns: 1,
            seed: seed ^ 0x9D3C_5A1B_7E24_F680,
            ..Default::default()
        },
    );
    let clock = HistoryClock::new();
    let stop = AtomicBool::new(false);

    let (histories, migrations) = std::thread::scope(|s| {
        // Free-running migration driver: no probe, so the chaos turnstile
        // never waits on it. Splits are capped so the shard set stays small.
        let driver = s.spawn(|| {
            let mut rng = SplitMix64::new(seed.wrapping_mul(0xA5A5) ^ 0x11);
            let mut done = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let r = rng.next_u64();
                let key = (r % u64::from(KEY_SPACE) + 1) as u32;
                let id = cluster
                    .shards()
                    .iter()
                    .find(|sh| sh.owns(key))
                    .unwrap()
                    .id;
                let ev = match r >> 61 {
                    0..=2 if cluster.shard_count() < MAX_SHARDS => {
                        cluster.split_shard(id).expect("split must not fail")
                    }
                    3..=5 => cluster.merge_with_right(id).expect("merge must not fail"),
                    _ => {
                        let snap = cluster.snapshot();
                        assert!(
                            snap.pairs.windows(2).all(|w| w[0].0 < w[1].0),
                            "mid-chaos snapshot must be strictly ascending"
                        );
                        None
                    }
                };
                done += u64::from(ev.is_some());
                std::thread::sleep(DRIVER_PAUSE);
            }
            done
        });

        let workers: Vec<_> = (0..WORKERS)
            .map(|t| {
                let (cluster, ctl, clock) = (&cluster, &ctl, &clock);
                s.spawn(move || {
                    // Stay retired whenever not holding a probe: a live
                    // participant blocked on a fence would stall the
                    // turnstile (see module docs).
                    ctl.retire(t);
                    let mint = || {
                        let p = ctl.probe(t);
                        ctl.revive(t);
                        p
                    };
                    let mut rec = Recorder::new(clock);
                    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37) ^ t as u64);
                    for _ in 0..OPS_PER_WORKER {
                        let r = rng.next_u64();
                        let key = (r % u64::from(KEY_SPACE) + 1) as u32;
                        let value = (r >> 40) as u32 | 1;
                        let inv = rec.invoke();
                        match (r >> 32) % 5 {
                            0 | 1 => loop {
                                match cluster.try_insert_with(mint, key, value) {
                                    Ok(ok) => {
                                        rec.finish(key, OpAction::Insert { value, ok }, inv);
                                        break;
                                    }
                                    // The op never reached the structure:
                                    // same invocation, fresh route.
                                    Err(ClusterError::WrongShard { .. }) => continue,
                                    Err(ClusterError::Shard(Error::Aborted(a))) => {
                                        if a.reason == AbortReason::Crashed {
                                            rec.finish(
                                                key,
                                                OpAction::InsertMaybe { value },
                                                inv,
                                            );
                                        }
                                        break;
                                    }
                                    Err(e) => panic!("insert({key}): unexpected error {e}"),
                                }
                            },
                            2 | 3 => loop {
                                match cluster.try_remove_with(mint, key) {
                                    Ok(ok) => {
                                        rec.finish(key, OpAction::Remove { ok }, inv);
                                        break;
                                    }
                                    Err(ClusterError::WrongShard { .. }) => continue,
                                    Err(ClusterError::Shard(Error::Aborted(a))) => {
                                        if a.reason == AbortReason::Crashed {
                                            rec.finish(key, OpAction::RemoveMaybe, inv);
                                        }
                                        break;
                                    }
                                    Err(e) => panic!("remove({key}): unexpected error {e}"),
                                }
                            },
                            _ => loop {
                                match cluster.try_get_with(mint, key) {
                                    Ok(found) => {
                                        rec.finish(key, OpAction::Get { found }, inv);
                                        break;
                                    }
                                    Err(ClusterError::WrongShard { .. }) => continue,
                                    Err(ClusterError::Shard(Error::Aborted(a))) => {
                                        assert_ne!(
                                            a.reason,
                                            AbortReason::Crashed,
                                            "lock-free gets cannot crash"
                                        );
                                        break;
                                    }
                                    Err(e) => panic!("get({key}): unexpected error {e}"),
                                }
                            },
                        }
                    }
                    rec.records
                })
            })
            .collect();
        let histories: Vec<_> = workers
            .into_iter()
            .map(|w| w.join().expect("worker must survive (containment)"))
            .collect();
        stop.store(true, Ordering::Relaxed);
        (histories, driver.join().expect("driver must survive"))
    });

    // The injected panic fires unconditionally at the seeded occurrence,
    // so reaching it is proof of a contained crash — the workers joined
    // cleanly above. (Repair statistics undercount here: a migration's
    // pre-export quarantine drain absorbs crashed ops mid-run.)
    let fired = ctl
        .crash_point_hits()
        .into_iter()
        .find(|&(p, _)| p == point)
        .map(|(_, n)| n)
        .unwrap_or(0);
    let crashed = u64::from(fired >= occurrence);

    // Quiescence: drain every surviving shard's quarantine, then the full
    // validation walk (structure + shard-range ownership).
    for sh in cluster.shards() {
        let stats = sh.list.handle().repair_quarantine();
        assert_eq!(
            stats.quarantine_depth, 0,
            "[{point:?} seed {seed}] repair must drain shard {}",
            sh.id
        );
    }
    let bad = cluster.validate();
    assert!(
        bad.is_empty(),
        "[{point:?} seed {seed}] post-migration invariant violations: {bad:?}"
    );

    // Stitch the cluster history: per-key registers, so the per-worker
    // records merge directly; sequential reads on the same clock pin the
    // end state so an acknowledged-then-lost write cannot hide.
    let mut records: Vec<_> = histories.into_iter().flatten().collect();
    {
        let mut rec = Recorder::new(&clock);
        for key in 1..=KEY_SPACE {
            let inv = rec.invoke();
            let found = cluster
                .try_get(key)
                .expect("quiescent get cannot abort or redirect");
            rec.finish(key, OpAction::Get { found }, inv);
        }
        records.extend(rec.records);
    }
    let initial: HashMap<u32, u32> = (2..KEY_SPACE).step_by(2).map(|k| (k, k)).collect();
    if let Err(errors) = check_linearizable(&records, &initial) {
        panic!("[{point:?} seed {seed}] non-linearizable cluster history: {errors:?}");
    }

    (crashed, migrations)
}

#[test]
fn migration_chaos_every_crash_point() {
    let seeds = soak_seeds();
    let mut total_migrations = 0u64;
    for &point in LOCK_CRASH_POINTS.iter() {
        let mut crashes_for_point = 0u64;
        for seed in 0..seeds {
            let (crashed, migrations) = soak_cell(point, seed);
            crashes_for_point += crashed;
            total_migrations += migrations;
        }
        assert!(
            crashes_for_point > 0,
            "{point:?} never produced a contained crash in {seeds} seeds — \
             the soak is not exercising this window"
        );
    }
    assert!(
        total_migrations > 0,
        "the soak must actually race migrations against client ops"
    );
}
