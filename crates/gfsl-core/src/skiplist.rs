//! The GFSL structure and per-thread operation handles.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;

use gfsl_gpu_mem::{MemProbe, NoProbe, PoolExhausted, WordPool};
use gfsl_simt::Team;

use crate::chunk::{ops, ChunkRef, ChunkView, Entry, KEY_INF, KEY_NEG_INF, LOCK_UNLOCKED, NIL};
use crate::params::GfslParams;
use gfsl_rng::SplitMix64;
use crate::stats::OpStats;

/// Errors surfaced by updating operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The preallocated device pool ran out of chunks.
    PoolExhausted(PoolExhausted),
    /// The key collides with a reserved sentinel (`0` is `-∞`,
    /// `u32::MAX` is `∞`).
    InvalidKey(u32),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::PoolExhausted(e) => write!(f, "{e}"),
            Error::InvalidKey(k) => write!(f, "key {k} is reserved (0 = -inf, u32::MAX = inf)"),
        }
    }
}

impl std::error::Error for Error {}

/// A GPU-friendly skiplist (GFSL).
///
/// The structure itself is `Sync`: share it by reference between worker
/// threads and give each thread its own [`GfslHandle`] (via
/// [`Gfsl::handle`]) to run operations, mirroring one GPU team per handle.
///
/// ```
/// use gfsl::{Gfsl, GfslParams};
///
/// let list = Gfsl::new(GfslParams::default()).unwrap();
/// let mut h = list.handle();
/// assert!(h.insert(10, 100).unwrap());
/// assert_eq!(h.get(10), Some(100));
/// assert!(h.remove(10));
/// assert!(!h.contains(10));
/// ```
pub struct Gfsl {
    pub(crate) pool: WordPool,
    pub(crate) params: GfslParams,
    pub(crate) team: Team,
    /// `head[i]` = pointer to the first chunk of level `i`. Redirected
    /// (CAS) only when the first chunk becomes a zombie.
    pub(crate) head: Vec<AtomicU32>,
    /// Per-level utilized-chunk counters; `level_chunks[i] > 0` marks level
    /// `i` as in use (drives [`Gfsl::height`]).
    pub(crate) level_chunks: Vec<AtomicU32>,
    handle_seq: AtomicU32,
    /// Set when a team died (panicked) while holding chunk locks: those
    /// locks can never be released, so waiters must fail fast, not spin.
    poisoned: AtomicBool,
    /// Human-readable account of the first poisoning event.
    poison_note: Mutex<Option<String>>,
}

impl Gfsl {
    /// Create an empty skiplist: one unlocked sentinel chunk per level
    /// holding `-∞` and a down-pointer to the sentinel below (§4.1).
    /// # Panics
    /// Panics if `params` fail [`GfslParams::validate`] (misconfiguration is
    /// a programming error, not a runtime condition).
    pub fn new(params: GfslParams) -> Result<Gfsl, Error> {
        if let Err(msg) = params.validate() {
            panic!("invalid GfslParams: {msg}");
        }
        let lanes = params.lanes() as u32;
        let capacity_words = params.pool_chunks as usize * lanes as usize;
        let pool = WordPool::new(capacity_words);
        let team = Team::new(params.team_size);
        let levels = params.max_levels();

        // Allocate the per-level sentinels bottom-up so each can point to
        // the one below.
        let mut sentinels = vec![0u32; levels];
        for level in 0..levels {
            let base = pool.alloc(lanes, lanes).map_err(Error::PoolExhausted)?;
            sentinels[level] = base / lanes; // store chunk index
            let ch = ChunkRef { base };
            let below = if level == 0 { 0 } else { sentinels[level - 1] };
            pool.write(ch.entry_addr(0), Entry::new(KEY_NEG_INF, below).0);
            for i in 1..team.dsize() {
                pool.write(ch.entry_addr(i), Entry::EMPTY.0);
            }
            pool.write(ch.entry_addr(team.next_lane()), Entry::new(KEY_INF, NIL).0);
            pool.write(ch.entry_addr(team.lock_lane()), LOCK_UNLOCKED);
        }

        Ok(Gfsl {
            pool,
            team,
            head: sentinels.iter().map(|&c| AtomicU32::new(c)).collect(),
            level_chunks: (0..levels).map(|_| AtomicU32::new(0)).collect(),
            params,
            handle_seq: AtomicU32::new(0),
            poisoned: AtomicBool::new(false),
            poison_note: Mutex::new(None),
        })
    }

    /// The configuration this instance was built with.
    pub fn params(&self) -> &GfslParams {
        &self.params
    }

    /// The team geometry.
    pub fn team(&self) -> &Team {
        &self.team
    }

    /// Raw access to the underlying device-memory pool (for external
    /// simulators and tooling; the pool is append-only and safe to read
    /// concurrently).
    pub fn raw_pool(&self) -> &WordPool {
        &self.pool
    }

    /// The chunk reference for a pool chunk index (advanced/simulator API).
    pub fn chunk_ref(&self, index: u32) -> ChunkRef {
        self.chunk(index)
    }

    /// First-chunk index of a level (advanced/simulator API; lock-free
    /// snapshot).
    pub fn head_chunk(&self, level: usize) -> u32 {
        self.head_of(level)
    }

    /// Chunks allocated so far (sentinels included).
    pub fn chunks_allocated(&self) -> u32 {
        self.pool.used() / self.params.lanes() as u32
    }

    /// Create an uninstrumented operation handle. Each worker thread gets
    /// its own handle; the handle embeds an independent RNG stream for the
    /// raise-key coin.
    pub fn handle(&self) -> GfslHandle<'_, NoProbe> {
        self.handle_with(NoProbe)
    }

    /// Create a handle with a custom memory probe (the harness passes a
    /// `CountingProbe` sharing the run's L2 model).
    pub fn handle_with<P: MemProbe>(&self, probe: P) -> GfslHandle<'_, P> {
        let n = self.handle_seq.fetch_add(1, Ordering::Relaxed) as u64;
        GfslHandle {
            list: self,
            probe,
            rng: SplitMix64::new(self.params.seed ^ (n.wrapping_mul(0xA076_1D64_78BD_642F))),
            stats: OpStats::new(),
            held: HeldLocks::new(self),
        }
    }

    /// Resolve a chunk index to its pool word base.
    #[inline]
    pub(crate) fn chunk(&self, index: u32) -> ChunkRef {
        debug_assert_ne!(index, NIL, "dereferencing NIL chunk pointer");
        ChunkRef {
            base: index * self.params.lanes() as u32,
        }
    }

    /// Highest level currently in use (0 when only the bottom level holds
    /// keys). Reads are unlocked: a stale-low answer merely starts searches
    /// lower (level 0 always holds every key), a stale-high answer starts at
    /// an empty sentinel — both are benign.
    pub fn height(&self) -> usize {
        for i in (1..self.params.max_levels()).rev() {
            if self.level_chunks[i].load(Ordering::Relaxed) > 0 {
                return i;
            }
        }
        0
    }

    /// First-chunk pointer for a level.
    #[inline]
    pub(crate) fn head_of(&self, level: usize) -> u32 {
        self.head[level].load(Ordering::Acquire)
    }

    pub(crate) fn inc_level_chunks(&self, level: usize) {
        self.level_chunks[level].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn dec_level_chunks(&self, level: usize) {
        // Saturating decrement: counters are a heuristic height signal, and
        // racing "level emptied" stores may otherwise underflow.
        let _ = self.level_chunks[level].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            v.checked_sub(1)
        });
    }

    pub(crate) fn level_chunk_count(&self, level: usize) -> u32 {
        self.level_chunks[level].load(Ordering::Relaxed)
    }

    /// Has a team died while holding chunk locks?
    ///
    /// Once poisoned, the affected chunks can never be unlocked; teams that
    /// subsequently wait on any lock panic with [`Gfsl::poison_report`]
    /// instead of spinning forever. Operations that never touch the dead
    /// team's chunks may still complete — poisoning is detected at lock-wait
    /// time, not checked up front.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// The first poisoning event, if any (which chunks went down with the
    /// dead team).
    pub fn poison_report(&self) -> Option<String> {
        if !self.is_poisoned() {
            return None;
        }
        self.poison_note
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Record that a team died holding `held`. First report wins; the flag
    /// is sticky.
    pub(crate) fn poison(&self, held: &[u32]) {
        let mut note = self.poison_note.lock().unwrap_or_else(|p| p.into_inner());
        if note.is_none() {
            *note = Some(format!(
                "a team died (panicked) while holding lock(s) on chunk(s) {held:?}; \
                 those locks can never be released"
            ));
        }
        self.poisoned.store(true, Ordering::Release);
    }
}

/// The chunk locks a handle currently holds. Tracked so that a team dying
/// mid-operation (a panic unwinding through [`GfslHandle`]) is *detected* —
/// the structure is poisoned with a report naming the orphaned locks —
/// instead of silently deadlocking every team that later needs those chunks.
pub(crate) struct HeldLocks<'a> {
    list: &'a Gfsl,
    chunks: Vec<u32>,
}

impl<'a> HeldLocks<'a> {
    fn new(list: &'a Gfsl) -> HeldLocks<'a> {
        HeldLocks {
            list,
            chunks: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn acquired(&mut self, ch: u32) {
        self.chunks.push(ch);
    }

    /// Forget all tracked locks. Only for code paths that release lock words
    /// by direct pool writes instead of [`GfslHandle::unlock`] (bulk
    /// construction, where every chunk is sealed unlocked by hand).
    pub(crate) fn clear(&mut self) {
        self.chunks.clear();
    }

    #[inline]
    pub(crate) fn released(&mut self, ch: u32) {
        match self.chunks.iter().rposition(|&c| c == ch) {
            Some(i) => {
                self.chunks.swap_remove(i);
            }
            None => debug_assert!(false, "releasing untracked lock on chunk {ch}"),
        }
    }
}

impl Drop for HeldLocks<'_> {
    fn drop(&mut self) {
        // Non-empty on drop means the op never released these locks: the
        // thread is unwinding from a panic mid-protocol (or the handle was
        // leaked mid-op, which safe callers cannot do).
        if !self.chunks.is_empty() {
            self.list.poison(&self.chunks);
        }
    }
}

impl std::fmt::Debug for Gfsl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gfsl")
            .field("team_size", &self.params.team_size)
            .field("height", &self.height())
            .field("chunks_allocated", &self.chunks_allocated())
            .finish()
    }
}

/// Lock retries after which a single acquisition is counted as a
/// starvation event in [`OpStats::lock_starvation_events`]. With the
/// exponential backoff capped at a 64-iteration spin plus a yield per
/// retry, 4096 retries is a long wall-clock window of being unserved.
pub const STARVATION_RETRIES: u32 = 1 << 12;

/// Hard bound on retries for one lock acquisition. The protocol's hold
/// times are bounded (no operation blocks while holding a chunk lock), so
/// crossing this bound means the holder is gone for good — the waiter
/// panics with a deadlock diagnosis instead of spinning forever.
pub const LOCK_RETRY_BOUND: u32 = 1 << 26;

/// A per-thread session on a [`Gfsl`]: the moral equivalent of one GPU team.
///
/// Holds the thread's memory probe, RNG stream, and operation statistics.
/// All skiplist operations ([`contains`](GfslHandle::contains),
/// [`get`](GfslHandle::get), [`insert`](GfslHandle::insert),
/// [`remove`](GfslHandle::remove)) live on the handle.
pub struct GfslHandle<'a, P: MemProbe> {
    pub(crate) list: &'a Gfsl,
    pub(crate) probe: P,
    pub(crate) rng: SplitMix64,
    pub(crate) stats: OpStats,
    pub(crate) held: HeldLocks<'a>,
}

impl<'a, P: MemProbe> GfslHandle<'a, P> {
    /// The underlying structure.
    pub fn list(&self) -> &'a Gfsl {
        self.list
    }

    /// Statistics accumulated by this handle.
    pub fn stats(&self) -> OpStats {
        self.stats
    }

    /// Reset this handle's statistics.
    pub fn reset_stats(&mut self) {
        self.stats = OpStats::new();
    }

    /// Consume the handle, returning its probe and stats.
    pub fn into_parts(self) -> (P, OpStats) {
        (self.probe, self.stats)
    }

    /// Read a whole chunk in one lockstep team read.
    #[inline]
    pub(crate) fn read_chunk(&mut self, index: u32) -> ChunkView {
        self.stats.chunk_reads += 1;
        ChunkView::read(
            &self.list.team,
            &self.list.pool,
            &mut self.probe,
            self.list.chunk(index),
        )
    }

    /// Read a chunk until the view is *certified*: two consecutive reads
    /// whose lock words agree and show the chunk unlocked prove no writer
    /// moved an entry while the later view's data lanes were read (entry
    /// moves happen only under the chunk lock, and every release bumps the
    /// lock word's version). Zombie views are terminal, hence trivially
    /// consistent. Used by lock-free readers whose answer asserts the
    /// *absence* of a key in the view (`NotFound`, range scans, `min_entry`)
    /// — a single ascending-order read can miss a key being shifted toward
    /// lower lanes by a concurrent `executeRemove`.
    pub(crate) fn read_chunk_certified(&mut self, index: u32) -> ChunkView {
        let team = self.list.team;
        let mut prev = self.read_chunk(index);
        loop {
            if prev.is_zombie(&team) {
                return prev;
            }
            let before = prev.lock_word(&team);
            let view = self.read_chunk(index);
            if crate::chunk::lock_state(before) == crate::chunk::LOCK_UNLOCKED
                && view.lock_word(&team) == before
            {
                return view;
            }
            self.certify_poison_check(index);
            prev = view;
        }
    }

    /// Spin until the chunk that *encloses* `k` is locked, walking right
    /// past zombies and smaller-max chunks (paper Algorithm 4.8).
    ///
    /// Returns the locked chunk's index and its view as re-read under the
    /// lock. `start` must be at-or-left of the enclosing chunk, which the
    /// caller guarantees from traversal invariants (the max field only
    /// decreases).
    pub(crate) fn find_and_lock_enclosing(&mut self, start: u32, k: u32) -> (u32, ChunkView) {
        let team = self.list.team;
        let mut ch = start;
        let mut spins = 0u32;
        loop {
            let view = self.read_chunk(ch);
            if view.not_enclosing(&team, k) {
                let next = view.next(&team);
                debug_assert_ne!(next, NIL, "walked past the last chunk hunting for {k}");
                ch = next;
                continue;
            }
            if view.is_locked(&team) {
                self.stats.lock_retries += 1;
                self.lock_backoff(&mut spins, ch);
                continue;
            }
            if !ops::try_lock(&team, &self.list.pool, &mut self.probe, self.list.chunk(ch)) {
                self.stats.lock_retries += 1;
                self.lock_backoff(&mut spins, ch);
                continue;
            }
            self.stats.locks_taken += 1;
            self.held.acquired(ch);
            // Re-read under the lock; the chunk may have stopped enclosing
            // `k` between the read and the CAS.
            let view = self.read_chunk(ch);
            if view.not_enclosing(&team, k) {
                self.unlock(ch);
                ch = view.next(&team);
                continue;
            }
            return (ch, view);
        }
    }

    /// Lock the first non-zombie chunk right of `ch` (which the caller holds
    /// locked), unlinking any zombies skipped by rewriting `ch`'s next
    /// pointer. Returns `None` when `ch` is the last chunk in its level.
    pub(crate) fn lock_next_chunk(&mut self, ch: u32) -> Option<u32> {
        let team = self.list.team;
        let pool = &self.list.pool;
        let first_next =
            ops::read_next_field(&team, pool, &mut self.probe, self.list.chunk(ch)).val();
        let mut cur = first_next;
        let mut spins = 0u32;
        loop {
            if cur == NIL {
                return None;
            }
            let view = self.read_chunk(cur);
            if view.is_zombie(&team) {
                cur = view.next(&team);
                continue;
            }
            if view.is_locked(&team) {
                self.stats.lock_retries += 1;
                self.lock_backoff(&mut spins, cur);
                continue;
            }
            if !ops::try_lock(&team, &self.list.pool, &mut self.probe, self.list.chunk(cur)) {
                self.stats.lock_retries += 1;
                self.lock_backoff(&mut spins, cur);
                continue;
            }
            self.stats.locks_taken += 1;
            self.held.acquired(cur);
            if cur != first_next {
                // Unlink the zombies we skipped: we hold `ch`'s lock, so its
                // max is stable and rewriting (max, next) in one word is safe.
                let nf = ops::read_next_field(&team, &self.list.pool, &mut self.probe, self.list.chunk(ch));
                ops::write_next_field(
                    &team,
                    &self.list.pool,
                    &mut self.probe,
                    self.list.chunk(ch),
                    nf.key(),
                    cur,
                );
                self.stats.zombie_unlinks += 1;
            }
            return Some(cur);
        }
    }

    /// Unlock a held chunk.
    #[inline]
    pub(crate) fn unlock(&mut self, ch: u32) {
        ops::unlock(
            &self.list.team,
            &self.list.pool,
            &mut self.probe,
            self.list.chunk(ch),
        );
        self.held.released(ch);
    }

    /// Bounded, poison-aware wait between lock attempts: exponential spin
    /// (capped at 64 iterations) escalating into a scheduler yield, so a
    /// descheduled lock holder can run (essential on machines with fewer
    /// cores than worker threads; a GPU scheduler interleaves stalled warps
    /// for the same reason). Periodically re-checks [`Gfsl::is_poisoned`] so
    /// waiters on an orphaned lock fail fast with the poison report instead
    /// of spinning until [`LOCK_RETRY_BOUND`].
    /// Abort a snapshot-certification spin if the structure is poisoned.
    /// Certification waits for the chunk's lock word to settle UNLOCKED; if
    /// the lock's holder died mid-operation that never happens, and without
    /// this check a *reader* would spin forever on a chunk orphaned by a
    /// writer's panic.
    pub(crate) fn certify_poison_check(&mut self, ch: u32) {
        self.stats.certify_retries += 1;
        if let Some(report) = self.list.poison_report() {
            panic!("read certification on chunk {ch} aborted: structure poisoned ({report})");
        }
        std::hint::spin_loop();
    }

    fn lock_backoff(&mut self, spins: &mut u32, ch: u32) {
        *spins += 1;
        let n = *spins;
        if n.is_multiple_of(64) {
            if let Some(report) = self.list.poison_report() {
                panic!("lock wait on chunk {ch} aborted: structure poisoned ({report})");
            }
        }
        if n == STARVATION_RETRIES {
            self.stats.lock_starvation_events += 1;
        }
        assert!(
            n < LOCK_RETRY_BOUND,
            "lock acquisition on chunk {ch} exceeded {LOCK_RETRY_BOUND} retries: \
             the holder is likely dead (undetected) or the protocol deadlocked"
        );
        if n < 7 {
            for _ in 0..(1u32 << n) {
                std::hint::spin_loop();
            }
        } else {
            self.stats.lock_backoff_yields += 1;
            std::thread::yield_now();
        }
    }

    /// Allocate a fresh chunk: all data entries EMPTY, `max = ∞`,
    /// `next = NIL`, **locked** (paper §4.1: "all chunks are allocated
    /// locked").
    pub(crate) fn alloc_chunk(&mut self) -> Result<u32, Error> {
        let lanes = self.list.params.lanes() as u32;
        let base = self
            .list
            .pool
            .alloc(lanes, lanes)
            .map_err(Error::PoolExhausted)?;
        let ch = ChunkRef { base };
        let team = &self.list.team;
        let pool = &self.list.pool;
        let mut addrs = [0u32; gfsl_simt::WARP_SIZE];
        for (i, a) in addrs.iter_mut().enumerate().take(team.lanes()) {
            *a = ch.entry_addr(i);
        }
        self.probe.warp_write(&addrs[..team.lanes()]);
        for i in 0..team.dsize() {
            pool.write(ch.entry_addr(i), Entry::EMPTY.0);
        }
        pool.write(ch.entry_addr(team.next_lane()), Entry::new(KEY_INF, NIL).0);
        pool.write(ch.entry_addr(team.lock_lane()), crate::chunk::LOCK_LOCKED);
        let idx = base / lanes;
        self.held.acquired(idx);
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_list_has_sentinel_per_level() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        assert_eq!(list.chunks_allocated(), 32, "one sentinel per level");
        assert_eq!(list.height(), 0);
        let mut h = list.handle();
        // Bottom sentinel: -inf at entry 0, rest empty, max = inf, next NIL.
        let head0 = list.head_of(0);
        let v = h.read_chunk(head0);
        let team = list.team;
        assert_eq!(v.entry(0).key(), KEY_NEG_INF);
        assert!(v.entry(1).is_empty());
        assert_eq!(v.max(&team), KEY_INF);
        assert_eq!(v.next(&team), NIL);
        assert!(!v.is_zombie(&team));
        // Upper sentinel points down to the one below.
        let head1 = list.head_of(1);
        let v1 = h.read_chunk(head1);
        assert_eq!(v1.entry(0).val(), head0);
    }

    #[test]
    fn handles_get_distinct_rng_streams() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        let mut a = list.handle();
        let mut b = list.handle();
        assert_ne!(a.rng.next_u64(), b.rng.next_u64());
    }

    #[test]
    fn alloc_chunk_is_locked_and_empty() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        let mut h = list.handle();
        let c = h.alloc_chunk().unwrap();
        let v = h.read_chunk(c);
        let team = list.team;
        assert!(v.is_locked(&team));
        assert_eq!(v.num_keys(&team), 0);
        assert_eq!(v.max(&team), KEY_INF);
        assert_eq!(v.next(&team), NIL);
    }

    #[test]
    fn pool_exhaustion_is_reported() {
        let params = GfslParams {
            pool_chunks: 33,
            ..Default::default()
        };
        let list = Gfsl::new(params).unwrap();
        let mut h = list.handle();
        assert!(h.alloc_chunk().is_ok());
        match h.alloc_chunk() {
            Err(Error::PoolExhausted(_)) => {}
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn level_counters_saturate_at_zero() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        list.dec_level_chunks(3);
        assert_eq!(list.level_chunk_count(3), 0);
        list.inc_level_chunks(3);
        assert_eq!(list.level_chunk_count(3), 1);
        assert_eq!(list.height(), 3);
        list.dec_level_chunks(3);
        assert_eq!(list.height(), 0);
    }

    #[test]
    fn find_and_lock_enclosing_locks_sentinel_for_any_key() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        let mut h = list.handle();
        let head0 = list.head_of(0);
        let (locked, _) = h.find_and_lock_enclosing(head0, 500);
        assert_eq!(locked, head0, "sentinel has max = inf, encloses everything");
        let v = h.read_chunk(locked);
        assert!(v.is_locked(&list.team));
        h.unlock(locked);
    }

    #[test]
    fn lock_next_chunk_of_last_is_none() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        let mut h = list.handle();
        let head0 = list.head_of(0);
        let (locked, _) = h.find_and_lock_enclosing(head0, 5);
        assert_eq!(h.lock_next_chunk(locked), None);
        h.unlock(locked);
    }
}
