//! Occupancy and register-spill calculator.
//!
//! Reproduces the static columns of Tables 5.1 and 5.2 exactly:
//!
//! * the compiler allocates per-thread registers as
//!   `min(regs_needed, floor8(regfile / (2 × threads_per_block)))` — i.e.
//!   it caps registers so at least two blocks stay resident (the behaviour
//!   visible in both tables: 79/64/40/32 for GFSL, 42/42/40/32 for M&C);
//! * the register file is then divided in 256-register per-warp units to
//!   yield resident blocks and warps;
//! * the register deficit (`regs_needed - regs_alloc`) spills to local
//!   memory; the spill *bandwidth share* grows superlinearly with the
//!   deficit (fit to Table 5.1's 0% / 10% / 43% / 53%).

use serde::{Deserialize, Serialize};

use crate::arch::{GpuArch, KernelProfile, LaunchConfig};

/// Result of the occupancy calculation for one (arch, kernel, launch).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Occupancy {
    /// Registers per thread actually allocated.
    pub regs_alloc: u32,
    /// Resident blocks per SM.
    pub active_blocks: u32,
    /// Resident warps per SM.
    pub active_warps: u32,
    /// Theoretical occupancy (resident warps / max warps).
    pub theoretical: f64,
    /// Modeled achieved occupancy.
    pub achieved: f64,
    /// Fraction of memory bandwidth consumed by local-memory spill.
    pub spill_share: f64,
}

/// Compute occupancy and spill for a kernel under a launch configuration.
pub fn occupancy(arch: &GpuArch, kernel: &KernelProfile, launch: &LaunchConfig) -> Occupancy {
    let threads = launch.threads_per_block(arch);

    // Compiler register cap: keep >= 2 blocks resident, rounded down to a
    // multiple of 8 registers, but never more than the kernel needs.
    let cap = (arch.regs_per_sm / (2 * threads)) / 8 * 8;
    let regs_alloc = kernel.regs_needed.min(cap).max(8);

    // Per-warp register allocation granularity.
    let regs_per_warp =
        (regs_alloc * arch.warp_size).div_ceil(arch.reg_alloc_unit) * arch.reg_alloc_unit;
    let regs_per_block = regs_per_warp * launch.warps_per_block;

    let blocks_by_regs = arch.regs_per_sm / regs_per_block.max(1);
    let blocks_by_threads = arch.max_threads_per_sm / threads.max(1);
    let blocks_by_warps = arch.max_warps_per_sm / launch.warps_per_block.max(1);
    let active_blocks = blocks_by_regs
        .min(blocks_by_threads)
        .min(blocks_by_warps)
        .min(arch.max_blocks_per_sm)
        .max(1);

    let active_warps = active_blocks * launch.warps_per_block;
    let theoretical = active_warps as f64 / arch.max_warps_per_sm as f64;
    let achieved = (theoretical * kernel.achieved_factor).min(1.0);

    let spill_share = spill_share(kernel, regs_alloc);

    Occupancy {
        regs_alloc,
        active_blocks,
        active_warps,
        theoretical,
        achieved,
        spill_share,
    }
}

/// Spill bandwidth share as a function of the register deficit. Piecewise
/// linear fit to Table 5.1 (GFSL: deficits 0/15/39/47 → 0%/10%/43%/53%),
/// stacked on the kernel's base spill (M&C's local arrays).
fn spill_share(kernel: &KernelProfile, regs_alloc: u32) -> f64 {
    let deficit = kernel.regs_needed.saturating_sub(regs_alloc) as f64;
    let from_deficit = if deficit <= 15.0 {
        deficit * (0.10 / 15.0)
    } else {
        0.10 + (deficit - 15.0) * 0.0134
    };
    (kernel.base_spill_share + from_deficit * kernel.spill_growth).min(0.90)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(kernel: KernelProfile, warps: u32) -> Occupancy {
        occupancy(
            &GpuArch::gtx970(),
            &kernel,
            &LaunchConfig {
                warps_per_block: warps,
            },
        )
    }

    /// Table 5.1, static columns — exact.
    #[test]
    fn table_5_1_gfsl_registers_blocks_occupancy() {
        let cases = [
            // (warps, regs, blocks, theoretical %)
            (8u32, 79u32, 3u32, 37.5f64),
            (16, 64, 2, 50.0),
            (24, 40, 2, 75.0),
            (32, 32, 2, 100.0),
        ];
        for (warps, regs, blocks, theo) in cases {
            let o = occ(KernelProfile::gfsl(), warps);
            assert_eq!(o.regs_alloc, regs, "warps={warps} regs");
            assert_eq!(o.active_blocks, blocks, "warps={warps} blocks");
            assert!(
                (o.theoretical * 100.0 - theo).abs() < 1e-9,
                "warps={warps} theoretical {}",
                o.theoretical * 100.0
            );
        }
    }

    /// Table 5.2, static columns — exact.
    #[test]
    fn table_5_2_mc_registers_blocks_occupancy() {
        let cases = [
            (8u32, 42u32, 5u32, 62.5f64),
            (16, 42, 2, 50.0),
            (24, 40, 2, 75.0),
            (32, 32, 2, 100.0),
        ];
        for (warps, regs, blocks, theo) in cases {
            let o = occ(KernelProfile::mc(), warps);
            assert_eq!(o.regs_alloc, regs, "warps={warps} regs");
            assert_eq!(o.active_blocks, blocks, "warps={warps} blocks");
            assert!(
                (o.theoretical * 100.0 - theo).abs() < 1e-9,
                "warps={warps} theoretical {}",
                o.theoretical * 100.0
            );
        }
    }

    /// Table 5.1 spillover row: 0% / 10% / ~43% / ~53%.
    #[test]
    fn table_5_1_gfsl_spill_shares() {
        assert_eq!(occ(KernelProfile::gfsl(), 8).spill_share, 0.0);
        assert!((occ(KernelProfile::gfsl(), 16).spill_share - 0.10).abs() < 0.005);
        let s24 = occ(KernelProfile::gfsl(), 24).spill_share;
        assert!((0.40..=0.46).contains(&s24), "s24 = {s24}");
        let s32 = occ(KernelProfile::gfsl(), 32).spill_share;
        assert!((0.50..=0.56).contains(&s32), "s32 = {s32}");
    }

    /// Table 5.2 spillover row: M&C spills ~23-25% regardless.
    #[test]
    fn table_5_2_mc_spill_shares() {
        for warps in [8, 16, 24, 32] {
            let s = occ(KernelProfile::mc(), warps).spill_share;
            assert!((0.22..=0.26).contains(&s), "warps={warps} spill={s}");
        }
    }

    /// Achieved occupancy close to the paper's measurements.
    #[test]
    fn achieved_occupancy_tracks_paper() {
        // GFSL paper: 36.7 / 48.8 / 73 / 95.8
        let paper_gfsl = [(8, 36.7), (16, 48.8), (24, 73.0), (32, 95.8)];
        for (warps, pct) in paper_gfsl {
            let got = occ(KernelProfile::gfsl(), warps).achieved * 100.0;
            assert!((got - pct).abs() < 3.0, "gfsl warps={warps}: {got} vs {pct}");
        }
        // M&C paper: 52.9 / 41.6 / 59 / 79.4
        let paper_mc = [(8, 52.9), (16, 41.6), (24, 59.0), (32, 79.4)];
        for (warps, pct) in paper_mc {
            let got = occ(KernelProfile::mc(), warps).achieved * 100.0;
            assert!((got - pct).abs() < 11.0, "mc warps={warps}: {got} vs {pct}");
        }
    }

    #[test]
    fn more_warps_never_increases_register_allocation() {
        let mut prev = u32::MAX;
        for warps in [8, 16, 24, 32] {
            let o = occ(KernelProfile::gfsl(), warps);
            assert!(o.regs_alloc <= prev);
            prev = o.regs_alloc;
        }
    }
}
