//! Node layout and marked-pointer packing for the M&C skiplist.

use gfsl_gpu_mem::{MemProbe, WordAddr, WordPool};

/// Null node pointer.
pub const NIL: u32 = u32::MAX;

/// Maximum tower height (the paper's M&C configuration draws towers with
/// `p_key`, capped by the structure's level count; 32 is the classic cap).
pub const MAX_HEIGHT: usize = 32;

/// A marked next-pointer: node index in the low 32 bits, deletion mark in
/// bit 63. The mark and the pointer live in one word so a single CAS
/// transitions them together (Harris's technique).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkedPtr(pub u64);

impl MarkedPtr {
    /// Pack `(ptr, marked)`.
    #[inline]
    pub const fn new(ptr: u32, marked: bool) -> MarkedPtr {
        MarkedPtr(((marked as u64) << 63) | ptr as u64)
    }

    /// The node index.
    #[inline]
    pub const fn ptr(self) -> u32 {
        self.0 as u32
    }

    /// The deletion mark.
    #[inline]
    pub const fn marked(self) -> bool {
        self.0 >> 63 != 0
    }
}

/// A node's base address plus accessors. Nodes are never moved or reclaimed
/// (M&C leaks logically-deleted nodes; the paper's §5.3 notes it runs out of
/// memory on large ranges for exactly this kind of reason).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef {
    /// Word address of the node's header.
    pub base: WordAddr,
}

impl NodeRef {
    /// Words needed for a node of height `h`.
    #[inline]
    pub const fn words_for(height: u32) -> u32 {
        2 + height
    }

    /// Read the header: `(key, height)`. One scattered lane access.
    #[inline]
    pub fn header<P: MemProbe>(self, pool: &WordPool, probe: &mut P) -> (u32, u32) {
        probe.lane_read(self.base);
        let w = pool.read(self.base);
        (w as u32, (w >> 32) as u32)
    }

    /// Read the value word.
    #[inline]
    pub fn value<P: MemProbe>(self, pool: &WordPool, probe: &mut P) -> u32 {
        probe.lane_read(self.base + 1);
        pool.read(self.base + 1) as u32
    }

    /// Address of the level-`l` next pointer.
    #[inline]
    pub fn next_addr(self, level: usize) -> WordAddr {
        self.base + 2 + level as u32
    }

    /// Read the level-`l` next pointer.
    #[inline]
    pub fn next<P: MemProbe>(self, pool: &WordPool, probe: &mut P, level: usize) -> MarkedPtr {
        let a = self.next_addr(level);
        probe.lane_read(a);
        MarkedPtr(pool.read(a))
    }

    /// CAS the level-`l` next pointer.
    #[inline]
    pub fn cas_next<P: MemProbe>(
        self,
        pool: &WordPool,
        probe: &mut P,
        level: usize,
        expect: MarkedPtr,
        new: MarkedPtr,
    ) -> bool {
        let a = self.next_addr(level);
        probe.atomic(a);
        pool.cas(a, expect.0, new.0).is_ok()
    }

    /// Initialize a freshly-allocated node (pre-publication: plain stores).
    pub fn init<P: MemProbe>(
        self,
        pool: &WordPool,
        probe: &mut P,
        key: u32,
        value: u32,
        height: u32,
    ) {
        probe.lane_write(self.base);
        pool.write(self.base, ((height as u64) << 32) | key as u64);
        probe.lane_write(self.base + 1);
        pool.write(self.base + 1, value as u64);
        for l in 0..height as usize {
            probe.lane_write(self.next_addr(l));
            pool.write(self.next_addr(l), MarkedPtr::new(NIL, false).0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfsl_gpu_mem::NoProbe;

    #[test]
    fn marked_ptr_packing() {
        let p = MarkedPtr::new(12345, false);
        assert_eq!(p.ptr(), 12345);
        assert!(!p.marked());
        let m = MarkedPtr::new(12345, true);
        assert_eq!(m.ptr(), 12345);
        assert!(m.marked());
        assert_ne!(p, m);
        let nil = MarkedPtr::new(NIL, true);
        assert_eq!(nil.ptr(), NIL);
        assert!(nil.marked());
    }

    #[test]
    fn node_init_and_accessors() {
        let pool = WordPool::new(64);
        let base = pool.alloc(NodeRef::words_for(3), 1).unwrap();
        let n = NodeRef { base };
        n.init(&pool, &mut NoProbe, 77, 770, 3);
        assert_eq!(n.header(&pool, &mut NoProbe), (77, 3));
        assert_eq!(n.value(&pool, &mut NoProbe), 770);
        for l in 0..3 {
            let p = n.next(&pool, &mut NoProbe, l);
            assert_eq!(p.ptr(), NIL);
            assert!(!p.marked());
        }
    }

    #[test]
    fn cas_next_transitions_pointer_and_mark_together() {
        let pool = WordPool::new(64);
        let base = pool.alloc(NodeRef::words_for(1), 1).unwrap();
        let n = NodeRef { base };
        n.init(&pool, &mut NoProbe, 1, 1, 1);
        let old = MarkedPtr::new(NIL, false);
        let new = MarkedPtr::new(42, false);
        assert!(n.cas_next(&pool, &mut NoProbe, 0, old, new));
        assert!(!n.cas_next(&pool, &mut NoProbe, 0, old, new), "stale expect fails");
        // Mark it.
        let marked = MarkedPtr::new(42, true);
        assert!(n.cas_next(&pool, &mut NoProbe, 0, new, marked));
        assert_eq!(n.next(&pool, &mut NoProbe, 0), marked);
    }

    #[test]
    fn words_for_accounts_header_value_tower() {
        assert_eq!(NodeRef::words_for(1), 3);
        assert_eq!(NodeRef::words_for(32), 34);
    }
}
