//! Workspace integration tests: the full measurement pipeline, determinism,
//! and cross-structure agreement.

use gfsl_repro::gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_repro::harness::experiments::{self, ExpConfig};
use gfsl_repro::harness::runner::{run_gfsl, run_mc, RunConfig};
use gfsl_repro::harness::{evaluate, StructureKind};
use gfsl_repro::mc_skiplist::{McParams, McSkipList};
use gfsl_repro::workload::{BenchKind, Op, OpMix, WorkloadSpec};

fn tiny_cfg() -> ExpConfig {
    ExpConfig::tiny(2)
}

/// Identical single-threaded histories leave GFSL, M&C, and a BTreeSet in
/// agreement on the final key set.
#[test]
fn structures_agree_on_identical_histories() {
    let spec = WorkloadSpec::mixed(OpMix::C60, 2_000, 30_000, 99);
    let gfsl = Gfsl::new(GfslParams::sized_for(40_000)).unwrap();
    let mc = McSkipList::new(McParams::sized_for(60_000)).unwrap();
    let mut reference = std::collections::BTreeSet::new();
    let mut gh = gfsl.handle();
    let mut mh = mc.handle();

    for k in spec.prefill_keys() {
        assert!(gh.insert(k, k).unwrap());
        assert!(mh.insert(k, k));
        assert!(reference.insert(k));
    }
    for op in spec.ops() {
        match op {
            Op::Insert(k, v) => {
                let want = reference.insert(k);
                assert_eq!(gh.insert(k, v).unwrap(), want, "insert {k}");
                assert_eq!(mh.insert(k, v), want, "mc insert {k}");
            }
            Op::Delete(k) => {
                let want = reference.remove(&k);
                assert_eq!(gh.remove(k), want, "remove {k}");
                assert_eq!(mh.remove(k), want, "mc remove {k}");
            }
            Op::Contains(k) => {
                let want = reference.contains(&k);
                assert_eq!(gh.contains(k), want, "contains {k}");
                assert_eq!(mh.contains(k), want, "mc contains {k}");
            }
        }
    }
    let expect: Vec<u32> = reference.into_iter().collect();
    assert_eq!(gfsl.keys(), expect);
    assert_eq!(mc.keys(), expect);
    gfsl.assert_valid();
}

/// Single-worker runs are bit-for-bit deterministic: same seed, same
/// traffic and step counts.
#[test]
fn single_worker_measurement_is_deterministic() {
    let spec = WorkloadSpec::mixed(OpMix::C80, 5_000, 10_000, 1234);
    let cfg = RunConfig {
        workers: 1,
        warp_lanes: 32,
    };
    let a = run_gfsl(&spec, GfslParams::sized_for(20_000), &cfg);
    let b = run_gfsl(&spec, GfslParams::sized_for(20_000), &cfg);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.divergence, b.divergence);
    assert_eq!(a.splits, b.splits);
    assert_eq!(a.merges, b.merges);

    let ma = run_mc(&spec, McParams::sized_for(20_000), &cfg);
    let mb = run_mc(&spec, McParams::sized_for(20_000), &cfg);
    assert_eq!(ma.traffic, mb.traffic);
    assert_eq!(ma.divergence, mb.divergence);
}

/// Different seeds produce different workloads (no accidental seed
/// swallowing anywhere in the pipeline).
#[test]
fn seeds_change_measurements() {
    let cfg = RunConfig {
        workers: 1,
        warp_lanes: 32,
    };
    let a = run_gfsl(
        &WorkloadSpec::mixed(OpMix::C80, 5_000, 10_000, 1),
        GfslParams::sized_for(20_000),
        &cfg,
    );
    let b = run_gfsl(
        &WorkloadSpec::mixed(OpMix::C80, 5_000, 10_000, 2),
        GfslParams::sized_for(20_000),
        &cfg,
    );
    assert_ne!(a.traffic, b.traffic);
}

/// The model pipeline yields sane, ordered results on a trivially small
/// configuration: contains-only beats update-heavy, GFSL's per-op traffic
/// is far below M&C's.
#[test]
fn model_pipeline_sanity() {
    let cfg = RunConfig {
        workers: 2,
        warp_lanes: 32,
    };
    let range = 50_000u32;
    let read_spec = WorkloadSpec::single(BenchKind::ContainsOnly, range, 20_000, 5);
    let upd_spec = WorkloadSpec::mixed(OpMix::C60, range, 20_000, 5);

    let read = run_gfsl(&read_spec, GfslParams::sized_for(range as u64 * 2), &cfg);
    let upd = run_gfsl(&upd_spec, GfslParams::sized_for(range as u64 * 2), &cfg);
    let t_read = evaluate(StructureKind::Gfsl, &read);
    let t_upd = evaluate(StructureKind::Gfsl, &upd);
    assert!(
        t_read.mops > t_upd.mops,
        "reads {} must beat updates {}",
        t_read.mops,
        t_upd.mops
    );

    let mc = run_mc(&upd_spec, McParams::sized_for(range as u64 * 2), &cfg);
    assert!(mc.txns_per_op() > 3.0 * upd.txns_per_op());
}

/// Every registered experiment runs end to end on a minimal configuration
/// and emits non-empty tables with consistent geometry.
#[test]
fn all_experiments_smoke() {
    let cfg = tiny_cfg();
    for id in ["table5_1", "table5_2", "fig5_4", "pkey", "ablate", "diag", "serve"] {
        let tables = experiments::run(id, &cfg);
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in &tables {
            assert!(!t.rows.is_empty(), "{id}: empty table {}", t.title);
            for row in &t.rows {
                assert_eq!(row.len(), t.headers.len(), "{id}: ragged row in {}", t.title);
            }
        }
    }
}

/// CSV artifacts land on disk when an output directory is configured.
#[test]
fn csv_artifacts_are_written() {
    let dir = std::env::temp_dir().join(format!("gfsl_e2e_{}", std::process::id()));
    let cfg = ExpConfig {
        out_dir: Some(dir.clone()),
        ..tiny_cfg()
    };
    let tables = experiments::run("fig5_1", &cfg);
    experiments::emit("fig5_1", &tables, &cfg);
    let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert!(!entries.is_empty(), "no CSVs written to {}", dir.display());
    assert!(
        dir.join("BENCH_fig5_1.json").is_file(),
        "BENCH_fig5_1.json missing from {}",
        dir.display()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// GFSL-16 (half-warp teams) passes the same end-to-end pipeline.
#[test]
fn gfsl16_pipeline() {
    let spec = WorkloadSpec::mixed(OpMix::C80, 20_000, 10_000, 3);
    let cfg = RunConfig {
        workers: 2,
        warp_lanes: 32,
    };
    let params = GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: GfslParams::chunks_for(40_000, TeamSize::Sixteen),
        ..Default::default()
    };
    let m = run_gfsl(&spec, params, &cfg);
    assert_eq!(m.n_ops, 10_000);
    // 16-entry chunks read in ONE transaction per chunk (128 B = 1 line).
    let reads_per_chunk = m.traffic.read_txns as f64 / m.divergence.warp_steps as f64;
    assert!(
        reads_per_chunk < 1.6,
        "GFSL-16 chunk reads should be ~1 txn, got {reads_per_chunk}"
    );
    let t = evaluate(StructureKind::Gfsl, &m);
    assert!(t.mops.is_finite() && t.mops > 0.0);
}
