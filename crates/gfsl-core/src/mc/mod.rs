//! Schedule-exploring model checker for the GFSL lock protocol.
//!
//! PR 1's chaos layer *samples* interleavings from seeded randomness; this
//! module *enumerates* them. Every `WordPool` atomic access (in `sched`
//! builds of `gfsl-gpu-mem`) and every explicit gate (flat-engine lock
//! acquisitions, the episode start gate) is a yield point parked in a
//! [`controller::McController`] turnstile; a [`strategy::Scheduler`]
//! decides, at each point where two or more threads could run, which one
//! does. Three strategies: seeded [`strategy::RandomWalk`] (subsumes the
//! chaos scheduler), [`strategy::Replay`] of a recorded decision list, and
//! [`strategy::DfsBounded`] — bounded-exhaustive DFS with a preemption
//! bound and optional partial-order pruning.
//!
//! An **episode** is one complete run of a small configuration
//! ([`McConfig`]): build a fresh structure, prefill it, run each thread's
//! scripted ops under the turnstile, then check at quiescence —
//!
//! * full structure validation ([`crate::skiplist::Gfsl::validate`],
//!   whose `quiescent-unlocked` rule is also the leaked-lock-word check),
//! * per-key linearizability of the recorded history (PR 1's checker),
//! * no worker panics (protocol asserts, the livelock step bomb).
//!
//! Any failure is a **counterexample**: the episode's decision byte list,
//! ddmin-minimized ([`minimize::ddmin`]) and stamped with the trace hash,
//! printable as a one-line `<trace-hash>:<decision-hex>` spec that
//! `stress --schedule` replays from the CLI.
//!
//! Determinism is the load-bearing property: with all live threads parked
//! between grants, everything a thread does between two yield points —
//! history-clock ticks, handle construction, non-pool atomics — runs
//! while its peers are parked, so an episode is a pure function of the
//! decision list. The DFS's prefix replay and ddmin both rest on this.

pub mod configs;
pub mod controller;
pub mod minimize;
pub mod strategy;

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use gfsl_gpu_mem::schedule::{self, AccessKind, SchedHook};
use gfsl_gpu_mem::NoProbe;
use gfsl_simt::BallotKernel;

use crate::flat::{FlatSkiplist, KvEngine};
use crate::history::{check_linearizable, HistoryClock, OpAction, OpRecord, Recorder};
use crate::params::GfslParams;
use crate::skiplist::Gfsl;

use controller::{McController, SharedScheduler, SYNTH_START};
use minimize::ddmin;
use strategy::{Replay, Scheduler};

/// One scripted client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McOp {
    /// `insert(k, v)`.
    Insert(u32, u32),
    /// `remove(k)`.
    Remove(u32),
    /// `get(k)`.
    Get(u32),
    /// `snap_get(k)`: pin a version, read `k` at it, release. Drives the
    /// mvcc publish/pin/resolve protocol; recorded as a plain get (a
    /// single-key snapshot read has get semantics).
    SnapGet(u32),
}

/// Which engine an episode drives.
#[derive(Debug, Clone)]
pub enum Target {
    /// The chunked GFSL under `params` (pool accesses are the yield
    /// points — requires the `sched` feature on `gfsl-gpu-mem`).
    Chunked(Box<GfslParams>),
    /// The flat-bottom engine with the given leaf capacity (lock
    /// acquisitions are the yield points — always instrumented).
    Flat {
        /// Leaf capacity (tiny values force the split path).
        leaf_cap: usize,
    },
}

/// A model-check configuration: a small, fully scripted concurrent run.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Registry name (`stress --modelcheck <name>`).
    pub name: &'static str,
    /// What the configuration exercises (printed in reports).
    pub about: &'static str,
    /// Engine and its parameters.
    pub target: Target,
    /// Keys present before the scripted ops run.
    pub prefill: Vec<(u32, u32)>,
    /// Per-thread operation scripts (`threads.len()` participants).
    pub threads: Vec<Vec<McOp>>,
    /// Per-episode granted-step bound (livelock bomb). 0 = unbounded.
    pub max_steps: u64,
}

/// The outcome of one episode.
#[derive(Debug)]
pub struct EpisodeOutcome {
    /// `Some(description)` if any teardown check failed.
    pub failure: Option<String>,
    /// Decision byte log (replayable via [`strategy::Replay`]).
    pub decisions: Vec<u8>,
    /// Trace hash of the episode.
    pub trace: u64,
    /// Granted turns.
    pub steps: u64,
}

/// A minimized, replayable failing schedule.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// What check failed and how.
    pub description: String,
    /// Trace hash of the *minimized* episode.
    pub trace: u64,
    /// Minimized decision bytes.
    pub decisions: Vec<u8>,
}

impl Counterexample {
    /// One-line replayable spec: `<trace-hash-hex>:<decision-hex>`.
    pub fn spec(&self) -> String {
        format_spec(self.trace, &self.decisions)
    }
}

/// Format a `<trace-hash-hex>:<decision-hex>` schedule spec.
pub fn format_spec(trace: u64, decisions: &[u8]) -> String {
    let hex: String = decisions.iter().map(|b| format!("{b:02x}")).collect();
    format!("{trace:016x}:{hex}")
}

/// Parse a schedule spec produced by [`format_spec`].
pub fn parse_spec(s: &str) -> Result<(u64, Vec<u8>), String> {
    let (hash, hex) = s
        .split_once(':')
        .ok_or_else(|| format!("schedule spec `{s}` is not <trace-hash>:<decision-hex>"))?;
    let trace =
        u64::from_str_radix(hash, 16).map_err(|e| format!("bad trace hash `{hash}`: {e}"))?;
    if hex.len() % 2 != 0 {
        return Err(format!("decision hex `{hex}` has odd length"));
    }
    let bytes = (0..hex.len() / 2)
        .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16))
        .collect::<Result<Vec<u8>, _>>()
        .map_err(|e| format!("bad decision hex `{hex}`: {e}"))?;
    Ok((trace, bytes))
}

/// Aggregate result of an exploration run.
#[derive(Debug)]
pub struct McReport {
    /// Configuration name.
    pub config: &'static str,
    /// Episodes explored (excluding minimization replays).
    pub episodes: u64,
    /// Total granted turns across explored episodes.
    pub total_steps: u64,
    /// Exploration hit the strategy's episode cap before exhausting.
    pub truncated: bool,
    /// First failure found, minimized; `None` = all schedules passed.
    pub counterexample: Option<Counterexample>,
    /// Replay episodes spent minimizing (0 when nothing failed).
    pub minimize_episodes: u64,
}

impl McReport {
    /// Render for logs / the stats artifact.
    pub fn summary(&self) -> String {
        match &self.counterexample {
            None => format!(
                "{}: PASS — {} schedules explored ({} steps{})",
                self.config,
                self.episodes,
                self.total_steps,
                if self.truncated { ", TRUNCATED by episode cap" } else { "" }
            ),
            Some(cx) => format!(
                "{}: FAIL after {} schedules — {} | minimized repro ({} replays): {}",
                self.config, self.episodes, cx.description, self.minimize_episodes, cx.spec()
            ),
        }
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_ops<E: KvEngine>(h: &mut E, ops: &[McOp], rec: &mut Recorder<'_>) {
    for op in ops {
        let inv = rec.invoke();
        match *op {
            McOp::Insert(k, v) => {
                let ok = h.insert(k, v);
                rec.finish(k, OpAction::Insert { value: v, ok }, inv);
            }
            McOp::Remove(k) => {
                let ok = h.remove(k);
                rec.finish(k, OpAction::Remove { ok }, inv);
            }
            McOp::Get(k) => {
                let found = h.get(k);
                rec.finish(k, OpAction::Get { found }, inv);
            }
            McOp::SnapGet(k) => {
                let found = h.snap_get(k);
                rec.finish(k, OpAction::Get { found }, inv);
            }
        }
    }
}

/// Run one episode of `config` under `strategy` (whose `begin_episode`
/// must already have returned `true`).
pub fn run_episode(config: &McConfig, strategy: &SharedScheduler) -> EpisodeOutcome {
    let threads = config.threads.len();
    assert!(threads >= 1, "config needs at least one thread");
    let ctl = McController::new(threads, strategy.clone(), config.max_steps);
    let clock = HistoryClock::new();

    // Worker body shared by both engines: gate at the start line, run the
    // script, and always retire (a panicking worker that stays registered
    // as live would wedge every parked peer).
    let worker = |id: usize,
                  ops: &[McOp],
                  mut with_handle: Box<dyn FnMut(&mut Recorder<'_>) + '_>|
     -> (Vec<OpRecord>, Option<String>) {
        let hook: Arc<dyn SchedHook> = ctl.hook(id);
        let mut rec = Recorder::new(&clock);
        let res = catch_unwind(AssertUnwindSafe(|| {
            let _guard = schedule::register(hook);
            schedule::yield_point(AccessKind::Load, SYNTH_START);
            with_handle(&mut rec);
        }));
        ctl.retire(id);
        let _ = ops;
        (rec.records, res.err().map(panic_text))
    };

    type WorkerResults = Vec<(Vec<OpRecord>, Option<String>)>;
    let (results, structure_failure): (WorkerResults, Option<String>) =
        match &config.target {
            Target::Chunked(params) => {
                let list = Gfsl::new(**params).expect("mc: structure construction");
                {
                    let mut h = list.handle_with(NoProbe);
                    for &(k, v) in &config.prefill {
                        assert!(h.insert(k, v).expect("mc: prefill"), "mc: prefill dup {k}");
                    }
                }
                let results = std::thread::scope(|s| {
                    let handles: Vec<_> = config
                        .threads
                        .iter()
                        .enumerate()
                        .map(|(id, ops)| {
                            let list = &list;
                            let worker = &worker;
                            s.spawn(move || {
                                worker(
                                    id,
                                    ops,
                                    Box::new(move |rec| {
                                        let mut h = list.handle_with(NoProbe);
                                        run_ops(&mut h, ops, rec);
                                    }),
                                )
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                let violations = list.validate();
                let failure = (!violations.is_empty()).then(|| {
                    format!(
                        "structure invariant violated: {}",
                        violations
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join("; ")
                    )
                });
                (results, failure)
            }
            Target::Flat { leaf_cap } => {
                let list = FlatSkiplist::with_leaf_cap(BallotKernel::Scalar, *leaf_cap);
                {
                    let mut h = list.handle();
                    for &(k, v) in &config.prefill {
                        assert!(h.insert(k, v), "mc: prefill dup {k}");
                    }
                }
                let results = std::thread::scope(|s| {
                    let handles: Vec<_> = config
                        .threads
                        .iter()
                        .enumerate()
                        .map(|(id, ops)| {
                            let list = &list;
                            let worker = &worker;
                            s.spawn(move || {
                                worker(
                                    id,
                                    ops,
                                    Box::new(move |rec| {
                                        let mut h = list.handle();
                                        run_ops(&mut h, ops, rec);
                                    }),
                                )
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                let failure = catch_unwind(AssertUnwindSafe(|| list.assert_valid()))
                    .err()
                    .map(|p| format!("flat invariant violated: {}", panic_text(p)));
                (results, failure)
            }
        };

    let steps = ctl.steps();
    // Silent no-op guard: a multi-threaded chunked episode whose only
    // granted turns are the start gates means the pool was built without
    // per-access gating — exploration would trivially "pass" over one
    // schedule. Fail loudly instead.
    if threads > 1 && steps <= threads as u64 {
        panic!(
            "mc: episode granted only {steps} turns for {threads} threads — \
             gfsl-gpu-mem was built without the `sched` feature (run model \
             checks via `cargo test -p gfsl` or a `modelcheck`-featured \
             harness so pool atomics become yield points)"
        );
    }

    let mut failure = structure_failure;
    for (id, (_, panic_msg)) in results.iter().enumerate() {
        if failure.is_some() {
            break;
        }
        if let Some(msg) = panic_msg {
            failure = Some(format!("worker {id} panicked: {msg}"));
        }
    }
    if failure.is_none() {
        let mut records: Vec<OpRecord> = Vec::new();
        for (r, _) in &results {
            records.extend_from_slice(r);
        }
        let initial: HashMap<u32, u32> = config.prefill.iter().copied().collect();
        if let Err(errors) = check_linearizable(&records, &initial) {
            failure = Some(format!("non-linearizable history: {}", errors.join("; ")));
        }
    }

    EpisodeOutcome {
        failure,
        decisions: ctl.decisions(),
        trace: ctl.trace_hash(),
        steps,
    }
}

/// Replay one episode from a decision byte list.
pub fn replay(config: &McConfig, decisions: Vec<u8>) -> EpisodeOutcome {
    let shared: SharedScheduler = Arc::new(Mutex::new(Box::new(Replay::new(decisions))));
    assert!(shared.lock().unwrap().begin_episode());
    run_episode(config, &shared)
}

/// Explore `config` under `strategy` until a failure is found or the
/// strategy exhausts its schedule space. On failure the decision list is
/// ddmin-minimized before being reported.
pub fn explore(config: &McConfig, strategy: Box<dyn Scheduler>) -> McReport {
    let shared: SharedScheduler = Arc::new(Mutex::new(strategy));
    let mut episodes = 0u64;
    let mut total_steps = 0u64;
    loop {
        if !shared.lock().unwrap().begin_episode() {
            let truncated = shared.lock().unwrap().truncated();
            return McReport {
                config: config.name,
                episodes,
                total_steps,
                truncated,
                counterexample: None,
                minimize_episodes: 0,
            };
        }
        let out = run_episode(config, &shared);
        episodes += 1;
        total_steps += out.steps;
        if let Some(description) = out.failure {
            let (min_bytes, mut replays) =
                ddmin(&out.decisions, |bytes| {
                    replay(config, bytes.to_vec()).failure.is_some()
                });
            // One final replay pins the minimized schedule's trace hash
            // and its (possibly more specific) failure description.
            let final_out = replay(config, min_bytes.clone());
            replays += 1;
            let description = final_out.failure.unwrap_or(description);
            return McReport {
                config: config.name,
                episodes,
                total_steps,
                truncated: false,
                counterexample: Some(Counterexample {
                    description,
                    trace: final_out.trace,
                    decisions: min_bytes,
                }),
                minimize_episodes: replays,
            };
        }
        shared.lock().unwrap().end_episode();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip() {
        let spec = format_spec(0xDEAD_BEEF_0123_4567, &[0, 1, 255, 16]);
        assert_eq!(spec, "deadbeef01234567:0001ff10");
        assert_eq!(
            parse_spec(&spec).unwrap(),
            (0xDEAD_BEEF_0123_4567, vec![0, 1, 255, 16])
        );
        assert_eq!(parse_spec("abc:").unwrap(), (0xabc, vec![]));
        assert!(parse_spec("nocolon").is_err());
        assert!(parse_spec("12:abc").is_err(), "odd hex length");
        assert!(parse_spec("zz:00").is_err());
    }
}
