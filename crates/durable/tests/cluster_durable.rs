//! Cluster kill-restart soak: per-lane WALs, manifest-carried shard
//! layout, and recovery under injected kills at every durability crash
//! point — including after the shard map has changed shape.
//!
//! The verdict is a state-machine check rather than a history search: a
//! deterministic model tracks every *acknowledged* write; after the kill
//! and restart, every key must hold exactly the model's value, except the
//! single op that was in its commit window, which may have either fully
//! happened or not at all.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use gfsl::chaos::{ChaosController, ChaosOptions, DURABILITY_CRASH_POINTS};
use gfsl::{CrashPoint, GfslParams, TeamSize};
use gfsl_durable::{destroy, DurabilityContract, DurableCluster, DurableClusterConfig, Failpoints};
use gfsl_rng::SplitMix64;

const KEY_SPACE: u32 = 400;
const OPS: usize = 150;
const OPS_PER_CKPT: usize = 25;

fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.as_str()));
            if !msg.is_some_and(|m| m.starts_with("chaos: injected")) {
                prev(info);
            }
        }));
    });
}

fn soak_seeds() -> u64 {
    std::env::var("GFSL_DURABLE_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

/// The one op whose outcome a kill left uncertain.
#[derive(Debug, Clone, Copy)]
enum Pending {
    Put(u32, u32),
    Del(u32),
}

fn soak_cell(point: CrashPoint, seed: u64) -> bool {
    quiet_injected_panics();
    let dir = std::env::temp_dir().join(format!(
        "gfsl_dcsoak_{point:?}_{seed}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DurableClusterConfig {
        contract: DurabilityContract::ALL[(seed % 3) as usize],
        seg_records: 6 + (seed % 6) as u32,
        n_lanes: 3,
        n_shards: 4,
        key_range: KEY_SPACE,
        params: GfslParams {
            team_size: TeamSize::Sixteen,
            pool_chunks: 1 << 12,
            ..Default::default()
        },
        ..DurableClusterConfig::new(&dir)
    };

    let mut dc = DurableCluster::create(&cfg).unwrap();
    let mut model: BTreeMap<u32, u32> = BTreeMap::new();
    for k in (2..KEY_SPACE).step_by(4) {
        assert!(dc.insert(k, k).unwrap());
        model.insert(k, k);
    }
    // Change the shard map and checkpoint it before arming: layout is
    // durable from the moment a manifest records it, and every later
    // manifest (or fallback to this one) must carry it across the restart.
    let first_shard = dc.cluster().shards()[0].id;
    dc.cluster().split_shard(first_shard).unwrap();
    dc.checkpoint().unwrap();
    let bounds_before = dc.cluster().bounds();

    let occurrence = 1 + seed % 3;
    let ctl = ChaosController::new(
        1,
        ChaosOptions {
            panic_at: Some((point, occurrence)),
            max_stall_turns: 1,
            seed: seed ^ 0x94D0_49BB_1331_11EB,
            ..Default::default()
        },
    );
    dc.hook = Failpoints::Chaos(ctl.probe(0));

    let mut rng = SplitMix64::new(seed.wrapping_mul(0x2545) ^ 0x5DEE);
    let mut crashed = false;
    let mut pending: Option<Pending> = None;
    let mut dc = Some(dc);
    for i in 0..OPS {
        let c = dc.as_mut().unwrap();
        if i > 0 && i % OPS_PER_CKPT == 0 {
            if catch_unwind(AssertUnwindSafe(|| c.checkpoint().unwrap())).is_err() {
                crashed = true;
                break;
            }
            continue;
        }
        let r = rng.next_u64();
        let key = (r % u64::from(KEY_SPACE - 2) + 1) as u32;
        let value = (r >> 40) as u32 | 1;
        if (r >> 32) % 3 < 2 {
            match catch_unwind(AssertUnwindSafe(|| c.insert(key, value))) {
                Ok(done) => {
                    if done.expect("non-chaos insert failure") {
                        model.insert(key, value);
                    }
                }
                Err(_) => {
                    pending = Some(Pending::Put(key, value));
                    crashed = true;
                    break;
                }
            }
        } else {
            match catch_unwind(AssertUnwindSafe(|| c.remove(key))) {
                Ok(done) => {
                    if done.expect("non-chaos remove failure") {
                        model.remove(&key);
                    }
                }
                Err(_) => {
                    pending = Some(Pending::Del(key));
                    crashed = true;
                    break;
                }
            }
        }
    }
    drop(dc);

    let (dc, report) = DurableCluster::open(&cfg).unwrap_or_else(|e| {
        panic!("[{point:?} seed {seed}] cluster recovery failed: {e}")
    });
    dc.cluster().assert_valid();
    assert_eq!(
        dc.cluster().bounds(),
        bounds_before,
        "[{point:?} seed {seed}] shard layout must come back from the manifest"
    );
    assert!(
        report.checkpoint_seq.is_some() || report.replayed > 0 || model.is_empty(),
        "[{point:?} seed {seed}] recovery found nothing to restore"
    );

    // Acked state must be exact; the pending op may be either way.
    let recovered: BTreeMap<u32, u32> = dc.cluster().pairs().into_iter().collect();
    let mut acceptable = vec![model.clone()];
    if let Some(p) = pending {
        let mut with = model.clone();
        match p {
            Pending::Put(k, v) => {
                with.insert(k, v);
            }
            Pending::Del(k) => {
                with.remove(&k);
            }
        }
        acceptable.push(with);
    }
    assert!(
        acceptable.contains(&recovered),
        "[{point:?} seed {seed}] recovered state diverges from every \
         acceptable model: pending {pending:?}, {} recovered keys vs {} modeled",
        recovered.len(),
        model.len()
    );
    destroy(&cfg.dir).unwrap();
    crashed
}

#[test]
fn cluster_kill_restart_soak_every_durability_crash_point() {
    let seeds = soak_seeds();
    for &point in DURABILITY_CRASH_POINTS.iter() {
        let mut crashes = 0u64;
        for seed in 0..seeds {
            crashes += u64::from(soak_cell(point, seed));
        }
        assert!(
            crashes > 0,
            "{point:?} never produced an injected kill in {seeds} seeds"
        );
    }
}
