//! Hot-shard scenario: a zipf key distribution whose hot head re-centers on
//! a different part of the key space mid-run.
//!
//! A key-range-sharded cluster is only as fast as its hottest shard. This
//! scenario manufactures exactly the failure mode load-aware resharding
//! exists for: the first half of the stream hammers keys around one center
//! (one shard's range), then the head *jumps* to a different center — the
//! moment a real service sees when a tenant goes viral. The rebalance
//! experiment measures how long the cluster takes to split the newly hot
//! shard and return to stable throughput; the migration-under-chaos test
//! uses the same stream to race splits against a moving hot set.

use crate::arrival::{ServeMix, ServeOp};
use crate::dist::Zipf;
use crate::rng::Lehmer64;

/// A zipf distribution over `1..=key_range` whose hottest rank sits at
/// `center` (ranks wrap around the end of the key space), re-centered from
/// `center_before` to `center_after` once `shift_at` keys have been drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotShard {
    /// Total key universe `1..=key_range`.
    pub key_range: u32,
    /// Zipf skew in `[0, 1)`; high values concentrate the head hard onto
    /// one shard.
    pub theta: f64,
    /// Hot center for draws `0..shift_at`.
    pub center_before: u32,
    /// Hot center for draws `shift_at..`.
    pub center_after: u32,
    /// Draw index at which the head jumps.
    pub shift_at: u64,
}

impl HotShard {
    /// A scenario over `1..=key_range`. Panics (via [`Zipf::new`]) if
    /// `theta` is outside `[0, 1)`, and if either center is out of range.
    pub fn new(
        key_range: u32,
        theta: f64,
        center_before: u32,
        center_after: u32,
        shift_at: u64,
    ) -> HotShard {
        assert!(
            (1..=key_range).contains(&center_before) && (1..=key_range).contains(&center_after),
            "centers must lie in 1..=key_range"
        );
        // Validate theta eagerly.
        let _ = Zipf::new(key_range, theta);
        HotShard {
            key_range,
            theta,
            center_before,
            center_after,
            shift_at,
        }
    }

    /// The hot center in effect for draw `idx`.
    #[inline]
    pub fn center_at(&self, idx: u64) -> u32 {
        if idx < self.shift_at {
            self.center_before
        } else {
            self.center_after
        }
    }

    /// Draw the key for stream position `idx`: a zipf rank mapped so rank 1
    /// lands on the active center and successive ranks walk upward, wrapping
    /// at `key_range`.
    #[inline]
    pub fn key_at(&self, idx: u64, rng: &mut Lehmer64) -> u32 {
        let rank = Zipf::new(self.key_range, self.theta).draw(rng);
        let center = self.center_at(idx);
        ((center - 1 + (rank - 1)) % self.key_range) + 1
    }

    /// Generate the full deterministic request stream: zipf keys around the
    /// (shifting) center, op kinds rolled from `mix`.
    pub fn stream(&self, mix: ServeMix, seed: u64, n_ops: usize) -> Vec<ServeOp> {
        let mut keys = Lehmer64::new(seed ^ 0x4077_5EED);
        let mut kinds = Lehmer64::new(seed ^ 0x0DD5_0F0A);
        (0..n_ops)
            .map(|i| {
                let k = self.key_at(i as u64, &mut keys);
                mix.draw_keyed(&mut kinds, k, self.key_range)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head_fraction(keys: &[u32], center: u32, span: u32, range: u32) -> f64 {
        let hits = keys
            .iter()
            .filter(|&&k| (k.wrapping_sub(center) % range) < span || k == center)
            .count();
        hits as f64 / keys.len() as f64
    }

    #[test]
    fn head_sits_on_the_center_and_jumps_at_the_shift() {
        let range = 10_000;
        let hs = HotShard::new(range, 0.9, 1_000, 8_000, 5_000);
        let mut rng = Lehmer64::new(77);
        let keys: Vec<u32> = (0..10_000u64).map(|i| hs.key_at(i, &mut rng)).collect();
        let (before, after) = keys.split_at(5_000);
        // Theta 0.9 puts well over half the mass in a 1% head.
        let span = range / 100;
        assert!(
            head_fraction(before, 1_000, span, range) > 0.5,
            "pre-shift head must sit on center_before"
        );
        assert!(
            head_fraction(after, 8_000, span, range) > 0.5,
            "post-shift head must sit on center_after"
        );
        assert!(
            head_fraction(after, 1_000, span, range) < 0.1,
            "old center must go cold after the shift"
        );
    }

    #[test]
    fn keys_stay_in_range_and_wrap_correctly() {
        // Center near the top of the range forces rank wrap-around.
        let hs = HotShard::new(100, 0.8, 99, 2, 50);
        let mut rng = Lehmer64::new(5);
        for i in 0..10_000u64 {
            let k = hs.key_at(i, &mut rng);
            assert!((1..=100).contains(&k), "key {k} out of range");
        }
    }

    #[test]
    fn stream_is_deterministic_and_mix_shaped() {
        let hs = HotShard::new(1_000, 0.9, 100, 900, 500);
        let a = hs.stream(ServeMix::C80, 42, 1_000);
        let b = hs.stream(ServeMix::C80, 42, 1_000);
        assert_eq!(a, b);
        let gets = a.iter().filter(|o| matches!(o, ServeOp::Get(_))).count();
        assert!((700..=900).contains(&gets), "~80% gets, got {gets}");
        assert!(a.iter().all(|o| (1..=1_000).contains(&o.key())));
    }
}
