//! Admission control: a bounded intake queue with typed load shedding.
//!
//! The intake queue is the service's backpressure point. Arrivals that find
//! it full are *shed* — rejected with a typed [`ShedError`] carrying the
//! observed depth — rather than queued without bound. Shedding keeps the
//! latency tail of admitted requests bounded under overload (the classic
//! open-loop failure mode is an unbounded queue whose wait grows without
//! limit; we refuse work instead).

use std::collections::VecDeque;

use crate::request::Request;

/// Typed rejection: the intake queue (or a degraded service mode) refused
/// the request at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedError {
    /// Queue depth observed at rejection.
    pub depth: usize,
    /// Backoff hint: the virtual time after which a retry has a realistic
    /// chance of admission, derived from the observed depth and the
    /// queue's drain-rate estimate. Zero when no estimate is configured.
    pub retry_after_ns: u64,
}

impl ShedError {
    /// The retry hint converted for the wire: **milliseconds**, rounded
    /// *up* (a hint of 1 ns must not truncate to "retry immediately"), and
    /// clamped to `u32::MAX` ms. Protocol frames carry this value — every
    /// edge client and server agrees the on-wire unit is ms, while the
    /// in-process hint stays in virtual ns (see `gfsl-edge`).
    pub fn retry_after_ms(&self) -> u32 {
        let ms = self.retry_after_ns.div_ceil(1_000_000);
        ms.min(u32::MAX as u64) as u32
    }
}

impl std::fmt::Display for ShedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request shed: intake queue full at depth {} (retry after {} ns)",
            self.depth, self.retry_after_ns
        )
    }
}

impl std::error::Error for ShedError {}

/// Bounded FIFO intake queue.
#[derive(Debug)]
pub struct IntakeQueue {
    cap: usize,
    q: VecDeque<Request>,
    sheds: u64,
    drain_ns_per_req: u64,
}

impl IntakeQueue {
    /// A queue admitting at most `cap` requests (`cap > 0`), with no
    /// drain-rate estimate (shed retry hints report 0).
    pub fn new(cap: usize) -> IntakeQueue {
        IntakeQueue::with_drain_hint(cap, 0)
    }

    /// A queue whose shed errors carry a retry-after hint of
    /// `depth × ns_per_req` — the virtual time the service needs to work
    /// off the backlog the rejected request saw.
    pub fn with_drain_hint(cap: usize, ns_per_req: u64) -> IntakeQueue {
        assert!(cap > 0, "intake capacity must be positive");
        IntakeQueue {
            cap,
            q: VecDeque::with_capacity(cap.min(1 << 16)),
            sheds: 0,
            drain_ns_per_req: ns_per_req,
        }
    }

    /// The [`ShedError`] an arrival would receive right now (also used by
    /// the service's degraded-mode admission gate, which sheds *before*
    /// the queue is full).
    pub fn shed_error(&self) -> ShedError {
        let depth = self.q.len();
        ShedError {
            depth,
            retry_after_ns: (depth as u64).saturating_mul(self.drain_ns_per_req),
        }
    }

    /// Count one shed decided outside the queue itself (the service's
    /// degraded-mode gate), so `sheds()` stays the single total.
    pub fn note_shed(&mut self) {
        self.sheds += 1;
    }

    /// Admit a request, or shed it. On rejection the request is handed back
    /// to the caller (the arrival source decides whether to retry or drop).
    pub fn offer(&mut self, req: Request) -> Result<(), (Request, ShedError)> {
        if self.q.len() >= self.cap {
            self.sheds += 1;
            return Err((req, self.shed_error()));
        }
        self.q.push_back(req);
        Ok(())
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Admission bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Requests shed so far.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Drain up to `n` requests from the front, in admission order.
    pub fn drain_upto(&mut self, n: usize) -> Vec<Request> {
        let take = n.min(self.q.len());
        self.q.drain(..take).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use gfsl_workload::ServeOp;

    fn req(id: u64) -> Request {
        Request {
            client: 0,
            id,
            arrival_ns: id,
            op: ServeOp::Get(1),
        }
    }

    #[test]
    fn sheds_exactly_beyond_capacity() {
        let mut q = IntakeQueue::new(3);
        for id in 0..3 {
            assert!(q.offer(req(id)).is_ok());
        }
        let (back, err) = q.offer(req(3)).unwrap_err();
        assert_eq!(back.id, 3, "rejected request is handed back intact");
        assert_eq!(err.depth, 3);
        assert_eq!(err.retry_after_ns, 0, "no drain estimate, no hint");
        assert_eq!(q.sheds(), 1);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn retry_hint_scales_with_depth_and_drain_rate() {
        let mut q = IntakeQueue::with_drain_hint(4, 250);
        assert_eq!(q.shed_error().retry_after_ns, 0, "empty queue, instant retry");
        for id in 0..4 {
            q.offer(req(id)).unwrap();
        }
        let (_, err) = q.offer(req(9)).unwrap_err();
        assert_eq!(err.depth, 4);
        assert_eq!(err.retry_after_ns, 4 * 250, "hint = backlog x drain estimate");
        q.drain_upto(2);
        assert_eq!(q.shed_error().retry_after_ns, 2 * 250, "hint tracks current depth");
    }

    #[test]
    fn external_sheds_fold_into_the_total() {
        let mut q = IntakeQueue::new(2);
        q.note_shed();
        q.note_shed();
        assert_eq!(q.sheds(), 2, "degraded-mode gate sheds count too");
    }

    #[test]
    fn drain_preserves_admission_order_and_frees_space() {
        let mut q = IntakeQueue::new(4);
        for id in 0..4 {
            q.offer(req(id)).unwrap();
        }
        let first = q.drain_upto(2);
        assert_eq!(first.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(q.len(), 2);
        assert!(q.offer(req(9)).is_ok(), "drained space readmits");
        let rest = q.drain_upto(100);
        assert_eq!(rest.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2, 3, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn retry_after_ms_rounds_up_and_clamps() {
        let e = |ns| ShedError { depth: 1, retry_after_ns: ns };
        assert_eq!(e(0).retry_after_ms(), 0, "no backlog, instant retry");
        assert_eq!(e(1).retry_after_ms(), 1, "sub-ms hints round up, never to zero");
        assert_eq!(e(1_000_000).retry_after_ms(), 1);
        assert_eq!(e(1_000_001).retry_after_ms(), 2);
        assert_eq!(e(250_000_000).retry_after_ms(), 250);
        assert_eq!(e(u64::MAX).retry_after_ms(), u32::MAX, "clamped at the wire bound");
    }

    #[test]
    fn shed_error_is_a_real_error() {
        let e = ShedError {
            depth: 7,
            retry_after_ns: 700,
        };
        let msg = format!("{e}");
        assert!(msg.contains("depth 7") && msg.contains("700 ns"), "{msg}");
        let _: &dyn std::error::Error = &e;
    }
}
