//! Conformance: the cycle executor's warp state machines must answer
//! exactly like the structures' own operations, on arbitrary structures —
//! including ones containing zombies and both chunk formats.

use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_gpu_exec::{Device, ExecConfig, GfslContainsWarp, McContainsWarp, Step, WarpProgram};
use gfsl_workload::SplitMix64;
use mc_skiplist::{McParams, McSkipList};
use proptest::prelude::*;

fn drive_gfsl(list: &Gfsl, keys: Vec<u32>) -> Vec<bool> {
    let mut w = GfslContainsWarp::new(list, keys);
    while !matches!(w.step(), Step::Done) {}
    w.results
}

fn drive_mc(list: &McSkipList, keys: Vec<u32>) -> Vec<bool> {
    let mut w = McContainsWarp::new(list, keys);
    while !matches!(w.step(), Step::Done) {}
    w.results
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// GFSL warp answers == handle answers, after arbitrary insert/delete
    /// churn (which leaves zombies and multi-chunk levels behind).
    #[test]
    fn gfsl_warp_conforms(
        seed in any::<u64>(),
        team16 in any::<bool>(),
        n_build in 50usize..400,
        probes in proptest::collection::vec(1u32..600, 1..40),
    ) {
        let list = Gfsl::new(GfslParams {
            team_size: if team16 { TeamSize::Sixteen } else { TeamSize::ThirtyTwo },
            ..Default::default()
        }).unwrap();
        let mut h = list.handle();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..n_build {
            let k = rng.below(600) as u32 + 1;
            if rng.coin(0.7) {
                h.insert(k, k).unwrap();
            } else {
                h.remove(k);
            }
        }
        let expect: Vec<bool> = probes.iter().map(|&k| h.contains(k)).collect();
        let got = drive_gfsl(&list, probes);
        prop_assert_eq!(got, expect);
    }

    /// M&C warp answers == handle answers.
    #[test]
    fn mc_warp_conforms(
        seed in any::<u64>(),
        n_build in 50usize..400,
        probes in proptest::collection::vec(1u32..600, 1..32),
    ) {
        let list = McSkipList::new(McParams::sized_for(2_000)).unwrap();
        let mut h = list.handle();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..n_build {
            let k = rng.below(600) as u32 + 1;
            if rng.coin(0.7) {
                h.insert(k, k);
            } else {
                h.remove(k);
            }
        }
        let expect: Vec<bool> = probes.iter().map(|&k| h.contains(k)).collect();
        let got = drive_mc(&list, probes);
        prop_assert_eq!(got, expect);
    }
}

/// A full device run returns correct op counts and monotone-positive time,
/// and a warmer L2 makes a repeat run cheaper.
#[test]
fn device_end_to_end_with_gfsl_warps() {
    let list = Gfsl::new(GfslParams::sized_for(50_000)).unwrap();
    {
        let mut h = list.handle();
        for k in 1..=20_000u32 {
            h.insert(k, k).unwrap();
        }
    }
    let keys: Vec<u32> = (1..=4_000).collect();
    let run = |dev: &mut Device| {
        let warps: Vec<Box<dyn WarpProgram + '_>> = keys
            .chunks(100)
            .map(|c| Box::new(GfslContainsWarp::new(&list, c.to_vec())) as Box<dyn WarpProgram + '_>)
            .collect();
        dev.run(warps, keys.len() as u64)
    };
    let mut dev = Device::new(ExecConfig::default());
    let cold = run(&mut dev);
    assert_eq!(cold.ops, 4_000);
    assert!(cold.seconds > 0.0);
    assert!(cold.traffic.l2_misses > 0);
    let warm = run(&mut dev);
    assert!(
        warm.cycles <= cold.cycles,
        "warm L2 repeat must not be slower: {} vs {}",
        warm.cycles,
        cold.cycles
    );
}

/// Determinism end to end: identical device runs give identical cycles.
#[test]
fn device_runs_are_deterministic() {
    let list = Gfsl::new(GfslParams::sized_for(10_000)).unwrap();
    {
        let mut h = list.handle();
        for k in (1..=5_000u32).step_by(2) {
            h.insert(k, k).unwrap();
        }
    }
    let keys: Vec<u32> = (1..=2_000).collect();
    let go = || {
        let mut dev = Device::new(ExecConfig::default());
        let warps: Vec<Box<dyn WarpProgram + '_>> = keys
            .chunks(64)
            .map(|c| Box::new(GfslContainsWarp::new(&list, c.to_vec())) as Box<dyn WarpProgram + '_>)
            .collect();
        dev.run(warps, keys.len() as u64).cycles
    };
    assert_eq!(go(), go());
}
