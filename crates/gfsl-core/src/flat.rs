//! Flat-bottom (B-Skiplist style) engine variant.
//!
//! The GFSL chunk is sized to one warp: a team of `N` lanes reads `N`
//! words in one or two coalesced transactions. That makes every lateral
//! step cheap but keeps the bottom level *thin* — a 14-entry chunk per
//! cache line pair, so a dense key range is a long linked chain. The
//! B-Skiplist family (Crain et al.'s rotating skiplists, cache-sensitive
//! B+-layouts) makes the opposite bet: pack a *fat* sorted run of
//! hundreds of entries into each bottom node so the lateral chain almost
//! disappears, and keep a sparse skip index above for the descent.
//!
//! [`FlatSkiplist`] is that bet behind the same runtime-knob boundary the
//! [`BallotKernel`] knob established: a second engine, off by default,
//! judged head-to-head against the chunked GFSL in the hotpath experiment
//! grid. The position vote inside a fat leaf is [`BallotKernel::rank_le`]
//! — a rank (count of keys `<= k`) rather than a 32-lane ballot mask, so
//! both the scalar oracle and the SWAR kernel drive it.
//!
//! ## Concurrency
//!
//! The structure is deliberately simpler than GFSL's lock-free-read
//! protocol, because its point is memory layout, not synchronization:
//!
//! * a `RwLock` guards the *index* (the sorted fence array of leaves);
//! * every point/range operation holds the index **read** lock plus the
//!   covering leaf's `Mutex` for its whole critical section — so each
//!   operation is atomic at the leaf and trivially linearizable (the
//!   linearization point is inside the leaf critical section);
//! * structural changes (leaf split when full, leaf removal when empty)
//!   take the index **write** lock, which excludes every leaf-mutex
//!   holder (they all hold the read lock), so the splitter mutates
//!   leaves without further locking.
//!
//! Lock order is always index-then-leaf; at most one leaf mutex is held
//! at a time. No cycles, no deadlock.
//!
//! Every acquisition goes through a scheduled gate ([`lock_leaf`] and the
//! `index_read`/`index_write` helpers): outside a model-check hook it is
//! the plain blocking lock (no overhead beyond one thread-local check);
//! under [`crate::mc`]'s turnstile each attempt becomes a yield point, so
//! the schedule explorer enumerates lock-acquisition interleavings of
//! this protocol directly — including the leaf-split path.
//!
//! The [`KvEngine`] trait is the seam both engines implement
//! (per-thread handles, `&mut self` ops), and [`EngineKind`] is the
//! dispatch knob the harness grid and serving tier select on.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

use gfsl_simt::BallotKernel;
use parking_lot::{Mutex, RwLock};

use crate::chunk::is_user_key;
use crate::skiplist::GfslHandle;
use gfsl_gpu_mem::schedule::{self, AccessKind, SYNTH_FLAT_INDEX, SYNTH_FLAT_LEAF_BASE};
use gfsl_gpu_mem::MemProbe;

/// Which engine serves a keyspace: the paper's chunked GFSL or the
/// flat-bottom B-Skiplist variant. Off-by-default knob — [`EngineKind::Gfsl`]
/// is the paper-faithful engine; [`EngineKind::FlatBottom`] is the
/// locality-experiment challenger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Chunked GPU-friendly skiplist (the paper's algorithm).
    #[default]
    Gfsl,
    /// Fat sorted-run leaves with a fence index above ([`FlatSkiplist`]).
    FlatBottom,
}

impl EngineKind {
    /// Short label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Gfsl => "gfsl",
            EngineKind::FlatBottom => "flat",
        }
    }
}

/// The common per-thread operation surface of both engines: obtain one
/// handle per thread, call ops on it. Implemented by [`GfslHandle`] and
/// [`FlatHandle`] so harness cells and benches are generic over the
/// [`EngineKind`] knob.
pub trait KvEngine {
    /// Look up `k`; `Some(value)` when present.
    fn get(&mut self, k: u32) -> Option<u32>;
    /// Insert `(k, v)`; `true` when the key was absent and is now present.
    fn insert(&mut self, k: u32, v: u32) -> bool;
    /// Remove `k`; `true` when the key was present.
    fn remove(&mut self, k: u32) -> bool;
    /// Collect `lo..=hi` in ascending key order.
    fn range(&mut self, lo: u32, hi: u32) -> Vec<(u32, u32)>;
    /// Membership test.
    fn contains(&mut self, k: u32) -> bool {
        self.get(k).is_some()
    }
    /// Snapshot lookup: read `k` at a freshly pinned version (see
    /// `gfsl::mvcc`). Engines without multiversioning fall back to a plain
    /// `get` — indistinguishable for a single key; the distinct entry
    /// point exists so scripted model-check runs drive the version
    /// pin/publish/resolve protocol.
    fn snap_get(&mut self, k: u32) -> Option<u32> {
        self.get(k)
    }
}

impl<P: MemProbe> KvEngine for GfslHandle<'_, P> {
    fn get(&mut self, k: u32) -> Option<u32> {
        GfslHandle::get(self, k)
    }

    fn snap_get(&mut self, k: u32) -> Option<u32> {
        // Pin borrows the list (not the handle), so the ticket can live
        // across the `&mut self` versioned read.
        let list = self.list;
        match list.pin_version() {
            Some(t) => self.get_at(k, &t),
            None => GfslHandle::get(self, k),
        }
    }

    fn insert(&mut self, k: u32, v: u32) -> bool {
        GfslHandle::insert(self, k, v).expect("gfsl insert failed")
    }

    fn remove(&mut self, k: u32) -> bool {
        GfslHandle::remove(self, k)
    }

    fn range(&mut self, lo: u32, hi: u32) -> Vec<(u32, u32)> {
        GfslHandle::range(self, lo, hi)
    }
}

/// One fat leaf: a sorted run of packed `(val << 32) | key` words (same
/// encoding as a GFSL data word, so [`BallotKernel::rank_le`] reads the
/// low half), dense — no EMPTY sentinels, `len()` live entries.
#[derive(Debug)]
struct Leaf {
    /// Stable id for the model checker's synthetic lock address
    /// (`SYNTH_FLAT_LEAF_BASE | id`). Assigned in split order, which the
    /// turnstile serializes, so ids — and therefore trace hashes — are a
    /// deterministic function of the schedule.
    id: u32,
    entries: Mutex<Vec<u64>>,
}

/// Acquire a leaf mutex. Outside a scheduler hook this is the plain
/// blocking acquire; under a hook every attempt is a yield point, because
/// the turnstile only grants turns when all live threads are parked — a
/// thread blocked inside the OS lock would wedge it. Spinning through
/// `try_lock` with a [`schedule::wait_hint`] keeps acquisition order under
/// the scheduler's control instead of the OS's.
fn lock_leaf(leaf: &Leaf) -> MutexGuard<'_, Vec<u64>> {
    if !schedule::hooked() {
        return leaf.entries.lock();
    }
    let addr = SYNTH_FLAT_LEAF_BASE | leaf.id;
    loop {
        schedule::yield_point(AccessKind::Rmw, addr);
        if let Some(g) = leaf.entries.try_lock() {
            return g;
        }
        schedule::wait_hint(addr);
    }
}

#[inline]
fn pack(k: u32, v: u32) -> u64 {
    ((v as u64) << 32) | k as u64
}

/// Default fat-leaf capacity: 256 packed words = 2 KiB = 32 cache lines
/// of contiguous sorted keys, vs. 14 entries per chunk-chain hop in GFSL.
pub const FLAT_LEAF_CAP: usize = 256;

/// Structural-churn counters (leaf splits/merges), the flat analogue of
/// GFSL's `splits`/`merges` op stats.
#[derive(Debug, Default)]
pub struct FlatShape {
    /// Leaves currently in the index.
    pub leaves: usize,
    /// Live entries across all leaves.
    pub len: usize,
    /// Leaf splits performed since construction.
    pub splits: u64,
    /// Empty-leaf removals performed since construction.
    pub merges: u64,
}

/// Flat-bottom B-Skiplist engine: fence index over fat sorted-run leaves.
///
/// Shared by reference across threads; each thread calls
/// [`FlatSkiplist::handle`] and drives ops through [`KvEngine`].
#[derive(Debug)]
pub struct FlatSkiplist {
    kernel: BallotKernel,
    leaf_cap: usize,
    /// Sorted fence array: leaf `i` covers keys in `[fence[i], fence[i+1])`
    /// (last leaf is unbounded above). `fence[0] == 0` always, so every
    /// user key has a covering leaf.
    index: RwLock<Vec<(u32, Arc<Leaf>)>>,
    /// Next leaf id for model-check lock addresses (leaf 0 is the seed leaf).
    next_leaf_id: AtomicU32,
    splits: AtomicU64,
    merges: AtomicU64,
}

impl FlatSkiplist {
    /// An empty engine voting with `kernel`, default leaf capacity.
    pub fn new(kernel: BallotKernel) -> FlatSkiplist {
        FlatSkiplist::with_leaf_cap(kernel, FLAT_LEAF_CAP)
    }

    /// An empty engine with an explicit leaf capacity (tests use tiny
    /// capacities to force structural churn).
    pub fn with_leaf_cap(kernel: BallotKernel, leaf_cap: usize) -> FlatSkiplist {
        assert!(leaf_cap >= 2, "leaf capacity must allow a split");
        FlatSkiplist {
            kernel,
            leaf_cap,
            index: RwLock::new(vec![(
                0,
                Arc::new(Leaf {
                    id: 0,
                    entries: Mutex::new(Vec::new()),
                }),
            )]),
            next_leaf_id: AtomicU32::new(1),
            splits: AtomicU64::new(0),
            merges: AtomicU64::new(0),
        }
    }

    /// Acquire the index read lock (a model-check yield point when a
    /// scheduler hook is registered; see [`lock_leaf`]). Read-read
    /// acquisitions commute, so this gate is an [`AccessKind::Load`] and
    /// partial-order pruning treats two of them as independent.
    fn index_read(&self) -> RwLockReadGuard<'_, Vec<(u32, Arc<Leaf>)>> {
        if !schedule::hooked() {
            return self.index.read();
        }
        loop {
            schedule::yield_point(AccessKind::Load, SYNTH_FLAT_INDEX);
            if let Some(g) = self.index.try_read() {
                return g;
            }
            schedule::wait_hint(SYNTH_FLAT_INDEX);
        }
    }

    /// Acquire the index write lock (a model-check yield point when a
    /// scheduler hook is registered; see [`lock_leaf`]).
    fn index_write(&self) -> RwLockWriteGuard<'_, Vec<(u32, Arc<Leaf>)>> {
        if !schedule::hooked() {
            return self.index.write();
        }
        loop {
            schedule::yield_point(AccessKind::Rmw, SYNTH_FLAT_INDEX);
            if let Some(g) = self.index.try_write() {
                return g;
            }
            schedule::wait_hint(SYNTH_FLAT_INDEX);
        }
    }

    /// A per-thread handle (cheap; holds only the engine reference).
    pub fn handle(&self) -> FlatHandle<'_> {
        FlatHandle { list: self }
    }

    /// Index slot of the leaf covering `k` (fences sorted, `fence[0]=0`).
    #[inline]
    fn pos(index: &[(u32, Arc<Leaf>)], k: u32) -> usize {
        index.partition_point(|&(fence, _)| fence <= k) - 1
    }

    /// Split the (full) leaf covering `k` under the index write lock.
    /// A racing split may have already made room; that is fine — the
    /// caller retries its op either way.
    fn split_covering(&self, k: u32) {
        let mut index = self.index_write();
        let i = Self::pos(&index, k);
        // Write lock excludes all leaf-mutex holders (they hold the read
        // lock), so this lock is uncontended and purely for &mut access.
        // Still gated: if that exclusion argument were ever broken, the
        // model checker's try-lock spin would livelock here and trip the
        // episode step bomb instead of silently blocking.
        let mut entries = lock_leaf(&index[i].1);
        if entries.len() < self.leaf_cap {
            return;
        }
        let mid = entries.len() / 2;
        let upper = entries.split_off(mid);
        let fence = upper[0] as u32;
        drop(entries);
        index.insert(
            i + 1,
            (
                fence,
                Arc::new(Leaf {
                    id: self.next_leaf_id.fetch_add(1, Ordering::Relaxed),
                    entries: Mutex::new(upper),
                }),
            ),
        );
        self.splits.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop the (empty) leaf covering `k` under the index write lock,
    /// merging its key range into a neighbour's fence.
    fn retire_covering(&self, k: u32) {
        let mut index = self.index_write();
        if index.len() <= 1 {
            return;
        }
        let i = Self::pos(&index, k);
        if !lock_leaf(&index[i].1).is_empty() {
            return; // racing insert refilled it
        }
        index.remove(i);
        if i == 0 {
            // The new first leaf inherits coverage from key 0 up.
            index[0].0 = 0;
        }
        self.merges.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the structure (leaf count, entry count, churn totals).
    pub fn shape(&self) -> FlatShape {
        let index = self.index.read();
        FlatShape {
            leaves: index.len(),
            len: index.iter().map(|(_, l)| l.entries.lock().len()).sum(),
            splits: self.splits.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
        }
    }

    /// Structural invariants: fences strictly sorted starting at 0, every
    /// leaf sorted/unique/within its fence window. Panics on violation.
    pub fn assert_valid(&self) {
        let index = self.index.read();
        assert_eq!(index[0].0, 0, "first fence must cover key 0");
        for w in index.windows(2) {
            assert!(w[0].0 < w[1].0, "fences must be strictly increasing");
        }
        for (i, (fence, leaf)) in index.iter().enumerate() {
            let hi = index.get(i + 1).map_or(u32::MAX, |&(f, _)| f);
            let entries = leaf.entries.lock();
            for w in entries.windows(2) {
                assert!(
                    (w[0] as u32) < (w[1] as u32),
                    "leaf {i} keys must be strictly sorted"
                );
            }
            for &e in entries.iter() {
                let key = e as u32;
                assert!(is_user_key(key), "leaf {i} holds sentinel key {key}");
                assert!(
                    *fence <= key && (i + 1 == index.len() || key < hi),
                    "leaf {i} key {key} outside fence [{fence}, {hi})"
                );
            }
        }
    }
}

/// Per-thread handle over a shared [`FlatSkiplist`].
#[derive(Debug)]
pub struct FlatHandle<'a> {
    list: &'a FlatSkiplist,
}

impl KvEngine for FlatHandle<'_> {
    fn get(&mut self, k: u32) -> Option<u32> {
        let index = self.list.index_read();
        let entries = lock_leaf(&index[FlatSkiplist::pos(&index, k)].1);
        let r = self.list.kernel.rank_le(&entries, k);
        match r.checked_sub(1).map(|i| entries[i]) {
            Some(e) if e as u32 == k => Some((e >> 32) as u32),
            _ => None,
        }
    }

    fn insert(&mut self, k: u32, v: u32) -> bool {
        assert!(is_user_key(k), "key {k} is a reserved sentinel");
        loop {
            {
                let index = self.list.index_read();
                let mut entries = lock_leaf(&index[FlatSkiplist::pos(&index, k)].1);
                let r = self.list.kernel.rank_le(&entries, k);
                if r > 0 && entries[r - 1] as u32 == k {
                    return false;
                }
                if entries.len() < self.list.leaf_cap {
                    entries.insert(r, pack(k, v));
                    return true;
                }
            }
            // Leaf full: drop both locks, split under the write lock, retry.
            self.list.split_covering(k);
        }
    }

    fn remove(&mut self, k: u32) -> bool {
        let emptied = {
            let index = self.list.index_read();
            let mut entries = lock_leaf(&index[FlatSkiplist::pos(&index, k)].1);
            let r = self.list.kernel.rank_le(&entries, k);
            if r == 0 || entries[r - 1] as u32 != k {
                return false;
            }
            entries.remove(r - 1);
            entries.is_empty()
        };
        if emptied {
            self.list.retire_covering(k);
        }
        true
    }

    fn range(&mut self, lo: u32, hi: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let index = self.list.index_read();
        // Holding the read lock pins the leaf set; each leaf is snapshotted
        // atomically under its mutex, and fences guarantee ascending order
        // across leaves.
        for i in FlatSkiplist::pos(&index, lo)..index.len() {
            let (fence, leaf) = &index[i];
            if *fence > hi {
                break;
            }
            let entries = lock_leaf(leaf);
            let from = if lo == 0 { 0 } else { self.list.kernel.rank_le(&entries, lo - 1) };
            let to = self.list.kernel.rank_le(&entries, hi);
            out.extend(entries[from..to].iter().map(|&e| (e as u32, (e >> 32) as u32)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops_and_duplicates() {
        let list = FlatSkiplist::new(BallotKernel::Swar);
        let mut h = list.handle();
        assert!(h.insert(10, 100));
        assert!(!h.insert(10, 999), "duplicate rejected");
        assert_eq!(h.get(10), Some(100), "first value wins");
        assert!(!h.contains(11));
        assert!(h.remove(10));
        assert!(!h.remove(10));
        assert_eq!(h.get(10), None);
        list.assert_valid();
    }

    #[test]
    fn splits_keep_order_and_coverage() {
        let list = FlatSkiplist::with_leaf_cap(BallotKernel::Swar, 8);
        let mut h = list.handle();
        // Shuffled inserts force splits at several fences.
        for k in (1..=500u32).rev() {
            assert!(h.insert(k * 7, k));
        }
        let shape = list.shape();
        assert_eq!(shape.len, 500);
        assert!(shape.leaves > 50, "tiny leaves must have split: {shape:?}");
        assert!(shape.splits >= shape.leaves as u64 - 1);
        for k in 1..=500u32 {
            assert_eq!(h.get(k * 7), Some(k));
            assert_eq!(h.get(k * 7 - 1), None);
        }
        list.assert_valid();
    }

    #[test]
    fn removals_retire_empty_leaves() {
        let list = FlatSkiplist::with_leaf_cap(BallotKernel::Scalar, 4);
        let mut h = list.handle();
        for k in 1..=100u32 {
            h.insert(k, k);
        }
        for k in 1..=100u32 {
            assert!(h.remove(k));
        }
        let shape = list.shape();
        assert_eq!(shape.len, 0);
        assert_eq!(shape.leaves, 1, "all empty leaves retired: {shape:?}");
        assert!(shape.merges > 0);
        // Structure still serves inserts across the whole keyspace.
        assert!(h.insert(1, 1) && h.insert(u32::MAX - 1, 2));
        list.assert_valid();
    }

    #[test]
    fn range_spans_leaves_sorted() {
        let list = FlatSkiplist::with_leaf_cap(BallotKernel::Swar, 8);
        let mut h = list.handle();
        for k in 1..=300u32 {
            h.insert(k * 3, k);
        }
        let got = h.range(30, 60);
        let want: Vec<(u32, u32)> = (10..=20).map(|k| (k * 3, k)).collect();
        assert_eq!(got, want);
        assert_eq!(h.range(10, 5), vec![], "inverted bounds");
        assert_eq!(h.range(1, u32::MAX - 1).len(), 300);
    }

    #[test]
    fn kernels_agree_on_flat_ops() {
        let scalar = FlatSkiplist::with_leaf_cap(BallotKernel::Scalar, 16);
        let swar = FlatSkiplist::with_leaf_cap(BallotKernel::Swar, 16);
        let (mut a, mut b) = (scalar.handle(), swar.handle());
        let mut x = 0x243F_6A88u32; // deterministic xorshift
        for _ in 0..4_000 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let k = x % 512 + 1;
            match x % 3 {
                0 => assert_eq!(a.insert(k, x), b.insert(k, x)),
                1 => assert_eq!(a.remove(k), b.remove(k)),
                _ => assert_eq!(a.get(k), b.get(k)),
            }
        }
        assert_eq!(a.range(1, 600), b.range(1, 600));
        scalar.assert_valid();
        swar.assert_valid();
    }
}
