//! Complete benchmark specifications binding mixture, range, op count, and
//! prefill the way the paper's Chapter 5 does.

use serde::{Deserialize, Serialize};

use crate::mix::OpMix;
use crate::prefill::Prefill;

/// Which family of benchmark this is; decides the prefill and op-count
/// conventions of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BenchKind {
    /// Mixed-operation test: 10M ops over a half-full structure.
    Mixed,
    /// Contains-only: 10M ops over a full structure.
    ContainsOnly,
    /// Insert-only: `key_range` ops into an empty structure.
    InsertOnly,
    /// Delete-only: `key_range` ops over a full structure.
    DeleteOnly,
}

/// A fully-specified benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Benchmark family.
    pub kind: BenchKind,
    /// Operation mixture (ignored-but-consistent for single-op kinds).
    pub mix: OpMix,
    /// Key range: keys are drawn uniformly from `1..=key_range`.
    pub key_range: u32,
    /// Number of timed operations.
    pub n_ops: usize,
    /// Master seed; all streams derive from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A mixed-operation benchmark per §5.1 (`n_ops` defaults to the
    /// paper's 10M via [`WorkloadSpec::paper_ops`]; pass your own for quick
    /// runs).
    pub fn mixed(mix: OpMix, key_range: u32, n_ops: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            kind: BenchKind::Mixed,
            mix,
            key_range,
            n_ops,
            seed,
        }
    }

    /// A single-operation-type benchmark per §5.1: Contains runs `n_ops`
    /// operations; Insert/Delete run exactly `key_range` operations ("in
    /// order not to oversaturate small structures").
    pub fn single(kind: BenchKind, key_range: u32, contains_ops: usize, seed: u64) -> WorkloadSpec {
        let (mix, n_ops) = match kind {
            BenchKind::ContainsOnly => (OpMix::CONTAINS_ONLY, contains_ops),
            BenchKind::InsertOnly => (OpMix::INSERT_ONLY, key_range as usize),
            BenchKind::DeleteOnly => (OpMix::DELETE_ONLY, key_range as usize),
            BenchKind::Mixed => panic!("use WorkloadSpec::mixed for mixed benchmarks"),
        };
        WorkloadSpec {
            kind,
            mix,
            key_range,
            n_ops,
            seed,
        }
    }

    /// The paper's timed operation count for mixed and Contains tests.
    pub const fn paper_ops() -> usize {
        10_000_000
    }

    /// Prefill policy implied by the benchmark kind.
    pub fn prefill(&self) -> Prefill {
        match self.kind {
            BenchKind::Mixed => Prefill::HalfRandom,
            BenchKind::ContainsOnly | BenchKind::DeleteOnly => Prefill::FullShuffled,
            BenchKind::InsertOnly => Prefill::Empty,
        }
    }

    /// Materialize the prefill keys.
    pub fn prefill_keys(&self) -> Vec<u32> {
        self.prefill().keys(self.key_range, self.seed)
    }

    /// Materialize the timed operation stream.
    ///
    /// For Insert-only over an empty structure, uniform draws would waste
    /// ~37% of inserts on duplicates; the paper inserts the *range* (op
    /// count = range), so we draw keys as a shuffled permutation there.
    /// Delete-only mirrors it (every delete hits). Everything else is
    /// uniform random.
    pub fn ops(&self) -> Vec<crate::mix::Op> {
        use crate::mix::Op;
        match self.kind {
            BenchKind::InsertOnly => {
                let mut keys: Vec<u32> = (1..=self.key_range).collect();
                crate::rng::shuffle(&mut keys, &mut crate::rng::SplitMix64::new(self.seed ^ 0x0B5));
                keys.truncate(self.n_ops);
                keys.into_iter().map(|k| Op::Insert(k, k)).collect()
            }
            BenchKind::DeleteOnly => {
                let mut keys: Vec<u32> = (1..=self.key_range).collect();
                crate::rng::shuffle(&mut keys, &mut crate::rng::SplitMix64::new(self.seed ^ 0x0B5));
                keys.truncate(self.n_ops);
                keys.into_iter().map(Op::Delete).collect()
            }
            _ => self.mix.stream(self.seed ^ 0x0550_0055, self.key_range, self.n_ops),
        }
    }

    /// Human-readable range label (10K, 1M, ...).
    pub fn range_label(&self) -> String {
        format_count(self.key_range as u64)
    }
}

/// Format a count the way the paper labels ranges: 10K, 300K, 1M, 100M.
pub fn format_count(n: u64) -> String {
    if n >= 1_000_000 && n.is_multiple_of(1_000_000) {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000 && n.is_multiple_of(1_000) {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::OpKind;

    #[test]
    fn mixed_spec_conventions() {
        let s = WorkloadSpec::mixed(OpMix::C80, 1_000_000, 10_000, 99);
        assert_eq!(s.prefill(), Prefill::HalfRandom);
        assert_eq!(s.prefill().expected_len(s.key_range), 500_000);
        assert_eq!(s.ops().len(), 10_000);
    }

    #[test]
    fn insert_only_is_permutation_sized_to_range() {
        let s = WorkloadSpec::single(BenchKind::InsertOnly, 5000, 0, 1);
        assert_eq!(s.n_ops, 5000);
        assert_eq!(s.prefill(), Prefill::Empty);
        let ops = s.ops();
        assert!(ops.iter().all(|o| o.kind() == OpKind::Insert));
        let mut keys: Vec<u32> = ops.iter().map(|o| o.key()).collect();
        keys.sort_unstable();
        assert_eq!(keys, (1..=5000).collect::<Vec<_>>(), "every key exactly once");
    }

    #[test]
    fn delete_only_deletes_each_key_once() {
        let s = WorkloadSpec::single(BenchKind::DeleteOnly, 300, 0, 1);
        assert_eq!(s.prefill(), Prefill::FullShuffled);
        let ops = s.ops();
        assert_eq!(ops.len(), 300);
        let mut keys: Vec<u32> = ops.iter().map(|o| o.key()).collect();
        keys.sort_unstable();
        assert_eq!(keys, (1..=300).collect::<Vec<_>>());
    }

    #[test]
    fn contains_only_uses_requested_ops() {
        let s = WorkloadSpec::single(BenchKind::ContainsOnly, 300, 4444, 1);
        assert_eq!(s.n_ops, 4444);
        assert_eq!(s.prefill(), Prefill::FullShuffled);
        assert!(s.ops().iter().all(|o| o.kind() == OpKind::Contains));
    }

    #[test]
    fn format_count_labels() {
        assert_eq!(format_count(10_000), "10K");
        assert_eq!(format_count(300_000), "300K");
        assert_eq!(format_count(1_000_000), "1M");
        assert_eq!(format_count(100_000_000), "100M");
        assert_eq!(format_count(123), "123");
    }

    #[test]
    fn spec_streams_are_seed_deterministic() {
        let a = WorkloadSpec::mixed(OpMix::C90, 1000, 100, 5);
        let b = WorkloadSpec::mixed(OpMix::C90, 1000, 100, 5);
        assert_eq!(a.ops(), b.ops());
        assert_eq!(a.prefill_keys(), b.prefill_keys());
    }
}
