//! Online scrub-and-repair of crash-quarantined chunks (DESIGN.md §13).
//!
//! When a contained operation crashes ([`crate::GfslParams::contain`]), its
//! held chunks are parked — still lock-held — in the structure's quarantine
//! set together with their certified pre-op snapshots and the crashed op's
//! journal intent. [`GfslHandle::repair_quarantine`] walks that set and
//! decides, per chunk, between **roll-forward** (complete the structural
//! mutation the journal proves was in flight: publish-side of a split, the
//! zombie mark of a copied merge) and **roll-back** (restore the pre-op
//! snapshot certified by the versioned lock word, or retire a never-published
//! orphan), then releases the lock with a version bump so waiters, hints and
//! certification observe the repair as an ordinary writer critical section.
//!
//! The decision is safe against lock-free readers because a crashed op's
//! chunks are each *individually consistent* (the protocol's crash points
//! all precede their stores, and the shift/copy loops contain none), and
//! roll-back is applied only to states readers cannot have observed: a
//! never-published split half is unreachable, and a partially-merged
//! absorber only ever gains entries that duplicate live ones in the (still
//! linked, still locked) dying chunk with identical key *and* value.
//! Anything a reader could have answered `Found` from is rolled forward.
//!
//! [`GfslHandle::scrub_step`] is the other half of the subsystem: an
//! incremental background walk re-validating settled (unlocked, non-zombie)
//! chunks against the same chunk-local invariants the validator uses,
//! counting only violations that survive a certified re-read.

use gfsl_gpu_mem::MemProbe;
use std::sync::atomic::Ordering;

use crate::chunk::{
    lock_state, ops, Entry, KEY_NEG_INF, LOCK_LOCKED, LOCK_STATE_MASK, LOCK_UNLOCKED,
    LOCK_VERSION_UNIT, LOCK_ZOMBIE, NIL,
};
use crate::skiplist::{GfslHandle, Intent, QuarantinedChunk, RepairStats};
use crate::validate::chunk_rules;

/// A down-pointer repair deferred until every quarantined lock has been
/// released (running it earlier could wait on a chunk this very repair pass
/// still holds).
struct DownPtrFix {
    level: usize,
    moved: Vec<u32>,
    target: u32,
}

impl<P: MemProbe> GfslHandle<'_, P> {
    /// Repair every quarantined chunk and release its lock, then re-install
    /// the down-pointers of keys the completed splits/merges moved. Returns
    /// the post-repair [`RepairStats`] snapshot.
    ///
    /// Any handle may run this (it is the maintenance half of containment);
    /// concurrent callers each drain a disjoint batch. Operations that were
    /// waiting on a quarantined chunk resume (or re-run after their typed
    /// abort) once the lock is released here.
    pub fn repair_quarantine(&mut self) -> RepairStats {
        let entries: Vec<QuarantinedChunk> = {
            let mut q = self
                .list
                .quarantine
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            let drained = std::mem::take(&mut *q);
            self.list.quarantine_len.store(0, Ordering::Release);
            drained
        };
        if entries.is_empty() {
            return self.list.repair_stats();
        }
        let mut fixes: Vec<DownPtrFix> = Vec::new();
        for entry in &entries {
            self.repair_one(entry, &mut fixes);
        }
        // All structural locks are released; now the deferred down-pointer
        // installs can run as ordinary (contained) operations. Losing one to
        // an abort is tolerable: stale down-pointers are legal (they land
        // left of the key and lateral steps recover).
        for fix in fixes {
            if self
                .contained(|h| h.with_pin(|h| h.update_down_ptrs(fix.level, &fix.moved, fix.target)))
                .is_ok()
            {
                self.list
                    .recovery
                    .downptr_repairs
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        self.list.repair_stats()
    }

    /// Apply the roll-forward / roll-back decision table to one quarantined
    /// chunk and release its lock.
    fn repair_one(&mut self, entry: &QuarantinedChunk, fixes: &mut Vec<DownPtrFix>) {
        let team = self.list.team;
        let c = entry.chunk;
        match entry.intent {
            // A split half that was never published: unreachable orphan.
            // Roll back by retiring it (readers cannot hold a pointer to a
            // chunk that was allocated and quarantined within one op).
            Intent::Split {
                new,
                level,
                published: false,
                ..
            } if c == new => {
                self.quarantine_zombie(c);
                if let Some(rec) = self.list.reclaim.as_ref() {
                    // Safe to retire directly: unlike a merged-away zombie,
                    // an unpublished half is linked from nowhere, so no lazy
                    // unlink will ever retire it for us.
                    rec.retire(c, level.min(u8::MAX as usize) as u8);
                }
                self.bump(|r| &r.repaired_back);
            }
            // The published side of a split: the one-word publish is the
            // split's commit point, so roll forward — drop the moved tail
            // (its copies live in the new half), release, and account the
            // new chunk (the crashed op died before its caller could).
            Intent::Split {
                split,
                new,
                thresh,
                level,
                published: true,
            } if c == split => {
                let view = self.read_chunk(c);
                for i in (0..team.dsize()).rev() {
                    let e = view.entry(i);
                    if !e.is_empty() && e.key() > thresh {
                        ops::write_entry(
                            &self.list.pool,
                            &mut self.probe,
                            self.list.chunk(c),
                            i,
                            Entry::EMPTY,
                        );
                    }
                }
                self.quarantine_unlock(c);
                self.list.inc_level_chunks(level);
                let moved: Vec<u32> = entry
                    .snapshot
                    .iter()
                    .take(team.dsize())
                    .map(|&w| Entry(w))
                    .filter(|e| !e.is_empty() && e.key() > thresh)
                    .map(|e| e.key())
                    .collect();
                if !moved.is_empty() {
                    fixes.push(DownPtrFix {
                        level,
                        moved,
                        target: new,
                    });
                }
                self.bump(|r| &r.repaired_forward);
            }
            // A merge whose copy completed: every survivor already lives in
            // the absorber, so roll forward by issuing the zombie mark the
            // crashed op died before. The zombie stays linked; the normal
            // lazy unlink machinery retires it later.
            Intent::Merge {
                dying,
                absorber,
                k,
                level,
                copied: true,
            } if c == dying => {
                let view = self.read_chunk(c);
                let moved: Vec<u32> = view
                    .live_entries(&team)
                    .map(|(_, e)| e.key())
                    .filter(|&key| key != k && key != KEY_NEG_INF)
                    .collect();
                self.quarantine_zombie(c);
                self.list.dec_level_chunks(level);
                if !moved.is_empty() {
                    fixes.push(DownPtrFix {
                        level,
                        moved,
                        target: absorber,
                    });
                }
                self.bump(|r| &r.repaired_forward);
            }
            // The absorber of a completed copy is consistent by
            // construction: release it as-is (its new entries are the
            // dying chunk's survivors).
            Intent::Merge {
                absorber,
                copied: true,
                ..
            } if c == absorber => {
                self.quarantine_unlock(c);
                self.bump(|r| &r.unpoisoned_clean);
            }
            // No applicable intent: decide from the chunk image itself.
            // Crash points all precede their stores, so in practice the
            // image passes and is released untouched; the snapshot restore
            // is the defensive roll-back for a genuinely torn image.
            _ => {
                let view = self.read_chunk(c);
                if chunk_rules(&team, &view, 0, c).is_empty() {
                    self.quarantine_unlock(c);
                    self.bump(|r| &r.unpoisoned_clean);
                } else {
                    self.restore_snapshot(c, &entry.snapshot);
                    self.quarantine_unlock(c);
                    self.bump(|r| &r.repaired_back);
                }
            }
        }
    }

    /// Overwrite every non-lock lane of `c` from its quarantine snapshot.
    /// The lock lane is deliberately *not* restored: the snapshot holds the
    /// pre-acquisition word, and rewinding the version would break snapshot
    /// certification and hint validation.
    fn restore_snapshot(&mut self, c: u32, snapshot: &[u64]) {
        let team = self.list.team;
        if snapshot.len() != team.lanes() {
            return; // no certified snapshot recorded; leave the image alone
        }
        let ch = self.list.chunk(c);
        for (i, &w) in snapshot.iter().enumerate() {
            if i == team.lock_lane() {
                continue;
            }
            self.probe.lane_write(ch.entry_addr(i));
            self.list.pool.write(ch.entry_addr(i), w);
        }
    }

    /// Release a quarantined chunk's lock with a version bump (the
    /// un-poisoning step; equivalent to [`ops::unlock`] minus its
    /// crash point, which must not fire inside the repairer).
    fn quarantine_unlock(&mut self, c: u32) {
        let team = self.list.team;
        let addr = self.list.chunk(c).entry_addr(team.lock_lane());
        let cur = self.list.pool.read(addr);
        debug_assert_eq!(lock_state(cur), LOCK_LOCKED, "repairing an unheld chunk {c}");
        self.probe.lane_write(addr);
        self.list.pool.write(
            addr,
            (cur & !LOCK_STATE_MASK).wrapping_add(LOCK_VERSION_UNIT) | LOCK_UNLOCKED,
        );
    }

    /// Convert a quarantined chunk's held lock into the terminal zombie
    /// marker, preserving the version exactly like [`ops::mark_zombie`].
    fn quarantine_zombie(&mut self, c: u32) {
        let team = self.list.team;
        let addr = self.list.chunk(c).entry_addr(team.lock_lane());
        let cur = self.list.pool.read(addr);
        debug_assert_eq!(lock_state(cur), LOCK_LOCKED, "zombifying an unheld chunk {c}");
        self.probe.lane_write(addr);
        self.list
            .pool
            .write(addr, (cur & !LOCK_STATE_MASK) | LOCK_ZOMBIE);
    }

    #[inline]
    fn bump(&self, f: impl Fn(&crate::skiplist::RecoveryCounters) -> &std::sync::atomic::AtomicU64) {
        f(&self.list.recovery).fetch_add(1, Ordering::Relaxed);
    }

    /// One increment of the background scrubber: re-validate up to `budget`
    /// chunks against the chunk-local invariants (the shared
    /// `validate::chunk_rules`), advancing a structure-wide cursor across
    /// levels so repeated calls cover the whole structure. Returns the
    /// number of chunks visited (settled or not).
    ///
    /// Locked and zombie chunks are skipped (in flux / terminal); a
    /// suspected violation is counted only when a certified re-read — the
    /// same unlocked lock word observed twice — still shows it, so an
    /// in-flight writer can never produce a false positive.
    pub fn scrub_step(&mut self, budget: usize) -> usize {
        let team = self.list.team;
        let levels = self.list.params.max_levels();
        let mut cursor = *self
            .list
            .scrub_cursor
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let mut visited = 0usize;
        while visited < budget {
            let (level, chunk) = cursor;
            let view = self.read_chunk(chunk);
            let word = view.lock_word(&team);
            if lock_state(word) == LOCK_UNLOCKED {
                if !chunk_rules(&team, &view, level, chunk).is_empty() {
                    // Certify before counting: the first read may have torn
                    // across an active writer's stores.
                    let v2 = self.read_chunk(chunk);
                    if v2.lock_word(&team) == word {
                        let confirmed = chunk_rules(&team, &v2, level, chunk).len();
                        if confirmed > 0 {
                            self.list
                                .recovery
                                .scrub_violations
                                .fetch_add(confirmed as u64, Ordering::Relaxed);
                        }
                    }
                }
                self.list
                    .recovery
                    .scrubbed_chunks
                    .fetch_add(1, Ordering::Relaxed);
            }
            visited += 1;
            let next = view.next(&team);
            cursor = if next == NIL {
                let nl = (level + 1) % levels;
                (nl, self.list.head_of(nl))
            } else {
                (level, next)
            };
        }
        *self
            .list
            .scrub_cursor
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = cursor;
        visited
    }
}

#[cfg(test)]
mod tests {
    use crate::chaos::{ChaosController, ChaosOptions};
    use crate::params::GfslParams;
    use crate::skiplist::{AbortReason, Error, Gfsl};
    use gfsl_gpu_mem::CrashPoint;
    use gfsl_simt::TeamSize;

    fn contain16() -> GfslParams {
        GfslParams {
            team_size: TeamSize::Sixteen,
            pool_chunks: 1 << 12,
            contain: true,
            ..Default::default()
        }
    }

    fn crash_once_at(point: CrashPoint) -> std::sync::Arc<ChaosController> {
        ChaosController::new(
            1,
            ChaosOptions {
                panic_at: Some((point, 1)),
                max_stall_turns: 0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn scrub_covers_clean_structure_without_violations() {
        let list = Gfsl::new(contain16()).unwrap();
        let mut h = list.handle();
        for k in 1..=600u32 {
            h.insert(k, k).unwrap();
        }
        let visited = h.scrub_step(512);
        assert_eq!(visited, 512, "budget fully spent (cursor wraps levels)");
        let stats = list.repair_stats();
        assert!(stats.scrubbed_chunks > 0, "settled chunks must be scrubbed");
        assert_eq!(stats.scrub_violations, 0, "clean structure, no violations");
    }

    #[test]
    fn repair_on_empty_quarantine_is_noop() {
        let list = Gfsl::new(contain16()).unwrap();
        let mut h = list.handle();
        h.insert(5, 5).unwrap();
        let stats = h.repair_quarantine();
        assert_eq!(stats.quarantine_depth, 0);
        assert_eq!(
            stats.repaired_forward + stats.repaired_back + stats.unpoisoned_clean,
            0
        );
        list.assert_valid();
    }

    #[test]
    fn split_publish_crash_quarantines_then_repairs() {
        let list = Gfsl::new(contain16()).unwrap();
        let ctl = crash_once_at(CrashPoint::SplitPublish);
        let mut acked = Vec::new();
        let mut crashed = None;
        let mut h = list.handle_with(ctl.probe(0));
        for k in 1..=60u32 {
            let mut attempts = 0;
            loop {
                attempts += 1;
                assert!(attempts < 8, "key {k} not making progress");
                match h.try_insert(k, k) {
                    Ok(true) => {
                        acked.push(k);
                        break;
                    }
                    Ok(false) => break, // a crashed insert that rolled forward
                    Err(Error::Aborted(a)) => {
                        if a.reason == AbortReason::Crashed {
                            assert!(crashed.is_none(), "chaos injects exactly one crash");
                            crashed = Some(k);
                            assert!(
                                list.quarantine_depth() > 0,
                                "crash must quarantine the held chunks"
                            );
                        } else {
                            assert_eq!(a.reason, AbortReason::Quarantined);
                        }
                        let stats = list.handle().repair_quarantine();
                        assert_eq!(stats.quarantine_depth, 0, "repair drains the set");
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        drop(h);
        assert!(crashed.is_some(), "SplitPublish occurrence 1 must fire");
        let stats = list.repair_stats();
        assert_eq!(stats.crashed_ops, 1);
        assert!(stats.chunks_quarantined >= 2, "split holds both halves");
        assert!(
            stats.repaired_back >= 1,
            "the never-published split half rolls back (retired)"
        );
        list.assert_valid();
        let mut h = list.handle();
        for &a in &acked {
            assert!(h.contains(a), "acknowledged key {a} lost after repair");
        }
        assert_eq!(list.keys(), (1..=60u32).collect::<Vec<_>>());
    }

    #[test]
    fn merge_zombie_crash_rolls_forward() {
        let list = Gfsl::new(contain16()).unwrap();
        {
            let mut h = list.handle();
            for k in 1..=200u32 {
                h.insert(k * 10, k).unwrap();
            }
        }
        let ctl = crash_once_at(CrashPoint::MergeZombieMark);
        let mut h = list.handle_with(ctl.probe(0));
        for k in 1..=200u32 {
            let key = k * 10;
            let mut attempts = 0;
            loop {
                attempts += 1;
                assert!(attempts < 8, "key {key} not making progress");
                match h.try_remove(key) {
                    // Ok(false) happens when the crashed remove of this very
                    // key was completed by the repair's roll-forward.
                    Ok(_) => break,
                    Err(Error::Aborted(a)) => {
                        if a.reason != AbortReason::Crashed {
                            assert_eq!(a.reason, AbortReason::Quarantined);
                        }
                        let stats = list.handle().repair_quarantine();
                        assert_eq!(stats.quarantine_depth, 0, "repair drains the set");
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        drop(h);
        let stats = list.repair_stats();
        assert_eq!(stats.crashed_ops, 1, "MergeZombieMark occurrence 1 fires");
        assert!(
            stats.repaired_forward + stats.unpoisoned_clean >= 1,
            "merge repair acts on the quarantined pair"
        );
        list.assert_valid();
        assert!(list.is_empty(), "every key removed after repair");
    }
}