//! Deterministic schedule exploration.
//!
//! Every memory access of the simulated device goes through a [`MemProbe`]
//! hook *before* it executes. [`YieldProbe`] exploits that: it blocks each
//! access until a seeded scheduler grants the thread a turn, serializing
//! all participating threads' accesses into one reproducible interleaving.
//! Different seeds give different interleavings — a lightweight
//! model-checking harness that exercises the *actual* concurrent code (no
//! state-machine re-implementation, no lost fidelity) at per-access
//! granularity.
//!
//! Liveness: spin-locks remain live because every spin iteration performs
//! a (gated) access, and the uniform seeded choice grants every waiter
//! infinitely often with probability 1.

use std::sync::{Arc, Condvar, Mutex};

use crate::layout::WordAddr;
use crate::probe::MemProbe;

struct State {
    /// Threads currently blocked waiting for a turn.
    waiting: Vec<bool>,
    /// Threads that have retired (no further accesses).
    retired: Vec<bool>,
    /// The thread currently allowed to run its next access.
    granted: Option<usize>,
    /// SplitMix64 state for turn selection.
    rng: u64,
}

impl State {
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Pick a waiting thread uniformly at random (seeded), if any.
    fn choose(&mut self) -> Option<usize> {
        let candidates: Vec<usize> = self
            .waiting
            .iter()
            .enumerate()
            .filter(|&(i, &w)| w && !self.retired[i])
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            let pick = self.next_u64() as usize % candidates.len();
            Some(candidates[pick])
        }
    }
}

/// A seeded turnstile scheduler shared by a set of [`YieldProbe`]s.
pub struct Turnstile {
    state: Mutex<State>,
    cv: Condvar,
}

impl Turnstile {
    /// A turnstile for `threads` participants, with a schedule decided by
    /// `seed`.
    pub fn new(threads: usize, seed: u64) -> Arc<Turnstile> {
        Arc::new(Turnstile {
            state: Mutex::new(State {
                waiting: vec![false; threads],
                retired: vec![false; threads],
                granted: None,
                rng: seed,
            }),
            cv: Condvar::new(),
        })
    }

    /// A probe for participant `id` (each id in `0..threads` must be used
    /// by exactly one thread).
    pub fn probe(self: &Arc<Turnstile>, id: usize) -> YieldProbe {
        YieldProbe {
            turnstile: self.clone(),
            id,
        }
    }

    /// Block until the scheduler grants `id` a turn; the caller performs
    /// exactly one access and re-enters on its next access.
    ///
    /// A turn is only ever granted when *every* live participant is parked
    /// here — that is what makes the schedule a pure function of the seed
    /// rather than of OS timing.
    fn step(&self, id: usize) {
        let mut st = self.state.lock().unwrap();
        st.waiting[id] = true;
        loop {
            if st.granted == Some(id) {
                st.granted = None;
                st.waiting[id] = false;
                self.cv.notify_all();
                return;
            }
            if st.granted.is_none() {
                let live = st.retired.iter().filter(|&&r| !r).count();
                let parked = st
                    .waiting
                    .iter()
                    .zip(&st.retired)
                    .filter(|&(&w, &r)| w && !r)
                    .count();
                if parked == live {
                    if let Some(next) = st.choose() {
                        st.granted = Some(next);
                        self.cv.notify_all();
                        if next == id {
                            continue;
                        }
                    }
                }
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Declare participant `id` finished: it will make no further accesses
    /// and must not block others' turn selection.
    pub fn retire(&self, id: usize) {
        let mut st = self.state.lock().unwrap();
        if st.retired[id] {
            return;
        }
        st.retired[id] = true;
        st.waiting[id] = false;
        if st.granted == Some(id) {
            st.granted = None;
        }
        // Wake everyone: the all-parked condition may now hold.
        self.cv.notify_all();
    }
}

/// A probe that yields to the [`Turnstile`] before every access (and
/// performs no counting). Wraps production code unchanged.
pub struct YieldProbe {
    turnstile: Arc<Turnstile>,
    id: usize,
}

impl YieldProbe {
    /// Retire this participant (call when the thread's workload is done;
    /// dropping the probe also retires it).
    pub fn retire(&self) {
        self.turnstile.retire(self.id);
    }
}

impl Drop for YieldProbe {
    fn drop(&mut self) {
        self.retire();
    }
}

impl MemProbe for YieldProbe {
    fn warp_read(&mut self, _: &[WordAddr]) {
        self.turnstile.step(self.id);
    }
    fn warp_write(&mut self, _: &[WordAddr]) {
        self.turnstile.step(self.id);
    }
    fn lane_read(&mut self, _: WordAddr) {
        self.turnstile.step(self.id);
    }
    fn lane_write(&mut self, _: WordAddr) {
        self.turnstile.step(self.id);
    }
    fn atomic(&mut self, _: WordAddr) {
        self.turnstile.step(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Two threads each record the global order of their gated accesses;
    /// the same seed must produce the same order, different seeds usually a
    /// different one.
    fn trace(seed: u64) -> Vec<usize> {
        let ts = Turnstile::new(2, seed);
        let log = Mutex::new(Vec::new());
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for id in 0..2 {
                let ts = ts.clone();
                let log = &log;
                let counter = &counter;
                s.spawn(move || {
                    let mut p = ts.probe(id);
                    for _ in 0..20 {
                        p.lane_read(0);
                        counter.fetch_add(1, Ordering::Relaxed);
                        log.lock().unwrap().push(id);
                    }
                    p.retire();
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 40);
        log.into_inner().unwrap()
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(trace(7), trace(7));
        assert_eq!(trace(1234), trace(1234));
    }

    #[test]
    fn different_seeds_explore_different_schedules() {
        let distinct: std::collections::HashSet<Vec<usize>> =
            (0..10).map(trace).collect();
        assert!(distinct.len() > 3, "only {} distinct schedules", distinct.len());
    }

    #[test]
    fn schedules_interleave_rather_than_serialize() {
        // At least one seed must interleave the two threads (not AAAA...BBBB).
        let interleaved = (0..10).any(|s| {
            let t = trace(s);
            t.windows(2).filter(|w| w[0] != w[1]).count() > 5
        });
        assert!(interleaved);
    }

    #[test]
    fn retire_unblocks_survivors() {
        // One thread does 1 access and retires; the other does many. Must
        // not deadlock.
        let ts = Turnstile::new(2, 99);
        std::thread::scope(|s| {
            {
                let ts = ts.clone();
                s.spawn(move || {
                    let mut p = ts.probe(0);
                    p.lane_read(0);
                });
            }
            {
                let ts = ts.clone();
                s.spawn(move || {
                    let mut p = ts.probe(1);
                    for _ in 0..100 {
                        p.atomic(0);
                    }
                });
            }
        });
    }

    #[test]
    fn three_way_schedules_cover_all_threads() {
        let ts = Turnstile::new(3, 5);
        let log = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for id in 0..3 {
                let ts = ts.clone();
                let log = &log;
                s.spawn(move || {
                    let mut p = ts.probe(id);
                    for _ in 0..10 {
                        p.lane_write(0);
                        log.lock().unwrap().push(id);
                    }
                });
            }
        });
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), 30);
        for id in 0..3 {
            assert_eq!(log.iter().filter(|&&x| x == id).count(), 10);
        }
    }
}
