//! Service-level metrics: latency histograms, batch occupancy, queue depth,
//! and structure-locality counters (hints, fingers, prefetch).

use gfsl::FINGER_LEVELS;

/// Log2-bucketed latency histogram (nanoseconds). Bucket `i` covers
/// `[2^i, 2^(i+1))`; quantiles report the bucket's upper bound, so a
/// reported p99 is a ≤ 2× overestimate — plenty for tracking a trajectory
/// across PRs, with O(1) memory and no allocation on the hot path.
#[derive(Debug, Clone)]
pub struct LatencyHisto {
    // Serialized as the quantile summary, not the raw buckets — see the
    // hand-written `Serialize` impl below.
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHisto {
    fn default() -> LatencyHisto {
        LatencyHisto {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHisto {
    /// Empty histogram.
    pub fn new() -> LatencyHisto {
        LatencyHisto::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let idx = 63 - (ns | 1).leading_zeros() as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += ns;
        self.max = self.max.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, ns.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample, ns.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Quantile estimate (bucket upper bound, clamped to the observed max).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }
}

/// A histogram serializes as its quantile summary: 64 raw log2 buckets
/// would bloat every report row without adding anything the summary does
/// not carry (the buckets are a lossy sketch to begin with).
impl serde::Serialize for LatencyHisto {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("count".to_string(), serde::Value::U64(self.count)),
            ("mean_ns".to_string(), serde::Value::F64(self.mean_ns())),
            ("p50_ns".to_string(), serde::Value::U64(self.p50_ns())),
            ("p99_ns".to_string(), serde::Value::U64(self.p99_ns())),
            ("p999_ns".to_string(), serde::Value::U64(self.p999_ns())),
            ("max_ns".to_string(), serde::Value::U64(self.max)),
        ])
    }
}

/// Per-level finger restart counts (slot `i` = descents resumed from a
/// still-valid cached chunk at level `i`; slot 0 is the bottom hint).
/// Serializes as an `l0..l7` object so the BENCH json carries the whole
/// depth histogram in one readable row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FingerDepths(pub [u64; FINGER_LEVELS]);

impl serde::Serialize for FingerDepths {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Object(
            self.0
                .iter()
                .enumerate()
                .map(|(i, &n)| (format!("l{i}"), serde::Value::U64(n)))
                .collect(),
        )
    }
}

/// Aggregated metrics for one service run.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct ServiceMetrics {
    /// Requests completed.
    pub ops: u64,
    /// Completed `Get`s.
    pub gets: u64,
    /// Completed `Insert`s.
    pub inserts: u64,
    /// Completed `Delete`s.
    pub deletes: u64,
    /// Completed `Range`s.
    pub ranges: u64,
    /// Completed `MinEntry` peeks.
    pub min_peeks: u64,
    /// Completed `PopMin` extract-mins.
    pub pops: u64,
    /// Replies that failed structurally (reserved key, pool exhausted).
    pub failed: u64,
    /// Epochs closed.
    pub epochs: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Batches that were read-only (lock-free fast path end to end).
    pub read_only_batches: u64,
    /// Requests shed at admission (queue-full and degraded-mode combined).
    pub sheds: u64,
    /// Sheds decided by the degradation ladder rather than a full queue.
    pub degraded_sheds: u64,
    /// Replies that failed with a typed operation abort (crash, quarantine,
    /// retry budget, or deadline) — the recovery signal the supervisor
    /// watches. Also counted in `failed`.
    pub aborts: u64,
    /// Quarantined chunks repaired (rolled forward, rolled back, or
    /// released clean) by the service's per-epoch repair pass.
    pub repairs: u64,
    /// Deepest quarantine observed at an epoch boundary.
    pub quarantine_depth_max: u64,
    /// Degradation-ladder transitions (both directions).
    pub mode_transitions: u64,
    /// Duration of the last completed degraded interval — first rung away
    /// from normal service until the return to it — in virtual ns.
    pub time_to_heal_ns: u64,
    /// Largest intake depth sampled at an epoch close.
    pub queue_depth_max: usize,
    /// Batch-formation wait per request (virtual ns).
    pub wait: LatencyHisto,
    /// End-to-end latency per request (virtual ns).
    pub latency: LatencyHisto,
    /// Wall-clock seconds spent executing batches (dispatch → collect).
    pub exec_wall_s: f64,
    /// Wall-clock seconds for the whole run (formation + routing included).
    pub run_wall_s: f64,
    /// Virtual clock at the end of the run, ns. Under `ExecMode::Modeled`
    /// this is the deterministic service duration (what throughput scaling
    /// studies divide by on hosts whose wall clock can't parallelize);
    /// under `Measured` it tracks measured execution advances.
    pub clock_end_ns: u64,
    /// Group commits issued to the durability sink (at most one per epoch;
    /// zero when serving without a sink or when an epoch wrote nothing).
    pub durable_commits: u64,
    /// Effective write records handed to the durability sink.
    pub durable_records: u64,
    /// Fraction of bottom-hint validations that succeeded across workers
    /// (0.0 when the hint cache never ran) — the key-sorted-dispatch
    /// locality signal.
    pub hint_hit_rate: f64,
    /// Finger restart depth histogram across workers (see [`FingerDepths`]).
    pub finger_depth_hits: FingerDepths,
    /// Fingered descents that restarted from the head (no cached level
    /// validated).
    pub finger_misses: u64,
    /// Software prefetches issued for predicted next chunks.
    pub prefetch_issued: u64,
    /// Lateral steps that skimmed only the `(max, next)` word instead of
    /// reading the whole chunk.
    pub skip_reads: u64,
    /// Multiversion clock at the end of the run (0 = mvcc knob off).
    pub mvcc_clock: u64,
    /// Version pre-images still retained on chains at the end of the run.
    pub mvcc_images: u64,
    /// Deepest single-chunk version chain observed over the whole run —
    /// the bounded-retention signal the mvcc bench gates on.
    pub mvcc_chain_hwm: u64,
    /// Chunk pre-images captured by stamped writers.
    pub mvcc_captures: u64,
    /// Images condemned by vacuum passes.
    pub mvcc_vacuumed: u64,
    /// Read tickets minted (pinned snapshots taken through the engine).
    pub mvcc_pins: u64,
    /// Versioned chunk resolutions served from a chain image rather than
    /// the live chunk.
    pub mvcc_image_resolves: u64,
    #[serde(skip)]
    occupancy_sum: f64,
    #[serde(skip)]
    queue_depth_sum: u64,
    #[serde(skip)]
    queue_samples: u64,
}

impl ServiceMetrics {
    /// Record a dispatched batch: `len` requests padded to `aligned` lanes.
    pub fn record_batch(&mut self, len: usize, aligned: usize, read_only: bool) {
        self.batches += 1;
        if read_only {
            self.read_only_batches += 1;
        }
        self.occupancy_sum += len as f64 / aligned.max(1) as f64;
    }

    /// Sample the intake depth at an epoch close.
    pub fn sample_queue_depth(&mut self, depth: usize) {
        self.queue_depth_max = self.queue_depth_max.max(depth);
        self.queue_depth_sum += depth as u64;
        self.queue_samples += 1;
    }

    /// Mean lane occupancy across dispatched batches, in `0..=1`.
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.occupancy_sum / self.batches as f64
        }
    }

    /// Mean intake depth at epoch close.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.queue_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_samples as f64
        }
    }

    /// Fold the run's merged structure-level counters into the locality
    /// fields (hint hit rate, finger depth histogram, prefetch/skim totals).
    pub fn absorb_op_stats(&mut self, s: &gfsl::OpStats) {
        self.hint_hit_rate = s.hint_hit_rate().unwrap_or(0.0);
        self.finger_depth_hits = FingerDepths(s.finger_depth_hits);
        self.finger_misses = s.finger_misses;
        self.prefetch_issued = s.prefetch_issued;
        self.skip_reads = s.skip_reads;
    }

    /// Fold the engine's multiversion counters into the report (no-op —
    /// all zeros — when the mvcc knob is off and the engine returns
    /// `None`).
    pub fn absorb_mvcc_stats(&mut self, s: Option<gfsl::MvccStats>) {
        let Some(s) = s else { return };
        self.mvcc_clock = s.clock;
        self.mvcc_images = s.images;
        self.mvcc_chain_hwm = s.chain_hwm;
        self.mvcc_captures = s.captures;
        self.mvcc_vacuumed = s.vacuumed;
        self.mvcc_pins = s.pins;
        self.mvcc_image_resolves = s.image_resolves;
    }

    /// Completed throughput over the whole run wall-clock, Mops/s.
    pub fn mops(&self) -> f64 {
        if self.run_wall_s <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.run_wall_s / 1.0e6
        }
    }

    /// Completed throughput over the virtual service clock, Mops/s.
    /// Deterministic under `ExecMode::Modeled`.
    pub fn virtual_mops(&self) -> f64 {
        if self.clock_end_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1.0e3 / self.clock_end_ns as f64
        }
    }

    /// Completed throughput over execution wall-clock only, Mops/s.
    pub fn exec_mops(&self) -> f64 {
        if self.exec_wall_s <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.exec_wall_s / 1.0e6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHisto::new();
        for ns in 1..=10_000u64 {
            h.record(ns);
        }
        assert_eq!(h.count(), 10_000);
        let (p50, p99, p999) = (h.p50_ns(), h.p99_ns(), h.p999_ns());
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        assert!(p999 <= h.max_ns());
        // p50 of uniform 1..=10000 is ~5000; log2 bucket upper bound gives
        // at most 2x overestimate.
        assert!((4_000..=10_000).contains(&p50), "p50 = {p50}");
        assert!((h.mean_ns() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_handles_empty_and_zero() {
        let mut h = LatencyHisto::new();
        assert_eq!(h.p99_ns(), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p50_ns(), 0, "clamped to observed max");
    }

    #[test]
    fn occupancy_and_depth_averages() {
        let mut m = ServiceMetrics::default();
        m.record_batch(32, 32, true);
        m.record_batch(16, 32, false);
        assert_eq!(m.batches, 2);
        assert_eq!(m.read_only_batches, 1);
        assert!((m.mean_occupancy() - 0.75).abs() < 1e-9);
        m.sample_queue_depth(10);
        m.sample_queue_depth(30);
        assert_eq!(m.queue_depth_max, 30);
        assert!((m.mean_queue_depth() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_serialize_to_json_with_histo_summaries() {
        let mut m = ServiceMetrics {
            ops: 3,
            gets: 2,
            run_wall_s: 0.25,
            ..Default::default()
        };
        m.record_batch(16, 32, true);
        m.wait.record(100);
        m.latency.record(1_000);
        let json = serde::to_json_string(&m);
        assert!(json.starts_with("{\"ops\":3,\"gets\":2,"), "{json}");
        assert!(
            json.contains("\"latency\":{\"count\":1,"),
            "histograms serialize as summaries: {json}"
        );
        assert!(json.contains("\"run_wall_s\":0.25"), "{json}");
        assert!(
            !json.contains("occupancy_sum"),
            "private accumulators are skipped: {json}"
        );
    }

    #[test]
    fn locality_counters_serialize_as_depth_histogram() {
        let mut m = ServiceMetrics::default();
        let mut s = gfsl::OpStats::new();
        s.hint_hits = 3;
        s.hint_misses = 1;
        s.finger_depth_hits[1] = 7;
        s.finger_misses = 2;
        s.prefetch_issued = 11;
        s.skip_reads = 5;
        m.absorb_op_stats(&s);
        assert!((m.hint_hit_rate - 0.75).abs() < 1e-12);
        let json = serde::to_json_string(&m);
        assert!(
            json.contains("\"finger_depth_hits\":{\"l0\":0,\"l1\":7,"),
            "depth histogram serializes inline: {json}"
        );
        assert!(json.contains("\"prefetch_issued\":11"), "{json}");
        assert!(json.contains("\"skip_reads\":5"), "{json}");
    }

    #[test]
    fn mvcc_counters_fold_in_and_stay_zero_when_off() {
        let mut m = ServiceMetrics::default();
        m.absorb_mvcc_stats(None);
        assert_eq!(m.mvcc_clock, 0, "knob off: all zeros");
        let s = gfsl::MvccStats {
            clock: 42,
            images: 3,
            chain_hwm: 2,
            captures: 9,
            vacuumed: 6,
            pins: 5,
            image_resolves: 4,
            ..Default::default()
        };
        m.absorb_mvcc_stats(Some(s));
        assert_eq!(m.mvcc_clock, 42);
        assert_eq!(m.mvcc_chain_hwm, 2);
        let json = serde::to_json_string(&m);
        assert!(json.contains("\"mvcc_clock\":42"), "{json}");
        assert!(json.contains("\"mvcc_pins\":5"), "{json}");
    }

    #[test]
    fn throughput_requires_elapsed_time() {
        let mut m = ServiceMetrics {
            ops: 1_000_000,
            ..Default::default()
        };
        assert_eq!(m.mops(), 0.0, "no wall time, no rate");
        m.run_wall_s = 0.5;
        assert!((m.mops() - 2.0).abs() < 1e-9);
    }
}
