//! Serving front end: service-loop efficiency vs the raw batch loop, and
//! the deterministic-replay check. Not a paper artifact — this measures the
//! `gfsl-serve` subsystem layered on top of the paper's structure.
//!
//! The headline number is the throughput *ratio*: a closed-loop population
//! driven through admission → epoch batching → dispatch must sustain at
//! least 90% of the raw (no service layer) batch-mode throughput on the
//! [10,10,80] mix at the anchor range.

use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_serve::{
    raw_batch_mops, serve, BatchPolicy, ClosedSource, ExecMode, Fifo, KeyRangeSharded,
    ReadWriteSeparated, ServeConfig, ServiceReport,
};
use gfsl_workload::{ClosedLoop, ServeMix};

use super::ExpConfig;
use crate::report::{mops, pct, ratio, Table};

fn prefilled_list(range: u32, headroom: u64, seed: u64) -> Gfsl {
    let params = GfslParams {
        team_size: TeamSize::ThirtyTwo,
        pool_chunks: GfslParams::chunks_for(range as u64 + headroom, TeamSize::ThirtyTwo),
        seed,
        ..Default::default()
    };
    Gfsl::prefilled(params, (1..range).filter(|k| k % 2 == 0)).unwrap()
}

fn serve_cfg(cfg: &ExpConfig, exec: ExecMode) -> ServeConfig {
    // Size the epoch to feed every worker a full batch: a smaller trigger
    // leaves workers idle each epoch and caps the efficiency ratio. Large
    // batches amortize the per-batch dispatch handoff.
    let max_batch = 512;
    ServeConfig {
        workers: cfg.workers,
        epoch_ns: 200_000,
        batch_ops: cfg.workers * max_batch,
        max_batch,
        intake_cap: (cfg.workers * max_batch * 4).max(8192),
        seed: cfg.seed,
        exec,
    }
}

fn measured_run(cfg: &ExpConfig, range: u32, n_ops: usize, policy: &mut dyn BatchPolicy) -> ServiceReport {
    let list = prefilled_list(range, n_ops as u64, cfg.seed);
    // Zero think time keeps the loop saturated: the measurement is service
    // overhead, not client idleness. The population must cover at least two
    // full epochs of outstanding requests or the size trigger starves the
    // pipelined driver.
    let clients = (4 * cfg.workers as u32 * 512).min((n_ops / 4).max(1) as u32);
    let pop = ClosedLoop::new(
        clients,
        (n_ops as u64).div_ceil(clients as u64),
        0,
        ServeMix::C80,
        range,
        cfg.seed,
    );
    let mut src = ClosedSource::new(pop, 1_000);
    let mut scfg = serve_cfg(cfg, ExecMode::Measured);
    scfg.workers = cfg
        .workers
        .min(std::thread::available_parallelism().map_or(1, |p| p.get()));
    serve(&list, &scfg, policy, &mut src)
}

/// Run the serve experiment: policy comparison at the anchor range plus the
/// deterministic-replay table.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let range = cfg.anchor_range();
    // More timed ops than the model experiments use: the ratio compares two
    // wall-clock measurements, so both need enough work to be stable.
    let n_ops = cfg
        .ops_override
        .unwrap_or(if cfg.quick { 240_000 } else { 1_000_000 });

    // Raw batch-mode baseline: same mix, same range, no service layer.
    // Best-of-N on both sides of the ratio: scheduler noise only ever
    // subtracts throughput, so the max is the stable estimator.
    let trials = if cfg.ops_override.is_some() { 1 } else { 3 };
    let raw = (0..trials)
        .map(|t| {
            let baseline_list = prefilled_list(range, n_ops as u64, cfg.seed);
            let stream = ServeMix::C80.stream(cfg.seed ^ 0xBA5E ^ t, range, n_ops);
            raw_batch_mops(&baseline_list, &stream, cfg.workers)
        })
        .fold(0.0f64, f64::max);

    let mut t = Table::new(
        "Serve: service vs raw batch throughput ([10,10,80], anchor range)",
        &[
            "policy", "MOPS", "vs raw", "p50 us", "p99 us", "p999 us", "wait us", "occ%",
            "sheds", "epochs",
        ],
    );
    t.row(vec![
        "raw-batch".into(),
        mops(raw),
        ratio(1.0),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "0".into(),
        "-".into(),
    ]);

    let mut fifo = Fifo::default();
    let mut sharded = KeyRangeSharded::new(range);
    let mut rw = ReadWriteSeparated::default();
    let policies: [&mut dyn BatchPolicy; 3] = [&mut fifo, &mut sharded, &mut rw];
    for policy in policies {
        let r = (0..trials)
            .map(|_| measured_run(cfg, range, n_ops, policy))
            .max_by(|a, b| a.metrics.mops().total_cmp(&b.metrics.mops()))
            .expect("at least one trial");
        let us = |ns: u64| format!("{:.1}", ns as f64 / 1.0e3);
        t.row(vec![
            r.policy.into(),
            mops(r.metrics.mops()),
            ratio(r.metrics.mops() / raw),
            us(r.metrics.latency.p50_ns()),
            us(r.metrics.latency.p99_ns()),
            us(r.metrics.latency.p999_ns()),
            format!("{:.1}", r.metrics.wait.mean_ns() / 1.0e3),
            pct(r.metrics.mean_occupancy()),
            r.metrics.sheds.to_string(),
            r.metrics.epochs.to_string(),
        ]);
    }

    // Deterministic replay: the same seed must reproduce the same schedule
    // (trace hash) in both modeled and chaos modes. Small and fixed-size —
    // this is a correctness artifact, not a performance one.
    let mut d = Table::new(
        "Serve: deterministic replay (trace hashes, two runs per mode)",
        &["mode", "run A", "run B", "replay"],
    );
    for (name, exec) in [
        ("modeled", ExecMode::Modeled { ns_per_op: 300 }),
        (
            "chaos",
            ExecMode::Chaos {
                ns_per_op: 300,
                max_stall_turns: 2,
            },
        ),
    ] {
        let replay_range = 2_000u32;
        let one = || {
            let list = prefilled_list(replay_range, 4_000, cfg.seed);
            let pop = ClosedLoop::new(16, 40, 1_000, ServeMix::C80, replay_range, cfg.seed);
            let mut src = ClosedSource::new(pop, 1_000);
            let mut scfg = serve_cfg(cfg, exec);
            scfg.workers = cfg.workers.min(2);
            scfg.batch_ops = 64;
            scfg.max_batch = 64;
            serve(&list, &scfg, &mut KeyRangeSharded::new(replay_range), &mut src)
        };
        let a = one();
        let b = one();
        assert_eq!(
            a.trace_hash, b.trace_hash,
            "{name} service run must replay bit-for-bit"
        );
        d.row(vec![
            name.into(),
            format!("{:016x}", a.trace_hash),
            format!("{:016x}", b.trace_hash),
            "ok".into(),
        ]);
    }

    vec![t, d]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_experiment_runs_tiny() {
        let cfg = ExpConfig::tiny(2);
        let tables = run(&cfg);
        assert_eq!(tables.len(), 2);
        let perf = &tables[0];
        assert_eq!(perf.rows.len(), 4, "raw baseline + three policies");
        assert_eq!(perf.rows[0][0], "raw-batch");
        for row in &perf.rows[1..] {
            assert_eq!(row[8], "0", "tiny closed loop must not shed");
        }
        let det = &tables[1];
        assert_eq!(det.rows.len(), 2);
        assert!(det.rows.iter().all(|r| r[3] == "ok"));
        assert_eq!(det.rows[0][1], det.rows[0][2], "modeled hashes match");
    }
}
