//! `__ballot` results and the clz-based winner selection used by GFSL.

use crate::lane::LaneId;

/// Result of a `__ballot(flag)` across a team: bit `i` is lane `i`'s vote.
///
/// GFSL's traversal decisions (Algorithm 4.3 in the paper) all reduce to
/// "which is the *highest* lane that voted true?", computed on the GPU as
/// `32 - clz(ballot) - 1`. Precedence for higher lanes is load-bearing for
/// correctness: chunk mutations order their entry writes so that a concurrent
/// reader observing a half-updated chunk is always steered by a
/// higher-priority lane (the NEXT lane's max field, or the rightmost copy of
/// a duplicated key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ballot {
    bits: u32,
}

impl Ballot {
    /// A ballot with no votes.
    pub const NONE: Ballot = Ballot { bits: 0 };

    /// Build a ballot from a raw bitmask (bits above the team width must be
    /// zero; the caller constructs ballots through [`crate::Team::ballot`]
    /// which guarantees this).
    #[inline]
    pub const fn from_bits(bits: u32) -> Ballot {
        Ballot { bits }
    }

    /// Raw mask.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.bits
    }

    /// Did any lane vote true?
    #[inline]
    pub const fn any(self) -> bool {
        self.bits != 0
    }

    /// Number of true votes (`__popc`).
    #[inline]
    pub const fn count(self) -> u32 {
        self.bits.count_ones()
    }

    /// Did lane `lane` vote true?
    #[inline]
    pub const fn is_set(self, lane: LaneId) -> bool {
        self.bits & (1u32 << lane) != 0
    }

    /// The highest lane that voted true: `32 - clz(ballot) - 1` on the GPU.
    /// Returns `None` when no lane voted (the paper's `NONE` sentinel,
    /// triggering a backtrack in `searchDown`).
    #[inline]
    pub const fn highest(self) -> Option<LaneId> {
        if self.bits == 0 {
            None
        } else {
            Some(31 - self.bits.leading_zeros() as usize)
        }
    }

    /// The lowest lane that voted true (`__ffs - 1`).
    #[inline]
    pub const fn lowest(self) -> Option<LaneId> {
        if self.bits == 0 {
            None
        } else {
            Some(self.bits.trailing_zeros() as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_ballot() {
        assert!(!Ballot::NONE.any());
        assert_eq!(Ballot::NONE.count(), 0);
        assert_eq!(Ballot::NONE.highest(), None);
        assert_eq!(Ballot::NONE.lowest(), None);
    }

    #[test]
    fn single_bit_ballots() {
        for lane in 0..32 {
            let b = Ballot::from_bits(1 << lane);
            assert!(b.any());
            assert_eq!(b.count(), 1);
            assert!(b.is_set(lane));
            assert_eq!(b.highest(), Some(lane));
            assert_eq!(b.lowest(), Some(lane));
        }
    }

    #[test]
    fn highest_matches_paper_clz_formula() {
        // 32 - clz(bal) - 1 from Algorithm 4.3.
        let b = Ballot::from_bits(0b0010_1100);
        assert_eq!(b.highest(), Some(32 - (0b0010_1100u32).leading_zeros() as usize - 1));
        assert_eq!(b.highest(), Some(5));
        assert_eq!(b.lowest(), Some(2));
        assert_eq!(b.count(), 3);
    }

    proptest! {
        #[test]
        fn highest_is_max_set_bit(bits in any::<u32>()) {
            let b = Ballot::from_bits(bits);
            let expected = (0..32).filter(|&i| bits & (1 << i) != 0).max();
            prop_assert_eq!(b.highest(), expected);
        }

        #[test]
        fn lowest_is_min_set_bit(bits in any::<u32>()) {
            let b = Ballot::from_bits(bits);
            let expected = (0..32).filter(|&i| bits & (1 << i) != 0).min();
            prop_assert_eq!(b.lowest(), expected);
        }

        #[test]
        fn count_matches_is_set(bits in any::<u32>()) {
            let b = Ballot::from_bits(bits);
            let n = (0..32).filter(|&i| b.is_set(i)).count() as u32;
            prop_assert_eq!(b.count(), n);
        }
    }
}
