//! Multiversion snapshot/scan latency under write pressure. Not a paper
//! artifact — this gates the `gfsl::mvcc` subsystem (DESIGN.md §19).
//!
//! Four cells over one prefilled keyspace:
//!
//! 1. **scan-idle** — pinned full-span `count_range_at` scans with no
//!    writers: the latency baseline.
//! 2. **scan-soak** — the same pinned scans while a write-heavy churn
//!    soak runs on all other workers. The headline gate: pinned reads
//!    never block on writer locks, so p99 must stay *flat* — asserted
//!    ≤ 1.5× the idle baseline.
//!
//!    The churn is a *paced open-loop stream* (bursts on a fixed offered
//!    rate), like the edge loadgen's arrival process — not a tight spin
//!    loop. Spinning writers on a small CI box turn the cell into a
//!    measurement of host scheduler quanta (the scanner loses its core
//!    for milliseconds at a time), which no structure property can fix;
//!    a paced stream keeps the cell about the lock protocol while still
//!    driving tens of thousands of captures per second through the
//!    version chains.
//! 3. **scan-soak-legacy** — the same scans through the unpinned
//!    `try_count_range` path under the same soak, for contrast: the
//!    certified read validates against in-flight mutation and retries,
//!    so its tail is allowed to (and does) move.
//! 4. **cluster-cut-soak** — version-pinned cluster cuts
//!    ([`Cluster::snap_count_range`]) spanning 4 shards while writers
//!    churn every shard: fences are stamp-and-release, so the cut walk
//!    runs wait-free with respect to writers.
//!
//! Two more gates are asserted in-run: the per-chunk version-chain high
//! water stays bounded (retention does not grow with soak length), and
//! the soak writers make real progress while scans pin (no reader-side
//! starvation of the write path).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_cluster::Cluster;
use gfsl_workload::SplitMix64;
use serde::Serialize;

use super::ExpConfig;
use crate::report::Table;

/// Soak-vs-idle p99 ratio the flat-latency gate allows.
const FLAT_RATIO_NUM: u64 = 3;
const FLAT_RATIO_DEN: u64 = 2;

/// Baseline floor, ns: below this the idle p99 is scheduler noise, not
/// scan cost, and a ratio gate on it would be meaningless.
const BASELINE_FLOOR_NS: u64 = 25_000;

/// Additive allowance, ns: on a one-core host a paced write burst can
/// land wholly inside a scan, so the soak tail carries one burst of
/// writer CPU on top of the scan itself. That is noise the ratio gate
/// cannot price when the scan is only a few burst-costs long (the tiny
/// test span); at the quick/full spans the ratio bound is the larger
/// term and the gate keeps its plain ratio meaning.
const SOAK_HIT_ALLOWANCE_NS: u64 = 100_000;

/// Combined offered write rate for the soak cells, ops/s — write-heavy
/// (100% mutations, every one capturing a pre-image while the scanner
/// pins), but paced so the cell measures the structure rather than CPU
/// time-slicing on small hosts.
const SOAK_WRITES_PER_SEC: u64 = 80_000;

/// Ops per burst between pacing sleeps.
const SOAK_BURST: u64 = 32;

/// Debug builds run each write op an order of magnitude slower, so the
/// release pace and burst size would let a burst outrun its pace slot
/// and cost more CPU than a whole scan — the "paced" stream degenerates
/// into a spinning writer and the cell goes back to measuring scheduler
/// quanta on a small host. Offer a slower stream in smaller bursts and
/// widen the gate there: the precision claim belongs to the release
/// runs (the CI `mvcc` job and the committed `BENCH_mvcc.json`); the
/// debug gate still catches the gross regressions (a sweep on the read
/// path, a chain lookup per chunk).
const DEBUG_RATE_DIV: u64 = 16;
const DEBUG_BURST: u64 = 4;
const DEBUG_RATIO_MUL: u64 = 2;

/// [`SOAK_WRITES_PER_SEC`] adjusted for the build profile.
fn offered_rate() -> u64 {
    if cfg!(debug_assertions) {
        SOAK_WRITES_PER_SEC / DEBUG_RATE_DIV
    } else {
        SOAK_WRITES_PER_SEC
    }
}

/// [`SOAK_BURST`] adjusted for the build profile.
fn burst_size() -> u64 {
    if cfg!(debug_assertions) { DEBUG_BURST } else { SOAK_BURST }
}

/// Deepest single-chunk version chain the bounded-retention gate allows.
/// Chains grow one image per version epoch a chunk is first mutated in
/// while some pin retains it; with the scanner re-pinning every scan the
/// retention window is short, so depth must stay O(tens) regardless of
/// how many soak writes run.
const CHAIN_HWM_BOUND: u64 = 256;

/// Raw per-cell numbers attached to the bench JSON.
#[derive(Serialize)]
struct CellJson {
    cell: String,
    scans: usize,
    p50_us: f64,
    p99_us: f64,
    writes: u64,
    clock_advance: u64,
}

struct Cell {
    label: &'static str,
    lat_ns: Vec<u64>,
    writes: u64,
    clock_advance: u64,
}

impl Cell {
    fn p50(&self) -> u64 {
        quantile_ns(&self.lat_ns, 0.50)
    }
    fn p99(&self) -> u64 {
        quantile_ns(&self.lat_ns, 0.99)
    }
    fn json(&self) -> CellJson {
        CellJson {
            cell: self.label.to_string(),
            scans: self.lat_ns.len(),
            p50_us: self.p50() as f64 / 1e3,
            p99_us: self.p99() as f64 / 1e3,
            writes: self.writes,
            clock_advance: self.clock_advance,
        }
    }
}

/// Quantile over an unsorted latency sample (sorts a copy).
fn quantile_ns(sample: &[u64], q: f64) -> u64 {
    if sample.is_empty() {
        return 0;
    }
    let mut s = sample.to_vec();
    s.sort_unstable();
    let idx = ((s.len() - 1) as f64 * q).round() as usize;
    s[idx]
}

fn engine_params(span: u32, seed: u64) -> GfslParams {
    GfslParams {
        team_size: TeamSize::ThirtyTwo,
        // Churn inserts can push occupancy toward the full span; leave
        // split headroom on top.
        pool_chunks: GfslParams::chunks_for(span as u64 + span as u64 / 4, TeamSize::ThirtyTwo),
        seed,
        mvcc: true,
        ..Default::default()
    }
}

/// Run `scans` full-span scans on `scan`, with `writers` churn threads
/// driving `write_op` until the scans finish. `writers == 0` is the idle
/// baseline. With writers, the timed scans start only once the churn has
/// demonstrably ramped (past `scans` applied writes, capped at 2s), so
/// every cell measures the steady write-heavy state rather than the
/// thread-spawn ramp.
fn soak_cell<S, W>(
    label: &'static str,
    scans: usize,
    writers: usize,
    clock: impl Fn() -> u64,
    mut scan: S,
    write_op: W,
) -> Cell
where
    S: FnMut() -> usize,
    W: Fn(usize, &AtomicBool, &AtomicU64) + Sync,
{
    let stop = AtomicBool::new(false);
    let writes = AtomicU64::new(0);
    let clock0 = clock();
    let mut lat_ns = Vec::with_capacity(scans);
    let mut observed = 0usize;
    std::thread::scope(|s| {
        for w in 0..writers {
            let stop = &stop;
            let writes = &writes;
            let write_op = &write_op;
            s.spawn(move || write_op(w, stop, writes));
        }
        if writers > 0 {
            let warmup = Instant::now();
            while writes.load(Ordering::Relaxed) <= scans as u64
                && warmup.elapsed().as_secs() < 2
            {
                std::hint::spin_loop();
            }
        }
        for _ in 0..scans {
            let t0 = Instant::now();
            observed += scan();
            lat_ns.push(t0.elapsed().as_nanos() as u64);
        }
        stop.store(true, Ordering::Relaxed);
    });
    // Keep the scans honest: every cell walks a populated structure.
    assert!(observed > 0, "{label}: scans observed an empty structure");
    Cell {
        label,
        lat_ns,
        writes: writes.into_inner(),
        clock_advance: clock().saturating_sub(clock0),
    }
}

/// Paced insert/remove churn over `[1, span]` until `stop`, counting
/// applied ops live in `writes` (the soak warmup and progress gates read
/// it). `writers` is the total churn thread count: each thread offers
/// `SOAK_WRITES_PER_SEC / writers` as bursts of [`SOAK_BURST`] with a
/// pacing sleep between them.
fn churn(
    rng: &mut SplitMix64,
    span: u32,
    writers: usize,
    stop: &AtomicBool,
    writes: &AtomicU64,
    mut apply: impl FnMut(u32, bool) -> bool,
) {
    let pace = std::time::Duration::from_micros(
        burst_size() * writers as u64 * 1_000_000 / offered_rate(),
    );
    while !stop.load(Ordering::Relaxed) {
        for _ in 0..burst_size() {
            let k = 1 + rng.below(span as u64) as u32;
            if apply(k, rng.below(2) == 0) {
                writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        std::thread::sleep(pace);
    }
}

/// Run the mvcc experiment: pinned-scan latency idle vs under write soak
/// (the flat-tail gate), the unpinned contrast row, and the cluster
/// version-pinned cut — plus the bounded chain high-water gate.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let span = cfg
        .anchor_override
        .unwrap_or(if cfg.quick { 200_000 } else { 1_000_000 });
    // Floor of 200: the flat-tail gate reads p99, and on a 50-sample cell
    // that is the maximum — one vacuum-blocked pin or scheduler quantum
    // would gate the whole run on a single outlier.
    let scans = (cfg.mixed_ops() / 200).clamp(200, 2_000);
    let writers = cfg.workers.saturating_sub(1).max(1);

    let list = Gfsl::prefilled(
        engine_params(span, cfg.seed),
        (1..span).filter(|k| k % 2 == 0),
    )
    .expect("mvcc prefill");
    let clock = || list.mvcc_stats().map_or(0, |s| s.clock);

    // Cell 1: idle baseline — pinned scans, no writers.
    let idle = soak_cell(
        "scan-idle",
        scans,
        0,
        clock,
        || {
            let ticket = list.pin_version().expect("mvcc enabled");
            list.handle().count_range_at(1, span, &ticket)
        },
        |_, _, _| {},
    );

    // Cell 2: the same pinned scans under a write-heavy soak.
    let soak = soak_cell(
        "scan-soak",
        scans,
        writers,
        clock,
        || {
            let ticket = list.pin_version().expect("mvcc enabled");
            list.handle().count_range_at(1, span, &ticket)
        },
        |w, stop, writes| {
            let mut h = list.handle();
            let mut rng = SplitMix64::new(cfg.seed ^ 0xD0_5EED ^ (w as u64) << 32);
            let mut done = 0u64;
            churn(&mut rng, span, writers, stop, writes, |k, ins| {
                let ok = if ins { h.try_insert(k, k).is_ok() } else { h.try_remove(k).is_ok() };
                if ok {
                    done += 1;
                    // The write path owns the vacuum cadence (as the serve
                    // pipeline's periodic reclaim pass does); otherwise
                    // retention crosses the high water and readers pay the
                    // sweep inside pin_version — the opposite of the
                    // flat-tail property this cell gates.
                    if done % 1024 == 0 {
                        h.reclaim_pass();
                    }
                }
                ok
            })
        },
    );

    // Cell 3: the unpinned certified read under the same soak (contrast
    // only — its retries against in-flight mutation are the cost the
    // pinned path exists to avoid).
    let legacy = soak_cell(
        "scan-soak-legacy",
        scans,
        writers,
        clock,
        || loop {
            if let Ok(n) = list.handle().try_count_range(1, span) {
                return n;
            }
        },
        |w, stop, writes| {
            let mut h = list.handle();
            let mut rng = SplitMix64::new(cfg.seed ^ 0x1E_6AC1 ^ (w as u64) << 32);
            let mut done = 0u64;
            churn(&mut rng, span, writers, stop, writes, |k, ins| {
                let ok = if ins { h.try_insert(k, k).is_ok() } else { h.try_remove(k).is_ok() };
                if ok {
                    done += 1;
                    if done % 1024 == 0 {
                        h.reclaim_pass();
                    }
                }
                ok
            })
        },
    );

    let stats = list.mvcc_stats().expect("mvcc stats");

    // Cell 4: version-pinned cluster cuts spanning 4 shards under churn.
    let shards = 4;
    let cl = Cluster::prefilled(
        engine_params(span / shards as u32 + span / 8, cfg.seed),
        shards,
        span,
        (1..span).filter(|k| k % 2 == 0).map(|k| (k, k)),
    )
    .expect("mvcc cluster prefill");
    let cluster_cut = soak_cell(
        "cluster-cut-soak",
        scans.min(200),
        writers,
        || 0,
        || {
            let (_, n) = cl.snap_count_range(1, span - 1).expect("pinned cut");
            // Breathe between cuts: the stamp briefly write-takes each
            // shard fence, and a gapless cut loop would starve writer
            // stamps on a write-preferring lock. Real cut cadences
            // (backups, exports) have gaps.
            std::thread::sleep(std::time::Duration::from_micros(200));
            n as usize
        },
        |w, stop, writes| {
            let mut rng = SplitMix64::new(cfg.seed ^ 0xC1_05E2 ^ (w as u64) << 32);
            churn(&mut rng, span, writers, stop, writes, |k, ins| {
                let r = if ins { cl.insert(k, k) } else { cl.remove(k) };
                r.is_ok()
            })
        },
    );

    // Gate 1: pinned-scan p99 stays flat under the soak.
    let baseline_ns = idle.p99().max(BASELINE_FLOOR_NS);
    let headroom = if cfg!(debug_assertions) { DEBUG_RATIO_MUL } else { 1 };
    let bound_ns = (baseline_ns * FLAT_RATIO_NUM * headroom / FLAT_RATIO_DEN)
        .max(baseline_ns + SOAK_HIT_ALLOWANCE_NS);
    let flat = soak.p99() <= bound_ns;
    assert!(
        flat,
        "pinned scan tail moved under write soak: p99 {}us vs idle baseline {}us (bound {}us)",
        soak.p99() / 1_000,
        baseline_ns / 1_000,
        bound_ns / 1_000,
    );

    // Gate 2: version-chain retention is bounded — the deepest chain must
    // not scale with how many soak writes ran.
    assert!(
        stats.chain_hwm <= CHAIN_HWM_BOUND,
        "version-chain high water unbounded: {} (bound {CHAIN_HWM_BOUND}, soak wrote {} ops)",
        stats.chain_hwm,
        soak.writes,
    );

    // Gate 3: scans pinning versions must not starve the write path, and
    // writers must actually have advanced the version clock.
    assert!(
        soak.writes > soak.lat_ns.len() as u64 && soak.clock_advance > 0,
        "write soak starved: {} writes, clock advanced {}",
        soak.writes,
        soak.clock_advance,
    );
    assert!(
        cluster_cut.writes > 0,
        "cluster churn starved behind pinned cuts"
    );

    let cells = [idle, soak, legacy, cluster_cut];
    let mut t = Table::new(
        "Mvcc: pinned snapshot/scan latency vs write soak",
        &["cell", "scans", "p50 us", "p99 us", "writes", "clock adv"],
    );
    for c in &cells {
        let j = c.json();
        t.row(vec![
            j.cell.clone(),
            j.scans.to_string(),
            format!("{:.1}", j.p50_us),
            format!("{:.1}", j.p99_us),
            j.writes.to_string(),
            j.clock_advance.to_string(),
        ]);
    }
    t.attach("cells", &cells.iter().map(|c| c.json()).collect::<Vec<_>>());
    t.attach(
        "p99_soak_over_idle",
        &(cells[1].p99() as f64 / baseline_ns as f64),
    );
    t.attach("flat_tail_gate", &flat);
    t.attach("chain_hwm", &stats.chain_hwm);
    t.attach("chain_hwm_bound", &CHAIN_HWM_BOUND);
    t.attach("chain_bounded_gate", &(stats.chain_hwm <= CHAIN_HWM_BOUND));
    t.attach("images_retained", &stats.images);
    t.attach("copy_bytes", &stats.copy_bytes);
    t.attach("captures", &stats.captures);
    t.attach("vacuumed", &stats.vacuumed);
    t.attach("pins", &stats.pins);
    t.attach("image_resolves", &stats.image_resolves);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mvcc_experiment_runs_tiny_and_gates_hold() {
        let cfg = ExpConfig {
            workers: 2,
            ..ExpConfig::tiny(2)
        };
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 4, "idle, soak, legacy, cluster cut");
        // The gates already asserted inside run(); double-check the
        // recorded flags made it into the attachments.
        for flag in ["flat_tail_gate", "chain_bounded_gate"] {
            let v = t
                .attachments
                .iter()
                .find(|(k, _)| k == flag)
                .unwrap_or_else(|| panic!("{flag} attached"));
            assert_eq!(v.1.to_json(), "true", "{flag}");
        }
        assert!(t.attachments.iter().any(|(k, _)| k == "cells"));
    }
}
