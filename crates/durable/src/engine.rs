//! [`DurableGfsl`]: one GFSL engine whose acknowledged writes survive
//! process death.
//!
//! ## The commit protocol
//!
//! Every mutation follows **apply → log → sync → ack**: the structural
//! operation runs first, then (only if it was effective — GFSL inserts are
//! set-like, so a duplicate insert changes nothing and logs nothing) a WAL
//! record is appended and synced per the [`DurabilityContract`]. A crash
//! before the log leaves an applied-but-unlogged write that dies with the
//! process — safe, because it was never acknowledged. A crash after the
//! sync loses nothing. The window in between is the *maybe* zone the
//! kill-restart soak models with `InsertMaybe`/`RemoveMaybe` history
//! records.
//!
//! ## Why replay is idempotent
//!
//! Only *effective* writes are logged, so per key the log alternates
//! `Put`/`Del`. Replaying a contiguous LSN suffix onto any state at least
//! as old as the replay floor converges to the post-log state: a `Put`
//! whose key is resident is a set-like no-op ([`Ok(false)`]), a `Del`
//! whose key is absent likewise. This is what lets a checkpoint cut be
//! read *before* its snapshot (see [`DurableCluster`]) and lets recovery
//! replay records the checkpoint already reflects.
//!
//! ## Recovery ([`DurableGfsl::open`])
//!
//! 1. Sweep checkpoint temp files (a crash mid-publication leaves only
//!    `tmp-*` debris).
//! 2. Load the newest checkpoint that validates end to end, falling back
//!    on damage ([`ckpt::load_latest`]).
//! 3. Scan the WAL ([`wal::scan_wal`]): truncate a torn tail, refuse on
//!    mid-log corruption, damaged headers, or segment gaps.
//! 4. Refuse with [`RecoverError::WalGap`] if the surviving log does not
//!    reach back to the checkpoint cut — a stale checkpoint over a pruned
//!    log would otherwise silently lose acknowledged writes.
//! 5. Rebuild via `Gfsl::from_sorted_pairs`, replay records past the cut,
//!    run the full validation walk, and only then serve.
//!
//! [`DurableCluster`]: crate::cluster::DurableCluster
//! [`Ok(false)`]: gfsl::GfslHandle::try_insert

use std::fs;
use std::path::{Path, PathBuf};

use gfsl::{Gfsl, GfslParams};
use gfsl_serve::{CommitSink, DurabilityContract, WriteEffect};

use crate::ckpt::{self, Manifest};
use crate::error::{OpError, RecoverError};
use crate::hook::Failpoints;
use crate::wal::{self, Wal, WalOp, WalRecord};

/// Everything that shapes a durable engine's on-disk footprint.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Root directory; the WAL lives in `<dir>/wal`, checkpoints in
    /// `<dir>/ckpt`.
    pub dir: PathBuf,
    /// What an acknowledgement promises (the group commit's sync step).
    pub contract: DurabilityContract,
    /// Records per WAL segment before rotation.
    pub seg_records: u32,
    /// Published checkpoints retained (≥ 2 keeps a fallback).
    pub ckpt_keep: usize,
    /// Structural parameters for the in-memory engine.
    pub params: GfslParams,
}

impl DurableConfig {
    /// Defaults: fsync contract, 1024-record segments, 2 checkpoints kept.
    pub fn new(dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            dir: dir.into(),
            contract: DurabilityContract::Synced,
            seg_records: 1024,
            ckpt_keep: 2,
            params: GfslParams::default(),
        }
    }

    /// The WAL directory.
    pub fn wal_dir(&self) -> PathBuf {
        self.dir.join("wal")
    }

    /// The checkpoint directory.
    pub fn ckpt_dir(&self) -> PathBuf {
        self.dir.join("ckpt")
    }
}

/// What [`DurableGfsl::open`] did to get back to a servable engine.
#[derive(Debug, Default, Clone, serde::Serialize)]
pub struct RecoveryReport {
    /// Sequence of the checkpoint restored from (`None`: started empty).
    pub checkpoint_seq: Option<u64>,
    /// Pairs the checkpoint contributed.
    pub checkpoint_pairs: u64,
    /// Newer checkpoints skipped as damaged: `(seq, why)`.
    pub checkpoint_fallbacks: Vec<(u64, String)>,
    /// Checkpoint temp files swept (crash mid-publication).
    pub swept_temps: u64,
    /// WAL records replayed past the checkpoint cut.
    pub replayed: u64,
    /// Replayed records that were already reflected (set-like no-ops) —
    /// the overlap idempotent replay absorbs.
    pub redundant_replays: u64,
    /// Bytes truncated from a torn WAL tail.
    pub truncated_bytes: u64,
    /// Headerless final segments removed.
    pub removed_torn_segments: u64,
    /// Highest LSN durable after recovery.
    pub last_lsn: u64,
    /// Keys resident after recovery.
    pub recovered_keys: u64,
}

/// A GFSL engine + WAL + checkpointer, the single-node durability tier.
#[derive(Debug)]
pub struct DurableGfsl {
    list: Gfsl,
    wal: Wal,
    ckpt_dir: PathBuf,
    ckpt_keep: usize,
    contract: DurabilityContract,
    /// Failpoints the durable path reports to; swap in a chaos probe to
    /// run this engine under the kill-restart soak.
    pub hook: Failpoints,
    ckpt_seq: u64,
    ckpt_lsn: u64,
}

impl DurableGfsl {
    /// Create a fresh durable engine (empty structure, empty log).
    pub fn create(cfg: &DurableConfig) -> Result<DurableGfsl, RecoverError> {
        let list = Gfsl::new(cfg.params).map_err(RecoverError::Rebuild)?;
        let wal = Wal::create(cfg.wal_dir(), cfg.contract, cfg.seg_records)?;
        Ok(DurableGfsl {
            list,
            wal,
            ckpt_dir: cfg.ckpt_dir(),
            ckpt_keep: cfg.ckpt_keep.max(1),
            contract: cfg.contract,
            hook: Failpoints::Off,
            ckpt_seq: 0,
            ckpt_lsn: 0,
        })
    }

    /// Recover an engine from `cfg.dir` (see module docs for the state
    /// machine). Every acknowledged write is present when this returns;
    /// any repair taken is in the [`RecoveryReport`].
    pub fn open(cfg: &DurableConfig) -> Result<(DurableGfsl, RecoveryReport), RecoverError> {
        let mut report = RecoveryReport {
            swept_temps: ckpt::clean_temps(&cfg.ckpt_dir())?,
            ..RecoveryReport::default()
        };

        let scan = ckpt::load_latest(&cfg.ckpt_dir())?;
        report.checkpoint_fallbacks = scan.fallbacks;
        let (cut, pairs) = match scan.loaded {
            Some(loaded) => {
                report.checkpoint_seq = Some(loaded.manifest.seq);
                report.checkpoint_pairs = loaded.manifest.n_pairs;
                (loaded.manifest.lane_cuts[0], loaded.pairs)
            }
            None => (0, Vec::new()),
        };
        let ckpt_seq = report.checkpoint_seq.unwrap_or(0);

        let wal_scan = wal::scan_wal(&cfg.wal_dir())?;
        report.truncated_bytes = wal_scan.truncated_bytes;
        report.removed_torn_segments = wal_scan.removed_torn_segments;
        check_reach(&wal_scan, cut)?;

        let list = Gfsl::from_sorted_pairs(cfg.params, pairs.iter().copied())
            .map_err(RecoverError::Rebuild)?;
        let (replayed, redundant) = replay(&list, &wal_scan.records, cut)?;
        report.replayed = replayed;
        report.redundant_replays = redundant;

        let violations = list.validate();
        if !violations.is_empty() {
            return Err(RecoverError::Invalid(format!(
                "{} violations, first: {:?}",
                violations.len(),
                violations[0]
            )));
        }
        report.recovered_keys = list.len() as u64;

        let wal = Wal::resume(cfg.wal_dir(), cfg.contract, cfg.seg_records, &wal_scan, cut)?;
        report.last_lsn = wal.last_lsn();
        Ok((
            DurableGfsl {
                list,
                wal,
                ckpt_dir: cfg.ckpt_dir(),
                ckpt_keep: cfg.ckpt_keep.max(1),
                contract: cfg.contract,
                hook: Failpoints::Off,
                ckpt_seq,
                ckpt_lsn: cut,
            },
            report,
        ))
    }

    /// The in-memory engine (reads, validation, serving).
    pub fn list(&self) -> &Gfsl {
        &self.list
    }

    /// Highest LSN assigned so far.
    pub fn last_lsn(&self) -> u64 {
        self.wal.last_lsn()
    }

    /// Cut LSN of the newest published checkpoint (0 when none).
    pub fn checkpoint_lsn(&self) -> u64 {
        self.ckpt_lsn
    }

    /// WAL lifetime counters.
    pub fn wal_stats(&self) -> wal::WalStats {
        self.wal.stats
    }

    /// Insert `k → v`; `Ok(true)` — now durable to the contract's level —
    /// iff the key was absent. An effective insert is applied, logged, and
    /// synced before this returns.
    pub fn insert(&mut self, k: u32, v: u32) -> Result<bool, OpError> {
        let applied = self.list.handle().try_insert(k, v)?;
        if applied {
            self.wal
                .append(&[WalOp::Put { key: k, val: v }], &mut self.hook)?;
        }
        Ok(applied)
    }

    /// Remove `k`; `Ok(true)` — durable — iff the key was present.
    pub fn remove(&mut self, k: u32) -> Result<bool, OpError> {
        let applied = self.list.handle().try_remove(k)?;
        if applied {
            self.wal
                .append(&[WalOp::Del { key: k }], &mut self.hook)?;
        }
        Ok(applied)
    }

    /// Read `k` (no durability interaction).
    pub fn get(&mut self, k: u32) -> Result<Option<u32>, OpError> {
        Ok(self.list.handle().try_get(k)?)
    }

    /// Publish a checkpoint of the current state, then prune old
    /// checkpoints and covered WAL segments. The cut is the current last
    /// LSN: single-threaded, so the export reflects exactly the log
    /// through the cut. The WAL is pruned only to the **oldest retained**
    /// checkpoint's cut, not this one's — if this checkpoint is later
    /// found damaged, fallback to an older one still has the records it
    /// needs to replay.
    pub fn checkpoint(&mut self) -> std::io::Result<Manifest> {
        let cut = self.wal.last_lsn();
        let pairs: Vec<(u32, u32)> = self.list.export_pairs().collect();
        let manifest = ckpt::write_checkpoint(
            &self.ckpt_dir,
            &Manifest {
                seq: self.ckpt_seq + 1,
                epoch: 0,
                lane_cuts: vec![cut],
                shard_bounds: Vec::new(),
                n_pairs: 0,
                n_pages: 0,
                shard_versions: Vec::new(),
            },
            &pairs,
            self.contract,
            &mut self.hook,
        )?;
        self.ckpt_seq = manifest.seq;
        self.ckpt_lsn = cut;
        ckpt::prune_old(&self.ckpt_dir, self.ckpt_keep)?;
        let mut safe_cut = cut;
        for seq in ckpt::list_checkpoints(&self.ckpt_dir)? {
            if let Some(m) = ckpt::read_manifest(&self.ckpt_dir, seq) {
                safe_cut = safe_cut.min(m.lane_cuts[0]);
            }
        }
        self.wal.prune_upto(safe_cut, &mut self.hook)?;
        Ok(manifest)
    }

    /// Split this engine into the two halves the serving loop needs: the
    /// shared structure for workers and a [`WalSink`] gating every ack —
    /// pass them to [`gfsl_serve::serve_durable`].
    pub fn serve_parts(&mut self) -> (&Gfsl, WalSink<'_>) {
        (
            &self.list,
            WalSink {
                wal: &mut self.wal,
                hook: &mut self.hook,
            },
        )
    }
}

/// Refuse if the surviving log cannot replay everything past `cut`.
fn check_reach(scan: &wal::WalScanned, cut: u64) -> Result<(), RecoverError> {
    let first_available = scan
        .records
        .first()
        .map(|r| r.lsn)
        .or_else(|| scan.tail.map(|t| t.base_lsn));
    if let Some(first_available) = first_available {
        if first_available > cut + 1 {
            return Err(RecoverError::WalGap {
                need_from: cut + 1,
                first_available,
            });
        }
    }
    Ok(())
}

/// Replay `records` past `cut` onto `list`; returns
/// `(replayed, redundant)`.
fn replay(list: &Gfsl, records: &[WalRecord], cut: u64) -> Result<(u64, u64), RecoverError> {
    let mut handle = list.handle();
    let mut replayed = 0;
    let mut redundant = 0;
    for r in records.iter().filter(|r| r.lsn > cut) {
        let effective = match r.op {
            WalOp::Put { key, val } => handle.try_insert(key, val),
            WalOp::Del { key } => handle.try_remove(key),
        }
        .map_err(RecoverError::Rebuild)?;
        replayed += 1;
        redundant += u64::from(!effective);
    }
    Ok((replayed, redundant))
}

/// The [`CommitSink`] a serving loop drains into: maps each epoch's
/// [`WriteEffect`]s to WAL records and group-commits them — one append,
/// one sync, then the epoch's responses may route.
#[derive(Debug)]
pub struct WalSink<'a> {
    wal: &'a mut Wal,
    hook: &'a mut Failpoints,
}

impl CommitSink for WalSink<'_> {
    fn commit(&mut self, effects: &[WriteEffect]) -> std::io::Result<u64> {
        if effects.is_empty() {
            return Ok(0);
        }
        let ops: Vec<WalOp> = effects
            .iter()
            .map(|e| match e.value {
                Some(val) => WalOp::Put { key: e.key, val },
                None => WalOp::Del { key: e.key },
            })
            .collect();
        let (_, last) = self.wal.append(&ops, self.hook)?;
        Ok(last)
    }
}

/// Remove an engine's entire on-disk footprint (tests, tooling).
pub fn destroy(dir: &Path) -> std::io::Result<()> {
    if dir.exists() {
        fs::remove_dir_all(dir)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(name: &str) -> DurableConfig {
        let dir = std::env::temp_dir().join(format!("gfsl_eng_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DurableConfig {
            seg_records: 8,
            ..DurableConfig::new(dir)
        }
    }

    #[test]
    fn create_write_reopen_recovers_everything() {
        let cfg = cfg("roundtrip");
        let mut eng = DurableGfsl::create(&cfg).unwrap();
        for k in 1..=200u32 {
            assert!(eng.insert(k * 2, k).unwrap());
        }
        assert!(!eng.insert(2, 99).unwrap(), "set-like duplicate");
        for k in 1..=50u32 {
            assert!(eng.remove(k * 4).unwrap());
        }
        let last = eng.last_lsn();
        assert_eq!(last, 250, "200 puts + 50 dels, duplicates unlogged");
        drop(eng); // process death: memory gone, files remain

        let (mut eng, report) = DurableGfsl::open(&cfg).unwrap();
        assert_eq!(report.replayed, 250);
        assert_eq!(report.recovered_keys, 150);
        assert_eq!(report.checkpoint_seq, None);
        assert_eq!(eng.get(4).unwrap(), None, "removed key stays removed");
        assert_eq!(eng.get(202).unwrap(), Some(101));
        eng.list().assert_valid();
        destroy(&cfg.dir).unwrap();
    }

    #[test]
    fn checkpoint_prunes_wal_and_bounds_replay() {
        let cfg = cfg("ckpt");
        let mut eng = DurableGfsl::create(&cfg).unwrap();
        for k in 1..=100u32 {
            eng.insert(k, k + 1).unwrap();
        }
        let m = eng.checkpoint().unwrap();
        assert_eq!(m.lane_cuts, vec![100]);
        assert!(eng.wal_stats().pruned_segments > 0, "covered segments go");
        for k in 101..=120u32 {
            eng.insert(k, k + 1).unwrap();
        }
        drop(eng);

        let (eng, report) = DurableGfsl::open(&cfg).unwrap();
        assert_eq!(report.checkpoint_seq, Some(1));
        assert_eq!(report.checkpoint_pairs, 100);
        assert_eq!(report.replayed, 20, "only the post-cut tail replays");
        assert_eq!(report.recovered_keys, 120);
        assert_eq!(report.last_lsn, 120);
        eng.list().assert_valid();
        destroy(&cfg.dir).unwrap();
    }

    #[test]
    fn replay_overlap_is_idempotent() {
        // Rebuild from a state that already reflects part of the replayed
        // suffix: the set-like ops must converge, not double-apply.
        let cfg = cfg("overlap");
        let mut eng = DurableGfsl::create(&cfg).unwrap();
        eng.insert(1, 10).unwrap(); // lsn 1
        eng.remove(1).unwrap(); // lsn 2
        eng.insert(1, 20).unwrap(); // lsn 3
        eng.insert(2, 30).unwrap(); // lsn 4
        drop(eng);

        // Replay EVERYTHING (cut 0) onto the final state itself.
        let wal_scan = wal::scan_wal(&cfg.wal_dir()).unwrap();
        let list =
            Gfsl::from_sorted_pairs(cfg.params, [(1u32, 20u32), (2, 30)]).unwrap();
        let (replayed, redundant) = replay(&list, &wal_scan.records, 0).unwrap();
        assert_eq!(replayed, 4);
        // lsn1 Put(1,10): resident → no-op. lsn2 Del(1): effective. lsn3
        // Put(1,20): effective again. lsn4 Put(2,30): resident → no-op.
        assert_eq!(redundant, 2);
        let mut h = list.handle();
        assert_eq!(h.try_get(1).unwrap(), Some(20));
        assert_eq!(h.try_get(2).unwrap(), Some(30));
        destroy(&cfg.dir).unwrap();
    }

    #[test]
    fn stale_checkpoint_over_pruned_wal_is_refused() {
        // ckpt_keep = 1: losing the only manifest leaves a pruned log with
        // no checkpoint to anchor it.
        let cfg = DurableConfig {
            ckpt_keep: 1,
            ..cfg("stale")
        };
        let mut eng = DurableGfsl::create(&cfg).unwrap();
        for k in 1..=60u32 {
            eng.insert(k, k).unwrap();
        }
        eng.checkpoint().unwrap(); // ckpt 1 @ cut 60, early segments pruned
        for k in 61..=80u32 {
            eng.insert(k, k).unwrap();
        }
        eng.checkpoint().unwrap(); // ckpt 2 @ cut 80, more pruning
        drop(eng);
        // Lose checkpoint 2: recovery falls back to checkpoint 1, but the
        // WAL records in (60, ~80] that checkpoint 2 covered are pruned.
        fs::remove_file(ckpt::manifest_path(&cfg.ckpt_dir(), 2)).unwrap();
        match DurableGfsl::open(&cfg) {
            Err(RecoverError::WalGap { need_from, .. }) => assert_eq!(need_from, 1),
            other => panic!("expected WalGap, got {other:?}"),
        }
        destroy(&cfg.dir).unwrap();
    }
}
