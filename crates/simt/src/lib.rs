//! Lockstep warp/team (SIMT) execution substrate.
//!
//! GFSL (Moscovici, Cohen & Petrank, PPoPP'17/PACT'17) executes every skiplist
//! operation cooperatively by a *team* of GPU threads the size of a warp (32)
//! or half-warp (16). Intra-team communication happens exclusively through the
//! CUDA warp intrinsics `__ballot` and `__shfl` at lockstep step boundaries.
//!
//! On the CPU we reproduce exactly those semantics: a team is executed by a
//! single host thread, lane-parallel steps are expressed as per-lane closures
//! evaluated in lockstep (lane 0 .. lane N-1), a ballot is a 32-bit mask over
//! the lanes' boolean votes, and a shuffle reads another lane's register.
//! Because all intra-team data flow in GFSL goes through these primitives,
//! the sequentialized execution is observationally identical to the GPU's
//! lockstep execution; inter-team concurrency (the part the algorithm's
//! correctness argument is actually about) is provided by running one team
//! per host thread over shared atomic memory.
//!
//! The crate also provides [`DivergenceStats`], the counter set used by the
//! performance model to charge SIMT branch-serialization costs.

#![warn(missing_docs)]

pub mod ballot;
pub mod divergence;
pub mod lane;
pub mod team;
pub mod vector;

pub use ballot::Ballot;
pub use divergence::DivergenceStats;
pub use lane::{LaneId, Lanes, TeamSize, WARP_SIZE};
pub use team::Team;
pub use vector::{BallotKernel, ScalarBallot, SwarBallot, VectorBallot};
