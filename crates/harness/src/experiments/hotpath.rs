//! Hot-path engine grid: the ballot kernel (scalar reference vs SWAR)
//! crossed with hinted dispatch (key-sorted batches feeding the traversal
//! hint cache), measured on three workloads. Not a paper artifact — this
//! tracks the host-side engine work layered on the paper's structure:
//!
//! * **hot-band gets** — the read-heavy headline. Batches of point lookups
//!   clustered in a sliding hot band, the access shape the serve layer's
//!   key-sorted batching produces. Hinted dispatch turns most descents into
//!   one or two lateral steps from the cached bottom-level chunk.
//! * **fresh inserts** — update-path cost. Writes never consult the hint
//!   cache (the locked find runs its own descent), so this row isolates the
//!   kernel's effect on the write path.
//! * **sliding-window churn** — insert+remove with reclamation on, the
//!   workload that exercises zombie retirement, the head-edge sweep, and
//!   pool recycling. Columns include the reclaim counters so the recycling
//!   behaviour rides along in `BENCH_hotpath.json`.
//!
//! The acceptance bar tracked here: SWAR + hints must beat the scalar
//! reference by at least 1.5x on the read-heavy workload (`vs scalar`
//! column of the first table).

use std::time::Instant;

use gfsl::{BallotKernel, BatchOp, BatchReply, Gfsl, GfslHandle, GfslParams, MemProbe};
use gfsl_workload::SplitMix64;

use super::ExpConfig;
use crate::report::{mops, pct, ratio, Table};

/// Operations per dispatched batch (a few warps' worth — the serve layer's
/// max-batch scale, and enough for the sort to cluster keys chunk-tight).
const BATCH: usize = 256;

/// The four engine configurations, scalar-reference baseline first.
fn grid() -> [(BallotKernel, bool); 4] {
    [
        (BallotKernel::Scalar, false),
        (BallotKernel::Scalar, true),
        (BallotKernel::Swar, false),
        (BallotKernel::Swar, true),
    ]
}

fn cfg_name(kernel: BallotKernel, hinted: bool) -> String {
    let k = match kernel {
        BallotKernel::Scalar => "scalar",
        BallotKernel::Swar => "swar",
    };
    if hinted {
        format!("{k}+hints")
    } else {
        k.to_string()
    }
}

fn params_for(cfg: &ExpConfig, kernel: BallotKernel, hinted: bool, expected_keys: u64) -> GfslParams {
    let mut p = GfslParams {
        kernel,
        hints: hinted,
        seed: cfg.seed,
        ..Default::default()
    };
    p.pool_chunks = GfslParams::chunks_for(expected_keys * 2, p.team_size);
    p
}

/// Dispatch one batch through the configuration's entry point.
fn run_batch<P: MemProbe>(
    h: &mut GfslHandle<'_, P>,
    hinted: bool,
    ops: &[BatchOp],
    out: &mut Vec<BatchReply>,
) {
    out.clear();
    if hinted {
        h.execute_batch_hinted(ops, out);
    } else {
        h.execute_batch(ops, out);
    }
}

/// Read-heavy workload: batched gets clustered in a sliding hot band over a
/// half-full list. Returns throughput and the hint-cache hit rate.
fn hot_band_gets(cfg: &ExpConfig, kernel: BallotKernel, hinted: bool) -> (f64, f64) {
    let range = cfg.anchor_range();
    let n_ops = cfg.mixed_ops();
    let params = params_for(cfg, kernel, hinted, range as u64 / 2);
    let list = Gfsl::prefilled(params, (1..range).filter(|k| k % 2 == 0)).unwrap();
    let mut h = list.handle();

    // The hot band spans a few hundred bottom chunks; a sorted 256-op batch
    // then lands successive keys in the same or adjacent chunks. Generated
    // outside the timed loop so the measurement is pure engine cost.
    let band = (range / 64).clamp(4 * BATCH as u32, 16_384).min(range - 1);
    let mut rng = SplitMix64::new(cfg.seed ^ 0x407);
    let batches: Vec<Vec<BatchOp>> = (0..n_ops.div_ceil(BATCH))
        .map(|_| {
            let lo = rng.below((range - band) as u64) as u32 + 1;
            (0..BATCH)
                .map(|_| BatchOp::Get(lo + rng.below(band as u64) as u32))
                .collect()
        })
        .collect();

    let mut out = Vec::with_capacity(BATCH);
    let start = Instant::now();
    for b in &batches {
        run_batch(&mut h, hinted, b, &mut out);
    }
    let secs = start.elapsed().as_secs_f64();

    let s = h.stats();
    let probes = s.hint_hits + s.hint_misses;
    let hit_rate = if probes == 0 { 0.0 } else { s.hint_hits as f64 / probes as f64 };
    ((batches.len() * BATCH) as f64 / secs / 1.0e6, hit_rate)
}

/// Update-path workload: insert fresh (odd) keys into the half-full list in
/// randomly drawn batches.
fn fresh_inserts(cfg: &ExpConfig, kernel: BallotKernel, hinted: bool) -> f64 {
    let range = cfg.anchor_range();
    let n_ins = cfg.mixed_ops().min(range as usize / 4);
    let params = params_for(cfg, kernel, hinted, range as u64 / 2 + n_ins as u64);
    let list = Gfsl::prefilled(params, (1..range).filter(|k| k % 2 == 0)).unwrap();
    let mut h = list.handle();

    // A shuffled prefix of the odd keys, cut into batches.
    let mut keys: Vec<u32> = (0..n_ins as u32).map(|i| i * 2 + 1).collect();
    let mut rng = SplitMix64::new(cfg.seed ^ 0x1475);
    for i in (1..keys.len()).rev() {
        keys.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let batches: Vec<Vec<BatchOp>> = keys
        .chunks(BATCH)
        .map(|c| c.iter().map(|&k| BatchOp::Insert(k, k)).collect())
        .collect();

    let mut out = Vec::with_capacity(BATCH);
    let start = Instant::now();
    for b in &batches {
        run_batch(&mut h, hinted, b, &mut out);
    }
    let secs = start.elapsed().as_secs_f64();
    n_ins as f64 / secs / 1.0e6
}

/// Churn workload result: throughput plus the reclamation counters.
struct ChurnResult {
    mops: f64,
    reclaimed: u64,
    reused: u64,
    high_water: u32,
    pool: u32,
}

/// Sliding-window churn with reclamation on: monotone insert+remove pairs
/// whose zombie runs park behind the level sentinels — the workload that
/// needs the reclaim pass's head-edge sweep to recycle anything at all.
fn window_churn(cfg: &ExpConfig, kernel: BallotKernel, hinted: bool) -> ChurnResult {
    let window = (cfg.anchor_range() / 8).clamp(256, 4_096);
    let pairs = (cfg.mixed_ops() / 2).max(window as usize);
    let params = GfslParams {
        reclaim: true,
        ..params_for(cfg, kernel, hinted, window as u64 * 2)
    };
    let pool = params.pool_chunks;
    let list = Gfsl::new(params).unwrap();
    let mut h = list.handle();
    for k in 1..=window {
        h.insert(k, k).unwrap();
    }

    let start = Instant::now();
    for i in 0..pairs as u32 {
        let k = window + 1 + i;
        h.insert(k, k).expect("reclamation keeps the pool ahead of churn");
        assert!(h.remove(k - window), "window key must be present");
    }
    let secs = start.elapsed().as_secs_f64();

    let stats = list.reclaim_stats().expect("reclamation on");
    ChurnResult {
        mops: (pairs * 2) as f64 / secs / 1.0e6,
        reclaimed: stats.zombies_reclaimed,
        reused: stats.reused,
        high_water: list.chunks_allocated(),
        pool,
    }
}

/// Run the hot-path grid and render the two tables.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut perf = Table::new(
        "Hot path: kernel x hinted dispatch (hot-band gets, fresh inserts)",
        &["config", "get MOPS", "vs scalar", "hint hit", "insert MOPS", "vs scalar"],
    );
    let mut base_get = 0.0f64;
    let mut base_ins = 0.0f64;
    for (kernel, hinted) in grid() {
        let (get, hit_rate) = hot_band_gets(cfg, kernel, hinted);
        let ins = fresh_inserts(cfg, kernel, hinted);
        if base_get == 0.0 {
            base_get = get;
            base_ins = ins;
        }
        perf.row(vec![
            cfg_name(kernel, hinted),
            mops(get),
            ratio(get / base_get),
            if hinted { pct(hit_rate) } else { "-".into() },
            mops(ins),
            ratio(ins / base_ins),
        ]);
    }

    let mut churn = Table::new(
        "Hot path: sliding-window churn with reclamation on",
        &["config", "churn MOPS", "vs scalar", "reclaimed", "reused", "high water", "pool"],
    );
    let mut base_churn = 0.0f64;
    for (kernel, hinted) in grid() {
        let r = window_churn(cfg, kernel, hinted);
        if base_churn == 0.0 {
            base_churn = r.mops;
        }
        churn.row(vec![
            cfg_name(kernel, hinted),
            mops(r.mops),
            ratio(r.mops / base_churn),
            r.reclaimed.to_string(),
            r.reused.to_string(),
            r.high_water.to_string(),
            r.pool.to_string(),
        ]);
    }

    vec![perf, churn]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpath_experiment_runs_tiny() {
        let cfg = ExpConfig::tiny(2);
        let tables = run(&cfg);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.rows.len(), 4, "one row per grid configuration");
            assert_eq!(t.rows[0][0], "scalar", "scalar baseline first");
            assert_eq!(t.rows[0][2], "1.00x", "baseline ratio is identity");
            assert_eq!(t.rows[3][0], "swar+hints");
        }
        // The hinted configurations must actually exercise the hint cache.
        for row in [&tables[0].rows[1], &tables[0].rows[3]] {
            assert_ne!(row[3], "-", "hinted rows report a hit rate");
            assert_ne!(row[3], "0.0%", "sorted hot-band batches must hit");
        }
        // Churn must have recycled: the reclaim counters are the artifact.
        for row in &tables[1].rows {
            assert_ne!(row[3], "0", "churn must reclaim zombies ({row:?})");
            assert_ne!(row[4], "0", "churn must reuse chunks ({row:?})");
        }
    }
}
