//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API surface the workspace's bench targets use
//! (`benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `criterion_group!`/`criterion_main!`) as a plain wall-clock measurement
//! loop that prints mean per-iteration time. Statistics, plots, and HTML
//! reports of real criterion are out of scope; the point is that
//! `cargo bench` compiles and produces honest comparative numbers offline.
//!
//! Under `cargo test` (which builds bench targets with `--test`), each
//! bench function runs exactly once as a smoke test, like real criterion.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup between measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup for every routine invocation.
    PerIteration,
    /// Small batches (treated like `PerIteration` in this shim).
    SmallInput,
    /// Large batches (treated like `PerIteration` in this shim).
    LargeInput,
    /// Explicit batch count (treated like `PerIteration` in this shim).
    NumBatches(u64),
    /// Explicit iteration count (treated like `PerIteration` in this shim).
    NumIterations(u64),
}

/// Measurement driver passed to bench closures.
pub struct Bencher {
    test_mode: bool,
    /// (iterations, total measured time) of the last run.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.result = Some((1, Duration::ZERO));
            return;
        }
        // Warmup + calibration: find an iteration count taking ~50ms.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(50) || n >= 1 << 30 {
                self.result = Some((n, elapsed));
                return;
            }
            n = (n * 4).max(4);
        }
    }

    /// Measure `routine` with per-invocation `setup` excluded from timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            std::hint::black_box(routine(input));
            self.result = Some((1, Duration::ZERO));
            return;
        }
        let mut n = 1u64;
        loop {
            let mut total = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                total += start.elapsed();
            }
            if total >= Duration::from_millis(50) || n >= 1 << 24 {
                self.result = Some((n, total));
                return;
            }
            n = (n * 4).max(4);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((iters, total)) if !self.criterion.test_mode && iters > 0 => {
                let per_iter = total.as_nanos() as f64 / iters as f64;
                println!(
                    "{}/{:<40} {:>12.1} ns/iter  ({} iters)",
                    self.name, id, per_iter, iters
                );
            }
            _ => println!("{}/{:<40} ok (test mode)", self.name, id),
        }
        self
    }

    /// Finish the group (no-op beyond a separator line).
    pub fn finish(&mut self) {
        println!();
    }

    /// Accepted and ignored (shim has fixed sampling).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored (shim has fixed measurement time).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

/// Top-level benchmark manager.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--test` under `cargo test`;
        // libtest-style harnesses also pass `--bench` when benchmarking.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            println!("== {name} ==");
        }
        BenchmarkGroup {
            name,
            criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Prevent the optimizer from discarding a value (re-export of
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect bench functions into a group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running one or more `criterion_group!` groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { test_mode: false };
        let mut ran = 0u64;
        c.benchmark_group("shim").bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0u64;
        c.benchmark_group("shim").bench_function("once", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert_eq!(ran, 1);
    }
}
