//! The event-driven device scheduler.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gfsl_gpu_mem::l2::Probe;
use gfsl_gpu_mem::{coalesce, L2Cache, Traffic, WordAddr};

use crate::machine::{ExecConfig, ExecReport};
use crate::tasks::{Step, WarpProgram};

/// The simulated device: SMs with resident warps over a shared L2 and a
/// bandwidth-limited DRAM queue.
pub struct Device {
    cfg: ExecConfig,
    l2: L2Cache,
    /// Cycle at which the DRAM queue next frees up (global resource).
    dram_free_at: f64,
    traffic: Traffic,
}

impl Device {
    /// A fresh device (cold L2).
    pub fn new(cfg: ExecConfig) -> Device {
        Device {
            cfg,
            l2: L2Cache::gtx970(),
            dram_free_at: 0.0,
            traffic: Traffic::new(),
        }
    }

    /// Traffic accumulated so far (across runs; the L2 stays warm).
    pub fn traffic(&self) -> Traffic {
        self.traffic
    }

    /// Charge one warp-wide access issued at `now`; returns `(stall
    /// latency, transactions)`. Applies half-warp coalescing, probes the L2
    /// per line, and pushes miss sectors through the global DRAM queue.
    fn access(&mut self, now: u64, addrs: &[WordAddr]) -> (u64, u32) {
        let mut worst = self.cfg.l2_hit_cycles;
        let l2 = &self.l2;
        let cfg = &self.cfg;
        let mut miss_sectors_total = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let txns = coalesce::transactions(addrs, |line, mask| match l2.access(line) {
            Probe::Hit => hits += 1,
            Probe::Miss => {
                misses += 1;
                miss_sectors_total += mask.count_ones() as u64;
            }
        });
        self.traffic.read_txns += txns as u64;
        self.traffic.l2_hits += hits;
        self.traffic.l2_misses += misses;
        self.traffic.miss_sectors += miss_sectors_total;
        self.traffic.words_read += addrs.len() as u64;
        if misses > 0 {
            // Queue the sectors behind whatever DRAM is already serving.
            let start = self.dram_free_at.max(now as f64);
            self.dram_free_at =
                start + miss_sectors_total as f64 * cfg.dram_sector_service_cycles;
            let queue_done = self.dram_free_at;
            let latency = (queue_done - now as f64).ceil() as u64 + cfg.dram_cycles;
            worst = worst.max(latency);
        }
        (worst, txns)
    }

    /// Run a set of warp programs to completion. Warps are distributed
    /// round-robin over SMs; each SM issues one ready warp per
    /// `issue_cycles`, in ready-time order (the GPU's greedy-then-oldest
    /// scheduling is approximated by smallest-ready-first).
    pub fn run(&mut self, mut warps: Vec<Box<dyn WarpProgram + '_>>, ops: u64) -> ExecReport {
        let sms = self.cfg.sms as usize;
        // One global event heap keeps DRAM-queue interactions between SMs
        // in (approximate) time order; per-SM clocks serialize issue slots.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (i, _) in warps.iter().enumerate() {
            heap.push(Reverse((0, i)));
        }
        let mut clocks = vec![0u64; sms];
        let mut steps = 0u64;

        while let Some(Reverse((ready, wi))) = heap.pop() {
            let sm = wi % sms;
            let now = clocks[sm].max(ready) + self.cfg.issue_cycles;
            clocks[sm] = now;
            steps += 1;
            match warps[wi].step() {
                Step::Mem(addrs) => {
                    let (lat, txns) = self.access(now, &addrs);
                    // Address-divergence replays occupy this SM's issue
                    // pipeline (they delay *other* warps, not just this one).
                    clocks[sm] += txns.saturating_sub(1) as u64 * self.cfg.replay_cycles;
                    heap.push(Reverse((
                        clocks[sm].max(now) + lat + self.cfg.step_overhead_cycles,
                        wi,
                    )));
                }
                Step::Compute(c) => {
                    heap.push(Reverse((now + c + self.cfg.step_overhead_cycles, wi)));
                }
                Step::Done => {}
            }
        }

        let cycles = clocks.into_iter().max().unwrap_or(0);
        let seconds = cycles as f64 / (self.cfg.clock_mhz as f64 * 1e6);
        ExecReport {
            ops,
            cycles,
            steps,
            traffic: self.traffic,
            seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial program: N compute steps then done.
    struct Spin {
        left: u32,
    }

    impl WarpProgram for Spin {
        fn step(&mut self) -> Step {
            if self.left == 0 {
                Step::Done
            } else {
                self.left -= 1;
                Step::Compute(10)
            }
        }
    }

    #[test]
    fn compute_only_warps_finish_in_expected_cycles() {
        let mut dev = Device::new(ExecConfig {
            sms: 1,
            warps_per_sm: 2,
            step_overhead_cycles: 0,
            ..Default::default()
        });
        let warps: Vec<Box<dyn WarpProgram>> = vec![
            Box::new(Spin { left: 3 }),
            Box::new(Spin { left: 3 }),
        ];
        let r = dev.run(warps, 2);
        // 2 warps x 4 steps (3 compute + 1 done), interleaved on one SM.
        assert_eq!(r.steps, 8);
        assert!(r.cycles >= 30, "3 compute steps of 10 cycles: {}", r.cycles);
        assert!(r.cycles < 80, "interleaving must overlap stalls: {}", r.cycles);
    }

    /// Memory-touching program: reads a (possibly striding) address.
    struct Reader {
        addr: u32,
        stride: u32,
        left: u32,
    }

    impl WarpProgram for Reader {
        fn step(&mut self) -> Step {
            if self.left == 0 {
                Step::Done
            } else {
                self.left -= 1;
                let a = self.addr;
                self.addr += self.stride;
                Step::Mem(vec![a])
            }
        }
    }

    #[test]
    fn first_access_misses_then_hits_lower_latency() {
        let mut dev = Device::new(ExecConfig {
            sms: 1,
            warps_per_sm: 1,
            step_overhead_cycles: 0,
            ..Default::default()
        });
        let r = dev.run(
            vec![Box::new(Reader { addr: 64, stride: 0, left: 2 })],
            1,
        );
        let t = r.traffic;
        assert_eq!(t.l2_misses, 1);
        assert_eq!(t.l2_hits, 1);
        // One DRAM miss (450+) + one hit (200) + issue slots.
        assert!(r.cycles > 450 + 200 && r.cycles < 1_000, "{}", r.cycles);
    }

    #[test]
    fn more_resident_warps_hide_latency() {
        let run = |n: usize| {
            let mut dev = Device::new(ExecConfig {
                sms: 1,
                warps_per_sm: n as u32,
                ..Default::default()
            });
            // Distinct lines so every warp misses independently.
            let warps: Vec<Box<dyn WarpProgram>> = (0..n)
                .map(|i| {
                    Box::new(Reader {
                        addr: (i as u32) * 16,
                        stride: 0,
                        left: 8,
                    }) as Box<dyn WarpProgram>
                })
                .collect();
            let r = dev.run(warps, n as u64);
            r.seconds / n as f64 // time per warp's work
        };
        let solo = run(1);
        let packed = run(16);
        assert!(
            packed < solo * 0.5,
            "16 warps must overlap stalls: {packed} vs {solo}"
        );
    }

    #[test]
    fn dram_queue_throttles_bandwidth_hogs() {
        // Many warps streaming distinct lines: the DRAM queue must push
        // total time beyond pure latency overlap.
        let mut dev = Device::new(ExecConfig {
            sms: 1,
            warps_per_sm: 32,
            dram_sector_service_cycles: 50.0, // absurdly slow DRAM
            ..Default::default()
        });
        let warps: Vec<Box<dyn WarpProgram>> = (0..32)
            .map(|i| {
                Box::new(Reader {
                    addr: (i as u32) * 160_000,
                    stride: 4_096, // new line (and set) every step: all miss
                    left: 4,
                }) as Box<dyn WarpProgram>
            })
            .collect();
        let r = dev.run(warps, 32);
        assert_eq!(r.traffic.l2_misses, 128, "every access must miss");
        // 128 misses x 1 sector x 50 cycles of DRAM service = 6400+ cycles.
        assert!(r.cycles > 6_000, "{}", r.cycles);
    }

    #[test]
    fn deterministic_across_runs() {
        let go = || {
            let mut dev = Device::new(ExecConfig::default());
            let warps: Vec<Box<dyn WarpProgram>> = (0..64)
                .map(|i| {
                    Box::new(Reader {
                        addr: (i as u32) * 48,
                        stride: 7,
                        left: 5,
                    }) as Box<dyn WarpProgram>
                })
                .collect();
            dev.run(warps, 64).cycles
        };
        assert_eq!(go(), go());
    }
}
