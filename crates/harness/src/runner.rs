//! Workload execution against the two structures, with instrumentation.
//!
//! Each worker thread plays the role of a set of GPU teams (GFSL) or a set
//! of GPU threads (M&C): the operation stream is split into contiguous
//! slices, one per worker, exactly as the paper's kernels hand each
//! team/thread a contiguous slab of the input array.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gfsl::{Gfsl, GfslParams};
use gfsl_gpu_mem::{CountingProbe, L2Cache};
use gfsl_simt::DivergenceStats;
use gfsl_workload::{Op, WorkloadSpec};
use mc_skiplist::{McParams, McSkipList};

use crate::metrics::RunMetrics;

/// Execution knobs shared by every experiment.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Host worker threads (= concurrent teams). The GPU cost model
    /// rescales the measured contention from this concurrency to the
    /// modeled GPU's resident-team count.
    pub workers: usize,
    /// Lanes per model warp when aggregating M&C divergence (always 32 on
    /// the modeled hardware).
    pub warp_lanes: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            workers: 4,
            warp_lanes: 32,
        }
    }
}

/// Split `ops` into `n` contiguous slices (the last may be short).
fn slices(ops: &[Op], n: usize) -> Vec<&[Op]> {
    let n = n.max(1);
    let per = ops.len().div_ceil(n).max(1);
    ops.chunks(per).collect()
}

/// Run a workload against GFSL and collect metrics.
///
/// Prefill happens instrumented (so the L2 ends warm, as on the real device
/// where the structure was just built) but its counters are discarded; the
/// timed phase starts with fresh counters.
pub fn run_gfsl(spec: &WorkloadSpec, params: GfslParams, cfg: &RunConfig) -> RunMetrics {
    run_gfsl_ops(&spec.prefill_keys(), &spec.ops(), spec.key_range, params, cfg)
}

/// Like [`run_gfsl`] but with explicit prefill and operation streams (used
/// by the skew ablations, which draw keys from non-uniform distributions).
pub fn run_gfsl_ops(
    prefill: &[u32],
    ops: &[Op],
    key_range: u32,
    params: GfslParams,
    cfg: &RunConfig,
) -> RunMetrics {
    let list = Gfsl::new(params).expect("GFSL construction");
    let l2 = Arc::new(L2Cache::gtx970());
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..cfg.workers.max(1) {
            let list = &list;
            let prefill = &prefill;
            let next = &next;
            let l2 = l2.clone();
            s.spawn(move || {
                let mut h = list.handle_with(CountingProbe::new(l2));
                loop {
                    let i = next.fetch_add(1024, Ordering::Relaxed);
                    if i >= prefill.len() {
                        break;
                    }
                    for &k in &prefill[i..(i + 1024).min(prefill.len())] {
                        h.insert(k, k).expect("prefill insert");
                    }
                }
            });
        }
    });

    // Timed phase.
    let t0 = Instant::now();
    let per_worker: Vec<(gfsl_gpu_mem::Traffic, gfsl::OpStats)> = std::thread::scope(|s| {
        let handles: Vec<_> = slices(ops, cfg.workers)
            .into_iter()
            .map(|slice| {
                let list = &list;
                let l2 = l2.clone();
                s.spawn(move || {
                    let mut h = list.handle_with(CountingProbe::new(l2));
                    for op in slice {
                        match *op {
                            Op::Insert(k, v) => {
                                let _ = h.insert(k, v).expect("pool exhausted mid-run");
                            }
                            Op::Delete(k) => {
                                let _ = h.remove(k);
                            }
                            Op::Contains(k) => {
                                let _ = h.contains(k);
                            }
                        }
                    }
                    let (probe, stats) = h.into_parts();
                    (probe.traffic(), stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_seconds = t0.elapsed().as_secs_f64();

    let update_ops = ops
        .iter()
        .filter(|o| !matches!(o, Op::Contains(_)))
        .count() as u64;
    // Contended resource: bottom-level chunks. Live keys sit around 55% fill
    // after random churn, so chunks ~= keys / (DSIZE * 0.55).
    let live_keys = prefill.len() as u64;
    let per_chunk = (params.dsize() as f64 * 0.55).max(1.0);
    let mut metrics = RunMetrics {
        n_ops: ops.len() as u64,
        workers: cfg.workers as u32,
        wall_seconds,
        update_ops,
        contention_units: ((live_keys.max(key_range as u64 / 4) as f64 / per_chunk) as u64)
            .max(1),
        op_per_lane: false,
        blocking_updates: true,
        ..Default::default()
    };
    for (traffic, stats) in per_worker {
        metrics.traffic.merge(&traffic);
        metrics.retries += stats.lock_retries;
        metrics.restarts += stats.search_restarts;
        metrics.splits += stats.splits;
        metrics.merges += stats.merges;
        // GFSL teams execute divergence-free: every chunk read and every
        // serialized entry write is one converged lockstep step.
        metrics.divergence.warp_steps += stats.chunk_reads + traffic.write_txns + traffic.atomic_txns;
        metrics.divergence.lane_steps += stats.chunk_reads + traffic.write_txns + traffic.atomic_txns;
    }
    metrics
}

/// Run a workload against the M&C baseline and collect metrics.
///
/// Divergence accounting: the paper's M&C runs one operation per GPU
/// thread, 32 per warp, in lockstep. We record each operation's individual
/// access count and fold each group of 32 consecutive operations into one
/// model warp whose cost is the *maximum* lane path (serialized divergent
/// execution).
pub fn run_mc(spec: &WorkloadSpec, params: McParams, cfg: &RunConfig) -> RunMetrics {
    let list = McSkipList::new(params).expect("M&C construction");
    let l2 = Arc::new(L2Cache::gtx970());

    let prefill = spec.prefill_keys();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..cfg.workers.max(1) {
            let list = &list;
            let prefill = &prefill;
            let next = &next;
            let l2 = l2.clone();
            s.spawn(move || {
                let mut h = list.handle_with(CountingProbe::new(l2));
                loop {
                    let i = next.fetch_add(1024, Ordering::Relaxed);
                    if i >= prefill.len() {
                        break;
                    }
                    for &k in &prefill[i..(i + 1024).min(prefill.len())] {
                        h.insert(k, k);
                    }
                }
            });
        }
    });

    let ops = spec.ops();
    let warp_lanes = cfg.warp_lanes.max(1);
    let t0 = Instant::now();
    type McWorker = (gfsl_gpu_mem::Traffic, mc_skiplist::McStats, DivergenceStats);
    let per_worker: Vec<McWorker> = std::thread::scope(|s| {
        let handles: Vec<_> = slices(&ops, cfg.workers)
            .into_iter()
            .map(|slice| {
                let list = &list;
                let l2 = l2.clone();
                s.spawn(move || {
                    let mut h = list.handle_with(CountingProbe::new(l2));
                    let mut divergence = DivergenceStats::new();
                    let mut lane_steps: Vec<u64> = Vec::with_capacity(warp_lanes);
                    let mut last_reads = 0u64;
                    for op in slice {
                        match *op {
                            Op::Insert(k, v) => {
                                let _ = h.insert(k, v);
                            }
                            Op::Delete(k) => {
                                let _ = h.remove(k);
                            }
                            Op::Contains(k) => {
                                let _ = h.contains(k);
                            }
                        }
                        let reads = h.stats().node_reads;
                        lane_steps.push(reads - last_reads);
                        last_reads = reads;
                        if lane_steps.len() == warp_lanes {
                            divergence.record_diverged_region(&lane_steps);
                            lane_steps.clear();
                        }
                    }
                    if !lane_steps.is_empty() {
                        divergence.record_diverged_region(&lane_steps);
                    }
                    let (probe, stats) = h.into_parts();
                    (probe.traffic(), stats, divergence)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_seconds = t0.elapsed().as_secs_f64();

    let update_ops = ops
        .iter()
        .filter(|o| !matches!(o, Op::Contains(_)))
        .count() as u64;
    let live_keys = spec.prefill().expected_len(spec.key_range) as u64;
    let mut metrics = RunMetrics {
        n_ops: ops.len() as u64,
        workers: cfg.workers as u32,
        wall_seconds,
        update_ops,
        contention_units: live_keys.max(spec.key_range as u64 / 4).max(1),
        op_per_lane: true,
        blocking_updates: false,
        ..Default::default()
    };
    for (traffic, stats, divergence) in per_worker {
        metrics.traffic.merge(&traffic);
        metrics.retries += stats.cas_failures + stats.find_retries;
        metrics.divergence.merge(&divergence);
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfsl_workload::{BenchKind, OpMix};

    fn quick_spec() -> WorkloadSpec {
        WorkloadSpec::mixed(OpMix::C80, 10_000, 20_000, 42)
    }

    #[test]
    fn gfsl_run_produces_traffic_and_completes_ops() {
        let spec = quick_spec();
        let m = run_gfsl(&spec, GfslParams::sized_for(20_000), &RunConfig::default());
        assert_eq!(m.n_ops, 20_000);
        assert!(m.traffic.read_txns > 0);
        assert!(m.txns_per_op() > 1.0);
        assert!(m.divergence.warp_steps > 0);
        assert!(m.wall_seconds > 0.0);
        // GFSL teams are divergence-free by construction.
        assert_eq!(m.divergence.divergent_branches, 0);
    }

    #[test]
    fn mc_run_produces_traffic_and_divergence() {
        let spec = quick_spec();
        let m = run_mc(&spec, McParams::sized_for(40_000), &RunConfig::default());
        assert_eq!(m.n_ops, 20_000);
        assert!(m.traffic.read_txns > 0);
        assert!(
            m.divergence.divergent_branches > 0,
            "independent per-lane ops must diverge"
        );
        // Warp cost is max-per-lane, so warp steps exceed per-lane average.
        let avg_lane = m.divergence.lane_steps as f64 / m.n_ops as f64;
        let per_warp = m.divergence.warp_steps as f64 / (m.n_ops as f64 / 32.0);
        assert!(per_warp > avg_lane, "{per_warp} vs {avg_lane}");
    }

    #[test]
    fn mc_uncoalesced_traffic_exceeds_gfsl_at_same_workload() {
        let spec = quick_spec();
        let g = run_gfsl(&spec, GfslParams::sized_for(20_000), &RunConfig::default());
        let m = run_mc(&spec, McParams::sized_for(40_000), &RunConfig::default());
        // Per op, M&C issues many scattered transactions vs GFSL's few
        // coalesced ones... at 10K range both mostly hit L2, but raw txns
        // already tell the story.
        assert!(
            m.txns_per_op() > g.txns_per_op(),
            "mc {} vs gfsl {}",
            m.txns_per_op(),
            g.txns_per_op()
        );
    }

    #[test]
    fn insert_only_spec_runs() {
        let spec = WorkloadSpec::single(BenchKind::InsertOnly, 5_000, 0, 7);
        let m = run_gfsl(&spec, GfslParams::sized_for(10_000), &RunConfig::default());
        assert_eq!(m.n_ops, 5_000);
        assert!(m.splits > 0);
    }

    #[test]
    fn delete_only_spec_runs_and_merges() {
        let spec = WorkloadSpec::single(BenchKind::DeleteOnly, 5_000, 0, 7);
        let m = run_gfsl(&spec, GfslParams::sized_for(10_000), &RunConfig::default());
        assert_eq!(m.n_ops, 5_000);
        assert!(m.merges > 0);
    }
}
