//! Ablations beyond the paper: design-choice sensitivity checks that
//! DESIGN.md calls out.
//!
//! * merge threshold (`DSIZE/merge_divisor`): the paper fixes `DSIZE/3`;
//!   we sweep the divisor to show the merge-rate / space tradeoff;
//! * instrumentation overhead: host wall-clock with probes vs without
//!   (validates that the `NoProbe` fast path really is free to the
//!   *measured transaction counts* — they are identical by construction —
//!   and shows the cost of measuring);
//! * contention profile: lock retries and restarts as the key range
//!   shrinks (the mechanism behind the paper's throughput "dip").

use std::time::Instant;

use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_workload::{format_count, KeyDist, Op, OpMix, Prefill, WorkloadSpec};

use super::ExpConfig;
use crate::model_eval::{evaluate, StructureKind};
use crate::report::{mops, Table};
use crate::runner::{run_gfsl, run_gfsl_ops, RunConfig};

/// Run all three ablations at the anchor range.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let run_cfg = RunConfig {
        workers: cfg.workers,
        ..Default::default()
    };
    let range = cfg.anchor_range();

    // Merge-threshold sweep on a delete-heavy mixture.
    let spec = WorkloadSpec::mixed(OpMix::C60, range, cfg.mixed_ops(), cfg.seed);
    let mut t_merge = Table::new(
        format!("Ablation: merge threshold (DSIZE/divisor), [20,20,60], range {}", spec.range_label()),
        &["divisor", "threshold", "MOPS (model)", "merges", "splits", "chunks used"],
    );
    for divisor in [2u32, 3, 6] {
        let params = GfslParams {
            merge_divisor: divisor,
            pool_chunks: GfslParams::chunks_for(
                range as u64 + spec.n_ops as u64,
                TeamSize::ThirtyTwo,
            ),
            seed: cfg.seed,
            ..Default::default()
        };
        let threshold = params.merge_threshold();
        let m = run_gfsl(&spec, params, &run_cfg);
        let tp = evaluate(StructureKind::Gfsl, &m);
        t_merge.row(vec![
            divisor.to_string(),
            threshold.to_string(),
            mops(tp.mops),
            m.merges.to_string(),
            m.splits.to_string(),
            "-".into(),
        ]);
    }

    // Probe overhead: run the identical single-threaded workload with and
    // without instrumentation.
    let po_range = 100_000u32;
    let po_spec = WorkloadSpec::mixed(OpMix::C80, po_range, cfg.mixed_ops().min(200_000), cfg.seed);
    let mut t_probe = Table::new(
        "Ablation: instrumentation overhead (host wall time, 1 worker)",
        &["mode", "ops", "seconds", "host MOPS"],
    );
    {
        let list = Gfsl::new(GfslParams::sized_for(po_range as u64 * 2)).unwrap();
        let mut h = list.handle();
        for k in po_spec.prefill_keys() {
            h.insert(k, k).unwrap();
        }
        let ops = po_spec.ops();
        let t0 = Instant::now();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let _ = h.insert(k, v).unwrap();
                }
                Op::Delete(k) => {
                    let _ = h.remove(k);
                }
                Op::Contains(k) => {
                    let _ = h.contains(k);
                }
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        t_probe.row(vec![
            "NoProbe".into(),
            ops.len().to_string(),
            format!("{secs:.3}"),
            mops(ops.len() as f64 / secs / 1e6),
        ]);
    }
    {
        let one = RunConfig {
            workers: 1,
            ..Default::default()
        };
        let m = run_gfsl(&po_spec, GfslParams::sized_for(po_range as u64 * 2), &one);
        t_probe.row(vec![
            "CountingProbe+L2".into(),
            m.n_ops.to_string(),
            format!("{:.3}", m.wall_seconds),
            mops(m.host_mops()),
        ]);
    }

    // Contention profile across ranges (the "dip" mechanism).
    let mut t_cont = Table::new(
        "Ablation: contention vs key range ([20,20,60])",
        &["range", "lock retries/op", "restarts/op", "merges", "MOPS (model)"],
    );
    for &r in &cfg.ranges()[..cfg.ranges().len().min(4)] {
        let spec = WorkloadSpec::mixed(OpMix::C60, r, cfg.mixed_ops(), cfg.seed);
        let m = run_gfsl(
            &spec,
            GfslParams::sized_for(r as u64 + spec.n_ops as u64),
            &run_cfg,
        );
        let tp = evaluate(StructureKind::Gfsl, &m);
        t_cont.row(vec![
            format_count(r as u64),
            format!("{:.4}", m.retries as f64 / m.n_ops as f64),
            format!("{:.6}", m.restarts as f64 / m.n_ops as f64),
            m.merges.to_string(),
            mops(tp.mops),
        ]);
    }

    // Future-work analysis (paper §7): two GFSL-16 teams per warp. We model
    // it from the measured one-team-per-warp GFSL-16 run: doubling the
    // resident teams doubles lock congestion; issue cost per op is
    // unchanged when the co-resident teams diverge (they serialize) and
    // halves in the optimistic fully-converged limit. Memory traffic per op
    // is identical.
    let tt_range = cfg.anchor_range();
    let tt_spec = WorkloadSpec::mixed(OpMix::C80, tt_range, cfg.mixed_ops(), cfg.seed);
    let mut t_future = Table::new(
        format!("Future work (paper \u{a7}7): two GFSL-16 teams per warp, [10,10,80], range {}", tt_spec.range_label()),
        &["variant", "MOPS (model)", "mem ns/op", "cmp ns/op", "cont ns/op"],
    );
    {
        use gfsl_gpu_model::{occupancy, CostModel, GpuArch, LaunchConfig};
        let params16 = GfslParams {
            team_size: TeamSize::Sixteen,
            pool_chunks: GfslParams::chunks_for(
                tt_range as u64 + tt_spec.n_ops as u64,
                TeamSize::Sixteen,
            ),
            seed: cfg.seed,
            ..Default::default()
        };
        let m16 = run_gfsl(&tt_spec, params16, &run_cfg);
        let params32 = GfslParams {
            pool_chunks: GfslParams::chunks_for(
                tt_range as u64 + tt_spec.n_ops as u64,
                TeamSize::ThirtyTwo,
            ),
            seed: cfg.seed,
            ..Default::default()
        };
        let m32 = run_gfsl(&tt_spec, params32, &run_cfg);
        let arch = GpuArch::gtx970();
        let occ = occupancy::occupancy(
            &arch,
            &crate::model_eval::StructureKind::Gfsl.profile(),
            &LaunchConfig::paper_default(),
        );
        let cm = CostModel::calibrated();
        let n = m16.n_ops as f64;

        let one_team = gfsl_gpu_model::cost::predict(&arch, &occ, &cm, &m16.to_measurement());
        // Two teams per warp, divergent (realistic): congestion doubles.
        let mut two_div = m16.to_measurement();
        two_div.op_per_lane = false;
        two_div.contention_units = (two_div.contention_units / 2).max(1);
        let two_divergent = gfsl_gpu_model::cost::predict(&arch, &occ, &cm, &two_div);
        // Two teams per warp, fully converged (optimistic bound): issue
        // halves too.
        let mut two_conv = two_div;
        two_conv.warp_steps /= 2;
        let two_converged = gfsl_gpu_model::cost::predict(&arch, &occ, &cm, &two_conv);
        let g32 = gfsl_gpu_model::cost::predict(&arch, &occ, &cm, &m32.to_measurement());

        for (name, tp, ops_n) in [
            ("GFSL-16, 1 team/warp (measured)", one_team, n),
            ("GFSL-16, 2 teams/warp (divergent model)", two_divergent, n),
            ("GFSL-16, 2 teams/warp (converged bound)", two_converged, n),
            ("GFSL-32 (measured, reference)", g32, m32.n_ops as f64),
        ] {
            t_future.row(vec![
                name.into(),
                mops(tp.mops),
                format!("{:.1}", tp.mem_seconds * 1e9 / ops_n),
                format!("{:.1}", tp.compute_seconds * 1e9 / ops_n),
                format!("{:.1}", tp.contention_seconds * 1e9 / ops_n),
            ]);
        }
    }

    // Key-skew ablation (beyond the paper, which is uniform-only): Zipfian
    // hot keys raise the L2 hit rate (modeled from measured traffic) and
    // concentrate updates onto few chunks (visible in measured host
    // retries).
    let sk_range = cfg.anchor_range();
    let sk_ops = cfg.mixed_ops();
    let mut t_skew = Table::new(
        format!("Ablation: key skew (Zipf), GFSL-32, [10,10,80], range {}", format_count(sk_range as u64)),
        &["distribution", "MOPS (model)", "L2 hit %", "txns/op", "host retries/op"],
    );
    {
        let prefill = Prefill::HalfRandom.keys(sk_range, cfg.seed);
        for (label, dist) in [
            ("uniform", KeyDist::Uniform),
            ("zipf 0.80", KeyDist::Zipf(0.80)),
            ("zipf 0.99", KeyDist::Zipf(0.99)),
        ] {
            let ops = OpMix::C80.stream_dist(cfg.seed ^ 0x5111, sk_range, sk_ops, dist);
            let params = GfslParams {
                pool_chunks: GfslParams::chunks_for(
                    sk_range as u64 + sk_ops as u64,
                    TeamSize::ThirtyTwo,
                ),
                seed: cfg.seed,
                ..Default::default()
            };
            let m = run_gfsl_ops(&prefill, &ops, sk_range, params, &run_cfg);
            let tp = evaluate(StructureKind::Gfsl, &m);
            t_skew.row(vec![
                label.into(),
                mops(tp.mops),
                format!("{:.0}", m.traffic.l2_hit_ratio() * 100.0),
                format!("{:.1}", m.txns_per_op()),
                format!("{:.5}", m.retries as f64 / m.n_ops as f64),
            ]);
        }
    }

    vec![t_merge, t_probe, t_cont, t_future, t_skew]
}
