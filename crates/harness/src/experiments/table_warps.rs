//! Tables 5.1 and 5.2: effects of limiting warps launched per block.
//!
//! The static columns (registers, active blocks, occupancy, spillover) come
//! from the occupancy model and reproduce the paper **exactly**; the
//! throughput row re-evaluates one measured `[10,10,80]` run at the anchor
//! range under each launch configuration.

use gfsl::GfslParams;
use gfsl_gpu_model::{occupancy, GpuArch, KernelProfile, LaunchConfig};
use gfsl_workload::{OpMix, WorkloadSpec};
use mc_skiplist::McParams;

use super::ExpConfig;
use crate::model_eval::{evaluate_with_launch, StructureKind};
use crate::report::{mops, Table};
use crate::runner::{run_gfsl, run_mc, RunConfig};

const WARP_CONFIGS: [u32; 4] = [8, 16, 24, 32];

/// Paper Table 5.1 throughput row (MOPS), for reference columns.
const PAPER_GFSL_MOPS: [f64; 4] = [58.9, 65.7, 62.5, 52.9];
/// Paper Table 5.2 throughput row.
const PAPER_MC_MOPS: [f64; 4] = [20.7, 21.3, 20.6, 20.2];

fn static_rows(table: &mut Table, kernel: &KernelProfile) {
    let arch = GpuArch::gtx970();
    let occs: Vec<_> = WARP_CONFIGS
        .iter()
        .map(|&w| occupancy::occupancy(&arch, kernel, &LaunchConfig { warps_per_block: w }))
        .collect();
    table.row(
        std::iter::once("Occupancy/Theoretical".to_string())
            .chain(occs.iter().map(|o| {
                format!("{:.1}%/{:.1}%", o.achieved * 100.0, o.theoretical * 100.0)
            }))
            .collect(),
    );
    table.row(
        std::iter::once("Registers".to_string())
            .chain(occs.iter().map(|o| o.regs_alloc.to_string()))
            .collect(),
    );
    table.row(
        std::iter::once("Active Blocks".to_string())
            .chain(occs.iter().map(|o| o.active_blocks.to_string()))
            .collect(),
    );
    table.row(
        std::iter::once("Local Memory Spillover".to_string())
            .chain(occs.iter().map(|o| format!("{:.0}%", o.spill_share * 100.0)))
            .collect(),
    );
}

/// Table 5.1 — GFSL.
pub fn table5_1(cfg: &ExpConfig) -> Vec<Table> {
    let range = cfg.anchor_range();
    let spec = WorkloadSpec::mixed(OpMix::C80, range, cfg.mixed_ops(), cfg.seed);
    let run_cfg = RunConfig {
        workers: cfg.workers,
        ..Default::default()
    };
    let metrics = run_gfsl(
        &spec,
        GfslParams::sized_for(range as u64 + spec.n_ops as u64),
        &run_cfg,
    );

    let mut t = Table::new(
        format!("Table 5.1: GFSL warps per block ([10,10,80], range {})", spec.range_label()),
        &["", "8", "16", "24", "32"],
    );
    static_rows(&mut t, &KernelProfile::gfsl());
    t.row(
        std::iter::once("Throughput (MOPS, model)".to_string())
            .chain(WARP_CONFIGS.iter().map(|&w| {
                let tp = evaluate_with_launch(
                    StructureKind::Gfsl,
                    &metrics,
                    &LaunchConfig { warps_per_block: w },
                );
                mops(tp.mops)
            }))
            .collect(),
    );
    t.row(
        std::iter::once("Throughput (MOPS, paper)".to_string())
            .chain(PAPER_GFSL_MOPS.iter().map(|&v| mops(v)))
            .collect(),
    );
    vec![t]
}

/// Table 5.2 — M&C.
pub fn table5_2(cfg: &ExpConfig) -> Vec<Table> {
    let range = cfg.anchor_range();
    let spec = WorkloadSpec::mixed(OpMix::C80, range, cfg.mixed_ops(), cfg.seed);
    let run_cfg = RunConfig {
        workers: cfg.workers,
        ..Default::default()
    };
    let metrics = run_mc(
        &spec,
        McParams::sized_for(range as u64 + spec.n_ops as u64),
        &run_cfg,
    );

    let mut t = Table::new(
        format!("Table 5.2: M&C warps per block ([10,10,80], range {})", spec.range_label()),
        &["", "8", "16", "24", "32"],
    );
    static_rows(&mut t, &KernelProfile::mc());
    t.row(
        std::iter::once("Throughput (MOPS, model)".to_string())
            .chain(WARP_CONFIGS.iter().map(|&w| {
                let tp = evaluate_with_launch(
                    StructureKind::Mc,
                    &metrics,
                    &LaunchConfig { warps_per_block: w },
                );
                mops(tp.mops)
            }))
            .collect(),
    );
    t.row(
        std::iter::once("Throughput (MOPS, paper)".to_string())
            .chain(PAPER_MC_MOPS.iter().map(|&v| mops(v)))
            .collect(),
    );
    vec![t]
}
