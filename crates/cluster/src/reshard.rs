//! Live resharding: shard split, shard merge, and the load-aware policy
//! that drives them.
//!
//! A migration is a short exclusive section on the victim shard(s): take
//! the write fence (waits out in-flight routed ops, blocks new ones), drain
//! the quarantine so the export walks a healthy structure, export the pairs,
//! bulk-build the successor structures, and swap the shard map under a
//! brief `map.write` with an epoch bump. Ops that routed to the retired
//! shard before the swap see the identity mismatch on their verify re-read
//! and bounce with [`crate::ClusterError::WrongShard`]; the retry routes to
//! a successor. No acknowledged write can be lost: the export happens
//! strictly after every in-flight op released its read fence, and the
//! successors are installed strictly before any new op can fence them.

use std::sync::Arc;

use gfsl::{Error, Gfsl};

use crate::cluster::Cluster;
use crate::shard::Shard;

/// One installed migration, for logs and the harness report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshardEvent {
    /// `shard` was split at key `at` into `left = [lo, at)` and
    /// `right = [at, hi)`.
    Split {
        /// Retired shard id.
        shard: u64,
        /// First key owned by the right successor.
        at: u32,
        /// New left shard id.
        left: u64,
        /// New right shard id.
        right: u64,
    },
    /// Adjacent shards `left` and `right` were compacted into `into`.
    Merge {
        /// Retired left shard id.
        left: u64,
        /// Retired right shard id.
        right: u64,
        /// New combined shard id.
        into: u64,
    },
}

/// When to split a hot shard and merge cold neighbours.
///
/// The rebalancer samples per-shard windowed op counts (reset on every
/// [`Cluster::rebalance_step`]) and fires at most one migration per step:
/// split the hottest shard when it carries more than `hot_factor ×` the
/// mean window load, else merge the coldest adjacent pair when both sit
/// under `cold_factor ×` the mean. Windows with fewer than
/// `min_window_ops` total ops are ignored (idle clusters don't thrash).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalancePolicy {
    /// Split threshold as a multiple of the mean per-shard window load.
    pub hot_factor: f64,
    /// Merge threshold as a multiple of the mean per-shard window load.
    pub cold_factor: f64,
    /// Minimum total window ops before the policy acts at all.
    pub min_window_ops: u64,
    /// Never split past this many shards.
    pub max_shards: usize,
    /// Never merge below this many shards.
    pub min_shards: usize,
}

impl Default for RebalancePolicy {
    fn default() -> RebalancePolicy {
        RebalancePolicy {
            hot_factor: 2.0,
            cold_factor: 0.35,
            min_window_ops: 1_000,
            max_shards: 32,
            min_shards: 1,
        }
    }
}

impl Cluster {
    /// Find a live shard by id: `(index, shard)` under the current map.
    fn find_by_id(&self, id: u64) -> Option<(usize, Arc<Shard>)> {
        let m = self.map.read();
        m.shards
            .iter()
            .position(|s| s.id == id)
            .map(|i| (i, m.shards[i].clone()))
    }

    /// Heal a shard before export so the pair walk sees a clean structure.
    fn drain_quarantine(shard: &Shard) {
        if shard.list.params().contain && shard.list.quarantine_depth() > 0 {
            shard.list.handle().repair_quarantine();
        }
    }

    /// Split shard `id` into two: the top half of its pairs (by count)
    /// moves into a fresh GFSL. Returns `Ok(None)` when the shard is gone
    /// (already migrated) or too narrow to split.
    pub fn split_shard(&self, id: u64) -> Result<Option<ReshardEvent>, Error> {
        let _structural = self.reshard.lock();
        let Some((index, shard)) = self.find_by_id(id) else {
            return Ok(None);
        };
        let _fence = shard.fence.write();
        Self::drain_quarantine(&shard);
        let pairs: Vec<(u32, u32)> = shard.list.export_pairs().collect();
        // Median key if there is one; fall back to the range midpoint for
        // thin shards so a hot-but-small range can still be subdivided.
        let at = if pairs.len() >= 2 {
            pairs[pairs.len() / 2].0
        } else {
            shard.lo + (shard.hi - shard.lo) / 2
        };
        if at <= shard.lo || at >= shard.hi {
            return Ok(None);
        }
        let cut = pairs.partition_point(|&(k, _)| k < at);
        let left = Gfsl::from_sorted_pairs(self.params, pairs[..cut].iter().copied())?;
        let right = Gfsl::from_sorted_pairs(self.params, pairs[cut..].iter().copied())?;
        let (lid, rid) = (self.mint_shard_id(), self.mint_shard_id());
        {
            let mut m = self.map.write();
            debug_assert_eq!(m.shards[index].id, id, "reshard lock pins the map");
            m.shards.splice(
                index..=index,
                [
                    Arc::new(Shard::new(lid, shard.lo, at, left)),
                    Arc::new(Shard::new(rid, at, shard.hi, right)),
                ],
            );
            m.epoch += 1;
        }
        Ok(Some(ReshardEvent::Split {
            shard: id,
            at,
            left: lid,
            right: rid,
        }))
    }

    /// Merge shard `id` with its right neighbour into one compacted shard.
    /// Returns `Ok(None)` when either shard is gone or `id` is rightmost.
    pub fn merge_with_right(&self, id: u64) -> Result<Option<ReshardEvent>, Error> {
        let _structural = self.reshard.lock();
        let Some((index, left)) = self.find_by_id(id) else {
            return Ok(None);
        };
        let right = {
            let m = self.map.read();
            match m.shards.get(index + 1) {
                Some(r) => r.clone(),
                None => return Ok(None),
            }
        };
        // Fences in index order — the global fence order.
        let _fl = left.fence.write();
        let _fr = right.fence.write();
        Self::drain_quarantine(&left);
        Self::drain_quarantine(&right);
        let merged = Gfsl::from_sorted_pairs(
            self.params,
            left.list.export_pairs().chain(right.list.export_pairs()),
        )?;
        let mid = self.mint_shard_id();
        {
            let mut m = self.map.write();
            debug_assert_eq!(m.shards[index].id, id, "reshard lock pins the map");
            m.shards.splice(
                index..=index + 1,
                [Arc::new(Shard::new(mid, left.lo, right.hi, merged))],
            );
            m.epoch += 1;
        }
        Ok(Some(ReshardEvent::Merge {
            left: id,
            right: right.id,
            into: mid,
        }))
    }

    /// Sample the load windows (resetting them) and perform at most one
    /// policy-directed migration. Returns the migration installed, if any.
    pub fn rebalance_step(
        &self,
        policy: &RebalancePolicy,
    ) -> Result<Option<ReshardEvent>, Error> {
        // Sample outside the reshard lock: the decision is heuristic and a
        // stale sample at worst wastes one no-op split/merge attempt.
        let loads: Vec<(u64, u64)> = self
            .shards()
            .iter()
            .map(|s| {
                let (r, w) = s.take_window();
                (s.id, r + w)
            })
            .collect();
        let total: u64 = loads.iter().map(|&(_, n)| n).sum();
        if total < policy.min_window_ops {
            return Ok(None);
        }
        let n = loads.len();
        let mean = total as f64 / n as f64;

        // Bootstrap: a single shard carrying real load always subdivides.
        if n == 1 && policy.max_shards > 1 {
            return self.split_shard(loads[0].0);
        }
        if n < policy.max_shards {
            let &(hot_id, hot_ops) = loads.iter().max_by_key(|&&(_, ops)| ops).unwrap();
            if hot_ops as f64 > policy.hot_factor * mean {
                if let Some(ev) = self.split_shard(hot_id)? {
                    return Ok(Some(ev));
                }
            }
        }
        if n > policy.min_shards {
            // Coldest adjacent pair where both members are individually cold.
            let cold = loads
                .windows(2)
                .filter(|w| {
                    (w[0].1 as f64) < policy.cold_factor * mean
                        && (w[1].1 as f64) < policy.cold_factor * mean
                })
                .min_by_key(|w| w[0].1 + w[1].1);
            if let Some(pair) = cold {
                return self.merge_with_right(pair[0].0);
            }
        }
        Ok(None)
    }
}
