//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace patches `parking_lot` to this shim: thin wrappers over
//! `std::sync` primitives with parking_lot's poison-free API (`lock()`
//! returns the guard directly; a poisoned std mutex is recovered by taking
//! the inner guard, matching parking_lot's no-poisoning semantics).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Poison-free reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(0u32);
        {
            let r = l.try_read().expect("uncontended try_read");
            assert!(l.try_read().is_some(), "readers share");
            assert!(l.try_write().is_none(), "writer excluded by reader");
            assert_eq!(*r, 0);
        }
        {
            let mut w = l.try_write().expect("uncontended try_write");
            *w = 7;
            assert!(l.try_read().is_none(), "reader excluded by writer");
        }
        assert_eq!(*l.read(), 7);
    }
}
