//! Checkpoints: sorted chunk runs streamed to page-aligned, page-checksummed
//! files, published atomically via a manifest rename.
//!
//! ## On-disk format
//!
//! A checkpoint `seq` is two files under the checkpoint directory:
//!
//! * `ckpt-<seq:016x>.dat` — the data file: 4096-byte pages, each
//!   `magic u32 "GFCP" | page_no u32 | n_entries u32 | crc32c u32` followed
//!   by up to 510 `(key u32, val u32)` pairs, ascending by key across the
//!   whole file. The page CRC covers the full 4096 bytes with the CRC field
//!   zeroed, so padding damage is caught too.
//! * `ckpt-<seq:016x>.man` — the manifest: magic `"GFSLMAN1"`, checkpoint
//!   seq, cluster epoch, per-WAL-lane cut LSNs, shard key-range bounds,
//!   pair count, data-file page count, and a trailing CRC over everything
//!   before it.
//!
//! ## Publication protocol
//!
//! Both files are written as `tmp-*` siblings, fsync'd, then renamed into
//! place — data first, manifest last — and the directory fsync'd. The
//! **manifest rename is the commit point**: a crash anywhere earlier leaves
//! only temp files (swept by [`clean_temps`]) or an orphan data file that
//! no manifest references; either way the previous checkpoint remains the
//! newest valid one. [`CrashPoint::CkptWrite`] fires before each data page
//! and [`CrashPoint::CkptRename`] immediately before the manifest rename,
//! so the soak exercises both halves of the window.
//!
//! [`load_latest`] walks manifests newest-first and falls back on any
//! validation failure — a half-damaged newest checkpoint costs nothing but
//! replay work.

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use gfsl::CrashPoint;
use gfsl_serve::DurabilityContract;

use crate::crc::crc32c;
use crate::hook::Failpoints;

/// Bytes per checkpoint page.
pub const PAGE_BYTES: usize = 4096;
/// Bytes of page header (magic, page_no, n_entries, crc).
pub const PAGE_HEADER_BYTES: usize = 16;
/// Pairs a full page holds.
pub const PAIRS_PER_PAGE: usize = (PAGE_BYTES - PAGE_HEADER_BYTES) / 8;
/// Page header magic: "GFCP".
pub const PAGE_MAGIC: u32 = 0x4746_4350;
/// Manifest magic.
pub const MANIFEST_MAGIC: [u8; 8] = *b"GFSLMAN1";

/// Everything a manifest pins about one checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic checkpoint sequence number.
    pub seq: u64,
    /// Cluster shard-map epoch at the cut (0 for a single engine).
    pub epoch: u64,
    /// Per-WAL-lane cut LSNs: every write with `lsn <= cut` on that lane is
    /// reflected in the data file. A single engine has one lane.
    pub lane_cuts: Vec<u64>,
    /// Shard key-range bounds `(lo, hi)` at the cut (empty for a single
    /// engine) — recovery restores the same shard layout.
    pub shard_bounds: Vec<(u32, u32)>,
    /// Pairs in the data file.
    pub n_pairs: u64,
    /// Pages in the data file.
    pub n_pages: u64,
    /// Per-shard pinned mvcc versions at the cut, aligned with
    /// `shard_bounds`. Empty for a legacy write-held cut (or a manifest
    /// written before version-pinned checkpoints existed) — the trailing
    /// section is optional on disk, so old manifests still decode.
    pub shard_versions: Vec<u64>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        b.extend_from_slice(&MANIFEST_MAGIC);
        b.extend_from_slice(&self.seq.to_le_bytes());
        b.extend_from_slice(&self.epoch.to_le_bytes());
        b.extend_from_slice(&(self.lane_cuts.len() as u32).to_le_bytes());
        b.extend_from_slice(&(self.shard_bounds.len() as u32).to_le_bytes());
        for &cut in &self.lane_cuts {
            b.extend_from_slice(&cut.to_le_bytes());
        }
        for &(lo, hi) in &self.shard_bounds {
            b.extend_from_slice(&lo.to_le_bytes());
            b.extend_from_slice(&hi.to_le_bytes());
        }
        b.extend_from_slice(&self.n_pairs.to_le_bytes());
        b.extend_from_slice(&self.n_pages.to_le_bytes());
        // Optional trailing section: per-shard pinned versions. When
        // present it must cover every shard, so the decoder can tell a
        // legacy manifest (nothing after n_pages) from a truncated one.
        if !self.shard_versions.is_empty() {
            assert_eq!(
                self.shard_versions.len(),
                self.shard_bounds.len(),
                "shard_versions must align with shard_bounds"
            );
            for &v in &self.shard_versions {
                b.extend_from_slice(&v.to_le_bytes());
            }
        }
        let crc = crc32c(&b);
        b.extend_from_slice(&crc.to_le_bytes());
        b
    }

    /// Decode and CRC-check a manifest; `None` on any damage.
    pub fn decode(b: &[u8]) -> Option<Manifest> {
        if b.len() < 32 + 16 + 4 || b[0..8] != MANIFEST_MAGIC {
            return None;
        }
        let (body, tail) = b.split_at(b.len() - 4);
        if crc32c(body) != u32::from_le_bytes(tail.try_into().ok()?) {
            return None;
        }
        let rd_u64 = |off: usize| -> Option<u64> {
            Some(u64::from_le_bytes(body.get(off..off + 8)?.try_into().ok()?))
        };
        let rd_u32 = |off: usize| -> Option<u32> {
            Some(u32::from_le_bytes(body.get(off..off + 4)?.try_into().ok()?))
        };
        let seq = rd_u64(8)?;
        let epoch = rd_u64(16)?;
        let n_lanes = rd_u32(24)? as usize;
        let n_shards = rd_u32(28)? as usize;
        let mut off = 32;
        let mut lane_cuts = Vec::with_capacity(n_lanes);
        for _ in 0..n_lanes {
            lane_cuts.push(rd_u64(off)?);
            off += 8;
        }
        let mut shard_bounds = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            shard_bounds.push((rd_u32(off)?, rd_u32(off + 4)?));
            off += 8;
        }
        let n_pairs = rd_u64(off)?;
        let n_pages = rd_u64(off + 8)?;
        off += 16;
        let mut shard_versions = Vec::new();
        if off != body.len() {
            // The optional versions section is all-or-nothing.
            if off + 8 * n_shards != body.len() {
                return None;
            }
            for _ in 0..n_shards {
                shard_versions.push(rd_u64(off)?);
                off += 8;
            }
        }
        Some(Manifest {
            seq,
            epoch,
            lane_cuts,
            shard_bounds,
            n_pairs,
            n_pages,
            shard_versions,
        })
    }
}

/// Data-file path for checkpoint `seq`.
pub fn data_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq:016x}.dat"))
}

/// Manifest path for checkpoint `seq`.
pub fn manifest_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq:016x}.man"))
}

fn encode_page(page_no: u32, pairs: &[(u32, u32)]) -> [u8; PAGE_BYTES] {
    debug_assert!(pairs.len() <= PAIRS_PER_PAGE);
    let mut b = [0u8; PAGE_BYTES];
    b[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
    b[4..8].copy_from_slice(&page_no.to_le_bytes());
    b[8..12].copy_from_slice(&(pairs.len() as u32).to_le_bytes());
    for (i, &(k, v)) in pairs.iter().enumerate() {
        let off = PAGE_HEADER_BYTES + i * 8;
        b[off..off + 4].copy_from_slice(&k.to_le_bytes());
        b[off + 4..off + 8].copy_from_slice(&v.to_le_bytes());
    }
    let crc = crc32c(&b);
    b[12..16].copy_from_slice(&crc.to_le_bytes());
    b
}

/// Decode and CRC-check one page; `None` on damage or a mismatched
/// `page_no` (a page that validates but sits at the wrong offset).
pub fn decode_page(b: &[u8], expect_page_no: u32) -> Option<Vec<(u32, u32)>> {
    if b.len() != PAGE_BYTES {
        return None;
    }
    if u32::from_le_bytes(b[0..4].try_into().unwrap()) != PAGE_MAGIC {
        return None;
    }
    if u32::from_le_bytes(b[4..8].try_into().unwrap()) != expect_page_no {
        return None;
    }
    let stored_crc = u32::from_le_bytes(b[12..16].try_into().unwrap());
    let mut zeroed = [0u8; PAGE_BYTES];
    zeroed.copy_from_slice(b);
    zeroed[12..16].fill(0);
    if crc32c(&zeroed) != stored_crc {
        return None;
    }
    let n = u32::from_le_bytes(b[8..12].try_into().unwrap()) as usize;
    if n > PAIRS_PER_PAGE {
        return None;
    }
    let mut pairs = Vec::with_capacity(n);
    for i in 0..n {
        let off = PAGE_HEADER_BYTES + i * 8;
        pairs.push((
            u32::from_le_bytes(b[off..off + 4].try_into().unwrap()),
            u32::from_le_bytes(b[off + 4..off + 8].try_into().unwrap()),
        ));
    }
    Some(pairs)
}

/// Stream `pairs` (ascending by key) into checkpoint `seq` under `dir` and
/// publish it. Returns the published [`Manifest`].
pub fn write_checkpoint(
    dir: &Path,
    manifest: &Manifest,
    pairs: &[(u32, u32)],
    contract: DurabilityContract,
    hook: &mut Failpoints,
) -> std::io::Result<Manifest> {
    debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "pairs unsorted");
    fs::create_dir_all(dir)?;
    let seq = manifest.seq;
    let n_pages = pairs.chunks(PAIRS_PER_PAGE).count() as u64;
    let manifest = Manifest {
        n_pairs: pairs.len() as u64,
        n_pages,
        ..manifest.clone()
    };

    let tmp_dat = dir.join(format!("tmp-ckpt-{seq:016x}.dat"));
    let tmp_man = dir.join(format!("tmp-ckpt-{seq:016x}.man"));
    {
        let mut f = File::create(&tmp_dat)?;
        for (page_no, chunk) in pairs.chunks(PAIRS_PER_PAGE.max(1)).enumerate() {
            // A kill here leaves a temp file the next startup sweeps.
            hook.hit(CrashPoint::CkptWrite);
            f.write_all(&encode_page(page_no as u32, chunk))?;
        }
        contract.sync(&f)?;
    }
    {
        let mut f = File::create(&tmp_man)?;
        f.write_all(&manifest.encode())?;
        contract.sync(&f)?;
    }
    // Data first, manifest last: the manifest rename is the commit point.
    fs::rename(&tmp_dat, data_path(dir, seq))?;
    // A kill here leaves an orphan data file no manifest references; the
    // previous checkpoint is still the newest valid one.
    hook.hit(CrashPoint::CkptRename);
    fs::rename(&tmp_man, manifest_path(dir, seq))?;
    sync_dir(dir, contract)?;
    Ok(manifest)
}

fn sync_dir(dir: &Path, contract: DurabilityContract) -> std::io::Result<()> {
    if !matches!(contract, DurabilityContract::Buffered) {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// A checkpoint that loaded and validated end to end.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// Its manifest.
    pub manifest: Manifest,
    /// Every pair, ascending by key.
    pub pairs: Vec<(u32, u32)>,
}

/// Outcome of [`load_latest`].
#[derive(Debug)]
pub struct CheckpointScan {
    /// The newest checkpoint that validated, if any.
    pub loaded: Option<LoadedCheckpoint>,
    /// Newer checkpoints skipped because they failed validation, with why.
    pub fallbacks: Vec<(u64, String)>,
}

/// Ascending sequence numbers of every published manifest under `dir`.
pub fn list_checkpoints(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    if !dir.exists() {
        return Ok(seqs);
    }
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(hex) = name.strip_prefix("ckpt-").and_then(|s| s.strip_suffix(".man")) {
            if let Ok(seq) = u64::from_str_radix(hex, 16) {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// Load the newest checkpoint that validates end to end (manifest CRC,
/// every page CRC and position, pair count, sortedness), falling back to
/// older ones on any failure.
pub fn load_latest(dir: &Path) -> std::io::Result<CheckpointScan> {
    let mut fallbacks = Vec::new();
    for seq in list_checkpoints(dir)?.into_iter().rev() {
        match try_load(dir, seq) {
            Ok(loaded) => {
                return Ok(CheckpointScan {
                    loaded: Some(loaded),
                    fallbacks,
                })
            }
            Err(why) => fallbacks.push((seq, why)),
        }
    }
    Ok(CheckpointScan {
        loaded: None,
        fallbacks,
    })
}

/// Load and fully validate checkpoint `seq`; the error string says what
/// failed (tooling and [`load_latest`] fallback share this path).
pub fn try_load(dir: &Path, seq: u64) -> Result<LoadedCheckpoint, String> {
    let man_bytes = fs::read(manifest_path(dir, seq)).map_err(|e| e.to_string())?;
    let manifest = Manifest::decode(&man_bytes).ok_or("manifest failed validation")?;
    if manifest.seq != seq {
        return Err(format!(
            "manifest says checkpoint {}, filename says {seq}",
            manifest.seq
        ));
    }
    let mut f = File::open(data_path(dir, seq)).map_err(|e| e.to_string())?;
    let mut pairs = Vec::with_capacity(manifest.n_pairs as usize);
    let mut page = [0u8; PAGE_BYTES];
    for page_no in 0..manifest.n_pages {
        f.read_exact(&mut page)
            .map_err(|e| format!("page {page_no}: {e}"))?;
        let chunk = decode_page(&page, page_no as u32)
            .ok_or_else(|| format!("page {page_no} failed validation"))?;
        pairs.extend(chunk);
    }
    if pairs.len() as u64 != manifest.n_pairs {
        return Err(format!(
            "data file holds {} pairs, manifest says {}",
            pairs.len(),
            manifest.n_pairs
        ));
    }
    if !pairs.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err("pairs out of order".into());
    }
    Ok(LoadedCheckpoint { manifest, pairs })
}

/// Decode checkpoint `seq`'s manifest alone (no data-file read); `None`
/// if missing or damaged. How the pruner learns retained cuts cheaply.
pub fn read_manifest(dir: &Path, seq: u64) -> Option<Manifest> {
    Manifest::decode(&fs::read(manifest_path(dir, seq)).ok()?)
}

/// Remove leftover `tmp-*` files from a checkpoint interrupted before its
/// commit point. Returns how many were swept.
pub fn clean_temps(dir: &Path) -> std::io::Result<u64> {
    let mut swept = 0;
    if !dir.exists() {
        return Ok(swept);
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.starts_with("tmp-"))
        {
            fs::remove_file(entry.path())?;
            swept += 1;
        }
    }
    Ok(swept)
}

/// Delete published checkpoints older than `keep_newest` manifests.
pub fn prune_old(dir: &Path, keep_newest: usize) -> std::io::Result<u64> {
    let seqs = list_checkpoints(dir)?;
    let mut removed = 0;
    if seqs.len() <= keep_newest {
        return Ok(0);
    }
    for &seq in &seqs[..seqs.len() - keep_newest] {
        // Manifest first: once it is gone the data file is an orphan, never
        // half a checkpoint.
        fs::remove_file(manifest_path(dir, seq))?;
        let _ = fs::remove_file(data_path(dir, seq));
        removed += 1;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gfsl_ckpt_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn pairs(n: u32) -> Vec<(u32, u32)> {
        (0..n).map(|i| (i * 3, i * 3 + 1)).collect()
    }

    fn man(seq: u64, cut: u64) -> Manifest {
        Manifest {
            seq,
            epoch: 0,
            lane_cuts: vec![cut],
            shard_bounds: Vec::new(),
            n_pairs: 0,
            n_pages: 0,
            shard_versions: Vec::new(),
        }
    }

    #[test]
    fn manifest_roundtrip_and_crc_rejection() {
        let m = Manifest {
            seq: 7,
            epoch: 3,
            lane_cuts: vec![10, 20, 30],
            shard_bounds: vec![(0, 100), (100, 200), (200, 300)],
            n_pairs: 999,
            n_pages: 2,
            shard_versions: vec![4, 9, 2],
        };
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes), Some(m));
        let mut bad = bytes.clone();
        bad[17] ^= 1;
        assert_eq!(Manifest::decode(&bad), None);
        assert_eq!(Manifest::decode(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn write_load_roundtrip_multi_page() {
        let dir = tmp("roundtrip");
        let mut hook = Failpoints::Off;
        let p = pairs(PAIRS_PER_PAGE as u32 * 2 + 17); // 3 pages
        let published = write_checkpoint(
            &dir,
            &man(1, 42),
            &p,
            DurabilityContract::DataSynced,
            &mut hook,
        )
        .unwrap();
        assert_eq!(published.n_pages, 3);
        let scan = load_latest(&dir).unwrap();
        let loaded = scan.loaded.unwrap();
        assert_eq!(loaded.pairs, p);
        assert_eq!(loaded.manifest.lane_cuts, vec![42]);
        assert!(scan.fallbacks.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_newest_falls_back_to_previous() {
        let dir = tmp("fallback");
        let mut hook = Failpoints::Off;
        let old = pairs(5);
        let new = pairs(9);
        write_checkpoint(&dir, &man(1, 5), &old, DurabilityContract::Buffered, &mut hook)
            .unwrap();
        write_checkpoint(&dir, &man(2, 9), &new, DurabilityContract::Buffered, &mut hook)
            .unwrap();
        // Flip a byte inside checkpoint 2's only data page.
        let path = data_path(&dir, 2);
        let mut bytes = fs::read(&path).unwrap();
        bytes[PAGE_HEADER_BYTES + 3] ^= 0x10;
        fs::write(&path, &bytes).unwrap();

        let scan = load_latest(&dir).unwrap();
        let loaded = scan.loaded.unwrap();
        assert_eq!(loaded.manifest.seq, 1, "fell back to checkpoint 1");
        assert_eq!(loaded.pairs, old);
        assert_eq!(scan.fallbacks.len(), 1);
        assert_eq!(scan.fallbacks[0].0, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let dir = tmp("empty");
        let mut hook = Failpoints::Off;
        write_checkpoint(&dir, &man(1, 0), &[], DurabilityContract::Buffered, &mut hook)
            .unwrap();
        let loaded = load_latest(&dir).unwrap().loaded.unwrap();
        assert!(loaded.pairs.is_empty());
        assert_eq!(loaded.manifest.n_pages, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temps_are_swept_and_prune_keeps_newest() {
        let dir = tmp("sweep");
        let mut hook = Failpoints::Off;
        for seq in 1..=4 {
            write_checkpoint(
                &dir,
                &man(seq, seq * 10),
                &pairs(3),
                DurabilityContract::Buffered,
                &mut hook,
            )
            .unwrap();
        }
        fs::write(dir.join("tmp-ckpt-00000000000000ff.dat"), b"junk").unwrap();
        assert_eq!(clean_temps(&dir).unwrap(), 1);
        assert_eq!(prune_old(&dir, 2).unwrap(), 2);
        let scan = load_latest(&dir).unwrap();
        assert_eq!(scan.loaded.unwrap().manifest.seq, 4);
        assert!(!manifest_path(&dir, 1).exists());
        assert!(!data_path(&dir, 2).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
