//! CRC-32C (Castagnoli), the checksum guarding every WAL record, segment
//! header, checkpoint page, and manifest.
//!
//! Table-driven, built at compile time from the reflected polynomial
//! `0x82F63B78` — the same code every storage engine that says "CRC32C"
//! means (iSCSI, ext4, RocksDB), so on-disk artifacts stay checkable by
//! standard tooling. No dependency: the container builds offline.

const POLY: u32 = 0x82F6_3B78;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32C of `bytes` (standard init/final xor of `!0`).
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32C check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // 32 zero bytes, per RFC 3720's iSCSI test patterns.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32c(b"gfsl wal record");
        let mut bytes = *b"gfsl wal record";
        for i in 0..bytes.len() {
            for bit in 0..8 {
                bytes[i] ^= 1 << bit;
                assert_ne!(crc32c(&bytes), base, "flip at byte {i} bit {bit}");
                bytes[i] ^= 1 << bit;
            }
        }
    }
}
