//! Sorted-pairs export — the inverse of [`Gfsl::from_sorted_pairs`].
//!
//! [`Gfsl::export_pairs`] walks the bottom level lazily, yielding every
//! live `(key, value)` pair in ascending key order while skipping zombie
//! chunks and the `-inf` level sentinel. Feeding the stream straight back
//! into [`Gfsl::from_sorted_pairs`] rebuilds an equivalent (and ideally
//! structured) list — this is the primitive shard migration builds on: a
//! hot shard exports a key range under a write fence and bulk-loads it into
//! a fresh structure without materializing the whole set eagerly.
//!
//! Quiescent use only (like every whole-structure walk): the caller must
//! guarantee no concurrent mutators, which the cluster layer does with its
//! per-shard epoch fence.

use gfsl_gpu_mem::NoProbe;

use crate::chunk::{KEY_NEG_INF, NIL};
use crate::skiplist::{Gfsl, GfslHandle};

/// Lazy ascending `(key, value)` iterator over a quiescent [`Gfsl`].
///
/// Buffers one chunk of entries at a time (at most `dsize - 1` pairs), so
/// memory stays O(chunk) regardless of list size.
pub struct ExportIter<'a> {
    handle: GfslHandle<'a, NoProbe>,
    /// Next chunk to read, or `None` once the chain is exhausted.
    next_chunk: Option<u32>,
    /// Pairs from the chunk currently being drained.
    buf: std::vec::IntoIter<(u32, u32)>,
}

impl Iterator for ExportIter<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        loop {
            if let Some(pair) = self.buf.next() {
                return Some(pair);
            }
            let cur = self.next_chunk?;
            let team = self.handle.list.team;
            let v = self.handle.read_chunk(cur);
            let next = v.next(&team);
            self.next_chunk = (next != NIL).then_some(next);
            // Zombie chunks are logically deleted: their contents live on in
            // the replacement chunk, so exporting them would duplicate keys.
            if !v.is_zombie(&team) {
                self.buf = v
                    .live_entries(&team)
                    .filter(|(_, e)| e.key() != KEY_NEG_INF)
                    .map(|(_, e)| (e.key(), e.val()))
                    .collect::<Vec<_>>()
                    .into_iter();
            }
        }
    }
}

impl Gfsl {
    /// Lazily export every `(key, value)` pair in ascending key order,
    /// skipping zombies — the inverse of [`Gfsl::from_sorted_pairs`].
    /// Quiescent use only.
    pub fn export_pairs(&self) -> ExportIter<'_> {
        ExportIter {
            handle: self.handle_with(NoProbe),
            next_chunk: Some(self.head_of(0)),
            buf: Vec::new().into_iter(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::params::GfslParams;
    use crate::skiplist::Gfsl;
    use gfsl_simt::TeamSize;

    #[test]
    fn export_is_lazy_and_matches_pairs() {
        let list = Gfsl::from_sorted_pairs(
            GfslParams {
                team_size: TeamSize::Sixteen,
                ..Default::default()
            },
            (1..=2_000u32).map(|k| (k * 3, k)),
        )
        .unwrap();
        // Partial consumption works (laziness smoke).
        let first_five: Vec<_> = list.export_pairs().take(5).collect();
        assert_eq!(first_five, vec![(3, 1), (6, 2), (9, 3), (12, 4), (15, 5)]);
        assert_eq!(list.export_pairs().collect::<Vec<_>>(), list.pairs());
    }
}
