//! The GFSL edge wire protocol: compact binary framing over TCP.
//!
//! Layout (all integers little-endian, no CRC — TCP already checksums):
//!
//! ```text
//! handshake  "GFSL" · u16 version · u16 flags        (8 bytes each way)
//! frame      u16 len · u8 tag · u64 req_id · fields  (len counts tag..fields)
//! ```
//!
//! The handshake is versioned: both sides send their hello first; a server
//! that cannot speak the client's version closes without framing. Frames
//! after that are self-delimiting — `len` is the byte count *after* the
//! length field, bounded by [`MAX_PAYLOAD`], so a corrupt or hostile length
//! can never make the decoder buffer unboundedly.
//!
//! Backpressure is part of the protocol, not a connection error: a shed
//! request is answered with a [`Resp::Shed`] frame carrying the supervisor
//! rung that refused it and a retry-after hint in **milliseconds** (the
//! in-process hint is virtual ns; [`ShedError::retry_after_ms`] rounds up
//! and clamps at this boundary — see that method for the contract). Framing
//! violations get a final [`Resp::Proto`] frame and the connection is shed.

use gfsl::Error as GfslError;
use gfsl_serve::{Reply, ShedError};
use gfsl_workload::ServeOp;

/// Protocol magic: first four handshake bytes.
pub const MAGIC: [u8; 4] = *b"GFSL";
/// Protocol version this build speaks.
pub const VERSION: u16 = 1;
/// Handshake length, bytes.
pub const HELLO_LEN: usize = 8;
/// Largest legal frame payload (tag + req_id + fields). The widest frame
/// today is 25 bytes ([`Resp::Snapped`]); the cap leaves headroom for one
/// more field without a version bump while still rejecting garbage lengths
/// immediately.
pub const MAX_PAYLOAD: usize = 32;
/// Frame header (length field) size, bytes.
pub const LEN_BYTES: usize = 2;

/// One client request frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Req {
    /// Liveness probe; answered [`Resp::Pong`] without touching the engine.
    Ping,
    /// Point lookup.
    Get(u32),
    /// Insert `(key, value)`.
    Insert(u32, u32),
    /// Delete a key.
    Delete(u32),
    /// Count keys in the inclusive window `[lo, hi]`.
    Range(u32, u32),
    /// Peek the smallest present entry (priority-queue front).
    MinEntry,
    /// Extract-min.
    PopMin,
    /// Version-pinned count of keys in the inclusive window `[lo, hi]`:
    /// answered from a pinned multiversion snapshot at the edge, never
    /// batched — the read does not wait for an epoch or block on writer
    /// locks. On an engine without the mvcc knob the count is served
    /// unpinned and the reply carries version 0.
    SnapRange(u32, u32),
}

/// One server response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resp {
    /// Ping reply.
    Pong,
    /// `Get`: the value, if present.
    Got(Option<u32>),
    /// `Insert`: whether a new key was added.
    Inserted(bool),
    /// `Delete`: whether the key was found and removed.
    Deleted(bool),
    /// `Range`: number of keys in the window.
    Ranged(u32),
    /// `MinEntry`: the smallest present entry, if any.
    MinIs(Option<(u32, u32)>),
    /// `PopMin`: the extracted entry, or `None` on empty.
    Popped(Option<(u32, u32)>),
    /// `SnapRange`: the pinned snapshot version the count was read at
    /// (0 = engine served it unpinned) and the number of keys in the
    /// window at that version.
    Snapped {
        /// Snapshot version of the cut (per-structure clock; for a
        /// cluster, the newest shard version in the cut).
        version: u64,
        /// Keys present in `[lo, hi]` at `version`.
        count: u64,
    },
    /// The request was shed at admission: the supervisor rung that refused
    /// it ([`gfsl_serve::ServiceMode::severity`]) and the retry-after hint
    /// in milliseconds (ms on the wire; rounded up, clamped — never a
    /// truncated-to-zero "retry now" for a real backlog).
    Shed {
        /// Degradation-ladder rung severity (0 = normal … 3 = drain).
        mode: u8,
        /// Retry-after hint, milliseconds.
        retry_after_ms: u32,
    },
    /// The operation failed structurally inside the engine.
    Failed {
        /// Coarse error class, see [`error_code`].
        code: u8,
    },
    /// The peer violated the framing; sent once, then the connection is
    /// shed. See [`DecodeError::code`] for the code space.
    Proto {
        /// Decode-error class.
        code: u8,
    },
}

mod tags {
    pub const PING: u8 = 0x01;
    pub const GET: u8 = 0x02;
    pub const INSERT: u8 = 0x03;
    pub const DELETE: u8 = 0x04;
    pub const RANGE: u8 = 0x05;
    pub const MIN_ENTRY: u8 = 0x06;
    pub const POP_MIN: u8 = 0x07;
    pub const SNAP_RANGE: u8 = 0x08;

    pub const PONG: u8 = 0x81;
    pub const GOT: u8 = 0x82;
    pub const INSERTED: u8 = 0x83;
    pub const DELETED: u8 = 0x84;
    pub const RANGED: u8 = 0x85;
    pub const MIN_IS: u8 = 0x86;
    pub const POPPED: u8 = 0x87;
    pub const SNAPPED: u8 = 0x88;
    pub const SHED: u8 = 0xE0;
    pub const FAILED: u8 = 0xE1;
    pub const PROTO: u8 = 0xE2;
}

/// Typed framing violation. `Incomplete` is not a fault — the decoder needs
/// more bytes; every other variant is fatal for the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ends mid-frame; read more and retry.
    Incomplete,
    /// The length field exceeds [`MAX_PAYLOAD`].
    Oversized(u16),
    /// The length field is too short to hold even a tag and request id.
    Runt(u16),
    /// Unknown frame tag.
    BadTag(u8),
    /// The payload is shorter than its tag's fields require.
    Truncated(u8),
    /// The payload is longer than its tag's fields (a frame must be exact).
    Trailing(u8),
    /// An option/bool byte was neither 0 nor 1.
    BadFlag(u8),
    /// The handshake bytes are not a GFSL hello.
    BadMagic,
    /// The peer speaks an incompatible protocol version.
    BadVersion(u16),
}

impl DecodeError {
    /// Stable one-byte code carried in [`Resp::Proto`] frames.
    pub fn code(self) -> u8 {
        match self {
            DecodeError::Incomplete => 0,
            DecodeError::Oversized(_) => 1,
            DecodeError::Runt(_) => 2,
            DecodeError::BadTag(_) => 3,
            DecodeError::Truncated(_) => 4,
            DecodeError::Trailing(_) => 5,
            DecodeError::BadFlag(_) => 6,
            DecodeError::BadMagic => 7,
            DecodeError::BadVersion(_) => 8,
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Incomplete => write!(f, "frame incomplete: need more bytes"),
            DecodeError::Oversized(n) => write!(f, "frame length {n} exceeds {MAX_PAYLOAD}"),
            DecodeError::Runt(n) => write!(f, "frame length {n} below the fixed header"),
            DecodeError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            DecodeError::Truncated(t) => write!(f, "payload truncated for tag {t:#04x}"),
            DecodeError::Trailing(t) => write!(f, "trailing payload bytes for tag {t:#04x}"),
            DecodeError::BadFlag(b) => write!(f, "flag byte {b:#04x} is neither 0 nor 1"),
            DecodeError::BadMagic => write!(f, "handshake magic is not \"GFSL\""),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append this build's 8-byte hello to `buf`.
pub fn encode_hello(buf: &mut Vec<u8>) {
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
}

/// Validate a peer's 8-byte hello.
pub fn check_hello(hello: &[u8]) -> Result<(), DecodeError> {
    if hello.len() < HELLO_LEN {
        return Err(DecodeError::Incomplete);
    }
    if hello[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u16::from_le_bytes([hello[4], hello[5]]);
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    Ok(())
}

// ---- encoding ----

fn frame(buf: &mut Vec<u8>, tag: u8, req_id: u64, fields: &[u8]) {
    let len = (1 + 8 + fields.len()) as u16;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.push(tag);
    buf.extend_from_slice(&req_id.to_le_bytes());
    buf.extend_from_slice(fields);
}

fn opt_entry(kv: Option<(u32, u32)>) -> [u8; 9] {
    let mut b = [0u8; 9];
    if let Some((k, v)) = kv {
        b[0] = 1;
        b[1..5].copy_from_slice(&k.to_le_bytes());
        b[5..9].copy_from_slice(&v.to_le_bytes());
    }
    b
}

impl Req {
    /// Append one request frame for request id `req_id` to `buf`.
    pub fn encode(&self, req_id: u64, buf: &mut Vec<u8>) {
        match *self {
            Req::Ping => frame(buf, tags::PING, req_id, &[]),
            Req::Get(k) => frame(buf, tags::GET, req_id, &k.to_le_bytes()),
            Req::Insert(k, v) => {
                let mut b = [0u8; 8];
                b[..4].copy_from_slice(&k.to_le_bytes());
                b[4..].copy_from_slice(&v.to_le_bytes());
                frame(buf, tags::INSERT, req_id, &b);
            }
            Req::Delete(k) => frame(buf, tags::DELETE, req_id, &k.to_le_bytes()),
            Req::Range(lo, hi) => {
                let mut b = [0u8; 8];
                b[..4].copy_from_slice(&lo.to_le_bytes());
                b[4..].copy_from_slice(&hi.to_le_bytes());
                frame(buf, tags::RANGE, req_id, &b);
            }
            Req::MinEntry => frame(buf, tags::MIN_ENTRY, req_id, &[]),
            Req::PopMin => frame(buf, tags::POP_MIN, req_id, &[]),
            Req::SnapRange(lo, hi) => {
                let mut b = [0u8; 8];
                b[..4].copy_from_slice(&lo.to_le_bytes());
                b[4..].copy_from_slice(&hi.to_le_bytes());
                frame(buf, tags::SNAP_RANGE, req_id, &b);
            }
        }
    }

    /// The serve-layer operation this request maps to; `None` for `Ping`
    /// and `SnapRange`, which are answered at the edge and never enter the
    /// epoch batch.
    pub fn op(&self) -> Option<ServeOp> {
        match *self {
            Req::Ping | Req::SnapRange(..) => None,
            Req::Get(k) => Some(ServeOp::Get(k)),
            Req::Insert(k, v) => Some(ServeOp::Insert(k, v)),
            Req::Delete(k) => Some(ServeOp::Delete(k)),
            Req::Range(lo, hi) => Some(ServeOp::Range(lo, hi)),
            Req::MinEntry => Some(ServeOp::MinEntry),
            Req::PopMin => Some(ServeOp::PopMin),
        }
    }
}

impl Resp {
    /// Append one response frame for request id `req_id` to `buf`.
    pub fn encode(&self, req_id: u64, buf: &mut Vec<u8>) {
        match *self {
            Resp::Pong => frame(buf, tags::PONG, req_id, &[]),
            Resp::Got(v) => {
                let mut b = [0u8; 5];
                if let Some(v) = v {
                    b[0] = 1;
                    b[1..].copy_from_slice(&v.to_le_bytes());
                }
                frame(buf, tags::GOT, req_id, &b);
            }
            Resp::Inserted(a) => frame(buf, tags::INSERTED, req_id, &[a as u8]),
            Resp::Deleted(r) => frame(buf, tags::DELETED, req_id, &[r as u8]),
            Resp::Ranged(n) => frame(buf, tags::RANGED, req_id, &n.to_le_bytes()),
            Resp::MinIs(kv) => frame(buf, tags::MIN_IS, req_id, &opt_entry(kv)),
            Resp::Popped(kv) => frame(buf, tags::POPPED, req_id, &opt_entry(kv)),
            Resp::Snapped { version, count } => {
                let mut b = [0u8; 16];
                b[..8].copy_from_slice(&version.to_le_bytes());
                b[8..].copy_from_slice(&count.to_le_bytes());
                frame(buf, tags::SNAPPED, req_id, &b);
            }
            Resp::Shed { mode, retry_after_ms } => {
                let mut b = [0u8; 5];
                b[0] = mode;
                b[1..].copy_from_slice(&retry_after_ms.to_le_bytes());
                frame(buf, tags::SHED, req_id, &b);
            }
            Resp::Failed { code } => frame(buf, tags::FAILED, req_id, &[code]),
            Resp::Proto { code } => frame(buf, tags::PROTO, req_id, &[code]),
        }
    }
}

// ---- decoding ----

struct Fields<'a> {
    tag: u8,
    b: &'a [u8],
}

impl<'a> Fields<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let (&v, rest) = self.b.split_first().ok_or(DecodeError::Truncated(self.tag))?;
        self.b = rest;
        Ok(v)
    }

    fn flag(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::BadFlag(b)),
        }
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        if self.b.len() < 4 {
            return Err(DecodeError::Truncated(self.tag));
        }
        let (head, rest) = self.b.split_at(4);
        self.b = rest;
        Ok(u32::from_le_bytes(head.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        if self.b.len() < 8 {
            return Err(DecodeError::Truncated(self.tag));
        }
        let (head, rest) = self.b.split_at(8);
        self.b = rest;
        Ok(u64::from_le_bytes(head.try_into().unwrap()))
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, DecodeError> {
        // The absent arm still carries zeroed field bytes: frames are
        // fixed-width per tag, which keeps truncation checks exact.
        let has = self.flag()?;
        let v = self.u32()?;
        Ok(has.then_some(v))
    }

    fn opt_entry(&mut self) -> Result<Option<(u32, u32)>, DecodeError> {
        let has = self.flag()?;
        let k = self.u32()?;
        let v = self.u32()?;
        Ok(has.then_some((k, v)))
    }

    fn done(self) -> Result<(), DecodeError> {
        if self.b.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::Trailing(self.tag))
        }
    }
}

/// Split the next frame off the front of `buf`: `(req_id, tag, fields,
/// consumed)`. Shared validation for both direction-specific decoders.
fn next_frame(buf: &[u8]) -> Result<(u64, Fields<'_>, usize), DecodeError> {
    if buf.len() < LEN_BYTES {
        return Err(DecodeError::Incomplete);
    }
    let len = u16::from_le_bytes([buf[0], buf[1]]);
    if len as usize > MAX_PAYLOAD {
        return Err(DecodeError::Oversized(len));
    }
    if (len as usize) < 1 + 8 {
        return Err(DecodeError::Runt(len));
    }
    let total = LEN_BYTES + len as usize;
    if buf.len() < total {
        return Err(DecodeError::Incomplete);
    }
    let tag = buf[2];
    let req_id = u64::from_le_bytes(buf[3..11].try_into().unwrap());
    let fields = Fields { tag, b: &buf[11..total] };
    Ok((req_id, fields, total))
}

/// Decode one request frame from the front of `buf`. Returns the request id,
/// the request, and the bytes consumed; [`DecodeError::Incomplete`] when the
/// buffer ends mid-frame, any other error when the peer broke framing.
pub fn decode_req(buf: &[u8]) -> Result<(u64, Req, usize), DecodeError> {
    let (req_id, mut f, total) = next_frame(buf)?;
    let req = match f.tag {
        tags::PING => Req::Ping,
        tags::GET => Req::Get(f.u32()?),
        tags::INSERT => Req::Insert(f.u32()?, f.u32()?),
        tags::DELETE => Req::Delete(f.u32()?),
        tags::RANGE => Req::Range(f.u32()?, f.u32()?),
        tags::MIN_ENTRY => Req::MinEntry,
        tags::POP_MIN => Req::PopMin,
        tags::SNAP_RANGE => Req::SnapRange(f.u32()?, f.u32()?),
        t => return Err(DecodeError::BadTag(t)),
    };
    f.done()?;
    Ok((req_id, req, total))
}

/// Decode one response frame from the front of `buf`; see [`decode_req`].
pub fn decode_resp(buf: &[u8]) -> Result<(u64, Resp, usize), DecodeError> {
    let (req_id, mut f, total) = next_frame(buf)?;
    let resp = match f.tag {
        tags::PONG => Resp::Pong,
        tags::GOT => Resp::Got(f.opt_u32()?),
        tags::INSERTED => Resp::Inserted(f.flag()?),
        tags::DELETED => Resp::Deleted(f.flag()?),
        tags::RANGED => Resp::Ranged(f.u32()?),
        tags::MIN_IS => Resp::MinIs(f.opt_entry()?),
        tags::POPPED => Resp::Popped(f.opt_entry()?),
        tags::SNAPPED => Resp::Snapped { version: f.u64()?, count: f.u64()? },
        tags::SHED => Resp::Shed { mode: f.u8()?, retry_after_ms: f.u32()? },
        tags::FAILED => Resp::Failed { code: f.u8()? },
        tags::PROTO => Resp::Proto { code: f.u8()? },
        t => return Err(DecodeError::BadTag(t)),
    };
    f.done()?;
    Ok((req_id, resp, total))
}

// ---- serve-layer bridging ----

/// Coarse wire code for an engine error: 1 = invalid key, 2 = pool
/// exhausted, 3 = contained abort, 0 = anything else. The wire deliberately
/// does not carry the full typed error — a client retries or reports, it
/// does not repair.
pub fn error_code(e: &GfslError) -> u8 {
    match e {
        GfslError::InvalidKey(_) => 1,
        GfslError::PoolExhausted(_) => 2,
        GfslError::Aborted(_) => 3,
    }
}

/// The response frame for a completed serve-layer reply.
pub fn reply_resp(reply: &Reply) -> Resp {
    match *reply {
        Reply::Got(v) => Resp::Got(v),
        Reply::Inserted(b) => Resp::Inserted(b),
        Reply::Deleted(b) => Resp::Deleted(b),
        Reply::Ranged(n) => Resp::Ranged(n),
        Reply::MinIs(kv) => Resp::MinIs(kv),
        Reply::Popped(kv) => Resp::Popped(kv),
        Reply::Failed(ref e) => Resp::Failed { code: error_code(e) },
    }
}

/// The response frame for a shed decision: the supervisor rung and the
/// hint converted to wire units (ms, rounded up, clamped) at this — the
/// protocol — boundary.
pub fn shed_resp(mode: gfsl_serve::ServiceMode, shed: &ShedError) -> Resp {
    Resp::Shed {
        mode: mode.severity(),
        retry_after_ms: shed.retry_after_ms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfsl_serve::ServiceMode;

    #[test]
    fn hello_roundtrip_and_rejections() {
        let mut b = Vec::new();
        encode_hello(&mut b);
        assert_eq!(b.len(), HELLO_LEN);
        assert_eq!(check_hello(&b), Ok(()));
        assert_eq!(check_hello(&b[..5]), Err(DecodeError::Incomplete));
        let mut bad = b.clone();
        bad[0] = b'X';
        assert_eq!(check_hello(&bad), Err(DecodeError::BadMagic));
        let mut v9 = b.clone();
        v9[4] = 9;
        assert_eq!(check_hello(&v9), Err(DecodeError::BadVersion(9)));
    }

    #[test]
    fn request_frames_roundtrip() {
        let reqs = [
            Req::Ping,
            Req::Get(7),
            Req::Insert(1, u32::MAX),
            Req::Delete(9),
            Req::Range(10, 20),
            Req::MinEntry,
            Req::PopMin,
            Req::SnapRange(5, 500),
        ];
        let mut buf = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            r.encode(i as u64 * 3, &mut buf);
        }
        let mut at = 0;
        for (i, r) in reqs.iter().enumerate() {
            let (id, got, used) = decode_req(&buf[at..]).unwrap();
            assert_eq!((id, got), (i as u64 * 3, *r));
            at += used;
        }
        assert_eq!(at, buf.len(), "stream fully consumed");
    }

    #[test]
    fn response_frames_roundtrip() {
        let resps = [
            Resp::Pong,
            Resp::Got(None),
            Resp::Got(Some(5)),
            Resp::Inserted(true),
            Resp::Deleted(false),
            Resp::Ranged(1234),
            Resp::MinIs(None),
            Resp::MinIs(Some((2, 3))),
            Resp::Popped(Some((u32::MAX - 1, 0))),
            Resp::Snapped { version: 0, count: 0 },
            Resp::Snapped { version: u64::MAX, count: 1 << 40 },
            Resp::Shed { mode: 2, retry_after_ms: 250 },
            Resp::Failed { code: 3 },
            Resp::Proto { code: 1 },
        ];
        let mut buf = Vec::new();
        for (i, r) in resps.iter().enumerate() {
            r.encode(i as u64, &mut buf);
        }
        let mut at = 0;
        for (i, r) in resps.iter().enumerate() {
            let (id, got, used) = decode_resp(&buf[at..]).unwrap();
            assert_eq!((id, got), (i as u64, *r));
            at += used;
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn partial_frames_ask_for_more_bytes() {
        let mut buf = Vec::new();
        Req::Insert(3, 4).encode(77, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                decode_req(&buf[..cut]).unwrap_err(),
                DecodeError::Incomplete,
                "cut at {cut}"
            );
        }
        assert!(decode_req(&buf).is_ok());
    }

    #[test]
    fn hostile_lengths_are_rejected_before_buffering() {
        // Oversized length: rejected from the two length bytes alone, so a
        // hostile peer cannot make the server wait for 64 KiB that never
        // arrives.
        let buf = u16::MAX.to_le_bytes();
        assert_eq!(decode_req(&buf).unwrap_err(), DecodeError::Oversized(u16::MAX));
        // Runt length: too short to hold the fixed tag + req_id header.
        let mut runt = 5u16.to_le_bytes().to_vec();
        runt.extend_from_slice(&[0; 5]);
        assert_eq!(decode_req(&runt).unwrap_err(), DecodeError::Runt(5));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Unknown tag.
        let mut buf = Vec::new();
        Req::Ping.encode(1, &mut buf);
        buf[2] = 0x7F;
        assert_eq!(decode_req(&buf).unwrap_err(), DecodeError::BadTag(0x7F));
        // Truncated fields: a Get whose length claims no key bytes.
        let mut get = Vec::new();
        Req::Get(1).encode(1, &mut get);
        let mut short = get.clone();
        short[0] = 9; // 1 tag + 8 id, key missing
        short.truncate(LEN_BYTES + 9);
        assert_eq!(decode_req(&short).unwrap_err(), DecodeError::Truncated(tags::GET));
        // Trailing junk inside the declared length.
        let mut long = Vec::new();
        Req::Ping.encode(1, &mut long);
        long[0] = 10; // 1 tag + 8 id + 1 junk byte
        long.push(0xAB);
        assert_eq!(decode_req(&long).unwrap_err(), DecodeError::Trailing(tags::PING));
        // Flag byte outside {0, 1}.
        let mut got = Vec::new();
        Resp::Got(Some(1)).encode(1, &mut got);
        got[11] = 2;
        assert_eq!(decode_resp(&got).unwrap_err(), DecodeError::BadFlag(2));
    }

    #[test]
    fn shed_frames_carry_mode_and_ms_hint() {
        let shed = ShedError { depth: 64, retry_after_ns: 2_500_001 };
        let resp = shed_resp(ServiceMode::ShedWrites, &shed);
        assert_eq!(resp, Resp::Shed { mode: 1, retry_after_ms: 3 }, "ms rounds up");
        let mut buf = Vec::new();
        resp.encode(42, &mut buf);
        let (id, back, _) = decode_resp(&buf).unwrap();
        assert_eq!((id, back), (42, resp));
    }

    #[test]
    fn every_serve_op_has_a_wire_form() {
        for req in [
            Req::Get(1),
            Req::Insert(1, 2),
            Req::Delete(1),
            Req::Range(1, 2),
            Req::MinEntry,
            Req::PopMin,
        ] {
            let op = req.op().expect("engine ops map to ServeOp");
            let mut buf = Vec::new();
            req.encode(0, &mut buf);
            let (_, back, _) = decode_req(&buf).unwrap();
            assert_eq!(back.op(), Some(op));
        }
        assert_eq!(Req::Ping.op(), None, "ping never reaches the engine");
        assert_eq!(
            Req::SnapRange(1, 2).op(),
            None,
            "snapshot reads answer at the edge, outside the epoch batch"
        );
    }

    #[test]
    fn snapped_is_the_widest_frame_and_fits_the_payload_cap() {
        // Snapped carries two u64 fields — the protocol's widest frame. If
        // this grows past MAX_PAYLOAD the decoder would reject our own
        // frames as hostile.
        let mut buf = Vec::new();
        Resp::Snapped { version: u64::MAX, count: u64::MAX }.encode(0, &mut buf);
        let payload = buf.len() - LEN_BYTES;
        assert_eq!(payload, 25);
        assert!(payload <= MAX_PAYLOAD);
        let (_, back, used) = decode_resp(&buf).unwrap();
        assert_eq!(back, Resp::Snapped { version: u64::MAX, count: u64::MAX });
        assert_eq!(used, buf.len());
    }
}
