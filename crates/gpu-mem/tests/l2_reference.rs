//! Property test: the sharded L2 model behaves identically to a naive
//! single-threaded set-associative LRU reference, probe for probe.

use gfsl_gpu_mem::l2::{L2Cache, Probe};
use proptest::prelude::*;

/// Naive reference: per-set Vec with explicit LRU-order maintenance.
struct RefCache {
    sets: Vec<Vec<u32>>,
    ways: usize,
}

impl RefCache {
    fn like(l2: &L2Cache) -> RefCache {
        RefCache {
            sets: vec![Vec::new(); l2.sets()],
            ways: l2.ways(),
        }
    }

    fn access(&mut self, line: u32) -> Probe {
        let n = self.sets.len();
        let set = &mut self.sets[line as usize % n];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let t = set.remove(pos);
            set.push(t);
            Probe::Hit
        } else {
            if set.len() == self.ways {
                set.remove(0);
            }
            set.push(line);
            Probe::Miss
        }
    }
}

proptest! {
    #[test]
    fn sharded_l2_matches_reference(
        lines in proptest::collection::vec(0u32..512, 1..2000),
        capacity_kb in 1usize..64,
        ways in 1usize..8,
    ) {
        let capacity = capacity_kb * 1024;
        prop_assume!(capacity / 128 >= ways);
        let l2 = L2Cache::new(capacity, ways);
        let mut reference = RefCache::like(&l2);
        for (i, &line) in lines.iter().enumerate() {
            let got = l2.access(line);
            let want = reference.access(line);
            prop_assert_eq!(got, want, "divergence at access {} (line {})", i, line);
        }
        prop_assert_eq!(
            l2.resident_lines(),
            reference.sets.iter().map(|s| s.len()).sum::<usize>()
        );
    }

    #[test]
    fn flush_resets_to_reference_cold_state(
        lines in proptest::collection::vec(0u32..256, 1..500),
    ) {
        let l2 = L2Cache::new(8 * 1024, 4);
        for &l in &lines {
            l2.access(l);
        }
        l2.flush();
        // After a flush every first re-access must miss, like a fresh cache.
        let mut seen = std::collections::HashSet::new();
        for &l in &lines {
            let p = l2.access(l);
            if seen.insert(l) {
                // First touch after flush: model may have evicted within this
                // replay, so only the very first distinct accesses that still
                // fit one set's ways are guaranteed misses; check the global
                // first access strictly.
                if seen.len() == 1 {
                    prop_assert_eq!(p, Probe::Miss);
                }
            }
        }
    }
}
