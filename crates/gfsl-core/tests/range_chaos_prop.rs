//! Property test: range scans under *scripted* chaos schedules never miss a
//! continuously present key (the satellite to PR 2's serving front end,
//! which leans on `range` for its `Range` request type).
//!
//! One mutator deletes every even key (forcing merges across the scan
//! window) and then reinserts the `k % 4 == 3` class (forcing splits),
//! while a scanner repeatedly walks the full window. Every access of both
//! workers is scheduled by the chaos turnstile from an arbitrary byte
//! script, so shrinking a failure shrinks the interleaving. The scan
//! contract under test (see `range.rs`): keys present for the whole scan
//! are reported exactly once, in order; concurrently mutated keys may or
//! may not appear — but nothing outside the universe ever does.

use std::collections::BTreeSet;

use gfsl::chaos::{ChaosController, ChaosOptions};
use gfsl::{Gfsl, GfslParams, TeamSize};
use proptest::prelude::*;

/// Key universe `1..=UNIVERSE`; spans several 14-entry chunks so merges and
/// splits cross chunk boundaries mid-scan.
const UNIVERSE: u32 = 120;
const SCANS: usize = 6;

fn stable(k: u32) -> bool {
    k % 4 == 1 // never touched after prefill
}

fn victim(k: u32) -> bool {
    k.is_multiple_of(2) // prefilled, deleted by the mutator
}

fn late(k: u32) -> bool {
    k % 4 == 3 // absent at prefill, inserted by the mutator
}

fn run_scripted(script: Vec<u8>, stall_turns: u8) -> Result<(), TestCaseError> {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        ..Default::default()
    })
    .expect("params valid");
    {
        let mut h = list.handle();
        for k in (1..=UNIVERSE).filter(|&k| stable(k) || victim(k)) {
            h.insert(k, k * 10).expect("pool");
        }
    }
    let ctl = ChaosController::new(
        2,
        ChaosOptions {
            script: Some(script),
            max_stall_turns: stall_turns,
            ..Default::default()
        },
    );

    let scan_violation: Option<String> = std::thread::scope(|s| {
        let mutator = {
            let (list, ctl) = (&list, &ctl);
            s.spawn(move || {
                let mut h = list.handle_with(ctl.probe(0));
                for k in (1..=UNIVERSE).filter(|&k| victim(k)) {
                    assert!(h.remove(k), "victim {k} was prefilled");
                }
                for k in (1..=UNIVERSE).filter(|&k| late(k)) {
                    assert!(h.insert(k, k * 10).expect("pool"), "late {k} was absent");
                }
            })
        };
        let scanner = {
            let (list, ctl) = (&list, &ctl);
            s.spawn(move || -> Option<String> {
                let mut h = list.handle_with(ctl.probe(1));
                for scan in 0..SCANS {
                    let got = h.range(1, UNIVERSE);
                    if !got.windows(2).all(|w| w[0].0 < w[1].0) {
                        return Some(format!("scan {scan} not sorted/unique: {got:?}"));
                    }
                    let keys: BTreeSet<u32> = got.iter().map(|&(k, _)| k).collect();
                    for k in (1..=UNIVERSE).filter(|&k| stable(k)) {
                        if !keys.contains(&k) {
                            return Some(format!(
                                "scan {scan} missed continuously present key {k}: {keys:?}"
                            ));
                        }
                    }
                    for &(k, v) in &got {
                        if k == 0 || k > UNIVERSE || v != k * 10 {
                            return Some(format!("scan {scan} fabricated ({k}, {v})"));
                        }
                    }
                }
                None
            })
        };
        mutator.join().expect("mutator survived the schedule");
        scanner.join().expect("scanner survived the schedule")
    });
    prop_assert!(scan_violation.is_none(), "{}", scan_violation.unwrap());

    // Quiescence: structure valid, membership equals the exact oracle
    // (stable ∪ late; every victim deleted).
    let violations = list.validate();
    prop_assert!(
        violations.is_empty(),
        "invariant violations under script: {violations:?}"
    );
    let got: BTreeSet<u32> = list.keys().into_iter().collect();
    let expect: BTreeSet<u32> = (1..=UNIVERSE).filter(|&k| stable(k) || late(k)).collect();
    prop_assert_eq!(got, expect);
    let mut h = list.handle();
    prop_assert_eq!(h.count_range(1, UNIVERSE), expect.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Arbitrary byte scripts interleave a merging/splitting mutator with a
    /// concurrent scanner; no schedule may make a scan miss a continuously
    /// present key, yield out-of-order output, or fabricate entries.
    #[test]
    fn scripted_schedules_never_break_range_scans(
        script in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        run_scripted(script, 2)?;
    }

    /// Same property with aggressive stalls: scans spend maximal time
    /// overlapping merge zombie-marking and split publication windows.
    #[test]
    fn range_scans_survive_long_stalls_in_crash_windows(
        script in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        run_scripted(script, 5)?;
    }
}
