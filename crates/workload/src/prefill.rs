//! Initial-structure policies (paper §5.1).

use crate::rng::{shuffle, SplitMix64};

/// What the structure contains before the timed phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prefill {
    /// Empty structure (Insert-only benchmark).
    Empty,
    /// "A random set of keys, exactly half the size of the key range"
    /// (mixed-operation benchmarks).
    HalfRandom,
    /// "All of the keys in each range, inserted in a random order"
    /// (Contains-only and Delete-only benchmarks).
    FullShuffled,
}

impl Prefill {
    /// Materialize the prefill key list for `key_range` (keys are
    /// `1..=key_range`), in insertion order.
    pub fn keys(self, key_range: u32, seed: u64) -> Vec<u32> {
        let mut rng = SplitMix64::new(seed ^ 0x5EED_F111);
        match self {
            Prefill::Empty => Vec::new(),
            Prefill::HalfRandom => {
                // Choose exactly range/2 distinct keys uniformly: shuffle
                // the universe and take the first half. (The paper says "a
                // random set of keys, exactly half the size of the key
                // range".)
                let mut all: Vec<u32> = (1..=key_range).collect();
                shuffle(&mut all, &mut rng);
                all.truncate(key_range as usize / 2);
                all
            }
            Prefill::FullShuffled => {
                let mut all: Vec<u32> = (1..=key_range).collect();
                shuffle(&mut all, &mut rng);
                all
            }
        }
    }

    /// Expected number of prefilled keys.
    pub fn expected_len(self, key_range: u32) -> usize {
        match self {
            Prefill::Empty => 0,
            Prefill::HalfRandom => key_range as usize / 2,
            Prefill::FullShuffled => key_range as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn empty_prefill() {
        assert!(Prefill::Empty.keys(1000, 1).is_empty());
        assert_eq!(Prefill::Empty.expected_len(1000), 0);
    }

    #[test]
    fn half_random_is_half_and_distinct() {
        let keys = Prefill::HalfRandom.keys(1000, 42);
        assert_eq!(keys.len(), 500);
        let set: HashSet<u32> = keys.iter().copied().collect();
        assert_eq!(set.len(), 500, "distinct");
        assert!(keys.iter().all(|&k| (1..=1000).contains(&k)));
    }

    #[test]
    fn full_shuffled_is_a_permutation() {
        let keys = Prefill::FullShuffled.keys(500, 42);
        assert_eq!(keys.len(), 500);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=500).collect::<Vec<_>>());
        assert_ne!(keys, sorted, "must actually be shuffled");
    }

    #[test]
    fn prefill_is_seed_deterministic() {
        assert_eq!(
            Prefill::HalfRandom.keys(2000, 7),
            Prefill::HalfRandom.keys(2000, 7)
        );
        assert_ne!(
            Prefill::HalfRandom.keys(2000, 7),
            Prefill::HalfRandom.keys(2000, 8)
        );
    }

    #[test]
    fn different_policies_differ() {
        assert_ne!(
            Prefill::HalfRandom.keys(100, 1).len(),
            Prefill::FullShuffled.keys(100, 1).len()
        );
    }
}
