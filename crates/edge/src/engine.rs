//! The storage engine behind the edge: one GFSL or a sharded cluster.
//!
//! Worker threads execute whole epoch batches here. The single-structure
//! engine rides the key-sorted batched entry point (the same hinted
//! dispatch the in-process serve loop uses); the cluster engine routes each
//! request through the epoch-versioned shard map, so it keeps serving
//! straight through live split/merge migrations — a redirect retries
//! internally and never surfaces to the wire.

use std::sync::Arc;

use gfsl::batch::{BatchOp, BatchReply};
use gfsl::{Error as GfslError, Gfsl, KEY_INF};
use gfsl_cluster::Cluster;
use gfsl_serve::{request::to_batch_op, Reply};
use gfsl_workload::ServeOp;

/// The engine a server instance fronts.
#[derive(Clone)]
pub enum EdgeEngine {
    /// One GFSL structure; batches dispatch through
    /// [`execute_batch_hinted`](gfsl::GfslHandle::execute_batch_hinted).
    Single(Arc<Gfsl>),
    /// A sharded cluster; requests route per key and re-route through
    /// migrations.
    Cluster(Arc<Cluster>),
}

impl EdgeEngine {
    /// Execute one epoch batch, appending one [`Reply`] per op to `out`
    /// (index-aligned with `ops`).
    pub fn execute(&self, ops: &[ServeOp], out: &mut Vec<Reply>) {
        match self {
            EdgeEngine::Single(list) => {
                let batch: Vec<BatchOp> = ops.iter().map(|&op| to_batch_op(op)).collect();
                let mut replies: Vec<BatchReply> = Vec::with_capacity(batch.len());
                list.handle().execute_batch_hinted(&batch, &mut replies);
                out.extend(replies.into_iter().map(Reply::from));
            }
            EdgeEngine::Cluster(c) => {
                out.extend(ops.iter().map(|&op| route_one(c, op)));
            }
        }
    }

    /// Version-pinned count of keys in `[lo, hi]`: `(version, count)`.
    /// Runs outside the epoch batch — with mvcc on, the pin is the only
    /// moment that touches the writer path (fence drain), and the count
    /// itself never blocks on chunk locks. Without the mvcc knob the
    /// count falls back to the engine's ordinary range count and reports
    /// version 0. The window is validated *here*, before the engine's
    /// internal asserts see it — this is the trust boundary for hostile
    /// wire input.
    pub fn snap_count(&self, lo: u32, hi: u32) -> Result<(u64, u64), GfslError> {
        if lo < 1 || hi >= KEY_INF || lo > hi {
            return Err(GfslError::InvalidKey(if lo < 1 { lo } else { hi }));
        }
        match self {
            EdgeEngine::Single(list) => match list.pin_version() {
                Some(ticket) => {
                    let n = list.handle().count_range_at(lo, hi, &ticket);
                    Ok((ticket.version(), n as u64))
                }
                None => list
                    .handle()
                    .try_count_range(lo, hi)
                    .map(|n| (0, n as u64)),
            },
            EdgeEngine::Cluster(c) => c.snap_count_range(lo, hi),
        }
    }

    /// Current quarantine depth (the supervisor's repair-pressure signal);
    /// summed across shards for a cluster.
    pub fn quarantine_depth(&self) -> usize {
        match self {
            EdgeEngine::Single(list) => list.quarantine_depth(),
            EdgeEngine::Cluster(c) => c
                .shards()
                .iter()
                .map(|s| s.list.quarantine_depth())
                .sum(),
        }
    }
}

fn route_one(c: &Cluster, op: ServeOp) -> Reply {
    fn done<T>(r: Result<T, GfslError>, f: impl FnOnce(T) -> Reply) -> Reply {
        match r {
            Ok(v) => f(v),
            Err(e) => Reply::Failed(e),
        }
    }
    match op {
        ServeOp::Get(k) => done(c.get(k), Reply::Got),
        ServeOp::Insert(k, v) => done(c.insert(k, v), Reply::Inserted),
        ServeOp::Delete(k) => done(c.remove(k), Reply::Deleted),
        ServeOp::Range(lo, hi) => done(c.count_range(lo, hi), |n| Reply::Ranged(n as u32)),
        ServeOp::MinEntry => done(c.min_entry(), Reply::MinIs),
        ServeOp::PopMin => done(c.pop_min(), Reply::Popped),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfsl::GfslParams;

    fn params() -> GfslParams {
        GfslParams::default()
    }

    #[test]
    fn single_engine_executes_batches_index_aligned() {
        let list = Arc::new(Gfsl::new(params()).unwrap());
        let eng = EdgeEngine::Single(list);
        // Batched dispatch executes in (key, index) order — min ops carry
        // key 1 and run before the insert of key 5 — but replies come back
        // index-aligned with the submitted ops.
        let mut out = Vec::new();
        eng.execute(&[ServeOp::Insert(5, 50), ServeOp::Get(5)], &mut out);
        assert_eq!(out, vec![Reply::Inserted(true), Reply::Got(Some(50))]);
        let mut out = Vec::new();
        eng.execute(
            &[ServeOp::MinEntry, ServeOp::PopMin, ServeOp::Get(5)],
            &mut out,
        );
        assert_eq!(
            out,
            vec![
                Reply::MinIs(Some((5, 50))),
                Reply::Popped(Some((5, 50))),
                Reply::Got(None),
            ],
            "index-aligned replies; same-key order preserved"
        );
    }

    #[test]
    fn snap_count_pins_when_mvcc_is_on_and_falls_back_when_off() {
        // mvcc off: count still answers, version 0.
        let plain = EdgeEngine::Single(Arc::new(
            Gfsl::prefilled(params(), 1..=100).unwrap(),
        ));
        assert_eq!(plain.snap_count(10, 20).unwrap(), (0, 11));

        // mvcc on: version comes from the pinned clock (nonzero).
        let mvcc = GfslParams { mvcc: true, ..params() };
        let eng = EdgeEngine::Single(Arc::new(Gfsl::prefilled(mvcc, 1..=100).unwrap()));
        let (v, n) = eng.snap_count(10, 20).unwrap();
        assert!(v >= 1, "pinned version names a clock instant");
        assert_eq!(n, 11);

        // Hostile windows fail typed instead of tripping engine asserts.
        assert!(eng.snap_count(0, 5).is_err());
        assert!(eng.snap_count(9, 3).is_err());
        assert!(eng.snap_count(1, u32::MAX).is_err());
    }

    #[test]
    fn snap_count_spans_cluster_shards() {
        let mvcc = GfslParams { mvcc: true, ..params() };
        let c = Arc::new(Cluster::new(mvcc, 4).unwrap());
        for k in [10u32, 1_000_000_000, 2_000_000_000, 3_000_000_000] {
            c.insert(k, k).unwrap();
        }
        let eng = EdgeEngine::Cluster(c);
        let (v, n) = eng.snap_count(1, 3_000_000_001).unwrap();
        assert!(v >= 1);
        assert_eq!(n, 4, "pinned count stitches across all four shards");
    }

    #[test]
    fn cluster_engine_routes_across_shards() {
        let c = Arc::new(Cluster::new(params(), 4).unwrap());
        let eng = EdgeEngine::Cluster(c.clone());
        let keys = [10u32, 2_000_000_000, 1_000_000_000, 3_000_000_000];
        let ops: Vec<ServeOp> = keys.iter().map(|&k| ServeOp::Insert(k, k)).collect();
        let mut out = Vec::new();
        eng.execute(&ops, &mut out);
        assert!(out.iter().all(|r| matches!(r, Reply::Inserted(true))));
        let mut out = Vec::new();
        eng.execute(&[ServeOp::PopMin, ServeOp::MinEntry], &mut out);
        assert_eq!(out[0], Reply::Popped(Some((10, 10))));
        assert_eq!(out[1], Reply::MinIs(Some((1_000_000_000, 1_000_000_000))));
    }
}
