//! Deterministic RNG streams shared by every GFSL crate.
//!
//! This is the single home for the pseudorandom generators (previously two
//! diverging copies lived in `gfsl-core` and `gfsl-workload`). Everything
//! here is seedable and reproducible: same seed, same stream, regardless of
//! thread interleaving.
//!
//! SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators", OOPSLA 2014 (Vigna's public-domain reference). Lehmer64:
//! 128-bit multiplicative congruential generator — slightly faster for bulk
//! key generation.

pub mod fnv;

/// SplitMix64 stream. Good seeder and general-purpose generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (Lemire's multiply-shift reduction;
    /// negligible modulo bias is irrelevant for workload generation but we
    /// use the unbiased-enough fast map anyway).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, 1)`. Alias kept for the raise-key coin path in
    /// `gfsl-core`, which predates the shared crate.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.unit_f64()
    }

    /// Bernoulli trial.
    #[inline]
    pub fn coin(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            self.unit_f64() < p
        }
    }
}

/// Lehmer64: `state *= M (mod 2^128)`, output the high 64 bits.
#[derive(Debug, Clone)]
pub struct Lehmer64 {
    state: u128,
}

impl Lehmer64 {
    /// Stream seeded with `seed` (expanded through SplitMix64 so low-entropy
    /// seeds still give full-width state; state must be odd/nonzero).
    pub fn new(seed: u64) -> Lehmer64 {
        let mut sm = SplitMix64::new(seed);
        let hi = sm.next_u64() as u128;
        let lo = sm.next_u64() as u128;
        Lehmer64 {
            state: (hi << 64 | lo) | 1,
        }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(0xDA94_2042_E4DD_58B5);
        (self.state >> 64) as u64
    }

    /// Uniform draw in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Fisher–Yates shuffle driven by a SplitMix64 stream.
pub fn shuffle<T>(items: &mut [T], rng: &mut SplitMix64) {
    for i in (1..items.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

/// Geometric tower height for classic skiplists: 1 + the number of
/// consecutive successes of a `p_key` coin, capped at `max`. This is how
/// M&C pre-draws the level for each insert on the host (paper §5.1).
pub fn tower_height(rng: &mut SplitMix64, p_key: f64, max: u32) -> u32 {
    let mut h = 1;
    while h < max && rng.coin(p_key) {
        h += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // reference implementation (Vigna).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn below_stays_in_bounds_and_covers_range() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn lehmer_is_deterministic_and_distinct_from_splitmix() {
        let mut a = Lehmer64::new(9);
        let mut b = Lehmer64::new(9);
        let mut c = Lehmer64::new(10);
        let va = a.next_u64();
        assert_eq!(va, b.next_u64());
        assert_ne!(va, c.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = SplitMix64::new(5);
        shuffle(&mut v, &mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "seed 5 must move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        shuffle(&mut a, &mut SplitMix64::new(7));
        shuffle(&mut b, &mut SplitMix64::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn tower_height_distribution_matches_geometric() {
        let mut rng = SplitMix64::new(11);
        let n = 100_000;
        let heights: Vec<u32> = (0..n).map(|_| tower_height(&mut rng, 0.5, 32)).collect();
        let h1 = heights.iter().filter(|&&h| h == 1).count() as f64 / n as f64;
        let h2 = heights.iter().filter(|&&h| h == 2).count() as f64 / n as f64;
        assert!((h1 - 0.5).abs() < 0.01, "P(h=1) = {h1}");
        assert!((h2 - 0.25).abs() < 0.01, "P(h=2) = {h2}");
        assert!(heights.iter().all(|&h| (1..=32).contains(&h)));
    }

    #[test]
    fn tower_height_respects_cap() {
        let mut rng = SplitMix64::new(13);
        assert!((0..1000).all(|_| tower_height(&mut rng, 1.0, 4) == 4));
        assert!((0..1000).all(|_| tower_height(&mut rng, 0.0, 4) == 1));
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SplitMix64::new(21);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn coin_frequency_tracks_p() {
        let mut r = SplitMix64::new(99);
        let hits = (0..10_000).filter(|_| r.coin(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
