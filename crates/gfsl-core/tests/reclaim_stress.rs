//! Churn stress for the zombie-chunk reclamation layer.
//!
//! The paper preallocates the device pool, so before reclamation the bump
//! pointer was a hard lifetime budget: every split allocated, nothing ever
//! returned, and sustained insert/remove churn exhausted the pool long
//! before the live set needed it. These tests pin down the new contract:
//!
//! * with `reclaim: true`, churn many times the pool size recycles zombie
//!   chunks and the bump high-water stays bounded by the live-set footprint
//!   (not by the operation count);
//! * with `reclaim: false`, exhaustion surfaces as the typed
//!   [`Error::PoolExhausted`] with every lock released — the structure
//!   stays fully usable and valid afterwards.

use std::collections::{BTreeMap, BTreeSet};

use gfsl::{Error, Gfsl, GfslParams, TeamSize};

fn params(pool_chunks: u32, reclaim: bool) -> GfslParams {
    GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks,
        reclaim,
        ..Default::default()
    }
}

/// Sliding-window churn: ~12k update ops through a 256-chunk pool (>10×
/// the pool in ops, >25× in chunk demand) with at most `WINDOW` keys live.
/// The bump high-water must stay within 2× the first window's footprint.
#[test]
fn sliding_window_churn_bounds_the_high_water_mark() {
    const WINDOW: u32 = 64;
    const LAST: u32 = 6_000;
    let list = Gfsl::new(params(256, true)).unwrap();
    let mut h = list.handle();

    for k in 1..=WINDOW {
        h.insert(k, k).unwrap();
    }
    // The post-fill footprint (level sentinels + the live window's chunks)
    // is the live-set yardstick the steady state is measured against.
    let baseline = list.chunks_allocated();

    for k in WINDOW + 1..=LAST {
        h.insert(k, k).unwrap();
        assert!(h.remove(k - WINDOW), "window key {k} present", k = k - WINDOW);
    }

    let high_water = list.chunks_allocated();
    assert!(
        high_water < 2 * baseline,
        "high water {high_water} vs 2x live-set footprint {baseline}"
    );
    let stats = list.reclaim_stats().expect("reclamation on");
    assert!(stats.zombies_reclaimed > 0, "no zombie ever reclaimed: {stats:?}");
    assert!(stats.reused > 0, "free list never consumed: {stats:?}");

    let expect: Vec<u32> = (LAST - WINDOW + 1..=LAST).collect();
    assert_eq!(list.keys(), expect, "final membership is the last window");
    list.assert_valid();
}

/// Two writers churning disjoint key classes through a shared pool: the
/// epoch protocol must advance (both handles pin and unpin around every
/// op), zombies must be recycled, and quiescent validation must hold.
#[test]
fn concurrent_churn_recycles_and_stays_valid() {
    const WINDOW: u32 = 32;
    const PER_THREAD: u32 = 3_000;
    let list = Gfsl::new(params(1024, true)).unwrap();

    let finals: Vec<BTreeSet<u32>> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..2u32)
            .map(|t| {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    let key = |i: u32| i * 2 + t + 1;
                    for i in 0..PER_THREAD {
                        h.insert(key(i), i).unwrap();
                        if i >= WINDOW {
                            assert!(h.remove(key(i - WINDOW)), "own window key");
                        }
                    }
                    (PER_THREAD - WINDOW..PER_THREAD).map(key).collect()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    // ~12k update ops; without recycling the bottom level alone would have
    // needed ~850 chunks. The concurrent high water varies with reclaim lag
    // (observed 166..=330 over 20 runs), so the bound leaves 1.5x headroom
    // over the worst observation while staying far under the no-reclaim
    // demand.
    let high_water = list.chunks_allocated();
    assert!(high_water < 512, "high water {high_water} not bounded by live set");
    let stats = list.reclaim_stats().expect("reclamation on");
    assert!(stats.zombies_reclaimed > 0, "{stats:?}");

    let violations = list.validate();
    assert!(violations.is_empty(), "{violations:?}");
    let got: BTreeSet<u32> = list.keys().into_iter().collect();
    let expect: BTreeSet<u32> = finals.into_iter().flatten().collect();
    assert_eq!(got, expect, "membership is the union of both windows");
}

/// Traversal hints must stay safe across chunk reclamation. A handle's
/// cached bottom-level hint can name a chunk that is merged away, retired,
/// reclaimed, and reinitialized under a different key range while the hint
/// sits idle; the hint's `(lock word, reclaim epoch)` guard must reject
/// such hints so a hinted lookup never trusts a recycled incarnation.
///
/// The churn pushes chunk demand well past 10x the pool (sliding window
/// through a 64-chunk pool for 6k keys), with hinted lookups interleaved
/// and checked against a reference map. A second, mostly-idle handle
/// captures a hint *before* the churn and looks up through it *after*, by
/// which point the reclaimer has advanced far more than the two epochs the
/// tag tolerates — the stale hint must be dropped, not followed.
#[test]
fn hinted_lookups_stay_correct_across_reclamation_churn() {
    const WINDOW: u32 = 48;
    const LAST: u32 = 6_000;
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 64,
        reclaim: true,
        hints: true,
        ..Default::default()
    })
    .unwrap();
    let mut h = list.handle();
    let mut reference: BTreeMap<u32, u32> = BTreeMap::new();

    for k in 1..=WINDOW {
        h.insert(k, k * 3).unwrap();
        reference.insert(k, k * 3);
    }
    // The idle handle's hint will outlive many reclaim epochs.
    let mut idle = list.handle();
    assert_eq!(idle.get(WINDOW / 2), Some(WINDOW / 2 * 3));

    for k in WINDOW + 1..=LAST {
        h.insert(k, k * 3).unwrap();
        reference.insert(k, k * 3);
        assert!(h.remove(k - WINDOW));
        reference.remove(&(k - WINDOW));
        if k % 7 == 0 {
            // Hinted lookups mid-churn: the previous op's hint points at a
            // window chunk that is about to be merged away and recycled.
            let probe = k - k % WINDOW;
            assert_eq!(h.get(probe), reference.get(&probe).copied(), "mid-churn get {probe}");
        }
    }

    // The pool was recycled end over end: demand stayed inside 64 chunks
    // only because zombies were reclaimed (plain sliding-window demand is
    // ~850 bottom chunks, >13x the pool).
    let stats = list.reclaim_stats().expect("reclamation on");
    assert!(
        stats.reused >= 640,
        "churn must recycle >10x the pool, reused only {}",
        stats.reused
    );
    assert!(list.chunks_allocated() <= 64, "bump pointer within the pool");

    // The pre-churn hint is now generations stale; the epoch tag (or the
    // lock-word certification) must reject it and fall back to a full
    // descent that still answers correctly.
    assert_eq!(idle.get(WINDOW / 2), None, "pre-churn key is long gone");
    assert_eq!(
        idle.get(LAST - WINDOW / 2),
        reference.get(&(LAST - WINDOW / 2)).copied(),
        "stale-hinted handle reads the live window"
    );

    // Full hinted sweep against the reference; ascending keys make almost
    // every lookup a hint hit, all of them on recycled chunks.
    for k in 1..=LAST {
        assert_eq!(h.get(k), reference.get(&k).copied(), "final sweep get {k}");
    }
    let s = h.stats();
    assert!(s.hint_hits > 0, "sweep never used the hint path: {s:?}");
    assert!(s.hint_misses > 0, "churn never invalidated a hint: {s:?}");

    let violations = list.validate();
    assert!(violations.is_empty(), "post-churn invariants: {violations:?}");
    let got: BTreeSet<u32> = list.keys().into_iter().collect();
    let expect: BTreeSet<u32> = reference.keys().copied().collect();
    assert_eq!(got, expect);
}

/// The multi-level finger must stay safe across chunk reclamation, exactly
/// like the bottom hint: every cached `(chunk, lock word, epoch)` level can
/// name a chunk that is split, merged away, retired, reclaimed, and
/// reinitialized under a different key range while the finger sits idle.
/// The top-down validation (identical unlocked lock word + epoch window)
/// must reject recycled incarnations level by level, so a fingered descent
/// never starts below a stale chunk.
///
/// Same shape as the hinted test above, with fingers + foresight prefetch
/// on: sliding-window churn >10x through a 64-chunk pool with fingered
/// lookups interleaved and checked against a reference map, plus an idle
/// handle whose whole finger stack goes generations stale.
#[test]
fn fingered_lookups_stay_correct_across_reclamation_churn() {
    const WINDOW: u32 = 48;
    const LAST: u32 = 6_000;
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 64,
        reclaim: true,
        fingers: true,
        prefetch: gfsl::Prefetch::Next,
        ..Default::default()
    })
    .unwrap();
    let mut h = list.handle();
    let mut reference: BTreeMap<u32, u32> = BTreeMap::new();

    for k in 1..=WINDOW {
        h.insert(k, k * 3).unwrap();
        reference.insert(k, k * 3);
    }
    // The idle handle's finger stack will outlive many reclaim epochs.
    let mut idle = list.handle();
    assert_eq!(idle.get(WINDOW / 2), Some(WINDOW / 2 * 3));

    for k in WINDOW + 1..=LAST {
        h.insert(k, k * 3).unwrap();
        reference.insert(k, k * 3);
        assert!(h.remove(k - WINDOW));
        reference.remove(&(k - WINDOW));
        if k % 7 == 0 {
            // Fingered lookups mid-churn: every cached level points into a
            // window region that is continuously merged away and recycled.
            let probe = k - k % WINDOW;
            assert_eq!(h.get(probe), reference.get(&probe).copied(), "mid-churn get {probe}");
        }
    }

    let stats = list.reclaim_stats().expect("reclamation on");
    assert!(
        stats.reused >= 640,
        "churn must recycle >10x the pool, reused only {}",
        stats.reused
    );
    assert!(list.chunks_allocated() <= 64, "bump pointer within the pool");

    // The idle handle's fingers are now generations stale at every level;
    // validation must reject them all and restart from the head.
    assert_eq!(idle.get(WINDOW / 2), None, "pre-churn key is long gone");
    assert_eq!(
        idle.get(LAST - WINDOW / 2),
        reference.get(&(LAST - WINDOW / 2)).copied(),
        "stale-fingered handle reads the live window"
    );

    // Full fingered sweep against the reference: ascending keys keep the
    // finger hot, all of it over recycled chunks.
    for k in 1..=LAST {
        assert_eq!(h.get(k), reference.get(&k).copied(), "final sweep get {k}");
    }
    let s = h.stats();
    assert!(
        s.finger_depth_hits.iter().sum::<u64>() > 0,
        "sweep never restarted from a finger: {s:?}"
    );
    assert!(s.finger_misses > 0, "churn never invalidated the finger stack: {s:?}");
    assert!(s.prefetch_issued > 0, "foresight prefetch never fired: {s:?}");

    let violations = list.validate();
    assert!(violations.is_empty(), "post-churn invariants: {violations:?}");
    let got: BTreeSet<u32> = list.keys().into_iter().collect();
    let expect: BTreeSet<u32> = reference.keys().copied().collect();
    assert_eq!(got, expect);
}

/// With reclamation off, a tiny pool exhausts under churn. The regression
/// being pinned: exhaustion inside a split used to leave chunk locks held,
/// wedging every later writer. It must instead surface the typed error
/// with all locks released and the structure intact.
#[test]
fn exhaustion_without_reclaim_is_typed_and_leaves_no_lock_held() {
    let list = Gfsl::new(params(40, false)).unwrap();
    let mut h = list.handle();

    let mut inserted = Vec::new();
    let exhausted_at = loop {
        let k = inserted.len() as u32 + 1;
        match h.insert(k, k * 10) {
            Ok(added) => {
                assert!(added);
                inserted.push(k);
                assert!(k < 10_000, "a 40-chunk pool cannot hold 10k keys");
            }
            Err(Error::PoolExhausted(_)) => break k,
            Err(e) => panic!("unexpected error {e:?}"),
        }
    };

    // An exhaustion mid-raise still inserts the key at the bottom level
    // (only index levels are missing, which is legal); an exhaustion in the
    // bottom split does not. Either way the structure answers.
    let failing_key_landed = h.get(exhausted_at) == Some(exhausted_at * 10);

    // Every lock was released on the error path: reads, removes, and
    // no-alloc inserts must all still go through (a held lock would wedge
    // each of these), and repeating the failing insert fails cleanly
    // instead of deadlocking on a self-held lock.
    match h.insert(exhausted_at, 0) {
        Ok(false) => assert!(failing_key_landed, "duplicate implies it landed"),
        Err(Error::PoolExhausted(_)) => {}
        other => panic!("retried insert: {other:?}"),
    }
    for &k in &inserted {
        assert_eq!(h.get(k), Some(k * 10), "get {k} after exhaustion");
    }
    // Freeing in-chunk slots makes room for inserts that need no split.
    for &k in inserted.iter().take(20) {
        assert!(h.remove(k), "remove {k} after exhaustion");
    }
    assert!(h.insert(1, 42).unwrap(), "insert into freed slot");
    list.assert_valid();

    let mut expect: BTreeSet<u32> = inserted.iter().skip(20).copied().collect();
    expect.insert(1);
    if failing_key_landed {
        expect.insert(exhausted_at);
    }
    let got: BTreeSet<u32> = list.keys().into_iter().collect();
    assert_eq!(got, expect);
}

/// The companion guarantee: a tiny pool survives a churn workload that
/// dwarfs it once reclamation is on, because the steady-state live set
/// fits comfortably. The window spans several chunks so removals hit
/// non-terminal chunks and actually merge (removals confined to the last
/// chunk of a level never zombify anything by design).
#[test]
fn same_tiny_pool_survives_churn_with_reclaim_on() {
    const WINDOW: u32 = 32;
    const LAST: u32 = 2_000;
    let list = Gfsl::new(params(48, true)).unwrap();
    let mut h = list.handle();

    for k in 1..=LAST {
        h.insert(k, k).expect("reclamation keeps the pool ahead of churn");
        if k > WINDOW {
            assert!(h.remove(k - WINDOW));
        }
    }

    let stats = list.reclaim_stats().expect("reclamation on");
    assert!(stats.reused > 0, "survival required recycling: {stats:?}");
    assert!(list.chunks_allocated() <= 48, "bump pointer within the pool");
    let expect: Vec<u32> = (LAST - WINDOW + 1..=LAST).collect();
    assert_eq!(list.keys(), expect);
    list.assert_valid();
}
