//! Warp programs: lockstep state machines executed by the scheduler.

use gfsl::chunk::ChunkView;
use gfsl::search::{tid_for_next_step, tid_with_equal_key, LateralStep, NextStep};
use gfsl::Gfsl;
use gfsl_gpu_mem::{NoProbe, WordAddr};
use mc_skiplist::node::{NodeRef, NIL as MC_NIL};
use mc_skiplist::McSkipList;

/// One lockstep step's externally visible effect.
#[derive(Debug, Clone)]
pub enum Step {
    /// A warp-wide memory access (one address per active lane). The data is
    /// read immediately (the structure is static during read-only
    /// simulation); the scheduler charges the latency.
    Mem(Vec<WordAddr>),
    /// Pure computation for this many cycles.
    Compute(u64),
    /// The warp retired all its operations.
    Done,
}

/// A warp-sized lockstep program.
pub trait WarpProgram {
    /// Execute the next lockstep step.
    fn step(&mut self) -> Step;
}

// --------------------------------------------------------------------------
// GFSL: one team per warp, one Contains at a time.
// --------------------------------------------------------------------------

enum GfslPhase {
    /// About to read the chunk at index `.0` while at height `.1`.
    Read(u32, usize),
    /// Between ops.
    NextOp,
    Finished,
}

/// A GFSL team executing a queue of Contains operations. Faithful to
/// Algorithm 4.1/4.2: down/lateral/backtrack steps decided by the same
/// ballot code the real structure uses (literally the same functions).
pub struct GfslContainsWarp<'a> {
    list: &'a Gfsl,
    keys: std::vec::IntoIter<u32>,
    key: u32,
    phase: GfslPhase,
    prev: Option<ChunkView>,
    /// Contains results (checked by tests against ground truth).
    pub results: Vec<bool>,
}

impl<'a> GfslContainsWarp<'a> {
    /// A warp that will look up `keys` in order.
    pub fn new(list: &'a Gfsl, keys: Vec<u32>) -> Self {
        GfslContainsWarp {
            list,
            keys: keys.into_iter(),
            key: 0,
            phase: GfslPhase::NextOp,
            prev: None,
            results: Vec::new(),
        }
    }

    fn read_view(&self, chunk: u32) -> (ChunkView, Vec<WordAddr>) {
        let team = self.list.team();
        let cref = self.list.chunk_ref(chunk);
        let addrs: Vec<WordAddr> = (0..team.lanes()).map(|l| cref.entry_addr(l)).collect();
        let view = ChunkView::read(team, self.list.raw_pool(), &mut NoProbe, cref);
        (view, addrs)
    }

    fn start_op(&mut self) -> Step {
        match self.keys.next() {
            None => {
                self.phase = GfslPhase::Finished;
                Step::Done
            }
            Some(k) => {
                self.key = k;
                self.prev = None;
                let h = self.list.height();
                self.phase = GfslPhase::Read(self.list.head_chunk(h), h);
                // Reading the head array + height counters: a cheap step.
                Step::Compute(4)
            }
        }
    }
}

impl WarpProgram for GfslContainsWarp<'_> {
    fn step(&mut self) -> Step {
        let team = *self.list.team();
        match self.phase {
            GfslPhase::Finished => Step::Done,
            GfslPhase::NextOp => self.start_op(),
            GfslPhase::Read(chunk, height) => {
                let (view, addrs) = self.read_view(chunk);
                if view.is_zombie(&team) {
                    self.phase = GfslPhase::Read(view.next(&team), height);
                    return Step::Mem(addrs);
                }
                let kernel = self.list.params().kernel;
                if height > 0 {
                    match tid_for_next_step(kernel, &team, self.key, &view) {
                        NextStep::Lateral => {
                            self.prev = Some(view);
                            self.phase = GfslPhase::Read(view.next(&team), height);
                        }
                        NextStep::Down(lane) => {
                            self.prev = None;
                            self.phase =
                                GfslPhase::Read(view.entry(lane).val(), height - 1);
                        }
                        NextStep::Backtrack => match self.prev.take() {
                            None => {
                                // Rare restart (only under concurrent
                                // deletes; impossible in read-only sim, kept
                                // for completeness).
                                let h = self.list.height();
                                self.phase =
                                    GfslPhase::Read(self.list.head_chunk(h), h);
                            }
                            Some(pview) => {
                                let lane = team
                                    .ballot(|l| {
                                        team.is_data_lane(l)
                                            && pview.entry(l).key() <= self.key
                                    })
                                    .highest()
                                    .expect("backtrack with candidate");
                                self.phase = GfslPhase::Read(
                                    pview.entry(lane).val(),
                                    height - 1,
                                );
                            }
                        },
                    }
                } else {
                    match tid_with_equal_key(kernel, &team, self.key, &view) {
                        LateralStep::Continue => {
                            self.phase = GfslPhase::Read(view.next(&team), 0);
                        }
                        LateralStep::Found(_) => {
                            self.results.push(true);
                            self.phase = GfslPhase::NextOp;
                        }
                        LateralStep::NotFound => {
                            self.results.push(false);
                            self.phase = GfslPhase::NextOp;
                        }
                    }
                }
                Step::Mem(addrs)
            }
        }
    }
}

// --------------------------------------------------------------------------
// M&C: 32 independent lanes per warp, one Contains per lane.
// --------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum McLane {
    /// About to read `pred`'s level-`level` next pointer.
    ReadNext { pred: u32, level: usize },
    /// About to read node `node`'s header (key); `pred`/`level` for the
    /// ensuing decision.
    ReadKey { pred: u32, node: u32, level: usize },
    /// Lane finished with the given verdict.
    Done(bool),
}

/// A warp of 32 independent M&C Contains operations in lockstep: every step
/// executes the current instruction of all still-active lanes (the SIMT
/// masked-execution model — lanes that finished idle until the warp
/// retires, which is M&C's divergence cost).
pub struct McContainsWarp<'a> {
    list: &'a McSkipList,
    keys: Vec<u32>,
    lanes: Vec<McLane>,
    /// Per-lane verdicts once the warp retires.
    pub results: Vec<bool>,
}

impl<'a> McContainsWarp<'a> {
    /// A warp looking up one key per lane (up to 32).
    pub fn new(list: &'a McSkipList, keys: Vec<u32>) -> Self {
        assert!(keys.len() <= 32);
        let top = list.params().max_height as usize - 1;
        let head = list.head_node().base;
        let lanes = keys
            .iter()
            .map(|_| McLane::ReadNext {
                pred: head,
                level: top,
            })
            .collect();
        McContainsWarp {
            list,
            keys,
            lanes,
            results: Vec::new(),
        }
    }
}

impl WarpProgram for McContainsWarp<'_> {
    fn step(&mut self) -> Step {
        let pool = self.list.raw_pool();
        let mut addrs = Vec::new();
        let mut active = false;
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let key = self.keys[i];
            match *lane {
                McLane::Done(_) => {}
                McLane::ReadNext { pred, level } => {
                    active = true;
                    let node = NodeRef { base: pred };
                    addrs.push(node.next_addr(level));
                    let succ = node.next(pool, &mut NoProbe, level);
                    let s = succ.ptr();
                    if s == MC_NIL {
                        if level == 0 {
                            *lane = McLane::Done(false);
                        } else {
                            *lane = McLane::ReadNext {
                                pred,
                                level: level - 1,
                            };
                        }
                    } else {
                        *lane = McLane::ReadKey {
                            pred,
                            node: s,
                            level,
                        };
                    }
                }
                McLane::ReadKey { pred, node, level } => {
                    active = true;
                    let n = NodeRef { base: node };
                    addrs.push(n.base); // header word
                    let (k, _) = n.header(pool, &mut NoProbe);
                    if k < key {
                        *lane = McLane::ReadNext { pred: node, level };
                    } else if k == key {
                        *lane = McLane::Done(true);
                    } else if level == 0 {
                        *lane = McLane::Done(false);
                    } else {
                        *lane = McLane::ReadNext {
                            pred,
                            level: level - 1,
                        };
                    }
                }
            }
        }
        if !active {
            self.results = self
                .lanes
                .iter()
                .map(|l| matches!(l, McLane::Done(true)))
                .collect();
            return Step::Done;
        }
        Step::Mem(addrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfsl::GfslParams;
    use mc_skiplist::McParams;

    fn drive(mut w: impl WarpProgram) -> (u64, u64) {
        let mut steps = 0;
        let mut mem = 0;
        loop {
            match w.step() {
                Step::Done => return (steps, mem),
                Step::Mem(a) => {
                    steps += 1;
                    mem += a.len() as u64;
                }
                Step::Compute(_) => steps += 1,
            }
        }
    }

    #[test]
    fn gfsl_warp_answers_match_structure() {
        let list = Gfsl::new(GfslParams::sized_for(5_000)).unwrap();
        let mut h = list.handle();
        for k in (1..=2_000u32).step_by(2) {
            h.insert(k, k).unwrap();
        }
        let keys: Vec<u32> = (1..=100).collect();
        let mut w = GfslContainsWarp::new(&list, keys.clone());
        loop {
            if matches!(w.step(), Step::Done) {
                break;
            }
        }
        assert_eq!(w.results.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(w.results[i], k % 2 == 1, "k={k}");
        }
    }

    #[test]
    fn mc_warp_answers_match_structure() {
        let list = McSkipList::new(McParams::sized_for(10_000)).unwrap();
        let mut h = list.handle();
        for k in (1..=2_000u32).step_by(3) {
            assert!(h.insert(k, k));
        }
        let keys: Vec<u32> = (1..=32).collect();
        let mut w = McContainsWarp::new(&list, keys.clone());
        loop {
            if matches!(w.step(), Step::Done) {
                break;
            }
        }
        assert_eq!(w.results.len(), 32);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(w.results[i], (k - 1) % 3 == 0, "k={k}");
        }
    }

    #[test]
    fn mc_warp_steps_track_slowest_lane() {
        // A warp whose lanes search very different keys must take at least
        // as many steps as its deepest single-lane traversal (divergence).
        let list = McSkipList::new(McParams::sized_for(20_000)).unwrap();
        let mut h = list.handle();
        for k in 1..=5_000u32 {
            assert!(h.insert(k, k));
        }
        let solo_steps = drive(McContainsWarp::new(&list, vec![4_999])).0;
        let warp_keys: Vec<u32> = (1..=32).map(|i| i * 150).collect();
        let warp_steps = drive(McContainsWarp::new(&list, warp_keys)).0;
        assert!(
            warp_steps >= solo_steps / 2,
            "warp {warp_steps} vs solo {solo_steps}"
        );
    }

    #[test]
    fn gfsl_team_reads_whole_chunks() {
        let list = Gfsl::new(GfslParams::sized_for(2_000)).unwrap();
        let mut h = list.handle();
        for k in 1..=500u32 {
            h.insert(k, k).unwrap();
        }
        let (_, words) = {
            let w = GfslContainsWarp::new(&list, vec![250]);
            drive(w)
        };
        assert_eq!(words % 32, 0, "every access covers all 32 lanes");
    }
}
