//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! `proptest!` macro, `any::<T>()`, integer range strategies, tuples,
//! `prop_map`, `Just`, `prop_oneof!`, `collection::{vec, btree_set}`, the
//! `prop_assert*` macros, and `ProptestConfig`. Generation is driven by a
//! seeded SplitMix64 stream (override with `PROPTEST_SEED`), so runs are
//! deterministic; failures are greedily shrunk and reported with the seed
//! and the minimal input. Real proptest's persistence files, regression
//! replay, and lazy shrink trees are out of scope.

use std::fmt;

pub mod strategy {
    use super::fmt;
    use super::test_runner::TestRng;

    /// A generator of values plus a value-based shrinker.
    ///
    /// Unlike real proptest (which shrinks lazily through a value tree),
    /// this shim shrinks eagerly: `shrink` proposes a bounded set of
    /// simpler candidates for a failing value.
    pub trait Strategy {
        type Value: Clone + fmt::Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: Clone + fmt::Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<V: Clone + fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }

        fn shrink(&self, value: &V) -> Vec<V> {
            (**self).shrink(value)
        }
    }

    /// Always produces its payload; never shrinks.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`]. Cannot invert the mapping, so
    /// mapped values do not shrink (containers of them still do).
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Clone + fmt::Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies — backs `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total_weight: u64,
    }

    impl<V: Clone + fmt::Debug> Union<V> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            Self::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
        }

        pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union { arms, total_weight }
        }
    }

    impl<V: Clone + fmt::Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut t = rng.below(self.total_weight);
            for (w, s) in &self.arms {
                if t < *w as u64 {
                    return s.generate(rng);
                }
                t -= *w as u64;
            }
            unreachable!("weight sampling out of range")
        }

        fn shrink(&self, value: &V) -> Vec<V> {
            // The generating arm is unknown; pool every arm's candidates.
            let mut out = Vec::new();
            for (_, s) in &self.arms {
                out.extend(s.shrink(value));
                if out.len() >= 32 {
                    break;
                }
            }
            out.truncate(32);
            out
        }
    }

    /// Integer types that range strategies can sample uniformly.
    pub trait UniformInt: Copy + PartialOrd + fmt::Debug + 'static {
        fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
        /// Candidates between `lo` and a failing `v`, simplest first.
        fn shrink_toward(lo: Self, v: Self) -> Vec<Self>;
        fn pred(self) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty),+) => {$(
            impl UniformInt for $t {
                fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo <= hi, "empty integer range strategy");
                    let (lo64, hi64) = (lo as u64, hi as u64);
                    if lo64 == 0 && hi64 == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo64 + rng.below(hi64 - lo64 + 1)) as $t
                }

                fn shrink_toward(lo: Self, v: Self) -> Vec<Self> {
                    let mut out = Vec::new();
                    if v > lo {
                        out.push(lo);
                        let mid = lo + (v - lo) / 2;
                        if mid > lo && mid < v {
                            out.push(mid);
                        }
                        let pred = v - 1;
                        if pred > lo && pred != mid {
                            out.push(pred);
                        }
                    }
                    out
                }

                fn pred(self) -> Self {
                    self - 1
                }
            }
        )+};
    }

    uniform_int!(u8, u16, u32, u64, usize);

    impl<T: UniformInt> Strategy for std::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(rng, self.start, self.end.pred())
        }

        fn shrink(&self, value: &T) -> Vec<T> {
            T::shrink_toward(self.start, *value)
        }
    }

    impl<T: UniformInt> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }

        fn shrink(&self, value: &T) -> Vec<T> {
            T::shrink_toward(*self.start(), *value)
        }
    }

    /// `any::<bool>()`.
    #[derive(Clone, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }

        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.generate(rng), )+)
                }

                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // Shrink one component at a time, holding the rest.
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut c = value.clone();
                            c.$idx = cand;
                            out.push(c);
                        }
                    )+
                    out
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod arbitrary {
    use super::strategy::{AnyBool, Strategy};

    /// Types with a canonical full-domain strategy, used via `any::<T>()`.
    pub trait Arbitrary: Clone + super::fmt::Debug + Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize);
}

pub mod collection {
    use super::strategy::{Strategy, UniformInt};
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Length bounds for collection strategies (max is inclusive).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = usize::sample_inclusive(rng, self.size.min, self.size.max_incl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let len = value.len();
            // Structural shrinks first: halves, then single removals.
            if len > self.size.min {
                if len / 2 >= self.size.min && len / 2 < len {
                    out.push(value[..len / 2].to_vec());
                    out.push(value[len - len / 2..].to_vec());
                }
                for i in 0..len.min(24) {
                    let mut c = value.clone();
                    c.remove(i);
                    out.push(c);
                }
            }
            // Then element-wise shrinks on a bounded prefix.
            for i in 0..len.min(16) {
                for cand in self.element.shrink(&value[i]).into_iter().take(2) {
                    let mut c = value.clone();
                    c[i] = cand;
                    out.push(c);
                }
            }
            out
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = usize::sample_inclusive(rng, self.size.min, self.size.max_incl);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set; bound the retries so a narrow
            // element domain can't loop forever.
            let mut budget = target * 10 + 16;
            while set.len() < target && budget > 0 {
                set.insert(self.element.generate(rng));
                budget -= 1;
            }
            assert!(
                set.len() >= self.size.min,
                "btree_set strategy: element domain too narrow for min size {}",
                self.size.min
            );
            set
        }

        fn shrink(&self, value: &BTreeSet<S::Value>) -> Vec<BTreeSet<S::Value>> {
            let mut out = Vec::new();
            if value.len() > self.size.min {
                for drop in value.iter().take(24) {
                    let mut c = value.clone();
                    c.remove(drop);
                    out.push(c);
                }
            }
            out
        }
    }
}

pub mod test_runner {
    use super::strategy::Strategy;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Deterministic SplitMix64 stream driving all generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform-ish in `0..n` (modulo bias is fine for test generation).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Runner knobs; extra fields exist so `..ProptestConfig::default()`
    /// struct-update syntax works like the real crate.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 4096,
                max_global_rejects: 65536,
            }
        }
    }

    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    enum Outcome {
        Pass,
        Reject,
        Fail(String),
    }

    fn run_once<V, F>(f: &F, value: V) -> Outcome
    where
        F: Fn(V) -> TestCaseResult,
    {
        match catch_unwind(AssertUnwindSafe(|| f(value))) {
            Ok(Ok(())) => Outcome::Pass,
            Ok(Err(TestCaseError::Reject(_))) => Outcome::Reject,
            Ok(Err(TestCaseError::Fail(msg))) => Outcome::Fail(msg),
            Err(payload) => Outcome::Fail(panic_message(&payload)),
        }
    }

    fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panicked with non-string payload".to_string()
        }
    }

    /// Per-test seed: `PROPTEST_SEED` if set, else a fixed base hashed with
    /// the test name so each test explores its own deterministic stream.
    fn seed_for(test_name: &str) -> u64 {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x6F57_11CE_5EED_0001);
        let mut h = base ^ 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Entry point used by the `proptest!` macro expansion.
    pub fn run<S, F>(config: &ProptestConfig, test_name: &str, strat: &S, f: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let seed = seed_for(test_name);
        let mut rng = TestRng::new(seed);
        let mut rejects: u32 = 0;
        let mut case: u32 = 0;
        while case < config.cases {
            let value = strat.generate(&mut rng);
            match run_once(&f, value.clone()) {
                Outcome::Pass => case += 1,
                Outcome::Reject => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "proptest shim: {} exceeded {} prop_assume! rejections",
                        test_name,
                        config.max_global_rejects
                    );
                }
                Outcome::Fail(msg) => {
                    let (min_value, min_msg) =
                        shrink_failure(strat, &f, value, msg, config.max_shrink_iters);
                    panic!(
                        "proptest shim: test `{test_name}` failed at case {case} \
                         (seed {seed}; rerun with PROPTEST_SEED={seed})\n\
                         minimal failing input: {min_value:#?}\n{min_msg}"
                    );
                }
            }
        }
    }

    fn shrink_failure<S, F>(
        strat: &S,
        f: &F,
        mut value: S::Value,
        mut msg: String,
        max_iters: u32,
    ) -> (S::Value, String)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut iters: u32 = 0;
        'shrinking: while iters < max_iters {
            for cand in strat.shrink(&value) {
                iters += 1;
                if let Outcome::Fail(m) = run_once(f, cand.clone()) {
                    value = cand;
                    msg = m;
                    continue 'shrinking; // restart from the smaller value
                }
                if iters >= max_iters {
                    break 'shrinking;
                }
            }
            break; // no candidate still fails: local minimum
        }
        (value, msg)
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Mirrors real proptest's surface syntax:
/// optional `#![proptest_config(expr)]`, then `#[test]`-annotated functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let strat = ($($strat,)+);
                $crate::test_runner::run(&config, stringify!($name), &strat, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure is shrunk, not fatal at once.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                            l, r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
                            l,
                            r,
                            format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `left != right`\n  both: `{:?}`", l),
                    ));
                }
            }
        }
    };
}

/// Discard the current case without failing (counts toward reject cap).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose among strategies producing the same value type, optionally
/// weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{run, ProptestConfig, TestRng};

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (5usize..=5).generate(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn full_u64_range_generates() {
        let mut rng = TestRng::new(7);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..64 {
            distinct.insert(any::<u64>().generate(&mut rng));
        }
        assert!(distinct.len() > 60);
    }

    #[test]
    fn same_seed_same_stream() {
        let gen = |seed| {
            let mut rng = TestRng::new(seed);
            (0..32)
                .map(|_| crate::collection::vec(0u32..100, 1..10).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(99), gen(99));
        assert_ne!(gen(99), gen(100));
    }

    #[test]
    fn vec_shrink_stays_in_size_range() {
        let strat = crate::collection::vec(0u32..100, 3..10);
        let mut rng = TestRng::new(1);
        let v = strat.generate(&mut rng);
        for cand in strat.shrink(&v) {
            assert!(cand.len() >= 3, "shrank below min: {cand:?}");
        }
    }

    #[test]
    #[should_panic(expected = "minimal failing input")]
    fn failing_property_shrinks_and_reports() {
        let config = ProptestConfig {
            cases: 64,
            ..ProptestConfig::default()
        };
        run(&config, "demo", &crate::collection::vec(0u32..1000, 0..40), |v| {
            prop_assert!(v.iter().sum::<u32>() < 500);
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro surface itself: tuples, maps, oneof, assume.
        #[test]
        fn macro_surface_works(
            pair in (1u32..50, any::<bool>()).prop_map(|(k, b)| (k * 2, b)),
            pick in prop_oneof![Just(0u8), 1u8..4],
            n in 10usize..20,
        ) {
            prop_assume!(n != 13);
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pick < 4);
            prop_assert_eq!(n / n, 1, "n was {}", n);
            prop_assert_ne!(n, 13);
        }
    }
}
