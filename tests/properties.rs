//! Workspace-level property tests: arbitrary operation sequences against a
//! reference model, on both structures and both chunk formats.

use proptest::prelude::*;
use std::collections::BTreeMap;

use gfsl_repro::gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_repro::mc_skiplist::{McParams, McSkipList};

#[derive(Debug, Clone)]
enum Action {
    Insert(u32, u32),
    Remove(u32),
    Get(u32),
    MinEntry,
}

fn action_strategy(key_span: u32) -> impl Strategy<Value = Action> {
    prop_oneof![
        (1..=key_span, any::<u32>()).prop_map(|(k, v)| Action::Insert(k, v)),
        (1..=key_span).prop_map(Action::Remove),
        (1..=key_span).prop_map(Action::Get),
        Just(Action::MinEntry),
    ]
}

fn check_gfsl(team: TeamSize, actions: &[Action]) {
    let list = Gfsl::new(GfslParams {
        team_size: team,
        pool_chunks: 1 << 14,
        ..Default::default()
    })
    .unwrap();
    let mut h = list.handle();
    let mut reference: BTreeMap<u32, u32> = BTreeMap::new();
    for a in actions {
        match *a {
            Action::Insert(k, v) => {
                let inserted = h.insert(k, v).unwrap();
                assert_eq!(inserted, !reference.contains_key(&k), "insert {k}");
                reference.entry(k).or_insert(v);
            }
            Action::Remove(k) => {
                assert_eq!(h.remove(k), reference.remove(&k).is_some(), "remove {k}");
            }
            Action::Get(k) => {
                assert_eq!(h.get(k), reference.get(&k).copied(), "get {k}");
            }
            Action::MinEntry => {
                let want = reference.iter().next().map(|(&k, &v)| (k, v));
                assert_eq!(h.min_entry(), want, "min_entry");
            }
        }
    }
    let keys: Vec<u32> = reference.keys().copied().collect();
    assert_eq!(list.keys(), keys);
    let pairs: Vec<(u32, u32)> = reference.into_iter().collect();
    assert_eq!(list.pairs(), pairs);
    list.assert_valid();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, ..ProptestConfig::default()
    })]

    /// GFSL-16 against a BTreeMap on dense key spans (forces splits,
    /// merges, and multi-level traffic in a 14-entry data array).
    #[test]
    fn gfsl16_matches_reference(actions in proptest::collection::vec(action_strategy(60), 1..400)) {
        check_gfsl(TeamSize::Sixteen, &actions);
    }

    /// GFSL-32 against a BTreeMap.
    #[test]
    fn gfsl32_matches_reference(actions in proptest::collection::vec(action_strategy(120), 1..400)) {
        check_gfsl(TeamSize::ThirtyTwo, &actions);
    }

    /// Sparse key space: exercises the backtrack path (searched keys often
    /// smaller than everything in a chunk).
    #[test]
    fn gfsl_sparse_keys(actions in proptest::collection::vec(action_strategy(u32::MAX - 1), 1..200)) {
        check_gfsl(TeamSize::Sixteen, &actions);
    }

    /// M&C against a BTreeMap.
    #[test]
    fn mc_matches_reference(actions in proptest::collection::vec(action_strategy(80), 1..400)) {
        let list = McSkipList::new(McParams::sized_for(4_000)).unwrap();
        let mut h = list.handle();
        let mut reference: BTreeMap<u32, u32> = BTreeMap::new();
        for a in &actions {
            match *a {
                Action::Insert(k, v) => {
                    let inserted = h.insert(k, v);
                    prop_assert_eq!(inserted, !reference.contains_key(&k));
                    reference.entry(k).or_insert(v);
                }
                Action::Remove(k) => {
                    prop_assert_eq!(h.remove(k), reference.remove(&k).is_some());
                }
                Action::Get(k) => {
                    prop_assert_eq!(h.get(k), reference.get(&k).copied());
                }
                Action::MinEntry => {} // not part of the M&C API
            }
        }
        let keys: Vec<u32> = reference.keys().copied().collect();
        prop_assert_eq!(list.keys(), keys);
    }

    /// Level subsets survive arbitrary histories: every key indexed at
    /// level i+1 exists at level i (checked inside assert_valid, plus
    /// explicitly here for the top level).
    #[test]
    fn upper_levels_are_subsets(keys in proptest::collection::btree_set(1u32..10_000, 1..300)) {
        let list = Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        }).unwrap();
        let mut h = list.handle();
        for &k in &keys {
            h.insert(k, k).unwrap();
        }
        let bottom = list.level_keys(0);
        for level in 1..list.params().max_levels() {
            let upper = list.level_keys(level);
            for k in &upper {
                prop_assert!(bottom.binary_search(k).is_ok(), "level {level} key {k} missing below");
            }
        }
        list.assert_valid();
    }
}
