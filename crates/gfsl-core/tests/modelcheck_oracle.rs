//! Differential oracles for the model checker (ISSUE 9 satellite):
//! re-introduce each of PR 1's two seed races via the `bug_knobs`
//! test-only reverts and assert the schedule explorer **finds** the bug,
//! minimizes it, and emits a trace-hash-replayable counterexample — then
//! that the *fixed* code passes the exact same schedule.
//!
//! This is the calibration that keeps "0 counterexamples found" in
//! `modelcheck.rs` meaningful: a checker that cannot re-find known bugs
//! proves nothing by finding none.

use gfsl::bug_knobs;
use gfsl::mc::strategy::{DfsBounded, RandomWalk, Scheduler};
use gfsl::mc::{configs, explore, replay, McReport};

/// Explore with bounded DFS, escalating to a seeded random walk if the
/// preemption-bounded space misses the bug (it should not — both seed
/// races need a single preemption — but the oracle must not flake on a
/// default-policy change).
fn find_bug(config_name: &str) -> McReport {
    let cfg = configs::by_name(config_name).expect("config registered");
    let strategies: Vec<Box<dyn Scheduler>> = vec![
        Box::new(DfsBounded::new(2, true, 500_000)),
        Box::new(RandomWalk::new(0xB00B_5EED, 2_000)),
    ];
    let mut last = None;
    for strategy in strategies {
        let report = explore(&cfg, strategy);
        println!("oracle {}", report.summary());
        if report.counterexample.is_some() {
            return report;
        }
        last = Some(report);
    }
    last.expect("at least one strategy ran")
}

fn assert_found_minimized_and_differential(config_name: &str, revert: &str) {
    let report = find_bug(config_name);
    let cx = report
        .counterexample
        .unwrap_or_else(|| panic!("{config_name}: reverting {revert} must produce a counterexample"));
    assert!(
        report.minimize_episodes > 0,
        "counterexample must have gone through ddmin"
    );

    // The one-line spec replays: same decisions -> same trace hash, still
    // failing. This is exactly what `stress --schedule <spec>` does.
    let cfg = configs::by_name(config_name).expect("config registered");
    let out = replay(&cfg, cx.decisions.clone());
    assert_eq!(
        out.trace, cx.trace,
        "minimized schedule must replay to its recorded trace hash"
    );
    assert!(
        out.failure.is_some(),
        "minimized schedule must still fail on replay"
    );
    println!(
        "oracle {config_name}: minimized to {} decision byte(s), spec {}",
        cx.decisions.len(),
        cx.spec()
    );
}

#[test]
fn split_raised_key_revert_is_refound() {
    let guard = bug_knobs::revert_split_raised_key_guard();
    assert_found_minimized_and_differential("split-raise-2t", "the split raised-key fix");
    drop(guard);

    // Differential direction: with the fix restored, the *same minimized
    // schedule* must pass. Re-derive it under the knob, then replay
    // without it.
    let guard = bug_knobs::revert_split_raised_key_guard();
    let cx = find_bug("split-raise-2t").counterexample.expect("refound");
    drop(guard);
    let cfg = configs::by_name("split-raise-2t").unwrap();
    let out = replay(&cfg, cx.decisions);
    assert!(
        out.failure.is_none(),
        "fixed split must pass the bug's schedule, got: {:?}",
        out.failure
    );
}

#[test]
fn remove_shift_revert_is_refound() {
    let guard = bug_knobs::revert_remove_shift_guard();
    assert_found_minimized_and_differential("remove-shift-2t", "the remove left-to-right shift fix");
    drop(guard);

    let guard = bug_knobs::revert_remove_shift_guard();
    let cx = find_bug("remove-shift-2t").counterexample.expect("refound");
    drop(guard);
    let cfg = configs::by_name("remove-shift-2t").unwrap();
    let out = replay(&cfg, cx.decisions);
    assert!(
        out.failure.is_none(),
        "fixed remove must pass the bug's schedule, got: {:?}",
        out.failure
    );
}

#[test]
fn clean_build_passes_the_oracle_configs() {
    // Sanity inverse: with no knob set, the same exploration budget finds
    // nothing on the oracle configs (they are ordinary workloads then).
    for name in ["split-raise-2t", "remove-shift-2t"] {
        let report = find_bug(name);
        assert!(
            report.counterexample.is_none(),
            "{name} must be clean without a revert knob: {}",
            report.summary()
        );
    }
}
