//! Durability tier for GFSL: acknowledged writes survive process death.
//!
//! Three pieces, layered under the engines this workspace already has:
//!
//! * **WAL** ([`wal`]) — an append-only, segment-rotated, CRC-32C-guarded
//!   log. Group commit: the serving loop's epoch batcher drains each
//!   epoch's effective writes into one append + one sync (per the
//!   [`DurabilityContract`]), and only then do the epoch's
//!   acknowledgements route. Torn final records are detected and
//!   truncated on replay; damage anywhere else refuses to serve with a
//!   typed [`RecoverError`] — never silent loss.
//! * **Checkpoints** ([`ckpt`]) — sorted chunk runs streamed through a
//!   minimal disk manager (page-aligned 4 KiB writes, per-page checksums,
//!   temp-file + atomic-rename publication behind a manifest commit
//!   point). Publishing a checkpoint prunes the WAL segments it covers.
//! * **Recovery** ([`DurableGfsl::open`], [`DurableCluster::open`]) —
//!   newest valid checkpoint (with fallback on damage), LSN-gated
//!   idempotent WAL-tail replay, and a full validation walk before the
//!   engine serves.
//!
//! [`DurableGfsl`] wraps one engine; [`DurableCluster`] wraps the sharded
//! cluster with static per-key-lane WALs and shard-layout-carrying
//! manifests. Both expose the same crash points
//! (`WalAppend`/`WalFsync`/`CkptWrite`/`CkptRename`/`WalPrune`) to the
//! seeded chaos controller, which is how the kill-restart soak proves the
//! "no acknowledged write lost" contract at every window.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ckpt;
pub mod cluster;
pub mod crc;
pub mod engine;
pub mod error;
pub mod hook;
pub mod wal;

pub use ckpt::{load_latest, write_checkpoint, CheckpointScan, LoadedCheckpoint, Manifest};
pub use cluster::{DurableCluster, DurableClusterConfig};
pub use crc::crc32c;
pub use engine::{destroy, DurableConfig, DurableGfsl, RecoveryReport, WalSink};
pub use error::{OpError, RecoverError};
pub use hook::Failpoints;
pub use wal::{scan_wal, Wal, WalOp, WalRecord, WalScanned, WalStats};

pub use gfsl_serve::DurabilityContract;
