//! Test-only knobs that re-introduce fixed races — the model checker's
//! differential oracle.
//!
//! A schedule-exploring checker that only ever reports "no violation" is
//! indistinguishable from one that explores nothing. These knobs let the
//! model-check suite *prove its own teeth*: flip a knob to revert one of
//! the two real races PR 1's chaos soak found and fixed, run the
//! bounded-exhaustive search on a small configuration, and assert the
//! checker emits a counterexample (then flip it back and assert the pass).
//!
//! The knobs are process-global relaxed atomics read once per affected
//! operation (one relaxed load per split / per physical remove — noise even
//! on the hot path, and the hot paths are benchmarked with the knobs cold).
//! They are `#[doc(hidden)]`-style test plumbing kept always-compiled so
//! the release-build model-check binary can use them too; nothing outside
//! the model-check tests should ever set them, and tests that do must
//! serialize on [`knob_test_lock`] because the knobs are process-global.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Revert the PR-1 *split raised-key placement* fix: always raise
/// `max(k, min-of-new-chunk)` at level 0, as the paper's pseudocode does,
/// even when that key's bottom chunk has already been unlocked. A
/// concurrent remove of the raised key can then run between the unlock and
/// the level-1 install, leaving a dangling index entry
/// (upper-subset-of-lower violation).
static REVERT_SPLIT_RAISED_KEY: AtomicBool = AtomicBool::new(false);

/// Revert the PR-1 *remove-shift torn-read* fix: shift the surviving
/// entries right-to-left instead of left-to-right, so each key in the
/// shifted range transiently disappears from the chunk between the write
/// that clobbers its slot and the write that restores it one slot left. A
/// concurrent lock-free `get` scheduled into that window misses a present
/// key (linearizability violation).
///
/// Reverting the shift alone is no longer observable: the PR-8 certified
/// read path brackets every `NotFound` with equal *unlocked* lock words,
/// and the shift only runs while the chunk is locked, so a certified
/// reader retries straight past the torn window. The knob therefore also
/// reverts the reader to the seed-era *uncertified* single team read —
/// the environment in which this race was live — restoring the full PR-1
/// failure mode for the oracle. (Which doubles as a model-checked
/// regression argument for certification itself: shift-revert minus the
/// reader-revert explores clean.)
static REVERT_REMOVE_SHIFT: AtomicBool = AtomicBool::new(false);

/// Serializes tests that touch the process-global knobs.
static KNOB_TEST_LOCK: Mutex<()> = Mutex::new(());

/// True if the split raised-key fix is reverted.
#[inline]
pub fn revert_split_raised_key() -> bool {
    REVERT_SPLIT_RAISED_KEY.load(Ordering::Relaxed)
}

/// True if the remove-shift fix is reverted.
#[inline]
pub fn revert_remove_shift() -> bool {
    REVERT_REMOVE_SHIFT.load(Ordering::Relaxed)
}

/// Acquire the knob test lock, then set/clear the split knob. Restores on
/// drop (including panic, so one knob test's assertion failure cannot
/// poison the next test's baseline run).
pub struct KnobGuard {
    knob: &'static AtomicBool,
    _serial: MutexGuard<'static, ()>,
}

impl KnobGuard {
    fn set(knob: &'static AtomicBool) -> KnobGuard {
        let serial = KNOB_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        knob.store(true, Ordering::Relaxed);
        KnobGuard {
            knob,
            _serial: serial,
        }
    }
}

impl Drop for KnobGuard {
    fn drop(&mut self) {
        self.knob.store(false, Ordering::Relaxed);
    }
}

/// Revert the split raised-key fix for the guard's lifetime.
pub fn revert_split_raised_key_guard() -> KnobGuard {
    KnobGuard::set(&REVERT_SPLIT_RAISED_KEY)
}

/// Revert the remove-shift fix for the guard's lifetime.
pub fn revert_remove_shift_guard() -> KnobGuard {
    KnobGuard::set(&REVERT_REMOVE_SHIFT)
}

/// Serialize a knob-adjacent test without setting any knob (for baseline
/// runs that must not race a knob-holding test in the same process).
pub fn knob_test_lock() -> MutexGuard<'static, ()> {
    KNOB_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}
