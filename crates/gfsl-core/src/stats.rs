//! Per-handle operation statistics.
//!
//! The harness uses these to reproduce the paper's contention effects (the
//! mixed-workload throughput "dip" in small key ranges, §5.3) and to verify
//! the "< 0.01% of Contains restart" claim (§4.2.1).

/// Counters accumulated by one [`crate::GfslHandle`]. Merge across handles
/// for run totals.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// Completed `contains`/`get` operations.
    pub contains_ops: u64,
    /// Completed `insert` calls (including duplicates rejected).
    pub insert_ops: u64,
    /// Completed `remove` calls (including missing keys).
    pub remove_ops: u64,
    /// Full restarts of the lock-free search (the paper's rare edge case).
    pub search_restarts: u64,
    /// Successful lock acquisitions.
    pub locks_taken: u64,
    /// Failed lock CAS attempts plus re-read spins while a chunk was held
    /// by another team — the contention signal.
    pub lock_retries: u64,
    /// Chunk splits performed.
    pub splits: u64,
    /// Chunk merges performed (zombies created).
    pub merges: u64,
    /// Lazy next-pointer redirections that unlinked a zombie.
    pub zombie_unlinks: u64,
    /// Down-pointers repaired after splits/merges.
    pub downptr_fixes: u64,
    /// Lockstep traversal steps (chunk reads) executed.
    pub chunk_reads: u64,
}

impl OpStats {
    /// Fresh, zeroed counters.
    pub fn new() -> OpStats {
        OpStats::default()
    }

    /// Total completed operations.
    pub fn total_ops(&self) -> u64 {
        self.contains_ops + self.insert_ops + self.remove_ops
    }

    /// Merge another handle's counters into this one.
    pub fn merge(&mut self, o: &OpStats) {
        self.contains_ops += o.contains_ops;
        self.insert_ops += o.insert_ops;
        self.remove_ops += o.remove_ops;
        self.search_restarts += o.search_restarts;
        self.locks_taken += o.locks_taken;
        self.lock_retries += o.lock_retries;
        self.splits += o.splits;
        self.merges += o.merges;
        self.zombie_unlinks += o.zombie_unlinks;
        self.downptr_fixes += o.downptr_fixes;
        self.chunk_reads += o.chunk_reads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = OpStats {
            contains_ops: 1,
            insert_ops: 2,
            remove_ops: 3,
            search_restarts: 1,
            locks_taken: 5,
            lock_retries: 6,
            splits: 7,
            merges: 8,
            zombie_unlinks: 9,
            downptr_fixes: 10,
            chunk_reads: 11,
        };
        assert_eq!(a.total_ops(), 6);
        let b = a;
        a.merge(&b);
        assert_eq!(a.total_ops(), 12);
        assert_eq!(a.chunk_reads, 22);
        assert_eq!(a.downptr_fixes, 20);
    }
}
