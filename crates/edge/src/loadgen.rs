//! Socket-level load generator: closed-loop and open-loop client
//! populations driving a running edge server over real TCP.
//!
//! One OS thread per connection. In **closed-loop** mode a connection
//! multiplexes `clients_per_conn` logical clients, each cycling
//! think → issue → await-reply; offered load self-limits to the service
//! rate (the classic interactive population). In **open-loop** mode the
//! connection issues on a Poisson schedule regardless of completions (up
//! to an outstanding cap that models the client's socket buffer, counted
//! when it binds) — the arrival process does *not* slow down when the
//! server does, which is what exposes overload behavior honestly.
//!
//! Each connection is a **tenant**: its keys live in the disjoint window
//! `[tenant·span+1, (tenant+1)·span]`, drawn zipf-skewed within the
//! window. Disjoint namespaces make the server's read-your-writes
//! accounting exact and keep tenants from invalidating each other's
//! writes.
//!
//! Shed frames are counted and — in closed loop — retried after the
//! server's `retry_after_ms` hint (the protocol's backpressure loop,
//! closed end to end). Latency is recorded per completed request in log2
//! buckets; goodput counts only successful engine replies.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use gfsl_workload::{Lehmer64, ServeMix, ServeOp, Zipf};

use crate::client::EdgeClient;
use crate::proto::{Req, Resp};

/// Load-generator run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Connections (= tenants = generator threads).
    pub conns: usize,
    /// Logical closed-loop clients multiplexed per connection.
    pub clients_per_conn: usize,
    /// Mean think time per closed-loop client, microseconds.
    pub think_us: u64,
    /// Open-loop arrival rate per connection, requests/second. Zero runs
    /// closed-loop; non-zero runs open-loop (ignoring `clients_per_conn`).
    pub open_rate_per_conn: f64,
    /// Cap on outstanding open-loop requests per connection; arrivals past
    /// it are counted as local drops (client buffer overflow), not sent.
    pub max_outstanding: usize,
    /// Run duration, milliseconds.
    pub duration_ms: u64,
    /// Operation mix.
    pub mix: ServeMix,
    /// Keys per tenant window.
    pub key_span: u32,
    /// Zipf skew within a tenant window (`0` = uniform).
    pub zipf_theta: f64,
    /// RNG seed (per-connection streams derive from it).
    pub seed: u64,
    /// Scan-tenant mode: every `Range` op the mix draws goes on the wire
    /// as a `SnapRange` — a version-pinned count answered at the edge
    /// outside the epoch batch. Pair with a range-bearing mix
    /// (e.g. `ServeMix::RANGE10`).
    pub snap_scans: bool,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            conns: 4,
            clients_per_conn: 8,
            think_us: 100,
            open_rate_per_conn: 0.0,
            max_outstanding: 1024,
            duration_ms: 1_000,
            mix: ServeMix::C80,
            key_span: 10_000,
            zipf_theta: 0.6,
            seed: 42,
            snap_scans: false,
        }
    }
}

/// Log2-bucket latency histogram (same estimator as the serve layer's,
/// plus cross-thread merge).
#[derive(Debug, Clone)]
pub struct Histo {
    buckets: [u64; 64],
    count: u64,
    max: u64,
}

impl Default for Histo {
    fn default() -> Histo {
        Histo { buckets: [0; 64], count: 0, max: 0 }
    }
}

impl Histo {
    /// Record one sample, ns.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let idx = 63 - (ns | 1).leading_zeros() as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.max = self.max.max(ns);
    }

    /// Fold another histogram in.
    pub fn merge(&mut self, other: &Histo) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Quantile estimate: bucket upper bound, clamped to the observed max.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let hi = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return hi.min(self.max);
            }
        }
        self.max
    }
}

/// What one load-generator run observed, aggregated over all connections.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Successful engine replies (the goodput numerator).
    pub ops_ok: u64,
    /// `Failed` replies from the engine.
    pub failures: u64,
    /// `Snapped` replies received (pinned snapshot counts; also counted
    /// in `ops_ok`).
    pub snaps: u64,
    /// `Shed` frames received.
    pub sheds: u64,
    /// Shed requests retried (closed loop honors `retry_after_ms`).
    pub retries: u64,
    /// Open-loop arrivals dropped at the client's outstanding cap.
    pub local_drops: u64,
    /// Connections that died on a socket/protocol error.
    pub conn_errors: u64,
    /// Wall-clock of the measured window, milliseconds.
    pub wall_ms: u64,
    /// Successful replies per second over the measured window.
    pub goodput_ops_s: f64,
    /// Completion latency histogram (successful replies only).
    pub histo: Histo,
}

impl LoadReport {
    fn fold(&mut self, other: LoadReport) {
        self.ops_ok += other.ops_ok;
        self.failures += other.failures;
        self.snaps += other.snaps;
        self.sheds += other.sheds;
        self.retries += other.retries;
        self.local_drops += other.local_drops;
        self.conn_errors += other.conn_errors;
        self.histo.merge(&other.histo);
    }
}

/// Tenant `t`'s key for a zipf draw `z` in `1..=span`.
fn tenant_key(tenant: usize, span: u32, z: u32) -> u32 {
    (tenant as u32) * span + z
}

/// The top key of tenant `t`'s window — what range draws clamp to. Passing
/// the span alone would invert the window for every tenant but the first
/// (`lo` is a global key, so the clamp must be too).
fn tenant_top(tenant: usize, span: u32) -> u32 {
    (tenant as u32 + 1) * span
}

/// Run the configured population against `addr`; blocks for the duration
/// and returns the aggregate report.
pub fn run(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let mut handles = Vec::with_capacity(cfg.conns);
    for c in 0..cfg.conns {
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            if cfg.open_rate_per_conn > 0.0 {
                open_loop_conn(addr, &cfg, c)
            } else {
                closed_loop_conn(addr, &cfg, c)
            }
        }));
    }
    let mut report = LoadReport::default();
    for h in handles {
        match h.join() {
            Ok(r) => report.fold(r),
            Err(_) => report.conn_errors += 1,
        }
    }
    report.wall_ms = started.elapsed().as_millis() as u64;
    let secs = (report.wall_ms as f64 / 1e3).max(1e-9);
    report.goodput_ops_s = report.ops_ok as f64 / secs;
    report
}

/// One in-flight request, keyed by its wire id.
struct Outstanding {
    op: ServeOp,
    sent: Instant,
    /// Closed-loop client slot this belongs to (`usize::MAX` in open loop).
    slot: usize,
}

fn account(r: &mut LoadReport, out: &Outstanding, resp: &Resp, now: Instant) -> Option<u32> {
    match resp {
        Resp::Shed { retry_after_ms, .. } => {
            r.sheds += 1;
            Some(*retry_after_ms)
        }
        Resp::Failed { .. } => {
            r.failures += 1;
            None
        }
        resp => {
            if matches!(resp, Resp::Snapped { .. }) {
                r.snaps += 1;
            }
            r.ops_ok += 1;
            r.histo.record(now.duration_since(out.sent).as_nanos() as u64);
            None
        }
    }
}

fn closed_loop_conn(addr: SocketAddr, cfg: &LoadConfig, conn_idx: usize) -> LoadReport {
    let mut report = LoadReport::default();
    let mut client = match EdgeClient::connect(addr, Some(Duration::from_millis(5))) {
        Ok(c) => c,
        Err(_) => {
            report.conn_errors += 1;
            return report;
        }
    };
    let mut rng = Lehmer64::new(cfg.seed ^ (conn_idx as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let zipf = Zipf::new(cfg.key_span.max(1), cfg.zipf_theta);
    let think = Duration::from_micros(cfg.think_us);
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_millis(cfg.duration_ms);

    // Each slot is a logical client: either thinking until an instant, or
    // waiting on a request id.
    enum Slot {
        Thinking { until: Instant, retry_of: Option<ServeOp> },
        Waiting,
    }
    let mut slots: Vec<Slot> = (0..cfg.clients_per_conn.max(1))
        .map(|i| Slot::Thinking {
            until: t0 + Duration::from_micros((cfg.think_us / 4) * i as u64),
            retry_of: None,
        })
        .collect();
    let mut inflight: HashMap<u64, Outstanding> = HashMap::new();

    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        // Issue for every slot whose think time expired.
        for (s, slot) in slots.iter_mut().enumerate() {
            if let Slot::Thinking { until, retry_of } = slot {
                if now >= *until {
                    let op = retry_of.take().unwrap_or_else(|| {
                        let z = zipf.draw(&mut rng);
                        let k = tenant_key(conn_idx, cfg.key_span, z);
                        cfg.mix.draw_keyed(&mut rng, k, tenant_top(conn_idx, cfg.key_span))
                    });
                    let id = client.send(op_req(op, cfg.snap_scans));
                    inflight.insert(id, Outstanding { op, sent: now, slot: s });
                    *slot = Slot::Waiting;
                }
            }
        }
        // Collect completions (poll blocks ≤ the 5 ms read timeout).
        if client.poll().is_err() {
            report.conn_errors += 1;
            break;
        }
        let now = Instant::now();
        while let Some((id, resp)) = client.take_ready() {
            let Some(out) = inflight.remove(&id) else { continue };
            let retry_ms = account(&mut report, &out, &resp, now);
            let (until, retry_of) = match retry_ms {
                Some(ms) => {
                    report.retries += 1;
                    (now + Duration::from_millis(ms as u64), Some(out.op))
                }
                None => (now + think, None),
            };
            slots[out.slot] = Slot::Thinking { until, retry_of };
        }
    }
    report
}

fn open_loop_conn(addr: SocketAddr, cfg: &LoadConfig, conn_idx: usize) -> LoadReport {
    let mut report = LoadReport::default();
    let mut client = match EdgeClient::connect(addr, Some(Duration::from_millis(2))) {
        Ok(c) => c,
        Err(_) => {
            report.conn_errors += 1;
            return report;
        }
    };
    let mut rng = Lehmer64::new(cfg.seed ^ (conn_idx as u64).wrapping_mul(0xD1B54A32D192ED03));
    let zipf = Zipf::new(cfg.key_span.max(1), cfg.zipf_theta);
    let gap_ns = (1e9 / cfg.open_rate_per_conn).max(1.0);
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_millis(cfg.duration_ms);
    // Deterministic-rate schedule with exponential jitter folded in by the
    // zipf/mix rng; next_at advances on the schedule, never on completions.
    let mut next_at = t0;
    let mut inflight: HashMap<u64, Outstanding> = HashMap::new();

    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        while next_at <= now {
            next_at += Duration::from_nanos(gap_ns as u64);
            if inflight.len() >= cfg.max_outstanding {
                report.local_drops += 1;
                continue;
            }
            let z = zipf.draw(&mut rng);
            let k = tenant_key(conn_idx, cfg.key_span, z);
            let op = cfg.mix.draw_keyed(&mut rng, k, tenant_top(conn_idx, cfg.key_span));
            let id = client.send(op_req(op, cfg.snap_scans));
            inflight.insert(id, Outstanding { op, sent: now, slot: usize::MAX });
        }
        if client.poll().is_err() {
            report.conn_errors += 1;
            break;
        }
        let now = Instant::now();
        while let Some((id, resp)) = client.take_ready() {
            let Some(out) = inflight.remove(&id) else { continue };
            // Open loop never retries: a shed is a shed, the schedule
            // marches on.
            account(&mut report, &out, &resp, now);
        }
    }
    report
}

/// The wire request for a drawn serve op. In scan-tenant mode every range
/// goes out as a version-pinned `SnapRange`.
fn op_req(op: ServeOp, snap_scans: bool) -> Req {
    match op {
        ServeOp::Get(k) => Req::Get(k),
        ServeOp::Insert(k, v) => Req::Insert(k, v),
        ServeOp::Delete(k) => Req::Delete(k),
        ServeOp::Range(lo, hi) if snap_scans => Req::SnapRange(lo, hi),
        ServeOp::Range(lo, hi) => Req::Range(lo, hi),
        ServeOp::MinEntry => Req::MinEntry,
        ServeOp::PopMin => Req::PopMin,
    }
}
