//! Fig. 5.1 — chunk/team size. Benchmarks the identical mixed workload on
//! GFSL-16, GFSL-32, and M&C (host per-op cost; the figure's modeled MOPS
//! come from `repro --experiment fig5_1`).

use criterion::{criterion_group, criterion_main, Criterion};
use gfsl::TeamSize;
use gfsl_bench::{ops, prefilled_gfsl, prefilled_mc};
use gfsl_workload::{Op, OpMix};

fn run_stream<F: FnMut(&Op)>(stream: &[Op], i: &mut usize, mut f: F) {
    let op = &stream[*i % stream.len()];
    *i += 1;
    f(op);
}

fn bench_chunk_size(c: &mut Criterion) {
    const RANGE: u32 = 100_000;
    let stream = ops(OpMix::C80, RANGE, 1 << 16);
    let mut g = c.benchmark_group("fig5_1_chunk_size");

    for team in [TeamSize::Sixteen, TeamSize::ThirtyTwo] {
        let list = prefilled_gfsl(RANGE, team);
        let mut h = list.handle();
        let mut i = 0usize;
        g.bench_function(format!("gfsl{}_mixed_c80", team.lanes()), |b| {
            b.iter(|| {
                run_stream(&stream, &mut i, |op| match *op {
                    Op::Insert(k, v) => {
                        let _ = h.insert(k, v).unwrap();
                    }
                    Op::Delete(k) => {
                        let _ = h.remove(k);
                    }
                    Op::Contains(k) => {
                        let _ = h.contains(k);
                    }
                })
            })
        });
    }

    let mc = prefilled_mc(RANGE);
    let mut h = mc.handle();
    let mut i = 0usize;
    g.bench_function("mc_mixed_c80", |b| {
        b.iter(|| {
            run_stream(&stream, &mut i, |op| match *op {
                Op::Insert(k, v) => {
                    let _ = h.insert(k, v);
                }
                Op::Delete(k) => {
                    let _ = h.remove(k);
                }
                Op::Contains(k) => {
                    let _ = h.contains(k);
                }
            })
        })
    });

    g.finish();
}

criterion_group!(benches, bench_chunk_size);
criterion_main!(benches);
