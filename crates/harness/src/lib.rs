//! # Experiment harness
//!
//! Reproduces every table and figure of the GFSL paper's Chapter 5:
//!
//! | id        | paper artifact |
//! |-----------|----------------|
//! | `table5_1`| Table 5.1 — GFSL warps-per-block sweep |
//! | `table5_2`| Table 5.2 — M&C warps-per-block sweep |
//! | `fig5_1`  | Fig. 5.1 — GFSL-16 vs GFSL-32 vs M&C |
//! | `fig5_2`  | Fig. 5.2 — GFSL/M&C speedup ratio vs key range |
//! | `fig5_3`  | Fig. 5.3 — throughput vs key range, four mixtures |
//! | `fig5_4`  | Fig. 5.4 — single-operation-type throughput |
//! | `pkey`    | §5.2 — p_key / p_chunk sweeps |
//! | `ablate`  | extra ablations (merge threshold, probe overhead) |
//!
//! Methodology: the real data structures run the paper's workloads on host
//! threads with instrumented memory (coalescing + shared L2 model); the
//! measured traffic feeds the calibrated GPU cost model which predicts
//! GTX 970-class throughput. Absolute numbers are anchored once; shapes
//! (who wins, where the crossover sits, how fast M&C degrades) come
//! entirely from measurement. Run via:
//!
//! ```text
//! cargo run --release -p gfsl-harness --bin repro -- --experiment all --quick
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod model_eval;
pub mod report;
pub mod runner;

pub use metrics::RunMetrics;
pub use model_eval::{evaluate, evaluate_with_launch, StructureKind};
pub use report::Table;
pub use runner::{run_gfsl, run_mc, RunConfig};
